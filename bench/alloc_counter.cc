#include "alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t alignment)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    // aligned_alloc requires the size to be a multiple of alignment.
    const std::size_t rounded =
        (size + alignment - 1) / alignment * alignment;
    if (void *p = std::aligned_alloc(alignment,
                                     rounded == 0 ? alignment : rounded))
        return p;
    throw std::bad_alloc();
}

} // namespace

namespace sidewinder::bench {

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace sidewinder::bench

// Replaceable global allocation functions (counting).
void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t alignment)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(alignment));
}

void *
operator new[](std::size_t size, std::align_val_t alignment)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(alignment));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
