/**
 * @file
 * Bench-mode heap allocation counter. Linking alloc_counter.cc into a
 * binary replaces the global operator new/delete with counting
 * versions; benchmarks read the counter around a measured region to
 * prove a path is allocation-free in steady state.
 */

#ifndef SIDEWINDER_BENCH_ALLOC_COUNTER_H
#define SIDEWINDER_BENCH_ALLOC_COUNTER_H

#include <cstdint>

namespace sidewinder::bench {

/** Process-wide count of operator new / new[] calls so far. */
std::uint64_t allocCount();

} // namespace sidewinder::bench

#endif // SIDEWINDER_BENCH_ALLOC_COUNTER_H
