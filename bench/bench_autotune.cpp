/**
 * @file
 * Ablation for threshold self-tuning (Section 7 of the paper): a
 * steps-style wake-up condition deployed with a too-permissive
 * threshold faces a persistent distractor. With application feedback
 * the tuner converges until the distractor no longer wakes the
 * device, while real events keep triggering; the harness reports
 * wake-ups and the implied phone power before and after convergence.
 */

#include <cstdio>

#include "hub/autotune.h"
#include "hub/engine.h"
#include "il/parser.h"
#include "support/rng.h"

using namespace sidewinder;

namespace {

/** Feed one synthetic hour: distractor bumps plus rare real events. */
struct Workload
{
    /** Signal amplitude of spurious activity (not events). */
    double distractorLevel = 12.0;
    /** Signal amplitude of true events. */
    double eventLevel = 25.0;
    /** Distractors per simulated minute. */
    int distractorsPerMinute = 6;
    /** True events per simulated minute. */
    int eventsPerMinute = 1;
};

struct Outcome
{
    int distractorWakes = 0;
    int eventWakes = 0;
    int missedEvents = 0;
};

Outcome
runMinute(hub::Engine &engine, hub::ThresholdAutoTuner *tuner,
          const Workload &workload, Rng &rng)
{
    Outcome outcome;
    auto pulse = [&](double level) {
        bool woke = false;
        for (int i = 0; i < 10; ++i) {
            engine.pushSamples({level + rng.gaussian(0.0, 0.3)}, 0.0);
            woke |= !engine.drainWakeEvents().empty();
        }
        for (int i = 0; i < 40; ++i) {
            engine.pushSamples({rng.gaussian(0.0, 0.3)}, 0.0);
            engine.drainWakeEvents();
        }
        return woke;
    };

    for (int d = 0; d < workload.distractorsPerMinute; ++d) {
        if (pulse(workload.distractorLevel)) {
            ++outcome.distractorWakes;
            if (tuner != nullptr)
                tuner->reportFalsePositive();
        }
    }
    for (int e = 0; e < workload.eventsPerMinute; ++e) {
        if (pulse(workload.eventLevel)) {
            ++outcome.eventWakes;
            if (tuner != nullptr)
                tuner->reportTruePositive();
        } else {
            ++outcome.missedEvents;
        }
    }
    return outcome;
}

} // namespace

int
main()
{
    const char *program_text =
        "ACC_X -> minThreshold(id=1, params={8});\n1 -> OUT;\n";
    const Workload workload;

    std::printf("Threshold self-tuning ablation (Section 7)\n");
    std::printf("condition: minThreshold(8); distractors at %.0f, "
                "events at %.0f\n\n",
                workload.distractorLevel, workload.eventLevel);
    std::printf("%-8s %14s %14s %10s %8s\n", "minute",
                "FP wakes (off)", "FP wakes (on)", "missed(on)",
                "scale");

    hub::Engine static_engine({{"ACC_X", 50.0}});
    static_engine.addCondition(1, il::parse(program_text));

    hub::Engine tuned_engine({{"ACC_X", 50.0}});
    hub::AutoTuneConfig config;
    config.falsePositiveStreak = 3;
    hub::ThresholdAutoTuner tuner(tuned_engine, 1,
                                  il::parse(program_text), config);

    Rng rng(42);
    Rng rng2(42);
    int total_fp_off = 0;
    int total_fp_on = 0;
    int total_missed_on = 0;
    for (int minute = 1; minute <= 12; ++minute) {
        const auto off =
            runMinute(static_engine, nullptr, workload, rng);
        const auto on = runMinute(tuned_engine, &tuner, workload, rng2);
        total_fp_off += off.distractorWakes;
        total_fp_on += on.distractorWakes;
        total_missed_on += on.missedEvents;
        std::printf("%-8d %14d %14d %10d %8.2f\n", minute,
                    off.distractorWakes, on.distractorWakes,
                    on.missedEvents, tuner.currentScale());
    }

    // Each avoided false wake saves one wake-sleep transition pair
    // plus the awake dwell: (384 + 341 + 323) mJ at 1 s each.
    const double mj_per_wake = 384.0 + 341.0 + 323.0;
    std::printf("\ntotals: %d false wakes without tuning, %d with "
                "(%d events missed); %.1f J saved per simulated "
                "12 minutes\n",
                total_fp_off, total_fp_on, total_missed_on,
                (total_fp_off - total_fp_on) * mj_per_wake / 1000.0);
    std::printf("final strictness scale: %.2f after %zu retunes\n",
                tuner.currentScale(), tuner.retuneCount());
    return 0;
}
