/**
 * @file
 * Shared plumbing for the table/figure regeneration binaries: trace
 * durations (scaled down when SW_FAST=1 is set in the environment),
 * simulation helpers, and row formatting.
 */

#ifndef SIDEWINDER_BENCH_COMMON_H
#define SIDEWINDER_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app.h"
#include "sim/simulator.h"
#include "trace/types.h"

namespace sidewinder::bench {

/** True when the environment requests a quick, scaled-down run. */
inline bool
fastMode()
{
    const char *flag = std::getenv("SW_FAST");
    return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/** Scale a paper-scale duration down in fast mode. */
inline double
scaledSeconds(double paper_seconds)
{
    return fastMode() ? paper_seconds / 6.0 : paper_seconds;
}

/** Audio trace length: the paper's half-hour recordings. */
inline double
audioSeconds()
{
    return scaledSeconds(1800.0);
}

/** Robot run length (the paper's runs took ~1 hour; we use 600 s —
 * power numbers are time-normalized so only event statistics shrink). */
inline double
robotSeconds()
{
    return scaledSeconds(600.0);
}

/** Human trace length per subject (paper: ~2 h each). */
inline double
humanSeconds()
{
    return scaledSeconds(2400.0);
}

/** Run one strategy over one trace. */
inline sim::SimResult
runStrategy(const trace::Trace &trace, const apps::Application &app,
            sim::Strategy strategy, double sleep_interval = 10.0,
            double predefined_threshold = 0.0)
{
    sim::SimConfig config;
    config.strategy = strategy;
    config.sleepIntervalSeconds = sleep_interval;
    config.predefinedThreshold = predefined_threshold;
    return sim::simulate(trace, app, config);
}

/** Mean of @p values; 0 for an empty vector. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Print a separator line sized for the standard row layout. */
inline void
rule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

} // namespace sidewinder::bench

#endif // SIDEWINDER_BENCH_COMMON_H
