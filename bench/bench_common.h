/**
 * @file
 * Shared plumbing for the table/figure regeneration binaries: trace
 * durations (scaled down when SW_FAST=1 is set in the environment),
 * simulation helpers, and row formatting.
 */

#ifndef SIDEWINDER_BENCH_COMMON_H
#define SIDEWINDER_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "sim/simulator.h"
#include "support/thread_pool.h"
#include "trace/types.h"

namespace sidewinder::bench {

/** True when the environment requests a quick, scaled-down run. */
inline bool
fastMode()
{
    const char *flag = std::getenv("SW_FAST");
    return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/** Scale a paper-scale duration down in fast mode. */
inline double
scaledSeconds(double paper_seconds)
{
    return fastMode() ? paper_seconds / 6.0 : paper_seconds;
}

/** Audio trace length: the paper's half-hour recordings. */
inline double
audioSeconds()
{
    return scaledSeconds(1800.0);
}

/** Robot run length (the paper's runs took ~1 hour; we use 600 s —
 * power numbers are time-normalized so only event statistics shrink). */
inline double
robotSeconds()
{
    return scaledSeconds(600.0);
}

/** Human trace length per subject (paper: ~2 h each). */
inline double
humanSeconds()
{
    return scaledSeconds(2400.0);
}

/** Run one strategy over one trace. */
inline sim::SimResult
runStrategy(const trace::Trace &trace, const apps::Application &app,
            sim::Strategy strategy, double sleep_interval = 10.0,
            double predefined_threshold = 0.0)
{
    sim::SimConfig config;
    config.strategy = strategy;
    config.sleepIntervalSeconds = sleep_interval;
    config.predefinedThreshold = predefined_threshold;
    return sim::simulate(trace, app, config);
}

/** Mean of @p values; 0 for an empty vector. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Physical cores visible to this process (0 when unknown). */
inline std::size_t
hardwareCores()
{
    return std::thread::hardware_concurrency();
}

/**
 * Append the worker-thread context fields every benchmark JSON must
 * carry: the effective pool width, the SW_THREADS override (null when
 * unset), and the machine's core count. A speedup is only meaningful
 * relative to "cores" — on a single-core container every parallel
 * speedup is bounded by 1.0 regardless of the thread count.
 *
 * Emits `"threads": N, "sw_threads": N|null, "cores": N` (no braces,
 * no trailing comma) so callers can splice it into their own object.
 */
inline void
writeThreadContext(std::FILE *out, const char *indent)
{
    const auto override = support::ThreadPool::envThreadOverride();
    std::fprintf(out, "%s\"threads\": %zu,\n", indent,
                 support::ThreadPool::defaultThreadCount());
    if (override)
        std::fprintf(out, "%s\"sw_threads\": %zu,\n", indent,
                     *override);
    else
        std::fprintf(out, "%s\"sw_threads\": null,\n", indent);
    std::fprintf(out, "%s\"cores\": %zu", indent, hardwareCores());
}

/** Print a separator line sized for the standard row layout. */
inline void
rule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

} // namespace sidewinder::bench

#endif // SIDEWINDER_BENCH_COMMON_H
