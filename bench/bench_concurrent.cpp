/**
 * @file
 * Concurrent multi-application study (Section 7 of the paper): what a
 * phone pays when several continuous-sensing applications run at
 * once, and how much the hub's pipeline merging helps.
 *
 * Compares, over the 50%-idle robot runs:
 *  - the sum of three solo Sidewinder deployments (three phones);
 *  - one phone running all three accelerometer apps concurrently,
 *    with hub node sharing on and off.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "alloc_counter.h"
#include "apps/apps.h"
#include "bench_common.h"
#include "dsp/fft_plan.h"
#include "sim/concurrent.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::robotSeconds();
    std::printf("Concurrent applications on one hub (group-2 robot "
                "runs, %.0f s)%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    // Group 2 = runs 9..14 of the corpus.
    const auto corpus = trace::generateRobotCorpus(seconds, 20160402);
    std::vector<const trace::Trace *> runs;
    for (int run = 0; run < trace::robotGroupRunCount(2); ++run)
        runs.push_back(&corpus[static_cast<std::size_t>(
            trace::robotGroupRunCount(1) + run)]);

    double solo_sum = 0.0;
    double combined_shared = 0.0;
    double combined_unshared = 0.0;
    std::size_t nodes_shared = 0;
    std::size_t nodes_unshared = 0;
    double worst_recall = 1.0;

    dsp::resetFftCounters();
    const std::uint64_t allocs_before = bench::allocCount();
    const auto wall_start = std::chrono::steady_clock::now();

    for (const trace::Trace *t : runs) {
        sim::SimConfig solo_config;
        solo_config.strategy = sim::Strategy::Sidewinder;
        double solo = 0.0;
        for (const auto &app : apps::accelerometerApps())
            solo += sim::simulate(*t, *app, solo_config)
                        .averagePowerMw;
        solo_sum += solo;

        sim::SimConfig shared_config;
        shared_config.shareHubNodes = true;
        const auto shared = sim::simulateConcurrent(
            *t, apps::accelerometerApps(), shared_config);
        combined_shared += shared.averagePowerMw;
        nodes_shared = shared.hubNodeCount;
        for (const auto &app : shared.apps)
            worst_recall = std::min(worst_recall, app.recall);

        sim::SimConfig unshared_config;
        unshared_config.shareHubNodes = false;
        const auto unshared = sim::simulateConcurrent(
            *t, apps::accelerometerApps(), unshared_config);
        combined_unshared += unshared.averagePowerMw;
        nodes_unshared = unshared.hubNodeCount;
    }

    const auto wall_end = std::chrono::steady_clock::now();
    const double wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    const std::uint64_t allocs =
        bench::allocCount() - allocs_before;
    const auto fft = dsp::fftCounters();

    const double n = static_cast<double>(runs.size());
    bench::rule();
    std::printf("three solo deployments (sum):   %8.1f mW\n",
                solo_sum / n);
    std::printf("one phone, concurrent, shared:  %8.1f mW "
                "(%zu hub nodes)\n",
                combined_shared / n, nodes_shared);
    std::printf("one phone, concurrent, unshared:%8.1f mW "
                "(%zu hub nodes)\n",
                combined_unshared / n, nodes_unshared);
    std::printf("worst per-app recall, combined: %8.2f\n",
                worst_recall);
    bench::rule();
    std::printf("wall clock: %.2f s for %.0f simulated s "
                "(%.0fx real time)\n",
                wall_seconds, seconds * n * 3.0,
                wall_seconds > 0.0 ? seconds * n * 3.0 / wall_seconds
                                   : 0.0);
    std::printf("hub DSP: %llu planned transforms (%llu real-input), "
                "%llu naive, %llu plans built; %llu heap allocations\n",
                static_cast<unsigned long long>(fft.plannedTransforms),
                static_cast<unsigned long long>(
                    fft.plannedRealTransforms),
                static_cast<unsigned long long>(fft.naiveTransforms),
                static_cast<unsigned long long>(fft.plansBuilt),
                static_cast<unsigned long long>(allocs));
    bench::rule();
    std::printf("(sharing keeps detections identical; it reduces hub "
                "footprint/compute, which matters for MCU sizing, not "
                "for the phone-side power)\n");
    return 0;
}
