/**
 * @file
 * Microbenchmarks of the platform algorithms and the hub interpreter
 * (google-benchmark). These ground the MCU sizing discussion of
 * Section 3.8: FFT-family kernels dominate, which is why the siren
 * detector outgrows the MSP430.
 */

#include <cmath>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "alloc_counter.h"
#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/filters.h"
#include "dsp/window.h"
#include "hub/engine.h"
#include "il/analyze.h"
#include "il/analyze_range.h"
#include "il/lower.h"
#include "il/parser.h"
#include "il/plan.h"
#include "reference/legacy_engine.h"
#include "support/thread_pool.h"

using namespace sidewinder;

namespace {

std::vector<double>
toneFrame(std::size_t n, double freq = 1000.0, double fs = 4000.0)
{
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = std::sin(2.0 * std::numbers::pi * freq *
                            static_cast<double>(i) / fs);
    return frame;
}

/**
 * Attach planned-vs-naive transform counts and the heap-allocation
 * rate of the measured region to a benchmark's output.
 */
class DspCounterScope
{
  public:
    explicit DspCounterScope(benchmark::State &state)
        : state(state), before(dsp::fftCounters()),
          allocsBefore(bench::allocCount())
    {}

    ~DspCounterScope()
    {
        const auto after = dsp::fftCounters();
        const double iters =
            static_cast<double>(std::max<std::int64_t>(
                state.iterations(), 1));
        state.counters["planned/iter"] = static_cast<double>(
            (after.plannedTransforms - before.plannedTransforms) +
            (after.plannedRealTransforms -
             before.plannedRealTransforms)) / iters;
        state.counters["naive/iter"] = static_cast<double>(
            after.naiveTransforms - before.naiveTransforms) / iters;
        state.counters["allocs/iter"] = static_cast<double>(
            bench::allocCount() - allocsBefore) / iters;
    }

  private:
    benchmark::State &state;
    dsp::FftCounters before;
    std::uint64_t allocsBefore;
};

/**
 * Pre-PR baseline: the naive full-complex transform with a freshly
 * allocated buffer per frame, exactly what dsp::fftReal() did before
 * the planned path landed. The BM_FftReal speedup is measured against
 * this in BENCH_dsp.json.
 */
void
BM_FftRealNaive(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    DspCounterScope counters(state);
    for (auto _ : state) {
        std::vector<dsp::Complex> data(frame.begin(), frame.end());
        dsp::naiveFft(data);
        benchmark::DoNotOptimize(data);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftRealNaive)->RangeMultiplier(4)->Range(64, 4096);

void
BM_FftReal(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    dsp::fftReal(frame); // warm the plan cache outside the timed loop
    DspCounterScope counters(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::fftReal(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftReal)->RangeMultiplier(4)->Range(64, 4096);

/**
 * The fully planned path the hub kernels run: held plan, reused
 * output buffer. allocs/iter must be 0 — this is the zero-allocation
 * acceptance check.
 */
void
BM_FftPlanReal(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto frame = toneFrame(n);
    const auto plan = dsp::FftPlan::forSize(n);
    std::vector<dsp::Complex> spectrum(n);
    plan->forwardReal(frame.data(), spectrum.data()); // warm-up
    DspCounterScope counters(state);
    for (auto _ : state) {
        plan->forwardReal(frame.data(), spectrum.data());
        benchmark::DoNotOptimize(spectrum.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftPlanReal)->RangeMultiplier(4)->Range(64, 4096);

/** Planned real round trip (forwardReal + inverseReal), zero-alloc. */
void
BM_FftPlanRealRoundTrip(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto frame = toneFrame(n);
    const auto plan = dsp::FftPlan::forSize(n);
    std::vector<dsp::Complex> spectrum(n);
    std::vector<double> restored(n);
    DspCounterScope counters(state);
    for (auto _ : state) {
        plan->forwardReal(frame.data(), spectrum.data());
        plan->inverseReal(spectrum.data(), restored.data());
        benchmark::DoNotOptimize(restored.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftPlanRealRoundTrip)->RangeMultiplier(4)->Range(64, 4096);

void
BM_FftBlockFilter(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    const dsp::FftBlockFilter filter(dsp::PassBand::HighPass, 750.0,
                                     4000.0);
    DspCounterScope counters(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.apply(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftBlockFilter)->RangeMultiplier(4)->Range(64, 4096);

/** Block filter into a reused output frame (the hub kernel path). */
void
BM_FftBlockFilterInto(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    const dsp::FftBlockFilter filter(dsp::PassBand::HighPass, 750.0,
                                     4000.0);
    std::vector<double> out;
    filter.applyInto(frame, out); // warm plan and scratch
    DspCounterScope counters(state);
    for (auto _ : state) {
        filter.applyInto(frame, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftBlockFilterInto)->RangeMultiplier(4)->Range(64, 4096);

void
BM_MovingAverage(benchmark::State &state)
{
    dsp::MovingAverage filter(
        static_cast<std::size_t>(state.range(0)));
    double x = 0.0;
    for (auto _ : state) {
        x += 0.1;
        benchmark::DoNotOptimize(filter.push(std::sin(x)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MovingAverage)->Arg(5)->Arg(50);

void
BM_ZeroCrossingRate(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::zeroCrossingRate(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZeroCrossingRate)->Arg(64)->Arg(2048);

void
BM_Variance(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::variance(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Variance)->Arg(64)->Arg(2048);

/** Interpreter throughput on the Figure 2 significant-motion graph. */
void
BM_EngineSignificantMotion(benchmark::State &state)
{
    hub::Engine engine(
        {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}});
    engine.addCondition(
        1, il::parse("ACC_X -> movingAvg(id=1, params={10});\n"
                     "ACC_Y -> movingAvg(id=2, params={10});\n"
                     "ACC_Z -> movingAvg(id=3, params={10});\n"
                     "1,2,3 -> vectorMagnitude(id=4);\n"
                     "4 -> minThreshold(id=5, params={15});\n"
                     "5 -> OUT;\n"));
    const std::vector<double> sample{1.0, 1.0, 9.8};
    double t = 0.0;
    DspCounterScope counters(state);
    for (auto _ : state) {
        engine.pushSamples(sample, t);
        t += 0.02;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSignificantMotion);

/**
 * Block execution on the same scalar significant-motion graph. This
 * workload has no FFT to bound it, so ns/sample here against
 * BM_EngineSignificantMotion isolates the pure dispatch win of the
 * block wave loop (virtual calls, firing decisions, wake scan) from
 * the math-bound audio pipelines.
 */
void
BM_BlockDispatchSignificantMotion(benchmark::State &state)
{
    const auto block = static_cast<std::size_t>(state.range(0));
    hub::Engine engine(
        {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}});
    engine.addCondition(
        1, il::parse("ACC_X -> movingAvg(id=1, params={10});\n"
                     "ACC_Y -> movingAvg(id=2, params={10});\n"
                     "ACC_Z -> movingAvg(id=3, params={10});\n"
                     "1,2,3 -> vectorMagnitude(id=4);\n"
                     "4 -> minThreshold(id=5, params={15});\n"
                     "5 -> OUT;\n"));
    // Channel-major lanes, same constant stimulus as the per-sample
    // benchmark.
    std::vector<double> samples(3 * block);
    for (std::size_t w = 0; w < block; ++w) {
        samples[w] = 1.0;
        samples[block + w] = 1.0;
        samples[2 * block + w] = 9.8;
    }
    double t = 0.0;
    DspCounterScope counters(state);
    for (auto _ : state) {
        engine.pushBlock(samples.data(), block, t, 0.02);
        t += 0.02 * static_cast<double>(block);
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(block));
}
BENCHMARK(BM_BlockDispatchSignificantMotion)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/**
 * An 8-deep admission chain of stateless thresholds: each node is one
 * compare, so per-sample time here is almost pure wave-loop dispatch
 * — the overhead the block loop exists to amortize. The first seven
 * stages pass every sample; the last blocks, so no wake-event
 * traffic pollutes the dispatch measurement.
 */
const char *kScalarChainIl =
    "AUDIO -> minThreshold(id=1, params={-1000});\n"
    "1 -> minThreshold(id=2, params={-1000});\n"
    "2 -> minThreshold(id=3, params={-1000});\n"
    "3 -> minThreshold(id=4, params={-1000});\n"
    "4 -> minThreshold(id=5, params={-1000});\n"
    "5 -> minThreshold(id=6, params={-1000});\n"
    "6 -> minThreshold(id=7, params={-1000});\n"
    "7 -> maxThreshold(id=8, params={-1000});\n"
    "8 -> OUT;\n";

/** Per-sample dispatch cost of the scalar chain. */
void
BM_PlanDispatchScalarChain(benchmark::State &state)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(1, il::parse(kScalarChainIl));
    std::vector<double> sample{0.25};
    double t = 0.0;
    DspCounterScope counters(state);
    for (auto _ : state) {
        engine.pushSamples(sample, t);
        t += 0.00025;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanDispatchScalarChain);

/**
 * Block execution of the scalar chain: the dispatch-bound speedup.
 * ns/sample here vs BM_PlanDispatchScalarChain isolates what block
 * dispatch saves when kernels are cheap (no FFT floor in the way).
 */
void
BM_BlockDispatchScalarChain(benchmark::State &state)
{
    const auto block = static_cast<std::size_t>(state.range(0));
    hub::Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(1, il::parse(kScalarChainIl));
    std::vector<double> samples(block, 0.25);
    double t = 0.0;
    DspCounterScope counters(state);
    for (auto _ : state) {
        engine.pushBlock(samples.data(), block, t, 0.00025);
        t += 0.00025 * static_cast<double>(block);
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(block));
}
BENCHMARK(BM_BlockDispatchScalarChain)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/** Interpreter throughput on the audio-rate siren graph. */
void
BM_EngineSirenPipeline(benchmark::State &state)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(
        1,
        il::parse("AUDIO -> window(id=1, params={256,1});\n"
                  "1 -> highPass(id=2, params={750});\n"
                  "2 -> fft(id=3);\n"
                  "3 -> spectrum(id=4);\n"
                  "4 -> peakToMeanRatio(id=5);\n"
                  "5 -> minThreshold(id=6, params={4});\n"
                  "AUDIO -> window(id=7, params={256,1});\n"
                  "7 -> highPass(id=8, params={750});\n"
                  "8 -> fft(id=9);\n"
                  "9 -> spectrum(id=10);\n"
                  "10 -> dominantFreqHz(id=11);\n"
                  "11 -> bandThreshold(id=12, params={850,1800});\n"
                  "6,12 -> and(id=13);\n"
                  "13 -> consecutive(id=14, params={11});\n"
                  "14 -> OUT;\n"));
    // Warm up past the first frames so node result buffers are sized,
    // then show the steady-state allocation rate of the interpreter.
    std::vector<double> sample(1);
    double t = 0.0;
    double phase = 0.0;
    for (int i = 0; i < 1024; ++i) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        sample[0] = 0.3 * std::sin(phase);
        engine.pushSamples(sample, t);
        t += 0.00025;
        engine.drainWakeEvents();
    }
    DspCounterScope counters(state);
    for (auto _ : state) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        sample[0] = 0.3 * std::sin(phase);
        engine.pushSamples(sample, t);
        t += 0.00025;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSirenPipeline);

// ---------------------------------------------------------------------
// Lowering and plan dispatch: the multi-condition audio workload
// (siren + phrase sharing a spectral prefix) on the plan-executing
// engine vs the frozen AST interpreter it replaced.

/** Cost of one il::lower() call on the largest shipped program. */
void
BM_Lower(benchmark::State &state)
{
    const auto app = apps::makeSirenApp();
    const il::Program program = app->wakeCondition().compile();
    const auto channels = app->channels();
    for (auto _ : state)
        benchmark::DoNotOptimize(il::lower(program, channels));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lower);

/** Install siren + phrase on @p engine and warm it up. */
template <typename EngineT>
void
installSirenPhrase(EngineT &engine, double &t, double &phase)
{
    engine.addCondition(
        1, apps::makeSirenApp()->wakeCondition().compile());
    engine.addCondition(
        2, apps::makePhraseApp()->wakeCondition().compile());
    std::vector<double> sample(1);
    for (int i = 0; i < 1024; ++i) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        sample[0] = 0.3 * std::sin(phase);
        engine.pushSamples(sample, t);
        t += 0.00025;
        engine.drainWakeEvents();
    }
}

/** Plan-dispatch throughput on the shared siren + phrase workload. */
void
BM_PlanDispatchSirenPhrase(benchmark::State &state)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    double t = 0.0;
    double phase = 0.0;
    installSirenPhrase(engine, t, phase);
    std::vector<double> sample(1);
    DspCounterScope counters(state);
    for (auto _ : state) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        sample[0] = 0.3 * std::sin(phase);
        engine.pushSamples(sample, t);
        t += 0.00025;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["nodes"] = static_cast<double>(engine.nodeCount());
}
BENCHMARK(BM_PlanDispatchSirenPhrase);

/**
 * Block-execution throughput on the same workload: K waves per
 * pushBlock(), so each node runs a tight loop over contiguous lanes
 * instead of K virtual calls through the per-sample wave loop. The
 * K sweep is the tentpole acceptance measurement — ns/sample here vs
 * BM_PlanDispatchSirenPhrase is the block-dispatch speedup.
 */
void
BM_BlockDispatchSirenPhrase(benchmark::State &state)
{
    const auto block = static_cast<std::size_t>(state.range(0));
    hub::Engine engine({{"AUDIO", 4000.0}});
    double t = 0.0;
    double phase = 0.0;
    installSirenPhrase(engine, t, phase);
    std::vector<double> samples(block);
    DspCounterScope counters(state);
    for (auto _ : state) {
        for (std::size_t i = 0; i < block; ++i) {
            phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
            samples[i] = 0.3 * std::sin(phase);
        }
        engine.pushBlock(samples.data(), block, t, 0.00025);
        t += 0.00025 * static_cast<double>(block);
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(block));
    state.counters["nodes"] = static_cast<double>(engine.nodeCount());
}
BENCHMARK(BM_BlockDispatchSirenPhrase)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/**
 * The same block workload in fixed-point mode: Q15 kernels (the
 * 2-bytes-per-sample firmware arithmetic) under block dispatch.
 */
void
BM_BlockDispatchSirenPhraseQ15(benchmark::State &state)
{
    const auto block = static_cast<std::size_t>(state.range(0));
    hub::Engine engine({{"AUDIO", 4000.0}}, true, 200,
                       hub::KernelMode::FixedQ15);
    double t = 0.0;
    double phase = 0.0;
    installSirenPhrase(engine, t, phase);
    std::vector<double> samples(block);
    DspCounterScope counters(state);
    for (auto _ : state) {
        for (std::size_t i = 0; i < block; ++i) {
            phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
            samples[i] = 0.3 * std::sin(phase);
        }
        engine.pushBlock(samples.data(), block, t, 0.00025);
        t += 0.00025 * static_cast<double>(block);
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(block));
    state.counters["nodes"] = static_cast<double>(engine.nodeCount());
}
BENCHMARK(BM_BlockDispatchSirenPhraseQ15)->Arg(64)->Arg(256);

/** Same workload on the frozen AST interpreter (src/reference/). */
void
BM_LegacyDispatchSirenPhrase(benchmark::State &state)
{
    reference::LegacyEngine engine({{"AUDIO", 4000.0}});
    double t = 0.0;
    double phase = 0.0;
    installSirenPhrase(engine, t, phase);
    std::vector<double> sample(1);
    DspCounterScope counters(state);
    for (auto _ : state) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        sample[0] = 0.3 * std::sin(phase);
        engine.pushSamples(sample, t);
        t += 0.00025;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["nodes"] = static_cast<double>(engine.nodeCount());
}
BENCHMARK(BM_LegacyDispatchSirenPhrase);

// ---------------------------------------------------------------------
// Static analyzer wall-clock: admission control runs on every push,
// so il::analyze() must stay far under 10 ms per program.

/** One analyzable program: IL plus the channels it runs on. */
struct AnalyzeUnit
{
    il::Program program;
    std::vector<il::ChannelInfo> channels;
};

std::vector<AnalyzeUnit>
analyzeUnits()
{
    std::vector<AnalyzeUnit> units;
    for (const auto &app : apps::allApps())
        units.push_back({app->wakeCondition().compile(),
                         app->channels()});
    units.push_back({apps::significantMotionCondition().compile(),
                     core::accelerometerChannels()});
    units.push_back({apps::significantSoundCondition().compile(),
                     core::audioChannels()});
    return units;
}

/** Analyzer throughput over every shipped wake condition. */
void
BM_AnalyzeAllApps(benchmark::State &state)
{
    const auto units = analyzeUnits();
    for (auto _ : state)
        for (const auto &unit : units)
            benchmark::DoNotOptimize(
                il::analyze(unit.program, unit.channels));
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(units.size()));
    state.counters["programs"] =
        static_cast<double>(units.size());
}
BENCHMARK(BM_AnalyzeAllApps);

/**
 * Value-range abstract interpretation over the largest shipped plan
 * (siren). Lowering happens once outside the loop — the bench prices
 * the interval pass itself, which swlint --ranges and fleet
 * admission pay per distinct condition (budget: well under 100 us).
 */
void
BM_RangeAnalyze(benchmark::State &state)
{
    const auto app = apps::makeSirenApp();
    const il::ExecutionPlan plan = il::lower(
        app->wakeCondition().compile(), app->channels());
    for (auto _ : state)
        benchmark::DoNotOptimize(il::analyzeRanges(plan));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeAnalyze);

/** The largest shipped program (siren: 15 statements, two FFTs). */
void
BM_AnalyzeSiren(benchmark::State &state)
{
    const auto app = apps::makeSirenApp();
    const il::Program program = app->wakeCondition().compile();
    const auto channels = app->channels();
    for (auto _ : state)
        benchmark::DoNotOptimize(il::analyze(program, channels));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeSiren);

/** Text rendering on top of analysis (what swlint does per file). */
void
BM_AnalyzeAndRenderSiren(benchmark::State &state)
{
    const auto app = apps::makeSirenApp();
    const il::Program program = app->wakeCondition().compile();
    const auto channels = app->channels();
    for (auto _ : state) {
        const auto result = il::analyze(program, channels);
        benchmark::DoNotOptimize(il::renderText(result, "siren"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeAndRenderSiren);

} // namespace

/**
 * Custom main instead of benchmark_main: stamps the *sidewinder*
 * build type into the JSON context so scripts/run_benches.sh can
 * refuse debug numbers. (The library's own library_build_type field
 * describes how the distro built google-benchmark, not us.)
 */
int
main(int argc, char **argv)
{
#if defined(NDEBUG) && defined(__OPTIMIZE__)
    benchmark::AddCustomContext("sidewinder_build_type", "release");
#else
    benchmark::AddCustomContext("sidewinder_build_type", "debug");
#endif
    // Worker-thread provenance: every benchmark JSON records the
    // effective pool width, the SW_THREADS override, and the core
    // count, so numbers from thread-starved containers are
    // distinguishable after the fact.
    benchmark::AddCustomContext(
        "sidewinder_threads",
        std::to_string(
            sidewinder::support::ThreadPool::defaultThreadCount()));
    {
        const auto override =
            sidewinder::support::ThreadPool::envThreadOverride();
        benchmark::AddCustomContext(
            "sidewinder_sw_threads",
            override ? std::to_string(*override) : "unset");
    }
    benchmark::AddCustomContext(
        "sidewinder_cores",
        std::to_string(std::thread::hardware_concurrency()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
