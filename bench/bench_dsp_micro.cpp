/**
 * @file
 * Microbenchmarks of the platform algorithms and the hub interpreter
 * (google-benchmark). These ground the MCU sizing discussion of
 * Section 3.8: FFT-family kernels dominate, which is why the siren
 * detector outgrows the MSP430.
 */

#include <cmath>
#include <numbers>
#include <vector>

#include <benchmark/benchmark.h>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/filters.h"
#include "dsp/window.h"
#include "hub/engine.h"
#include "il/parser.h"

using namespace sidewinder;

namespace {

std::vector<double>
toneFrame(std::size_t n, double freq = 1000.0, double fs = 4000.0)
{
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = std::sin(2.0 * std::numbers::pi * freq *
                            static_cast<double>(i) / fs);
    return frame;
}

void
BM_FftReal(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::fftReal(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftReal)->RangeMultiplier(4)->Range(64, 4096);

void
BM_FftBlockFilter(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    const dsp::FftBlockFilter filter(dsp::PassBand::HighPass, 750.0,
                                     4000.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.apply(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftBlockFilter)->RangeMultiplier(4)->Range(64, 4096);

void
BM_MovingAverage(benchmark::State &state)
{
    dsp::MovingAverage filter(
        static_cast<std::size_t>(state.range(0)));
    double x = 0.0;
    for (auto _ : state) {
        x += 0.1;
        benchmark::DoNotOptimize(filter.push(std::sin(x)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MovingAverage)->Arg(5)->Arg(50);

void
BM_ZeroCrossingRate(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::zeroCrossingRate(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZeroCrossingRate)->Arg(64)->Arg(2048);

void
BM_Variance(benchmark::State &state)
{
    const auto frame = toneFrame(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::variance(frame));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Variance)->Arg(64)->Arg(2048);

/** Interpreter throughput on the Figure 2 significant-motion graph. */
void
BM_EngineSignificantMotion(benchmark::State &state)
{
    hub::Engine engine(
        {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}});
    engine.addCondition(
        1, il::parse("ACC_X -> movingAvg(id=1, params={10});\n"
                     "ACC_Y -> movingAvg(id=2, params={10});\n"
                     "ACC_Z -> movingAvg(id=3, params={10});\n"
                     "1,2,3 -> vectorMagnitude(id=4);\n"
                     "4 -> minThreshold(id=5, params={15});\n"
                     "5 -> OUT;\n"));
    double t = 0.0;
    for (auto _ : state) {
        engine.pushSamples({1.0, 1.0, 9.8}, t);
        t += 0.02;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSignificantMotion);

/** Interpreter throughput on the audio-rate siren graph. */
void
BM_EngineSirenPipeline(benchmark::State &state)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(
        1,
        il::parse("AUDIO -> window(id=1, params={256,1});\n"
                  "1 -> highPass(id=2, params={750});\n"
                  "2 -> fft(id=3);\n"
                  "3 -> spectrum(id=4);\n"
                  "4 -> peakToMeanRatio(id=5);\n"
                  "5 -> minThreshold(id=6, params={4});\n"
                  "AUDIO -> window(id=7, params={256,1});\n"
                  "7 -> highPass(id=8, params={750});\n"
                  "8 -> fft(id=9);\n"
                  "9 -> spectrum(id=10);\n"
                  "10 -> dominantFreqHz(id=11);\n"
                  "11 -> bandThreshold(id=12, params={850,1800});\n"
                  "6,12 -> and(id=13);\n"
                  "13 -> consecutive(id=14, params={11});\n"
                  "14 -> OUT;\n"));
    double t = 0.0;
    double phase = 0.0;
    for (auto _ : state) {
        phase += 2.0 * std::numbers::pi * 1200.0 / 4000.0;
        engine.pushSamples({0.3 * std::sin(phase)}, t);
        t += 0.00025;
        benchmark::DoNotOptimize(engine.drainWakeEvents());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSirenPipeline);

} // namespace
