/**
 * @file
 * Ablation of the two simulator design choices DESIGN.md calls out
 * for event-driven wake-ups:
 *
 *  - eventDwellSeconds: how long the CPU stays awake after the last
 *    hub trigger (too long wastes power, Section 2's whole point);
 *  - lookbackSeconds: how much buffered raw history the hub hands
 *    the application (Section 3.8; too little and the second-stage
 *    classifier misses the start of the event, breaking the 100%-
 *    recall calibration).
 *
 * Sweeps both for the transitions detector — the most lookback-
 * sensitive application, since its classifier must observe the
 * posture *before* the change. The dwell x lookback grid runs on the
 * shared thread pool via sim::runSweep.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::robotSeconds();
    std::printf("Event dwell / lookback ablation (transitions app, "
                "50%% idle, %.0f s, %zu threads)%s\n",
                seconds, support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    trace::RobotRunConfig trace_config;
    trace_config.idleFraction = 0.5;
    trace_config.durationSeconds = seconds;
    trace_config.seed = 20160402;
    const auto trace = generateRobotRun(trace_config);
    const auto app = apps::makeTransitionsApp();

    const double dwells[] = {0.5, 1.0, 2.0, 4.0};
    const double lookbacks[] = {0.5, 1.0, 2.0, 3.0, 5.0};

    // Row-major (dwell, lookback) grid matching the print order.
    std::vector<sim::SweepCell> cells;
    for (double dwell : dwells) {
        for (double lookback : lookbacks) {
            sim::SimConfig config;
            config.strategy = sim::Strategy::Sidewinder;
            config.eventDwellSeconds = dwell;
            config.lookbackSeconds = lookback;
            cells.push_back({&trace, app.get(), config});
        }
    }
    const auto results = sim::runSweep(cells);

    bench::rule();
    std::printf("%-12s", "dwell\\look");
    for (double lb : lookbacks)
        std::printf("   %5.1fs      ", lb);
    std::printf("\n%-12s", "");
    for (double lb : lookbacks) {
        (void)lb;
        std::printf("  %5s %6s ", "mW", "recall");
    }
    std::printf("\n");
    bench::rule();

    std::size_t cell = 0;
    for (double dwell : dwells) {
        std::printf("%-12.1f", dwell);
        for (std::size_t l = 0; l < std::size(lookbacks); ++l) {
            const auto &r = results[cell++];
            std::printf("  %5.1f %5.0f%% ", r.averagePowerMw,
                        100.0 * r.recall);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("(expected: recall collapses when the lookback cannot "
                "cover the pre-event posture; power grows linearly "
                "with dwell)\n");
    return 0;
}
