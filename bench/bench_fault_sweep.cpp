/**
 * @file
 * Robustness sweep (docs/fault-model.md): recall and power of the
 * supervised Sidewinder stack on the Figure-5 robot workload as link
 * corruption, frame drops, and hub brownouts grow. Each fault cell
 * replays the full transport + supervision path; the fault-free cell
 * runs the fast path and must stay bit-identical run over run, which
 * pins the guarantee that the fault machinery costs nothing when no
 * fault is planned.
 *
 * Emits a JSON record (default BENCH_faults.json, or argv[1]) with
 * one row per fault cell: recall, average power, retransmits, frames
 * lost, hub downtime, and fallback energy. scripts/run_benches.sh
 * runs this alongside the other tracked benchmarks.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

namespace {

struct Cell
{
    std::string axis;
    double level = 0.0;
    sim::FaultPlan plan;
};

/** The fields the fault-free determinism check compares. */
bool
identical(const sim::SimResult &a, const sim::SimResult &b)
{
    return a.averagePowerMw == b.averagePowerMw &&
           a.hubTriggerCount == b.hubTriggerCount &&
           a.recall == b.recall && a.precision == b.precision &&
           a.timeline.energyMj == b.timeline.energyMj &&
           a.meanDetectionLatencySeconds ==
               b.meanDetectionLatencySeconds &&
           !a.faults.any() && !b.faults.any();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_faults.json";
    const double seconds = bench::robotSeconds();

    trace::RobotRunConfig trace_config;
    trace_config.idleFraction = 0.5;
    trace_config.durationSeconds = seconds;
    trace_config.seed = 42;
    const auto trace = generateRobotRun(trace_config);
    const auto app = apps::makeStepsApp();

    sim::SimConfig config;
    config.strategy = sim::Strategy::Sidewinder;

    std::printf("Fault sweep: supervised Sidewinder on the fig5 robot "
                "workload (%.0f s, %zu threads)%s\n",
                seconds, support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    // The fault-free fast path must be deterministic run over run —
    // the fault machinery may not perturb it.
    const auto baseline = sim::simulate(trace, *app, config);
    const auto repeat = sim::simulate(trace, *app, config);
    const bool fault_free_identical = identical(baseline, repeat);

    std::vector<Cell> cells;
    for (double rate : {1e-4, 5e-4, 1e-3, 2e-3, 5e-3}) {
        Cell cell;
        cell.axis = "corruption";
        cell.level = rate;
        cell.plan.byteCorruptionRate = rate;
        cells.push_back(cell);
    }
    for (double rate : {0.01, 0.05, 0.1, 0.2}) {
        Cell cell;
        cell.axis = "drop";
        cell.level = rate;
        cell.plan.frameDropRate = rate;
        cells.push_back(cell);
    }
    for (int resets : {1, 2, 4}) {
        Cell cell;
        cell.axis = "resets";
        cell.level = resets;
        // Brownouts spread evenly through the run, 10 s dark each.
        for (int i = 1; i <= resets; ++i)
            cell.plan.hubResetTimes.push_back(
                seconds * i / (resets + 1));
        cell.plan.hubResetDowntimeSeconds = 10.0;
        cells.push_back(cell);
    }

    // Every cell's fault pattern is a pure function of its seeded
    // plan, so the grid parallelizes without losing determinism.
    const auto results = support::ThreadPool::shared().parallelMap(
        cells.size(), [&](std::size_t i) {
            sim::SimConfig cell_config = config;
            cell_config.faults = cells[i].plan;
            return sim::simulate(trace, *app, cell_config);
        });

    bench::rule();
    std::printf("%-12s %8s %8s %9s %7s %6s %8s %9s\n", "axis", "level",
                "recall", "power mW", "retx", "lost", "down s",
                "fb mJ");
    bench::rule();
    std::printf("%-12s %8s %8.3f %9.1f %7s %6s %8s %9s\n",
                "fault-free", "-", baseline.recall,
                baseline.averagePowerMw, "-", "-", "-", "-");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        std::printf("%-12s %8g %8.3f %9.1f %7zu %6zu %8.1f %9.1f\n",
                    cells[i].axis.c_str(), cells[i].level, r.recall,
                    r.averagePowerMw, r.faults.retransmits,
                    r.faults.framesLost, r.faults.hubDownSeconds,
                    r.faults.fallbackEnergyMj);
    }
    bench::rule();
    std::printf("fault-free determinism: %s\n",
                fault_free_identical ? "bit-identical" : "DIVERGED");

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"fault_sweep_fig5_robot\",\n"
                 "  \"trace_seconds\": %.1f,\n"
                 "  \"fast_mode\": %s,\n",
                 seconds, bench::fastMode() ? "true" : "false");
    bench::writeThreadContext(out, "  ");
    std::fprintf(out,
                 ",\n"
                 "  \"fault_free\": {\"recall\": %.6f, "
                 "\"power_mw\": %.6f, \"identical\": %s},\n"
                 "  \"cells\": [\n",
                 baseline.recall, baseline.averagePowerMw,
                 fault_free_identical ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(
            out,
            "    {\"axis\": \"%s\", \"level\": %g, "
            "\"recall\": %.6f, \"power_mw\": %.6f, "
            "\"retransmits\": %zu, \"frames_lost\": %zu, "
            "\"hub_down_s\": %.3f, \"fallback_mj\": %.3f, "
            "\"repushed\": %zu}%s\n",
            cells[i].axis.c_str(), cells[i].level, r.recall,
            r.averagePowerMw, r.faults.retransmits,
            r.faults.framesLost, r.faults.hubDownSeconds,
            r.faults.fallbackEnergyMj, r.faults.repushedConditions,
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ]\n"
                 "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    return fault_free_identical ? 0 : 1;
}
