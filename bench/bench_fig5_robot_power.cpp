/**
 * @file
 * Regenerates **Figure 5** of the paper: power relative to Oracle for
 * Always Awake, Duty Cycling (2/5/10/20/30 s), Batching (10 s),
 * Predefined Activity and Sidewinder, for the three accelerometer
 * applications across the three robot activity groups (90% / 50% /
 * 10% idle), averaged over the runs of each group.
 *
 * Also prints the derived Section 5 statistics:
 *  - §5.1 savings potential (Oracle vs Always Awake), paper:
 *    17.7% - 94.9%;
 *  - §5.2 Sidewinder's share of available savings, paper:
 *    92.7% - 95.7%;
 *  - §5.3 PA-vs-Sidewinder power ratio for rare events, paper: 4.7x
 *    (headbutts) and 6.1x (transitions);
 *  - §5.4 short-interval duty cycling vs Always Awake, paper: 339 mW
 *    vs 323 mW, and DC/Ba consuming 2.4-7.5x Sidewinder.
 *
 * The (trace x strategy) grid of each application is fanned across
 * the shared thread pool via sim::runSweep; per-group averages are
 * accumulated from the ordered results in the exact order the old
 * serial loops used, so every printed number is unchanged.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "metrics/events.h"
#include "sim/calibrate.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

namespace {

struct ConfigSpec
{
    const char *label;
    sim::Strategy strategy;
    double sleep;
};

const ConfigSpec configs[] = {
    {"AA", sim::Strategy::AlwaysAwake, 0.0},
    {"DC-2", sim::Strategy::DutyCycling, 2.0},
    {"DC-5", sim::Strategy::DutyCycling, 5.0},
    {"DC-10", sim::Strategy::DutyCycling, 10.0},
    {"DC-20", sim::Strategy::DutyCycling, 20.0},
    {"DC-30", sim::Strategy::DutyCycling, 30.0},
    {"Ba-10", sim::Strategy::Batching, 10.0},
    {"PA", sim::Strategy::PredefinedActivity, 0.0},
    {"Sw", sim::Strategy::Sidewinder, 0.0},
};

sim::SimConfig
cellConfig(sim::Strategy strategy, double sleep, double threshold)
{
    sim::SimConfig config;
    config.strategy = strategy;
    config.sleepIntervalSeconds = sleep;
    config.predefinedThreshold = threshold;
    return config;
}

} // namespace

int
main()
{
    const double seconds = bench::robotSeconds();
    std::printf("Figure 5: power relative to Oracle, robot corpus "
                "(18 runs of %.0f s, %zu threads)%s\n",
                seconds, support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    const auto corpus = trace::generateRobotCorpus(seconds, 20160402);
    const auto apps = apps::accelerometerApps();

    // Traces per activity group, in corpus order (9 / 6 / 3).
    std::map<int, std::vector<const trace::Trace *>> groups;
    std::size_t index = 0;
    for (int group = 1; group <= 3; ++group)
        for (int run = 0; run < trace::robotGroupRunCount(group); ++run)
            groups[group].push_back(&corpus[index++]);

    double min_potential = 1.0, max_potential = 0.0;
    double min_sw_share = 1.0, max_sw_share = 0.0;
    std::map<std::string, double> pa_over_sw;
    double worst_dc_over_sw = 0.0, best_dc_over_sw = 1e9;

    for (const auto &app : apps) {
        // Calibrate PA's motion threshold over the whole corpus
        // (paper: over-fit in PA's favor, Section 5.3).
        const auto calibration = sim::calibratePredefinedThreshold(
            corpus, *app, {0.3, 0.5, 0.8, 1.2, 2.0});

        std::printf("\n[%s]  PA threshold=%.2f%s\n",
                    app->name().c_str(), calibration.threshold,
                    calibration.achievedFullRecall
                        ? ""
                        : " (full recall unattainable)");
        std::printf("%-8s", "group");
        for (const auto &config : configs)
            std::printf(" %7s", config.label);
        std::printf(" %9s\n", "Oracle mW");

        // One cell per (trace, Oracle + strategy), group by group, in
        // the accumulation order of the old serial loop.
        std::vector<sim::SweepCell> cells;
        for (int group = 1; group <= 3; ++group) {
            for (const trace::Trace *t : groups[group]) {
                cells.push_back(
                    {t, app.get(),
                     cellConfig(sim::Strategy::Oracle, 0.0, 0.0)});
                for (const auto &config : configs)
                    cells.push_back(
                        {t, app.get(),
                         cellConfig(config.strategy, config.sleep,
                                    calibration.threshold)});
            }
        }
        const auto results = sim::runSweep(cells);

        std::size_t cell = 0;
        for (int group = 1; group <= 3; ++group) {
            // Average each configuration over the group's runs.
            std::vector<double> power(std::size(configs), 0.0);
            double oracle_mw = 0.0;
            for (std::size_t t = 0; t < groups[group].size(); ++t) {
                oracle_mw += results[cell++].averagePowerMw;
                for (std::size_t c = 0; c < std::size(configs); ++c)
                    power[c] += results[cell++].averagePowerMw;
            }
            const double runs =
                static_cast<double>(groups[group].size());
            oracle_mw /= runs;
            for (auto &p : power)
                p /= runs;

            std::printf("g%d(%2.0f%%)", group,
                        100.0 * trace::robotGroupIdleFraction(group));
            for (std::size_t c = 0; c < std::size(configs); ++c)
                std::printf(" %7.2f", power[c] / oracle_mw);
            std::printf(" %9.1f\n", oracle_mw);

            // Derived statistics.
            const double aa = power[0];
            const double sw = power[std::size(configs) - 1];
            const double pa = power[std::size(configs) - 2];
            const double potential = (aa - oracle_mw) / aa;
            min_potential = std::min(min_potential, potential);
            max_potential = std::max(max_potential, potential);
            const double share =
                metrics::savingsFraction(aa, sw, oracle_mw);
            min_sw_share = std::min(min_sw_share, share);
            max_sw_share = std::max(max_sw_share, share);
            pa_over_sw[app->name()] =
                std::max(pa_over_sw[app->name()], pa / sw);
            for (std::size_t c = 1; c <= 6; ++c) { // DC-* and Ba-10
                worst_dc_over_sw =
                    std::max(worst_dc_over_sw, power[c] / sw);
                best_dc_over_sw =
                    std::min(best_dc_over_sw, power[c] / sw);
            }
        }
    }

    bench::rule();
    std::printf("S5.1 savings potential (Oracle vs AA): %.1f%% - "
                "%.1f%%   (paper: 17.7%% - 94.9%%)\n",
                100.0 * min_potential, 100.0 * max_potential);
    std::printf("S5.2 Sidewinder share of available savings: %.1f%% - "
                "%.1f%%   (paper: 92.7%% - 95.7%%)\n",
                100.0 * min_sw_share, 100.0 * max_sw_share);
    std::printf("S5.3 PA/Sw power ratio: steps %.1fx, transitions "
                "%.1fx, headbutts %.1fx   (paper: ~1x, 6.1x, 4.7x)\n",
                pa_over_sw["steps"], pa_over_sw["transitions"],
                pa_over_sw["headbutts"]);
    std::printf("S5.4 DC/Ba over Sidewinder: %.1fx - %.1fx   (paper: "
                "2.4x - 7.5x in most cases)\n",
                best_dc_over_sw, worst_dc_over_sw);
    return 0;
}
