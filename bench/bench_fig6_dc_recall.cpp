/**
 * @file
 * Regenerates **Figure 6** of the paper: detection recall of Duty
 * Cycling on the 90%-idle robot runs (group 1) as the sleep interval
 * grows from 2 s to 30 s, for each accelerometer application.
 *
 * Expected shape (paper): recall decays with the interval; at a 10 s
 * interval, headbutt and transition recall drop below ~30% while
 * steps — spread across long walking bouts — degrade more slowly.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::robotSeconds();
    const double intervals[] = {2.0, 5.0, 10.0, 20.0, 30.0};

    // Rare events (headbutts) are sparse at 90% idle, so this figure
    // uses a larger pool of group-1-style runs than the corpus's nine
    // to keep the recall estimates stable.
    const int run_count = 24;
    std::printf("Figure 6: Duty Cycling recall at 90%% idle "
                "(%d runs, %.0f s each)%s\n",
                run_count, seconds,
                bench::fastMode() ? " [SW_FAST]" : "");

    std::vector<trace::Trace> pool;
    for (int run = 0; run < run_count; ++run) {
        trace::RobotRunConfig config;
        config.idleFraction = trace::robotGroupIdleFraction(1);
        config.durationSeconds = seconds;
        config.seed = 77000 + static_cast<std::uint64_t>(run);
        config.name = "fig6-run" + std::to_string(run);
        pool.push_back(generateRobotRun(config));
    }
    std::vector<const trace::Trace *> group1;
    for (const auto &t : pool)
        group1.push_back(&t);

    bench::rule();
    std::printf("%-13s", "sleep (s)");
    for (double interval : intervals)
        std::printf(" %7.0f", interval);
    std::printf("\n");
    bench::rule();

    for (const auto &app : apps::accelerometerApps()) {
        std::printf("%-13s", app->name().c_str());
        for (double interval : intervals) {
            // Recall over the pooled events of all group-1 runs.
            std::size_t tp = 0;
            std::size_t fn = 0;
            for (const trace::Trace *t : group1) {
                const auto r = bench::runStrategy(
                    *t, *app, sim::Strategy::DutyCycling, interval);
                tp += r.detection.truePositives;
                fn += r.detection.falseNegatives;
            }
            const double recall =
                tp + fn == 0
                    ? 1.0
                    : static_cast<double>(tp) /
                          static_cast<double>(tp + fn);
            std::printf(" %6.0f%%", 100.0 * recall);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("(paper: at a 10 s interval, headbutt and transition "
                "recall fall below ~30%%)\n");
    return 0;
}
