/**
 * @file
 * Regenerates **Figure 6** of the paper: detection recall of Duty
 * Cycling on the 90%-idle robot runs (group 1) as the sleep interval
 * grows from 2 s to 30 s, for each accelerometer application.
 *
 * Expected shape (paper): recall decays with the interval; at a 10 s
 * interval, headbutt and transition recall drop below ~30% while
 * steps — spread across long walking bouts — degrade more slowly.
 *
 * Both the 24-run trace pool and the app x interval x trace grid are
 * generated/simulated on the shared thread pool (sim::runSweep);
 * results are deterministic and identical to the old serial loops.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::robotSeconds();
    const std::vector<double> intervals = {2.0, 5.0, 10.0, 20.0,
                                           30.0};

    // Rare events (headbutts) are sparse at 90% idle, so this figure
    // uses a larger pool of group-1-style runs than the corpus's nine
    // to keep the recall estimates stable.
    const int run_count = 24;
    std::printf("Figure 6: Duty Cycling recall at 90%% idle "
                "(%d runs, %.0f s each, %zu threads)%s\n",
                run_count, seconds,
                support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    // Each run's generator is seeded independently, so the pool
    // parallelizes without changing a single sample.
    const std::vector<trace::Trace> pool =
        support::ThreadPool::shared().parallelMap(
            static_cast<std::size_t>(run_count), [&](std::size_t run) {
                trace::RobotRunConfig config;
                config.idleFraction = trace::robotGroupIdleFraction(1);
                config.durationSeconds = seconds;
                config.seed = 77000 + static_cast<std::uint64_t>(run);
                config.name = "fig6-run" + std::to_string(run);
                return generateRobotRun(config);
            });
    std::vector<const trace::Trace *> group1;
    for (const auto &t : pool)
        group1.push_back(&t);

    // App construction is hoisted out of the sweep: the same
    // Application instances serve every interval and trace cell.
    const auto apps = apps::accelerometerApps();
    std::vector<const apps::Application *> app_ptrs;
    for (const auto &app : apps)
        app_ptrs.push_back(app.get());

    std::vector<sim::SimConfig> configs;
    for (double interval : intervals) {
        sim::SimConfig config;
        config.strategy = sim::Strategy::DutyCycling;
        config.sleepIntervalSeconds = interval;
        configs.push_back(config);
    }

    // Row-major grid (app, interval, trace) matching the print order.
    const auto cells = sim::makeGrid(group1, app_ptrs, configs);
    const auto results = sim::runSweep(cells);

    bench::rule();
    std::printf("%-13s", "sleep (s)");
    for (double interval : intervals)
        std::printf(" %7.0f", interval);
    std::printf("\n");
    bench::rule();

    std::size_t cell = 0;
    for (const auto &app : apps) {
        std::printf("%-13s", app->name().c_str());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            // Recall over the pooled events of all group-1 runs.
            std::size_t tp = 0;
            std::size_t fn = 0;
            for (std::size_t t = 0; t < group1.size(); ++t) {
                const auto &r = results[cell++];
                tp += r.detection.truePositives;
                fn += r.detection.falseNegatives;
            }
            const double recall =
                tp + fn == 0
                    ? 1.0
                    : static_cast<double>(tp) /
                          static_cast<double>(tp + fn);
            std::printf(" %6.0f%%", 100.0 * recall);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("(paper: at a 10 s interval, headbutt and transition "
                "recall fall below ~30%%)\n");
    return 0;
}
