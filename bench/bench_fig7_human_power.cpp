/**
 * @file
 * Regenerates **Figure 7** of the paper: power relative to Oracle for
 * the step detector on traces from three human subjects (commute /
 * retail / office), with Duty Cycling and Batching shown at a 10 s
 * sleep interval.
 *
 * Expected shape (paper): all approaches except Duty Cycling keep
 * 100% recall (DC ~82%); Sidewinder achieves at least 91% of the
 * available power savings on every trace; the generic Predefined
 * Activity condition performs poorly because subjects perform many
 * motions that are not steps (vehicle vibration, object handling,
 * fidgeting) yet wake the device.
 *
 * The subject x strategy grid runs on the shared thread pool via
 * sim::runSweep with deterministic, serial-identical results.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "metrics/events.h"
#include "sim/calibrate.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/human_gen.h"

using namespace sidewinder;

namespace {

sim::SimConfig
cellConfig(sim::Strategy strategy, double sleep = 10.0,
           double threshold = 0.0)
{
    sim::SimConfig config;
    config.strategy = strategy;
    config.sleepIntervalSeconds = sleep;
    config.predefinedThreshold = threshold;
    return config;
}

} // namespace

int
main()
{
    const double seconds = bench::humanSeconds();
    std::printf("Figure 7: power relative to Oracle, human traces "
                "(3 subjects, %.0f s each, %zu threads)%s\n",
                seconds, support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    const auto corpus = trace::generateHumanCorpus(seconds, 20160402);
    const auto app = apps::makeStepsApp();

    const auto calibration = sim::calibratePredefinedThreshold(
        corpus, *app, {0.3, 0.5, 0.8, 1.2, 2.0});

    // Six strategy cells per subject, consumed in cell order below.
    std::vector<sim::SweepCell> cells;
    for (const auto &t : corpus) {
        cells.push_back(
            {&t, app.get(), cellConfig(sim::Strategy::Oracle)});
        cells.push_back(
            {&t, app.get(), cellConfig(sim::Strategy::AlwaysAwake)});
        cells.push_back(
            {&t, app.get(),
             cellConfig(sim::Strategy::DutyCycling, 10.0)});
        cells.push_back(
            {&t, app.get(),
             cellConfig(sim::Strategy::Batching, 10.0)});
        cells.push_back(
            {&t, app.get(),
             cellConfig(sim::Strategy::PredefinedActivity, 10.0,
                        calibration.threshold)});
        cells.push_back(
            {&t, app.get(), cellConfig(sim::Strategy::Sidewinder)});
    }
    const auto results = sim::runSweep(cells);

    bench::rule();
    std::printf("%-22s %7s %7s %7s %7s %7s %10s %9s\n", "subject",
                "AA", "DC-10", "Ba-10", "PA", "Sw", "Oracle mW",
                "Sw save");
    bench::rule();

    double min_share = 1.0;
    double dc_recall_sum = 0.0;
    std::size_t cell = 0;
    for (const auto &t : corpus) {
        const double oracle = results[cell++].averagePowerMw;
        const double aa = results[cell++].averagePowerMw;
        const auto &dc = results[cell++];
        const double ba = results[cell++].averagePowerMw;
        const double pa = results[cell++].averagePowerMw;
        const double sw = results[cell++].averagePowerMw;

        const double share =
            metrics::savingsFraction(aa, sw, oracle);
        min_share = std::min(min_share, share);
        dc_recall_sum += dc.recall;

        std::printf("%-22s %7.2f %7.2f %7.2f %7.2f %7.2f %10.1f "
                    "%8.1f%%\n",
                    t.name.c_str(), aa / oracle,
                    dc.averagePowerMw / oracle, ba / oracle,
                    pa / oracle, sw / oracle, oracle, 100.0 * share);
    }
    bench::rule();
    std::printf("Sidewinder minimum share of available savings: "
                "%.1f%%   (paper: >= 91%%)\n",
                100.0 * min_share);
    std::printf("Duty Cycling mean recall: %.0f%%   (paper: 82%%; all "
                "other approaches 100%%)\n",
                100.0 * dc_recall_sum /
                    static_cast<double>(corpus.size()));
    return 0;
}
