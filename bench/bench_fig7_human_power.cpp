/**
 * @file
 * Regenerates **Figure 7** of the paper: power relative to Oracle for
 * the step detector on traces from three human subjects (commute /
 * retail / office), with Duty Cycling and Batching shown at a 10 s
 * sleep interval.
 *
 * Expected shape (paper): all approaches except Duty Cycling keep
 * 100% recall (DC ~82%); Sidewinder achieves at least 91% of the
 * available power savings on every trace; the generic Predefined
 * Activity condition performs poorly because subjects perform many
 * motions that are not steps (vehicle vibration, object handling,
 * fidgeting) yet wake the device.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "metrics/events.h"
#include "sim/calibrate.h"
#include "trace/human_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::humanSeconds();
    std::printf("Figure 7: power relative to Oracle, human traces "
                "(3 subjects, %.0f s each)%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    const auto corpus = trace::generateHumanCorpus(seconds, 20160402);
    const auto app = apps::makeStepsApp();

    const auto calibration = sim::calibratePredefinedThreshold(
        corpus, *app, {0.3, 0.5, 0.8, 1.2, 2.0});

    bench::rule();
    std::printf("%-22s %7s %7s %7s %7s %7s %10s %9s\n", "subject",
                "AA", "DC-10", "Ba-10", "PA", "Sw", "Oracle mW",
                "Sw save");
    bench::rule();

    double min_share = 1.0;
    double dc_recall_sum = 0.0;
    for (const auto &t : corpus) {
        const double oracle =
            bench::runStrategy(t, *app, sim::Strategy::Oracle)
                .averagePowerMw;
        const double aa =
            bench::runStrategy(t, *app, sim::Strategy::AlwaysAwake)
                .averagePowerMw;
        const auto dc = bench::runStrategy(
            t, *app, sim::Strategy::DutyCycling, 10.0);
        const double ba =
            bench::runStrategy(t, *app, sim::Strategy::Batching, 10.0)
                .averagePowerMw;
        const double pa =
            bench::runStrategy(t, *app,
                               sim::Strategy::PredefinedActivity, 10.0,
                               calibration.threshold)
                .averagePowerMw;
        const double sw =
            bench::runStrategy(t, *app, sim::Strategy::Sidewinder)
                .averagePowerMw;

        const double share =
            metrics::savingsFraction(aa, sw, oracle);
        min_share = std::min(min_share, share);
        dc_recall_sum += dc.recall;

        std::printf("%-22s %7.2f %7.2f %7.2f %7.2f %7.2f %10.1f "
                    "%8.1f%%\n",
                    t.name.c_str(), aa / oracle,
                    dc.averagePowerMw / oracle, ba / oracle,
                    pa / oracle, sw / oracle, oracle, 100.0 * share);
    }
    bench::rule();
    std::printf("Sidewinder minimum share of available savings: "
                "%.1f%%   (paper: >= 91%%)\n",
                100.0 * min_share);
    std::printf("Duty Cycling mean recall: %.0f%%   (paper: 82%%; all "
                "other approaches 100%%)\n",
                100.0 * dc_recall_sum /
                    static_cast<double>(corpus.size()));
    return 0;
}
