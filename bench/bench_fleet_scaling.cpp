/**
 * @file
 * Fleet-scale throughput of the hub farm: sim::FleetRuntime sharding
 * 1k / 10k / 100k simulated devices across the shared thread pool,
 * every tenant admitted through plan-based marginal cost and fed
 * through Engine::pushBlock, with wake-up conditions interned in the
 * fleet-wide plan cache.
 *
 * Emits a JSON record (default BENCH_fleet.json, or argv[1]) with,
 * per population: build and ingest wall-clock, devices/sec and
 * samples/sec, resident memory per device, and the plan cache's exact
 * hit/miss accounting — the curve that shows install cost and plan
 * memory stop scaling with device count under a skewed app mix. A
 * `deterministic` flag proves a 1-thread and a 4-thread pool produce
 * field-for-field identical fleets.
 *
 * SW_FAST=1 drops the 100k population and halves the per-device
 * ingest; the cache-accounting and determinism checks are unaffected
 * (scripts/check_bench_regression.py gates on the 10k row).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/fleet.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point begin)
{
    const auto d = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(d).count();
}

/** Resident set size from /proc/self/statm, bytes (0 if unreadable). */
std::size_t
residentBytes()
{
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (!statm)
        return 0;
    unsigned long total = 0, resident = 0;
    const int got = std::fscanf(statm, "%lu %lu", &total, &resident);
    std::fclose(statm);
    if (got != 2)
        return 0;
    std::size_t page = 4096;
#ifdef __unix__
    const long sc = sysconf(_SC_PAGESIZE);
    if (sc > 0)
        page = static_cast<std::size_t>(sc);
#endif
    return static_cast<std::size_t>(resident) * page;
}

struct Row
{
    std::size_t devices = 0;
    std::size_t shards = 0;
    double buildMs = 0.0;
    double runMs = 0.0;
    double devicesPerSec = 0.0;
    double samplesPerSec = 0.0;
    std::size_t samplesIngested = 0;
    std::size_t wakeEvents = 0;
    double memoryBytesPerDevice = 0.0;
    double cacheHitRate = 0.0;
    std::size_t cacheMisses = 0;
    std::size_t cachePlans = 0;
    std::size_t cacheRetainedBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_fleet.json";

    const auto steps = apps::makeStepsApp();
    const auto transitions = apps::makeTransitionsApp();
    const auto headbutts = apps::makeHeadbuttsApp();
    // Skewed mix: most of the population runs the same condition, the
    // regime where cross-tenant plan sharing pays.
    const std::vector<sim::FleetAppMix> mix = {
        {steps.get(), 0.7},
        {transitions.get(), 0.2},
        {headbutts.get(), 0.1},
    };

    trace::RobotRunConfig rc;
    rc.idleFraction = 0.5;
    rc.durationSeconds = 60.0;
    rc.seed = 99001;
    rc.name = "fleet-trace";
    const trace::Trace run = trace::generateRobotRun(rc);

    sim::FleetConfig base;
    base.devicesPerShard = 64;
    base.blockSamples = 64;
    base.secondsPerDevice = bench::fastMode() ? 2.0 : 4.0;
    base.seed = 17;
    base.rawBufferSize = 64;

    std::vector<std::size_t> populations = {1000, 10000};
    if (!bench::fastMode())
        populations.push_back(100000);

    const std::size_t hw = support::ThreadPool::defaultThreadCount();
    std::printf("Fleet scaling: %zu-app skewed mix, %.0f s/device, "
                "pool %zu%s\n",
                mix.size(), base.secondsPerDevice, hw,
                bench::fastMode() ? " [SW_FAST]" : "");
    bench::rule();
    std::printf("%-9s %9s %9s %11s %12s %8s %9s\n", "devices",
                "build ms", "run ms", "dev/s", "samples/s", "KB/dev",
                "hit rate");
    bench::rule();

    std::vector<Row> rows;
    for (std::size_t population : populations) {
        sim::FleetConfig cfg = base;
        cfg.deviceCount = population;

        const std::size_t rss_before = residentBytes();
        sim::FleetRuntime fleet(cfg, mix, run);

        auto begin = std::chrono::steady_clock::now();
        fleet.build();
        const double build_ms = elapsedMs(begin);
        const std::size_t rss_after = residentBytes();

        begin = std::chrono::steady_clock::now();
        fleet.run();
        const double run_ms = elapsedMs(begin);

        const auto result = fleet.collect();

        Row row;
        row.devices = population;
        row.shards = result.shardCount;
        row.buildMs = build_ms;
        row.runMs = run_ms;
        row.devicesPerSec =
            static_cast<double>(population) / (run_ms / 1000.0);
        row.samplesPerSec =
            static_cast<double>(result.samplesIngested) /
            (run_ms / 1000.0);
        row.samplesIngested = result.samplesIngested;
        row.wakeEvents = result.wakeEvents;
        row.memoryBytesPerDevice =
            rss_after > rss_before
                ? static_cast<double>(rss_after - rss_before) /
                      static_cast<double>(population)
                : 0.0;
        row.cacheHitRate = result.cache.hitRate();
        row.cacheMisses = result.cache.misses;
        row.cachePlans = result.cache.planCount;
        row.cacheRetainedBytes = result.cache.retainedBytes;
        rows.push_back(row);

        std::printf("%-9zu %9.1f %9.1f %11.0f %12.0f %8.1f %9.4f\n",
                    population, build_ms, run_ms, row.devicesPerSec,
                    row.samplesPerSec,
                    row.memoryBytesPerDevice / 1024.0,
                    row.cacheHitRate);
    }
    bench::rule();

    // Determinism: the same fleet on a 1-thread and a 4-thread pool
    // must agree field-for-field (digest covers every device field),
    // and the cache counters must be exact, not just the results.
    bool deterministic = true;
    {
        sim::FleetConfig cfg = base;
        cfg.deviceCount = populations.front();
        support::ThreadPool one(1);
        support::ThreadPool four(4);

        sim::FleetRuntime serial(cfg, mix, run);
        serial.build(one);
        serial.run(one);
        const auto a = serial.collect();

        sim::FleetRuntime parallel(cfg, mix, run);
        parallel.build(four);
        parallel.run(four);
        const auto b = parallel.collect();

        deterministic = a.digest == b.digest &&
                        a.cache.misses == b.cache.misses &&
                        a.cache.globalHits == b.cache.globalHits &&
                        a.cache.localHits == b.cache.localHits;
        std::printf("serial vs parallel: %s\n",
                    deterministic ? "bit-identical" : "MISMATCH");
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"fleet_scaling\",\n"
                 "  \"apps\": %zu,\n"
                 "  \"seconds_per_device\": %.1f,\n"
                 "  \"fast_mode\": %s,\n",
                 mix.size(), base.secondsPerDevice,
                 bench::fastMode() ? "true" : "false");
    bench::writeThreadContext(out, "  ");
    std::fprintf(out,
                 ",\n"
                 "  \"deterministic\": %s,\n"
                 "  \"populations\": [\n",
                 deterministic ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            out,
            "    {\"devices\": %zu, \"shards\": %zu, "
            "\"build_ms\": %.3f, \"run_ms\": %.3f, "
            "\"devices_per_sec\": %.1f, \"samples_per_sec\": %.1f, "
            "\"samples_ingested\": %zu, \"wake_events\": %zu, "
            "\"memory_bytes_per_device\": %.1f, "
            "\"cache_hit_rate\": %.6f, \"cache_misses\": %zu, "
            "\"cache_plans\": %zu, \"cache_retained_bytes\": %zu, "
            "\"cores\": %zu}%s\n",
            r.devices, r.shards, r.buildMs, r.runMs, r.devicesPerSec,
            r.samplesPerSec, r.samplesIngested, r.wakeEvents,
            r.memoryBytesPerDevice, r.cacheHitRate, r.cacheMisses,
            r.cachePlans, r.cacheRetainedBytes, bench::hardwareCores(),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ]\n"
                 "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    return deterministic ? 0 : 1;
}
