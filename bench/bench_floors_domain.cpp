/**
 * @file
 * Third sensor domain study: the floor-change detector on synthetic
 * barometer traces. The paper evaluates accelerometer and microphone
 * applications; this harness shows the identical architecture —
 * generic algorithms, IL, capability model, simulator — carrying a
 * slow ambient sensor with no code changes, which is the portability
 * claim of Section 2.2 in action.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "metrics/events.h"
#include "sim/power_model.h"
#include "trace/baro_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::scaledSeconds(3600.0);
    std::printf("Barometer domain: floor-change detection over %.0f s "
                "office days%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    std::vector<trace::Trace> traces;
    for (int day = 1; day <= 3; ++day) {
        trace::BaroTraceConfig config;
        config.durationSeconds = seconds;
        config.rideFraction = 0.03;
        config.seed = 5000 + static_cast<std::uint64_t>(day);
        config.name = "baro-day" + std::to_string(day);
        traces.push_back(trace::generateBaroTrace(config));
    }

    const auto app = apps::makeFloorsApp();

    sim::SimConfig sw_config;
    sw_config.strategy = sim::Strategy::Sidewinder;

    bench::rule();
    std::printf("%-12s %7s %9s %7s %7s %8s %12s\n", "trace", "rides",
                "AA(mW)", "Sw(mW)", "Oracle", "recall",
                "battery(Sw)");
    bench::rule();

    for (const auto &t : traces) {
        const auto sw = sim::simulate(t, *app, sw_config);
        sim::SimConfig oracle_config = sw_config;
        oracle_config.strategy = sim::Strategy::Oracle;
        const auto oracle = sim::simulate(t, *app, oracle_config);

        std::printf("%-12s %7zu %9.1f %7.1f %7.1f %7.0f%% %10.0f h\n",
                    t.name.c_str(),
                    t.eventsOfType(app->eventType()).size(), 323.0,
                    sw.averagePowerMw, oracle.averagePowerMw,
                    100.0 * sw.recall,
                    sim::batteryLifeHours(sw.averagePowerMw));
    }
    bench::rule();
    std::printf("(always-awake barometer logging would last ~%.0f h "
                "on a Nexus 4 battery; Sidewinder extends that by an "
                "order of magnitude at full recall)\n",
                sim::batteryLifeHours(323.0));
    return 0;
}
