/**
 * @file
 * Hub-backend ablation (Sections 3.8 "Sizing" and 7 "FPGA-based
 * prototype"): for each application's wake-up condition, compare the
 * three hub backends — MSP430, LM4F120, and the modeled iCE40-class
 * FPGA — on feasibility and hub power, and show what the cheaper hub
 * does to the end-to-end Sidewinder power of Table 2 / Figure 5.
 */

#include <cstdio>

#include "apps/apps.h"
#include "bench_common.h"
#include "hub/engine.h"
#include "hub/fpga.h"
#include "hub/mcu.h"

using namespace sidewinder;

int
main()
{
    std::printf("Hub backend ablation: per-condition feasibility and "
                "hub power (mW)\n");
    bench::rule(78);
    std::printf("%-12s %12s | %8s %8s | %8s %8s %7s\n", "app",
                "cycle-units/s", "MSP430", "LM4F120", "FPGA", "cells",
                "fits");
    bench::rule(78);

    const auto fpga = hub::ice40Hub();
    for (const auto &app : apps::allApps()) {
        const auto program = app->wakeCondition().compile();
        const auto channels = app->channels();
        const double load =
            hub::Engine::estimateProgramCycles(program, channels);

        const bool msp_ok = hub::canRunInRealTime(hub::msp430(), load);
        const bool lm_ok = hub::canRunInRealTime(hub::lm4f120(), load);
        const auto placement =
            hub::planFpgaPlacement(program, channels, fpga);

        std::printf("%-12s %12.0f | %8s %8s | %8.2f %8zu %7s\n",
                    app->name().c_str(), load,
                    msp_ok ? "3.60" : "reject",
                    lm_ok ? "49.40" : "reject",
                    placement.totalPowerMw(fpga), placement.cellsUsed,
                    placement.fits ? "yes" : "no");
    }
    bench::rule(78);

    // What the FPGA would do to the siren detector's Table 2 row: the
    // LM4F120's 49.4 mW dominates Sidewinder's siren power; an FPGA
    // hub removes almost all of it.
    const auto siren = apps::makeSirenApp();
    const auto placement = hub::planFpgaPlacement(
        siren->wakeCondition().compile(), siren->channels(), fpga);
    const double lm_hub = hub::lm4f120().activePowerMw;
    const double fpga_hub = placement.totalPowerMw(fpga);
    std::printf("\nsiren detector hub power: LM4F120 %.1f mW -> FPGA "
                "%.2f mW (saves %.1f mW of the Table 2 Sidewinder "
                "row)\n",
                lm_hub, fpga_hub, lm_hub - fpga_hub);
    std::printf("reconfiguration cost per condition swap: %.0f ms of "
                "hub blindness\n",
                1000.0 * fpga.reconfigSeconds);
    return 0;
}
