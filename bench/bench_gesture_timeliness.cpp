/**
 * @file
 * Timeliness study (Section 5.4 of the paper): "the user of a
 * gesture recognition application would not be satisfied if the
 * application detects the performed gesture after a delay of more
 * than a couple of seconds. ... Additionally, the device often wakes
 * up to find out that no events occurred in the current batch."
 *
 * Runs the double-shake gesture detector on gesture-bearing human
 * traces and reports power, recall, and mean detection latency for
 * Sidewinder versus Batching at several intervals — batching can be
 * made as cheap as desired, but only by blowing the latency budget.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/simulator.h"
#include "trace/human_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::scaledSeconds(1200.0);
    std::printf("Gesture timeliness (Section 5.4): 3 subjects, "
                "%.0f s each%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    std::vector<trace::Trace> traces;
    const trace::HumanScenario scenarios[] = {
        trace::HumanScenario::Commute, trace::HumanScenario::Retail,
        trace::HumanScenario::Office};
    int subject = 1;
    for (auto scenario : scenarios) {
        trace::HumanTraceConfig config;
        config.scenario = scenario;
        config.durationSeconds = seconds;
        config.gestureFraction = 0.015;
        config.seed = 4000 + static_cast<std::uint64_t>(subject);
        config.name = "gesture-s" + std::to_string(subject);
        traces.push_back(generateHumanTrace(config));
        ++subject;
    }

    const auto app = apps::makeGestureApp();

    struct Row
    {
        const char *label;
        sim::Strategy strategy;
        double sleep;
    };
    const Row rows[] = {
        {"Sidewinder", sim::Strategy::Sidewinder, 0.0},
        {"Batching-2", sim::Strategy::Batching, 2.0},
        {"Batching-5", sim::Strategy::Batching, 5.0},
        {"Batching-10", sim::Strategy::Batching, 10.0},
        {"Batching-30", sim::Strategy::Batching, 30.0},
        {"DutyCycle-10", sim::Strategy::DutyCycling, 10.0},
    };

    bench::rule();
    std::printf("%-14s %10s %8s %12s %10s\n", "config", "power(mW)",
                "recall", "latency(s)", "<=2s?");
    bench::rule();

    for (const auto &row : rows) {
        double power = 0.0;
        double recall = 0.0;
        double latency = 0.0;
        for (const auto &t : traces) {
            const auto r = bench::runStrategy(t, *app, row.strategy,
                                              row.sleep);
            power += r.averagePowerMw;
            recall += r.recall;
            latency += r.meanDetectionLatencySeconds;
        }
        const double n = static_cast<double>(traces.size());
        power /= n;
        recall /= n;
        latency /= n;
        std::printf("%-14s %10.1f %7.0f%% %12.2f %10s\n", row.label,
                    power, 100.0 * recall, latency,
                    latency <= 2.0 ? "yes" : "NO");
    }
    bench::rule();
    std::printf("(paper: batching \"is not appropriate for "
                "applications with timeliness constraints\" — only "
                "Sidewinder meets the couple-of-seconds bound at low "
                "power)\n");
    return 0;
}
