/**
 * @file
 * Algorithm-set ablation for the Section 3.8 trade-off: "there is
 * also a trade-off between algorithm complexity and power savings.
 * More complex algorithms can reduce energy consumption by preventing
 * unnecessary wake-ups due to increased accuracy. On the other hand,
 * more complex algorithms have higher computational demands, which
 * require a larger and hungrier peripheral processor."
 *
 * Two siren wake-up conditions over the same traces:
 *  - the paper's FFT pipeline: precise (dominant frequency + pitch
 *    ratio + in-band checks) but needs the 49.4 mW LM4F120;
 *  - a Goertzel-probe pipeline: two cheap single-bin probes inside
 *    the siren band, coarse (wakes on every probe crossing and on
 *    pitched distractors near the probes) but fits the 3.6 mW MSP430.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "core/algorithm.h"
#include "core/pipeline.h"
#include "core/sensors.h"
#include "hub/engine.h"
#include "hub/mcu.h"
#include "metrics/events.h"
#include "sim/power_model.h"
#include "sim/timeline.h"
#include "support/thread_pool.h"
#include "trace/audio_gen.h"

using namespace sidewinder;

namespace {

/** The cheap alternative: Goertzel probes at 1100 and 1500 Hz. */
core::ProcessingPipeline
goertzelSirenCondition()
{
    using namespace core;
    ProcessingPipeline pipeline;
    for (double probe_hz : {1100.0, 1500.0}) {
        ProcessingBranch branch(channel::audio);
        branch.add(Window(64))
            .add(GoertzelRelative(probe_hz))
            .add(MinThreshold(0.35));
        pipeline.add(std::move(branch));
    }
    pipeline.add(Or());
    pipeline.add(Consecutive(3));
    return pipeline;
}

struct Outcome
{
    std::string mcu;
    double hubMw = 0.0;
    double powerMw = 0.0;
    double recall = 0.0;
    std::size_t triggers = 0;
};

/** Per-trace replay numbers, combined in trace order afterwards. */
struct TraceOutcome
{
    double recall = 0.0;
    double powerMw = 0.0;
    std::size_t triggers = 0;
};

Outcome
evaluate(const std::vector<trace::Trace> &traces,
         const il::Program &program, const apps::Application &app)
{
    Outcome outcome;
    const auto channels = app.channels();
    const auto mcu = hub::selectMcu(program, channels);
    outcome.mcu = mcu.name;
    outcome.hubMw = mcu.activePowerMw;

    // Each trace replay owns its engine; fan them across the pool and
    // reduce in trace order so the averages match the serial loop.
    const auto per_trace =
        support::ThreadPool::shared().parallelMap(
            traces.size(), [&](std::size_t ti) {
                const auto &t = traces[ti];
                hub::Engine engine(channels);
                engine.addCondition(1, program);
                std::vector<double> triggers;
                for (std::size_t i = 0; i < t.sampleCount(); ++i) {
                    engine.pushSamples({t.channels[0][i]},
                                       t.timeOf(i));
                    for (const auto &event :
                         engine.drainWakeEvents())
                        triggers.push_back(event.timestamp);
                }

                TraceOutcome out;
                out.triggers = triggers.size();
                out.recall =
                    metrics::matchEventsCoalesced(
                        t.eventsOfType(app.eventType()), triggers,
                        1.5)
                        .recall();

                sim::DeviceTimeline timeline(t.durationSeconds());
                for (double trig : triggers)
                    timeline.addAwakeInterval(trig + 1.0,
                                              trig + 2.0);
                out.powerMw = timeline
                                  .summarize(sim::nexus4WithHub(
                                      mcu.activePowerMw))
                                  .averagePowerMw;
                return out;
            });

    double recall_sum = 0.0;
    double power_sum = 0.0;
    for (const auto &per : per_trace) {
        outcome.triggers += per.triggers;
        recall_sum += per.recall;
        power_sum += per.powerMw;
    }
    outcome.recall = recall_sum / static_cast<double>(traces.size());
    outcome.powerMw = power_sum / static_cast<double>(traces.size());
    return outcome;
}

} // namespace

int
main()
{
    const double seconds = bench::audioSeconds();
    std::printf("Goertzel-vs-FFT siren condition (Section 3.8 "
                "complexity trade), 3 traces of %.0f s%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    const auto traces = trace::generateAudioCorpus(seconds, 20160402);
    const auto app = apps::makeSirenApp();

    const auto fft = evaluate(
        traces, app->wakeCondition().compile(), *app);
    const auto cheap = evaluate(
        traces, goertzelSirenCondition().compile(), *app);

    bench::rule();
    std::printf("%-22s %10s %8s %10s %8s %9s\n", "condition", "hub",
                "hub mW", "power mW", "recall", "triggers");
    bench::rule();
    std::printf("%-22s %10s %8.1f %10.1f %7.0f%% %9zu\n",
                "FFT pipeline (paper)", fft.mcu.c_str(), fft.hubMw,
                fft.powerMw, 100.0 * fft.recall, fft.triggers);
    std::printf("%-22s %10s %8.1f %10.1f %7.0f%% %9zu\n",
                "Goertzel probes", cheap.mcu.c_str(), cheap.hubMw,
                cheap.powerMw, 100.0 * cheap.recall, cheap.triggers);
    bench::rule();
    std::printf("(the precise condition buys fewer wake-ups at the "
                "cost of a hungrier hub; the coarse one inverts the "
                "trade — which side wins depends on how loud the "
                "environment is)\n");
    return 0;
}
