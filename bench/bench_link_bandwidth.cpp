/**
 * @file
 * Link feasibility study (Section 3.4 of the paper): "The serial
 * connection provides sufficient bandwidth to support low bit-rate
 * sensors, such as the accelerometer, a microphone or GPS. However,
 * extending the prototype to work with higher bit-rate sensors like
 * the camera would require a higher bandwidth data bus, such as I2C."
 *
 * Prints, for each sensor class, the wire demand of continuous
 * SensorBatch streaming and whether the prototype's UART (and two
 * faster buses) can sustain it.
 */

#include <cstdio>

#include "bench_common.h"
#include "transport/link.h"
#include "transport/messages.h"

using namespace sidewinder;

int
main()
{
    struct Sensor
    {
        const char *name;
        double samplesPerSecond;
    };
    const Sensor sensors[] = {
        {"GPS (10 Hz fixes)", 10.0},
        {"accelerometer axis (50 Hz)", 50.0},
        {"accelerometer 3-axis", 150.0},
        {"microphone (4 kHz)", 4000.0},
        {"microphone (16 kHz)", 16000.0},
        {"camera 320x240 @ 15 fps", 320.0 * 240.0 * 15.0},
        {"camera 640x480 @ 30 fps", 640.0 * 480.0 * 30.0},
    };

    struct Bus
    {
        const char *name;
        double usableBitsPerSecond;
    };
    const Bus buses[] = {
        // The prototype's UART at 115.2 kbaud, 8N1.
        {"UART-115k", transport::UartLink(115200.0)
                          .bandwidthBitsPerSecond()},
        // I2C fast mode.
        {"I2C-400k", 400000.0 * 0.8},
        // SPI at 10 MHz.
        {"SPI-10M", 10e6 * 0.95},
    };

    std::printf("Serial-link feasibility for continuous streaming "
                "(Section 3.4)\n");
    bench::rule(76);
    std::printf("%-28s %12s |", "sensor", "wire kbit/s");
    for (const auto &bus : buses)
        std::printf(" %9s", bus.name);
    std::printf("\n");
    bench::rule(76);

    for (const auto &sensor : sensors) {
        const double kbps =
            8.0 *
            static_cast<double>(transport::sensorBatchWireBytes(
                static_cast<std::size_t>(sensor.samplesPerSecond))) /
            1000.0;
        std::printf("%-28s %12.1f |", sensor.name, kbps);
        for (const auto &bus : buses)
            std::printf(" %9s",
                        transport::canStreamContinuously(
                            bus.usableBitsPerSecond,
                            sensor.samplesPerSecond)
                            ? "ok"
                            : "no");
        std::printf("\n");
    }
    bench::rule(76);
    std::printf("(paper: UART suffices for accelerometer / microphone "
                "/ GPS; the camera needs a faster bus)\n");
    return 0;
}
