/**
 * @file
 * Robustness sweep: how the accelerometer wake-up conditions' recall
 * degrades as sensor noise grows beyond the level the conditions were
 * calibrated for. The paper calibrates against one prototype's
 * sensors (Section 5); this harness quantifies the margin that
 * calibration has — the generality/accuracy trade of Section 3.8 made
 * concrete.
 *
 * The app x sigma grid (noisy-trace synthesis plus a full hub replay
 * per cell) runs on the shared thread pool; the noise injection is
 * seed-driven, so the recall table is identical to the serial run.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "hub/engine.h"
#include "metrics/events.h"
#include "support/thread_pool.h"
#include "trace/augment.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

namespace {

double
wakeRecall(const apps::Application &app, const trace::Trace &trace,
           double pad)
{
    hub::Engine engine(app.channels());
    engine.addCondition(1, app.wakeCondition().compile());
    std::vector<double> triggers;
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        engine.pushSamples({trace.channels[0][i], trace.channels[1][i],
                            trace.channels[2][i]},
                           trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    return metrics::matchEventsCoalesced(
               trace.eventsOfType(app.eventType()), triggers, pad)
        .recall();
}

} // namespace

int
main()
{
    const double seconds = bench::scaledSeconds(600.0);
    std::printf("Noise robustness: wake-condition recall vs added "
                "sensor noise (%.0f s busy run, %zu threads)%s\n",
                seconds, support::ThreadPool::shared().threadCount(),
                bench::fastMode() ? " [SW_FAST]" : "");

    trace::RobotRunConfig config;
    config.idleFraction = 0.1; // busy: plenty of events
    config.durationSeconds = seconds;
    config.seed = 20160402;
    const auto base = generateRobotRun(config);

    const double sigmas[] = {0.0, 0.1, 0.2, 0.4, 0.8, 1.6};
    const double pads[] = {0.4, 1.0, 0.5};

    const auto apps = apps::accelerometerApps();

    // One cell per (app, sigma): each worker synthesizes its own
    // noisy trace (seeded, deterministic) and replays the condition.
    const std::size_t cols = std::size(sigmas);
    const auto recalls = support::ThreadPool::shared().parallelMap(
        apps.size() * cols, [&](std::size_t cell) {
            const std::size_t a = cell / cols;
            const double sigma = sigmas[cell % cols];
            const auto noisy =
                trace::addGaussianNoise(base, sigma, 99);
            return wakeRecall(*apps[a], noisy, pads[a]);
        });

    bench::rule();
    std::printf("%-13s", "noise sigma");
    for (double s : sigmas)
        std::printf(" %7.1f", s);
    std::printf("\n");
    bench::rule();

    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::printf("%-13s", apps[a]->name().c_str());
        for (std::size_t s = 0; s < cols; ++s)
            std::printf(" %6.0f%%", 100.0 * recalls[a * cols + s]);
        std::printf("\n");
    }
    bench::rule();
    std::printf("(the conditions are calibrated for the prototype's "
                "~0.08 m/s^2 sensor noise; fixed acceptance bands "
                "erode once smoothed noise peaks reach the band "
                "edges)\n");
    return 0;
}
