/**
 * @file
 * Negotiated-congestion placement vs the frozen greedy ladder over a
 * mixed 10k-device fleet: every device draws 1–3 wake conditions from
 * the shipped-app corpus (seeded, so the population is reproducible)
 * and homes them across the platform executor space (MSP430 /
 * LM4F120 / iCE40-hub / AP-fallback) twice — once with
 * hub::Placer::place() and once with the placeGreedy() baseline.
 *
 * Emits a JSON record (default BENCH_placement.json, or argv[1]) with
 * the fleet-wide hub power under both placers, the energy ratio, the
 * count of rescued conditions (greedy rejected them or over-
 * provisioned them onto the LM4F120/AP when the negotiated placer
 * found a cheaper home), rip-up/convergence counters, placement
 * throughput, and a `deterministic` flag proving a 1-thread and a
 * 4-thread sweep produce bit-identical placements.
 *
 * scripts/check_bench_regression.py --placement gates: negotiated
 * fleet power must not exceed greedy, at least one condition must be
 * rescued, and the sweep must be deterministic.
 *
 * SW_FAST=1 shrinks the population; the gated ratios are
 * population-independent in practice.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "hub/placer.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/plan.h"
#include "support/rng.h"

using namespace sidewinder;

namespace {

/** FNV-1a fold of one 64-bit word. */
std::uint64_t
fnvU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
    }
    return h;
}

struct DeviceOutcome
{
    double negotiatedMw = 0.0;
    double greedyMw = 0.0;
    std::size_t conditions = 0;
    std::size_t rescued = 0;
    std::size_t unplacedNegotiated = 0;
    std::size_t unplacedGreedy = 0;
    std::size_t ripUps = 0;
    bool converged = true;
    std::uint64_t digest = 1469598103934665603ULL;
};

/** Draw and place one device's condition set (pure in device index). */
DeviceOutcome
placeDevice(std::size_t device,
            const std::vector<il::ExecutionPlan> &corpus,
            const std::vector<double> &weights)
{
    Rng rng(0x514c3ULL + device);
    hub::Placer placer(hub::platformExecutors());
    const long conditions = rng.uniformInt(1, 3);
    for (long c = 0; c < conditions; ++c)
        placer.addCondition(corpus[rng.weightedIndex(weights)]);

    const hub::PlacementResult negotiated = placer.place();
    const hub::PlacementResult greedy = placer.placeGreedy();

    DeviceOutcome out;
    out.conditions = static_cast<std::size_t>(conditions);
    out.negotiatedMw = negotiated.totalPowerMw;
    out.greedyMw = greedy.totalPowerMw;
    out.unplacedNegotiated = negotiated.unplaced;
    out.unplacedGreedy = greedy.unplaced;
    out.ripUps = negotiated.ripUps;
    out.converged = negotiated.converged;
    for (std::size_t c = 0; c < negotiated.decisions.size(); ++c) {
        const auto &n = negotiated.decisions[c];
        const auto &g = greedy.decisions[c];
        // Rescued: the ladder rejected the condition, or parked it on
        // the power-hungry LM4F120 / AP while negotiation found a
        // strictly cheaper home.
        const bool over_provisioned =
            g.placed() && n.placed() &&
            (g.executorName == "LM4F120" ||
             g.kind == hub::ExecutorKind::ApFallback) &&
            n.marginalPowerMw < g.marginalPowerMw;
        if ((!g.placed() && n.placed()) || over_provisioned)
            out.rescued += 1;
        out.digest = fnvU64(out.digest,
                            static_cast<std::uint64_t>(
                                n.executorIndex + 1));
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof n.marginalPowerMw);
        std::memcpy(&bits, &n.marginalPowerMw, sizeof bits);
        out.digest = fnvU64(out.digest, bits);
    }
    return out;
}

struct SweepResult
{
    double negotiatedMw = 0.0;
    double greedyMw = 0.0;
    std::size_t conditions = 0;
    std::size_t rescued = 0;
    std::size_t unplacedNegotiated = 0;
    std::size_t unplacedGreedy = 0;
    std::size_t ripUps = 0;
    std::size_t unconverged = 0;
    std::uint64_t digest = 1469598103934665603ULL;
};

/** Place the whole population on @p threads workers. Device order in
 *  the fold is fixed, so the digest is thread-count independent. */
SweepResult
sweep(std::size_t devices, std::size_t threads,
      const std::vector<il::ExecutionPlan> &corpus,
      const std::vector<double> &weights)
{
    std::vector<DeviceOutcome> outcomes(devices);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
            for (std::size_t d = t; d < devices; d += threads)
                outcomes[d] = placeDevice(d, corpus, weights);
        });
    for (auto &w : workers)
        w.join();

    SweepResult total;
    for (const auto &o : outcomes) {
        total.negotiatedMw += o.negotiatedMw;
        total.greedyMw += o.greedyMw;
        total.conditions += o.conditions;
        total.rescued += o.rescued;
        total.unplacedNegotiated += o.unplacedNegotiated;
        total.unplacedGreedy += o.unplacedGreedy;
        total.ripUps += o.ripUps;
        total.unconverged += o.converged ? 0 : 1;
        total.digest = fnvU64(total.digest, o.digest);
    }
    return total;
}

double
elapsedMs(std::chrono::steady_clock::time_point begin)
{
    const auto d = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_placement.json";
    const std::size_t devices = bench::fastMode() ? 2000 : 10000;

    // The shipped-app corpus, hub-optimized form. The skew mirrors
    // bench_fleet_scaling's accel mix, with an audio tail (siren /
    // music / phrase) that does not fit the MSP430 — the conditions
    // the greedy ladder over-provisions.
    std::vector<il::ExecutionPlan> corpus;
    std::vector<double> weights;
    std::vector<std::string> names;
    auto add = [&](std::unique_ptr<apps::Application> app, double w) {
        corpus.push_back(
            il::lower(il::optimize(app->wakeCondition().compile()),
                      app->channels()));
        weights.push_back(w);
        names.push_back(app->name());
    };
    add(apps::makeStepsApp(), 0.40);
    add(apps::makeTransitionsApp(), 0.15);
    add(apps::makeHeadbuttsApp(), 0.10);
    add(apps::makeGestureApp(), 0.10);
    add(apps::makeFloorsApp(), 0.05);
    add(apps::makeSirenApp(), 0.10);
    add(apps::makeMusicJournalApp(), 0.05);
    add(apps::makePhraseApp(), 0.05);

    std::printf("Placement: %zu devices, %zu-app corpus%s\n", devices,
                corpus.size(), bench::fastMode() ? " [SW_FAST]" : "");
    bench::rule();

    const auto begin = std::chrono::steady_clock::now();
    const SweepResult serial = sweep(devices, 1, corpus, weights);
    const double serial_ms = elapsedMs(begin);
    const SweepResult parallel = sweep(devices, 4, corpus, weights);
    const bool deterministic = serial.digest == parallel.digest;

    const double ratio =
        serial.greedyMw > 0.0 ? serial.negotiatedMw / serial.greedyMw
                              : 1.0;
    const double placements_per_sec =
        static_cast<double>(serial.conditions) / (serial_ms / 1000.0);

    std::printf("conditions           %zu\n", serial.conditions);
    std::printf("fleet power (greedy) %.1f mW\n", serial.greedyMw);
    std::printf("fleet power (negot.) %.1f mW\n", serial.negotiatedMw);
    std::printf("energy ratio         %.4f\n", ratio);
    std::printf("rescued conditions   %zu\n", serial.rescued);
    std::printf("unplaced greedy/neg. %zu / %zu\n",
                serial.unplacedGreedy, serial.unplacedNegotiated);
    std::printf("rip-ups              %zu (unconverged %zu)\n",
                serial.ripUps, serial.unconverged);
    std::printf("placements/s         %.0f\n", placements_per_sec);
    std::printf("1 vs 4 threads: %s\n",
                deterministic ? "bit-identical" : "MISMATCH");
    bench::rule();

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"placement\",\n"
                 "  \"devices\": %zu,\n"
                 "  \"conditions\": %zu,\n"
                 "  \"fast_mode\": %s,\n",
                 devices, serial.conditions,
                 bench::fastMode() ? "true" : "false");
    bench::writeThreadContext(out, "  ");
    std::fprintf(
        out,
        ",\n"
        "  \"fleet_power_mw_greedy\": %.6f,\n"
        "  \"fleet_power_mw_negotiated\": %.6f,\n"
        "  \"energy_ratio\": %.6f,\n"
        "  \"rescued_conditions\": %zu,\n"
        "  \"unplaced_greedy\": %zu,\n"
        "  \"unplaced_negotiated\": %zu,\n"
        "  \"rip_ups\": %zu,\n"
        "  \"unconverged\": %zu,\n"
        "  \"placements_per_sec\": %.1f,\n"
        "  \"deterministic\": %s\n"
        "}\n",
        serial.greedyMw, serial.negotiatedMw, ratio, serial.rescued,
        serial.unplacedGreedy, serial.unplacedNegotiated,
        serial.ripUps, serial.unconverged, placements_per_sec,
        deterministic ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    return deterministic ? 0 : 1;
}
