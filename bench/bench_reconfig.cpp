/**
 * @file
 * Live-reconfiguration accounting (docs/fault-model.md, "Live
 * reconfiguration"): what an OTA-style retune actually costs on the
 * 115200-baud wire and at the hub.
 *
 * Three experiments:
 *   1. Per-app wire cost of a one-threshold retune — the delta push
 *      (reused nodes as 8-byte hash references) against the full
 *      ConfigPush of the same plan. Deep audio plans amortize the
 *      fixed framing overhead; two-node plans cannot.
 *   2. A fault-free live update on the Figure-5 robot workload
 *      through the full supervised stack: the swap must commit on the
 *      first attempt and blind the hub for exactly one sample period.
 *   3. The same update under 1e-3/byte corruption confined to the
 *      update window (retries until committed), plus a direct
 *      hub-level measurement of the stalled-transfer rollback
 *      latency.
 *
 * Emits a JSON record (default BENCH_reconfig.json, or argv[1])
 * gated by scripts/check_bench_regression.py --reconfig: the delta
 * must cost at most half the full push on plans deep enough to
 * amortize framing, and the blind window at most one block of
 * samples.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "core/algorithm.h"
#include "core/pipeline.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/reconfig.h"
#include "hub/runtime.h"
#include "il/delta.h"
#include "il/lower.h"
#include "il/parser.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "trace/robot_gen.h"
#include "transport/link.h"
#include "transport/messages.h"

using namespace sidewinder;

namespace {

/**
 * Rebuild @p pipeline with exactly ONE threshold-like node retuned by
 * @p scale — the first `*hreshold*` stage, or the first localMaxima /
 * localMinima band (refractory count untouched). Everything else is
 * copied verbatim so its canonical shareKeys survive and the update
 * travels as a minimal delta.
 */
core::ProcessingPipeline
retuneOneThreshold(const core::ProcessingPipeline &pipeline, double scale)
{
    bool done = false;
    auto rebuild = [scale, &done](const core::Algorithm &algorithm) {
        if (done)
            return algorithm;
        std::vector<double> params = algorithm.params();
        if (algorithm.name().find("hreshold") != std::string::npos) {
            for (double &p : params)
                p *= scale;
        } else if (algorithm.name() == "localMaxima" ||
                   algorithm.name() == "localMinima") {
            for (std::size_t i = 0; i < params.size() && i < 2; ++i)
                params[i] *= scale;
        } else {
            return algorithm;
        }
        done = true;
        return core::Algorithm(algorithm.name(), std::move(params));
    };
    core::ProcessingPipeline retuned;
    for (const auto &branch : pipeline.branches()) {
        core::ProcessingBranch b(branch.channel());
        for (const auto &algorithm : branch.algorithms())
            b.add(rebuild(algorithm));
        retuned.add(std::move(b));
    }
    for (const auto &stage : pipeline.pipelineStages())
        retuned.add(rebuild(stage));
    return retuned;
}

struct AppRow
{
    std::string app;
    std::size_t planNodes = 0;
    hub::UpdateWireCost cost;
};

AppRow
wireCostRow(const apps::Application &app, double scale)
{
    const auto channels = app.channels();
    const auto old_plan =
        il::lower(app.wakeCondition().compile(), channels);
    std::unordered_set<std::string> live(old_plan.shareKeys.begin(),
                                         old_plan.shareKeys.end());
    const auto new_plan = il::lower(
        retuneOneThreshold(app.wakeCondition(), scale).compile(),
        channels);
    AppRow row;
    row.app = app.name();
    row.planNodes = new_plan.nodeCount();
    row.cost =
        hub::updateWireCost(new_plan, il::computeDelta(new_plan, live));
    return row;
}

/**
 * Hub-level rollback latency of a stalled transfer: a valid begin +
 * delta, then silence. Measured from the last update byte to the
 * RolledBack ack leaving the hub, polled at 10 ms like a real hub
 * main loop.
 */
double
measureStallRollbackSeconds()
{
    transport::LinkPair link(115200.0);
    hub::HubRuntime hub(link, core::accelerometerChannels(),
                        hub::msp430());

    const char *il_text = "ACC_X -> movingAvg(id=1, params={10});\n"
                          "ACC_Y -> movingAvg(id=2, params={10});\n"
                          "ACC_Z -> movingAvg(id=3, params={10});\n"
                          "1,2,3 -> vectorMagnitude(id=4);\n"
                          "4 -> minThreshold(id=5, params={15});\n"
                          "5 -> OUT;\n";
    link.phoneToHub().sendFrame(transport::encodeConfigPush({1, il_text}),
                                0.0);
    hub.pollLink(0.1);

    const auto plan = il::lower(il::parse(il_text),
                                core::accelerometerChannels());
    const auto delta = hub::buildDeltaPush(
        plan, il::computeDelta(plan, {}), /*epoch=*/1,
        /*condition_id=*/1);
    const double silence_start = 1.0;
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({1}),
                                silence_start);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta),
                                silence_start);

    double t = silence_start;
    while (t < silence_start + 60.0) {
        t += 0.01;
        hub.pollLink(t);
        if (hub.updatesRolledBack() > 0)
            return t - silence_start;
    }
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_reconfig.json";
    const double seconds = bench::robotSeconds();
    const double scale = 0.8;

    std::printf("Live reconfiguration: one-threshold retune (x%.1f), "
                "fig5 robot workload (%.0f s)%s\n",
                scale, seconds, bench::fastMode() ? " [SW_FAST]" : "");

    // 1. Delta vs full-push wire bytes per app.
    std::vector<std::unique_ptr<apps::Application>> fleet;
    fleet.push_back(apps::makeStepsApp());
    fleet.push_back(apps::makeTransitionsApp());
    fleet.push_back(apps::makeHeadbuttsApp());
    fleet.push_back(apps::makeSirenApp());
    fleet.push_back(apps::makeMusicJournalApp());
    fleet.push_back(apps::makePhraseApp());
    fleet.push_back(apps::makeGestureApp());
    fleet.push_back(apps::makeFloorsApp());

    std::vector<AppRow> rows;
    for (const auto &app : fleet)
        rows.push_back(wireCostRow(*app, scale));

    bench::rule();
    std::printf("%-16s %6s %8s %7s %11s %11s %7s\n", "app", "nodes",
                "shipped", "reused", "delta B", "full B", "ratio");
    bench::rule();
    for (const auto &row : rows)
        std::printf("%-16s %6zu %8zu %7zu %11zu %11zu %7.3f\n",
                    row.app.c_str(), row.planNodes,
                    row.cost.nodesShipped, row.cost.nodesReused,
                    row.cost.deltaBytes, row.cost.fullBytes,
                    static_cast<double>(row.cost.deltaBytes) /
                        static_cast<double>(row.cost.fullBytes));
    bench::rule();

    // 2. Fault-free live update through the supervised stack.
    trace::RobotRunConfig trace_config;
    trace_config.idleFraction = 0.5;
    trace_config.durationSeconds = seconds;
    trace_config.seed = 42;
    const auto trace = generateRobotRun(trace_config);
    const auto app = apps::makeStepsApp();
    const double sample_period = trace.timeOf(1) - trace.timeOf(0);

    sim::SimConfig clean;
    clean.strategy = sim::Strategy::Sidewinder;
    clean.faults.reconfigUpdates = {{seconds / 2.0, scale}};
    const auto live = sim::simulate(trace, *app, clean);

    std::printf("fault-free update: committed %zu, rolled back %zu, "
                "delta %zu B vs full %zu B, blind window %.1f ms "
                "(%.2f samples)\n",
                live.faults.updatesCommitted,
                live.faults.updatesRolledBack,
                live.faults.reconfigDeltaBytes,
                live.faults.reconfigFullBytes,
                live.faults.blindWindowSeconds * 1e3,
                live.faults.blindWindowSeconds / sample_period);

    // 3. The same update with corruption confined to the update
    // window, plus the stalled-transfer rollback latency.
    sim::SimConfig noisy = clean;
    noisy.faults.reconfigUpdates = {{seconds / 3.0, scale}};
    noisy.faults.updateCorruptionRate = 1e-3;
    const auto corrupted = sim::simulate(trace, *app, noisy);
    const double rollback_s = measureStallRollbackSeconds();

    std::printf("corrupted update window (1e-3/byte): committed %zu, "
                "rolled back %zu, %zu bytes corrupted\n",
                corrupted.faults.updatesCommitted,
                corrupted.faults.updatesRolledBack,
                corrupted.faults.bytesCorrupted);
    std::printf("stalled-transfer rollback latency: %.0f ms\n",
                rollback_s * 1e3);

    // The acceptance gate: a fault-free swap commits first try, ships
    // fewer bytes than a full push, and the corrupted run still lands
    // on the B plan.
    const bool ok =
        live.faults.updatesCommitted == 1 &&
        live.faults.updatesRolledBack == 0 &&
        live.faults.reconfigDeltaBytes <
            live.faults.reconfigFullBytes &&
        corrupted.faults.updatesCommitted >= 1 && rollback_s > 0.0;
    std::printf("acceptance gate: %s\n", ok ? "pass" : "FAIL");

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"reconfig_fig5_robot\",\n"
                 "  \"trace_seconds\": %.1f,\n"
                 "  \"fast_mode\": %s,\n"
                 "  \"baud\": 115200,\n"
                 "  \"threshold_scale\": %.2f,\n",
                 seconds, bench::fastMode() ? "true" : "false", scale);
    bench::writeThreadContext(out, "  ");
    std::fprintf(out, ",\n  \"apps\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &row = rows[i];
        std::fprintf(
            out,
            "    {\"app\": \"%s\", \"plan_nodes\": %zu, "
            "\"shipped\": %zu, \"reused\": %zu, "
            "\"delta_bytes\": %zu, \"full_bytes\": %zu, "
            "\"ratio\": %.4f}%s\n",
            row.app.c_str(), row.planNodes, row.cost.nodesShipped,
            row.cost.nodesReused, row.cost.deltaBytes,
            row.cost.fullBytes,
            static_cast<double>(row.cost.deltaBytes) /
                static_cast<double>(row.cost.fullBytes),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(
        out,
        "  ],\n"
        "  \"live_update\": {\"committed\": %zu, "
        "\"rolled_back\": %zu, \"delta_bytes\": %zu, "
        "\"full_bytes\": %zu, \"blind_window_ms\": %.4f, "
        "\"sample_period_ms\": %.4f, "
        "\"blind_window_samples\": %.4f},\n"
        "  \"corrupted_update\": {\"committed\": %zu, "
        "\"rolled_back\": %zu, \"bytes_corrupted\": %zu},\n"
        "  \"stall_rollback_ms\": %.1f\n"
        "}\n",
        live.faults.updatesCommitted, live.faults.updatesRolledBack,
        live.faults.reconfigDeltaBytes, live.faults.reconfigFullBytes,
        live.faults.blindWindowSeconds * 1e3, sample_period * 1e3,
        live.faults.blindWindowSeconds / sample_period,
        corrupted.faults.updatesCommitted,
        corrupted.faults.updatesRolledBack,
        corrupted.faults.bytesCorrupted, rollback_s * 1e3);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    return ok ? 0 : 1;
}
