/**
 * @file
 * Ablation for the pipeline-merging extension (Section 7 of the
 * paper: "When receiving multiple wake-up conditions, the sensor
 * manager can attempt to improve performance by combining the
 * pipelines that use common algorithms").
 *
 * Installs growing sets of wake-up conditions on one hub engine with
 * node sharing on and off and reports algorithm-instance counts and
 * estimated sustained compute load — the quantity the MCU capability
 * model budgets against.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "hub/engine.h"
#include "il/ast.h"

using namespace sidewinder;

namespace {

struct Workload
{
    const char *label;
    std::vector<il::Program> programs;
    std::vector<il::ChannelInfo> channels;
};

void
report(const Workload &workload)
{
    hub::Engine shared(workload.channels, true);
    hub::Engine unshared(workload.channels, false);
    int id = 1;
    for (const auto &program : workload.programs) {
        shared.addCondition(id, program);
        unshared.addCondition(id, program);
        ++id;
    }

    const double node_saving =
        1.0 - static_cast<double>(shared.nodeCount()) /
                  static_cast<double>(unshared.nodeCount());
    const double cycle_saving =
        1.0 - shared.estimatedCyclesPerSecond() /
                  unshared.estimatedCyclesPerSecond();

    std::printf("%-34s %7zu %9zu %7.0f%% %17.0f %7.0f%%\n",
                workload.label, shared.nodeCount(),
                unshared.nodeCount(), 100.0 * node_saving,
                shared.estimatedCyclesPerSecond(),
                100.0 * cycle_saving);
}

} // namespace

int
main()
{
    std::printf("Pipeline-merging ablation (Section 7 future work)\n");
    std::printf("%-34s %7s %9s %8s %17s %8s\n", "workload", "shared",
                "unshared", "nodes", "shared cycles/s", "cycles");

    const auto accel_channels = core::accelerometerChannels();
    const auto audio_channels = core::audioChannels();

    // All three accelerometer apps on one hub.
    {
        Workload w{"3 accel apps", {}, accel_channels};
        for (const auto &app : apps::accelerometerApps())
            w.programs.push_back(app->wakeCondition().compile());
        report(w);
    }

    // Accel apps plus the predefined-motion detector.
    {
        Workload w{"3 accel apps + significant motion", {},
                   accel_channels};
        for (const auto &app : apps::accelerometerApps())
            w.programs.push_back(app->wakeCondition().compile());
        w.programs.push_back(
            apps::significantMotionCondition().compile());
        report(w);
    }

    // The audio apps (music + phrase share their feature prefix;
    // the siren detector shares its window/FFT chain internally).
    {
        Workload w{"3 audio apps", {}, audio_channels};
        for (const auto &app : apps::audioApps())
            w.programs.push_back(app->wakeCondition().compile());
        report(w);
    }

    // Many instances of the same app with varied thresholds — the
    // best case for merging (only the admission stage differs).
    {
        Workload w{"8 step counters, varied bands", {},
                   accel_channels};
        for (int i = 0; i < 8; ++i) {
            core::ProcessingPipeline pipeline;
            core::ProcessingBranch branch(
                core::channel::accelerometerX);
            branch.add(core::MovingAverage(5));
            branch.add(core::LocalMaxima(2.5 + 0.1 * i, 4.5, 15));
            pipeline.add(std::move(branch));
            w.programs.push_back(pipeline.compile());
        }
        report(w);
    }
    return 0;
}
