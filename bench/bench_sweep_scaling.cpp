/**
 * @file
 * Wall-clock scaling of the parallel sweep engine on a Figure-6-style
 * grid: a pool of group-1 robot runs x the three accelerometer apps x
 * five Duty Cycling intervals, simulated serially and then on thread
 * pools of 1 / 2 / 4 / hardware_concurrency workers.
 *
 * Emits a JSON record (default BENCH_sweep.json, or argv[1]) with the
 * serial baseline, per-thread-count wall-clock and speedup, and a
 * `deterministic` flag proving every parallel run reproduced the
 * serial results field-for-field. scripts/run_benches.sh runs this
 * alongside bench_dsp_micro.
 *
 * SW_FAST=1 shrinks the traces ~6x; the speedup ratios remain valid
 * (every configuration simulates the identical cell grid).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point begin)
{
    const auto d = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(d).count();
}

/** Field-for-field equality of the results two sweeps produced. */
bool
identicalResults(const std::vector<sim::SimResult> &a,
                 const std::vector<sim::SimResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.configName != y.configName ||
            x.averagePowerMw != y.averagePowerMw ||
            x.hubTriggerCount != y.hubTriggerCount ||
            x.recall != y.recall || x.precision != y.precision ||
            x.detection.truePositives != y.detection.truePositives ||
            x.detection.falsePositives !=
                y.detection.falsePositives ||
            x.detection.falseNegatives !=
                y.detection.falseNegatives ||
            x.timeline.energyMj != y.timeline.energyMj ||
            x.timeline.wakeUps != y.timeline.wakeUps ||
            x.meanDetectionLatencySeconds !=
                y.meanDetectionLatencySeconds ||
            x.mcuName != y.mcuName || x.hubMw != y.hubMw)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sweep.json";
    const double seconds = bench::robotSeconds();
    const int run_count = bench::fastMode() ? 8 : 12;

    const std::size_t hw = support::ThreadPool::defaultThreadCount();
    std::printf("Sweep scaling: fig6-style grid (%d runs of %.0f s, "
                "hw threads %zu)%s\n",
                run_count, seconds, hw,
                bench::fastMode() ? " [SW_FAST]" : "");

    std::vector<trace::Trace> pool;
    for (int run = 0; run < run_count; ++run) {
        trace::RobotRunConfig config;
        config.idleFraction = trace::robotGroupIdleFraction(1);
        config.durationSeconds = seconds;
        config.seed = 88000 + static_cast<std::uint64_t>(run);
        config.name = "scaling-run" + std::to_string(run);
        pool.push_back(generateRobotRun(config));
    }
    std::vector<const trace::Trace *> trace_ptrs;
    for (const auto &t : pool)
        trace_ptrs.push_back(&t);

    const auto apps = apps::accelerometerApps();
    std::vector<const apps::Application *> app_ptrs;
    for (const auto &app : apps)
        app_ptrs.push_back(app.get());

    std::vector<sim::SimConfig> configs;
    for (double interval : {2.0, 5.0, 10.0, 20.0, 30.0}) {
        sim::SimConfig config;
        config.strategy = sim::Strategy::DutyCycling;
        config.sleepIntervalSeconds = interval;
        configs.push_back(config);
    }

    const auto cells = sim::makeGrid(trace_ptrs, app_ptrs, configs);
    std::printf("%zu cells\n", cells.size());
    bench::rule();
    std::printf("%-10s %12s %9s %14s\n", "threads", "wall ms",
                "speedup", "deterministic");
    bench::rule();

    // Untimed warm-up: populate the process-wide FFT plan cache and
    // grow the allocator pools so the serial baseline isn't charged
    // for one-time costs the parallel runs then inherit for free.
    (void)sim::runSweepSerial(cells);

    auto begin = std::chrono::steady_clock::now();
    const auto serial = sim::runSweepSerial(cells);
    const double serial_ms = elapsedMs(begin);
    std::printf("%-10s %12.1f %9s %14s\n", "serial", serial_ms, "1.00",
                "-");

    std::vector<std::size_t> counts = {1, 2, 4};
    if (hw > 4)
        counts.push_back(hw);

    struct Row
    {
        std::size_t threads;
        double ms;
        bool identical;
    };
    std::vector<Row> rows;
    bool all_identical = true;
    for (std::size_t threads : counts) {
        support::ThreadPool thread_pool(threads);
        begin = std::chrono::steady_clock::now();
        const auto parallel = sim::runSweep(cells, thread_pool);
        const double ms = elapsedMs(begin);
        const bool identical = identicalResults(serial, parallel);
        all_identical = all_identical && identical;
        rows.push_back({threads, ms, identical});
        std::printf("%-10zu %12.1f %8.2fx %14s\n", threads, ms,
                    serial_ms / ms, identical ? "yes" : "NO");
    }
    bench::rule();

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"sweep_scaling_fig6_grid\",\n"
                 "  \"cells\": %zu,\n"
                 "  \"runs\": %d,\n"
                 "  \"trace_seconds\": %.1f,\n"
                 "  \"fast_mode\": %s,\n"
                 "  \"hardware_concurrency\": %zu,\n",
                 cells.size(), run_count, seconds,
                 bench::fastMode() ? "true" : "false", hw);
    bench::writeThreadContext(out, "  ");
    std::fprintf(out,
                 ",\n"
                 "  \"serial_ms\": %.3f,\n"
                 "  \"parallel\": [\n",
                 serial_ms);
    // Each speedup row carries the machine's core count: on a
    // single-core container a speedup of ~1.0 at any thread count is
    // the expected ceiling, not a regression, and downstream tooling
    // must be able to tell those hosts apart.
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::fprintf(out,
                     "    {\"threads\": %zu, \"ms\": %.3f, "
                     "\"speedup\": %.3f, \"cores\": %zu, "
                     "\"deterministic\": %s}%s\n",
                     rows[i].threads, rows[i].ms,
                     serial_ms / rows[i].ms, bench::hardwareCores(),
                     rows[i].identical ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    std::fprintf(out,
                 "  ],\n"
                 "  \"deterministic\": %s\n"
                 "}\n",
                 all_identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    return all_identical ? 0 : 1;
}
