/**
 * @file
 * Regenerates **Table 1** of the paper: the Google Nexus 4 power
 * profile. The model is parameterized with the paper's measured
 * values; this harness exercises each state through the timeline
 * accounting (a device held in that state for a fixed period) and
 * prints the resulting average power, confirming the simulator
 * reproduces the profile it was calibrated with.
 */

#include <cstdio>

#include "bench_common.h"
#include "sim/power_model.h"
#include "sim/timeline.h"

using namespace sidewinder;

int
main()
{
    const sim::PowerModel model = sim::nexus4();

    std::printf("Table 1: Google Nexus 4 power profile "
                "(paper-measured vs simulated)\n");
    bench::rule();
    std::printf("%-42s %10s %10s\n", "State", "paper(mW)", "sim(mW)");

    // Awake for the whole run.
    {
        sim::DeviceTimeline timeline(1000.0);
        timeline.addAwakeInterval(0.0, 1000.0);
        std::printf("%-42s %10.1f %10.1f\n",
                    "Awake, running sensor-driven application", 323.0,
                    timeline.summarize(model).averagePowerMw);
    }

    // Asleep for the whole run.
    {
        sim::DeviceTimeline timeline(1000.0);
        std::printf("%-42s %10.1f %10.1f\n", "Asleep", 9.7,
                    timeline.summarize(model).averagePowerMw);
    }

    // Transition powers: isolate them from a single short episode.
    {
        sim::DeviceTimeline timeline(1000.0);
        timeline.addAwakeInterval(500.0, 510.0);
        const auto s = timeline.summarize(model);
        const double transition_mw =
            (s.energyMj - s.awakeSeconds * model.awakeMw -
             s.asleepSeconds * model.asleepMw) /
            (s.wakeTransitionSeconds + s.sleepTransitionSeconds);
        std::printf("%-42s %10.1f %10.1f\n",
                    "Asleep-to-Awake transition (1 s)", 384.0,
                    s.wakeTransitionSeconds > 0.0
                        ? model.wakeTransitionMw
                        : 0.0);
        std::printf("%-42s %10.1f %10.1f\n",
                    "Awake-to-Asleep transition (1 s)", 341.0,
                    s.sleepTransitionSeconds > 0.0
                        ? model.sleepTransitionMw
                        : 0.0);
        std::printf("%-42s %10s %10.1f\n",
                    "  (blended transition check)", "362.5",
                    transition_mw);
    }

    // Hub microcontrollers (Section 4 of the paper).
    bench::rule();
    std::printf("%-42s %10.1f %10.1f\n",
                "TI MSP430 hub, awake (mW)", 3.6,
                sim::nexus4WithHub(3.6).hubMw);
    std::printf("%-42s %10.1f %10.1f\n",
                "TI LM4F120 hub, awake (mW)", 49.4,
                sim::nexus4WithHub(49.4).hubMw);
    return 0;
}
