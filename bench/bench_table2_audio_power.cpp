/**
 * @file
 * Regenerates **Table 2** of the paper: average power consumption of
 * the audio applications (sirens, music journal, phrase detection)
 * under Oracle, Predefined Activity, and Sidewinder, averaged over
 * the three half-hour environment traces.
 *
 * Also prints the Section 5.2 / 5.3 derived statistics for audio:
 * Sidewinder's share of available savings (paper: 85-98%) and the
 * PA-vs-Sidewinder ratios (paper: PA 18% cheaper for sirens, 45% /
 * 60% more expensive for music / phrase).
 *
 * Paper values for reference:
 *     Oracle      16.8 / 27.2 / 14.7 mW
 *     Predefined  51.9 (all three)
 *     Sidewinder  63.1* / 32.3 / 35.6 mW   (* includes the LM4F120)
 */

#include <cstdio>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "metrics/events.h"
#include "sim/calibrate.h"
#include "trace/audio_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::audioSeconds();
    std::printf("Table 2: audio application power (mW), %d traces of "
                "%.0f s each%s\n",
                3, seconds, bench::fastMode() ? " [SW_FAST]" : "");

    const auto traces = trace::generateAudioCorpus(seconds, 20160402);
    const auto apps = apps::audioApps();

    struct Row
    {
        std::string app;
        double oracle = 0.0;
        double predefined = 0.0;
        double sidewinder = 0.0;
        double paThreshold = 0.0;
        double recall = 1.0;
        std::string mcu;
    };
    std::vector<Row> rows;

    for (const auto &app : apps) {
        Row row;
        row.app = app->name();

        // Calibrate the Predefined Activity sound threshold per the
        // paper's over-fitting-in-PA's-favor policy (Section 5.3).
        const auto calibration = sim::calibratePredefinedThreshold(
            traces, *app, {0.05, 0.07, 0.09, 0.12, 0.16, 0.22});
        row.paThreshold = calibration.threshold;

        std::vector<double> oracle_mw, pa_mw, sw_mw;
        for (const auto &t : traces) {
            oracle_mw.push_back(
                bench::runStrategy(t, *app, sim::Strategy::Oracle)
                    .averagePowerMw);
            pa_mw.push_back(
                bench::runStrategy(t, *app,
                                   sim::Strategy::PredefinedActivity,
                                   10.0, calibration.threshold)
                    .averagePowerMw);
            const auto sw =
                bench::runStrategy(t, *app, sim::Strategy::Sidewinder);
            sw_mw.push_back(sw.averagePowerMw);
            row.recall = std::min(row.recall, sw.recall);
            row.mcu = sw.mcuName;
        }
        row.oracle = bench::mean(oracle_mw);
        row.predefined = bench::mean(pa_mw);
        row.sidewinder = bench::mean(sw_mw);
        rows.push_back(row);
    }

    bench::rule();
    std::printf("%-22s %8s %8s %8s\n", "Wake-up Mechanism",
                rows[0].app.c_str(), rows[1].app.c_str(),
                rows[2].app.c_str());
    bench::rule();
    std::printf("%-22s %8.1f %8.1f %8.1f   (paper: 16.8/27.2/14.7)\n",
                "Oracle", rows[0].oracle, rows[1].oracle,
                rows[2].oracle);
    std::printf("%-22s %8.1f %8.1f %8.1f   (paper: 51.9 all)\n",
                "Predefined Activity", rows[0].predefined,
                rows[1].predefined, rows[2].predefined);
    std::printf("%-22s %8.1f %8.1f %8.1f   (paper: 63.1*/32.3/35.6)\n",
                "Sidewinder", rows[0].sidewinder, rows[1].sidewinder,
                rows[2].sidewinder);
    bench::rule();

    for (const auto &row : rows) {
        std::printf("%-8s hub=%-8s Sw recall=%.2f  savings vs ideal="
                    "%5.1f%%  PA/Sw power ratio=%.2f\n",
                    row.app.c_str(), row.mcu.c_str(), row.recall,
                    100.0 * metrics::savingsFraction(
                                323.0, row.sidewinder, row.oracle),
                    row.predefined / row.sidewinder);
    }
    std::printf("(paper: savings 85-98%%; PA 18%% cheaper for sirens, "
                "45%%/60%% costlier for music/phrase)\n");
    return 0;
}
