/**
 * @file
 * Whole-device study: all six of the paper's applications running at
 * once on one phone with two hubs (accelerometer on an MSP430, audio
 * on an LM4F120 — the Section 2.1.1 heterogeneous sizing). Reports
 * the combined power, per-application recall, and the battery-life
 * headline the paper's abstract promises ("reduce the average energy
 * required to run continuous sensing applications by up to 96%").
 */

#include <cstdio>

#include "apps/apps.h"
#include "bench_common.h"
#include "sim/concurrent.h"
#include "sim/power_model.h"
#include "trace/audio_gen.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main()
{
    const double seconds = bench::scaledSeconds(1800.0);
    std::printf("Whole device: all six applications, two hubs, "
                "%.0f s%s\n",
                seconds, bench::fastMode() ? " [SW_FAST]" : "");

    trace::RobotRunConfig accel_config;
    accel_config.idleFraction = 0.9; // a mostly-idle day
    accel_config.durationSeconds = seconds;
    accel_config.seed = 20160402;
    const auto accel = generateRobotRun(accel_config);

    trace::AudioTraceConfig audio_config;
    audio_config.environment = trace::AudioEnvironment::Office;
    audio_config.durationSeconds = seconds;
    audio_config.seed = 20160402;
    const auto audio = generateAudioTrace(audio_config);

    const auto accel_apps = apps::accelerometerApps();
    const auto audio_apps = apps::audioApps();

    const auto device = sim::simulateDevice(
        {sim::DeviceDomain{&accel, &accel_apps},
         sim::DeviceDomain{&audio, &audio_apps}});

    bench::rule();
    std::printf("%-14s %10s %8s %10s\n", "domain / app", "hub",
                "recall", "triggers");
    bench::rule();
    const char *domain_names[] = {"accelerometer", "audio"};
    for (std::size_t d = 0; d < device.domains.size(); ++d) {
        const auto &domain = device.domains[d];
        std::printf("%-14s %10s %8s %10s   (%zu shared nodes)\n",
                    domain_names[d], domain.mcuName.c_str(), "", "",
                    domain.hubNodeCount);
        for (const auto &app : domain.apps)
            std::printf("  %-12s %10s %7.0f%% %10zu\n",
                        app.appName.c_str(), "", 100.0 * app.recall,
                        app.hubTriggerCount);
    }
    bench::rule();

    const double aa_mw = 323.0;
    std::printf("device power: %.1f mW (hubs %.1f mW); Always Awake "
                "%.1f mW -> %.1f%% energy saved\n",
                device.averagePowerMw, device.totalHubMw, aa_mw,
                100.0 * (1.0 - device.averagePowerMw / aa_mw));
    std::printf("battery life: %.0f h vs %.0f h always awake\n",
                sim::batteryLifeHours(device.averagePowerMw),
                sim::batteryLifeHours(aa_mw));
    std::printf("(paper abstract: \"reduce the average energy ... by "
                "up to 96%%\" for single applications; running all "
                "six at once still saves the large majority)\n");
    return 0;
}
