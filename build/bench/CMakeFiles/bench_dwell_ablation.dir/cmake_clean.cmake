file(REMOVE_RECURSE
  "CMakeFiles/bench_dwell_ablation.dir/bench_dwell_ablation.cpp.o"
  "CMakeFiles/bench_dwell_ablation.dir/bench_dwell_ablation.cpp.o.d"
  "bench_dwell_ablation"
  "bench_dwell_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dwell_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
