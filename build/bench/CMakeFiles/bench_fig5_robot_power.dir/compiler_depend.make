# Empty compiler generated dependencies file for bench_fig5_robot_power.
# This may be replaced when dependencies are built.
