file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dc_recall.dir/bench_fig6_dc_recall.cpp.o"
  "CMakeFiles/bench_fig6_dc_recall.dir/bench_fig6_dc_recall.cpp.o.d"
  "bench_fig6_dc_recall"
  "bench_fig6_dc_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dc_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
