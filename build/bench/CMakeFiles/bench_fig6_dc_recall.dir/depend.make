# Empty dependencies file for bench_fig6_dc_recall.
# This may be replaced when dependencies are built.
