file(REMOVE_RECURSE
  "CMakeFiles/bench_floors_domain.dir/bench_floors_domain.cpp.o"
  "CMakeFiles/bench_floors_domain.dir/bench_floors_domain.cpp.o.d"
  "bench_floors_domain"
  "bench_floors_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floors_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
