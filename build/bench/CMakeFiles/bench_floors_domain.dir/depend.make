# Empty dependencies file for bench_floors_domain.
# This may be replaced when dependencies are built.
