file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_ablation.dir/bench_fpga_ablation.cpp.o"
  "CMakeFiles/bench_fpga_ablation.dir/bench_fpga_ablation.cpp.o.d"
  "bench_fpga_ablation"
  "bench_fpga_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
