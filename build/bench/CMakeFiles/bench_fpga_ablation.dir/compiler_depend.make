# Empty compiler generated dependencies file for bench_fpga_ablation.
# This may be replaced when dependencies are built.
