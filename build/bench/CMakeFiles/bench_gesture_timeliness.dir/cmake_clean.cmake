file(REMOVE_RECURSE
  "CMakeFiles/bench_gesture_timeliness.dir/bench_gesture_timeliness.cpp.o"
  "CMakeFiles/bench_gesture_timeliness.dir/bench_gesture_timeliness.cpp.o.d"
  "bench_gesture_timeliness"
  "bench_gesture_timeliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gesture_timeliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
