file(REMOVE_RECURSE
  "CMakeFiles/bench_goertzel_ablation.dir/bench_goertzel_ablation.cpp.o"
  "CMakeFiles/bench_goertzel_ablation.dir/bench_goertzel_ablation.cpp.o.d"
  "bench_goertzel_ablation"
  "bench_goertzel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_goertzel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
