# Empty compiler generated dependencies file for bench_goertzel_ablation.
# This may be replaced when dependencies are built.
