file(REMOVE_RECURSE
  "CMakeFiles/bench_link_bandwidth.dir/bench_link_bandwidth.cpp.o"
  "CMakeFiles/bench_link_bandwidth.dir/bench_link_bandwidth.cpp.o.d"
  "bench_link_bandwidth"
  "bench_link_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
