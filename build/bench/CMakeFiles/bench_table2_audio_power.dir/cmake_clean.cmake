file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_audio_power.dir/bench_table2_audio_power.cpp.o"
  "CMakeFiles/bench_table2_audio_power.dir/bench_table2_audio_power.cpp.o.d"
  "bench_table2_audio_power"
  "bench_table2_audio_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_audio_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
