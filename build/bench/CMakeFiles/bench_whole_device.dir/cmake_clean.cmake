file(REMOVE_RECURSE
  "CMakeFiles/bench_whole_device.dir/bench_whole_device.cpp.o"
  "CMakeFiles/bench_whole_device.dir/bench_whole_device.cpp.o.d"
  "bench_whole_device"
  "bench_whole_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whole_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
