# Empty compiler generated dependencies file for bench_whole_device.
# This may be replaced when dependencies are built.
