file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pedometer.dir/adaptive_pedometer.cpp.o"
  "CMakeFiles/adaptive_pedometer.dir/adaptive_pedometer.cpp.o.d"
  "adaptive_pedometer"
  "adaptive_pedometer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pedometer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
