# Empty dependencies file for adaptive_pedometer.
# This may be replaced when dependencies are built.
