file(REMOVE_RECURSE
  "CMakeFiles/music_journal.dir/music_journal.cpp.o"
  "CMakeFiles/music_journal.dir/music_journal.cpp.o.d"
  "music_journal"
  "music_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
