# Empty compiler generated dependencies file for music_journal.
# This may be replaced when dependencies are built.
