file(REMOVE_RECURSE
  "CMakeFiles/siren_monitor.dir/siren_monitor.cpp.o"
  "CMakeFiles/siren_monitor.dir/siren_monitor.cpp.o.d"
  "siren_monitor"
  "siren_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siren_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
