# Empty compiler generated dependencies file for siren_monitor.
# This may be replaced when dependencies are built.
