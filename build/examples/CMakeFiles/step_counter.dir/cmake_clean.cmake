file(REMOVE_RECURSE
  "CMakeFiles/step_counter.dir/step_counter.cpp.o"
  "CMakeFiles/step_counter.dir/step_counter.cpp.o.d"
  "step_counter"
  "step_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
