# Empty compiler generated dependencies file for step_counter.
# This may be replaced when dependencies are built.
