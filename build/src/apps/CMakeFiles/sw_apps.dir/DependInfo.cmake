
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cc" "src/apps/CMakeFiles/sw_apps.dir/apps.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/apps.cc.o.d"
  "/root/repo/src/apps/audio_features.cc" "src/apps/CMakeFiles/sw_apps.dir/audio_features.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/audio_features.cc.o.d"
  "/root/repo/src/apps/floors.cc" "src/apps/CMakeFiles/sw_apps.dir/floors.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/floors.cc.o.d"
  "/root/repo/src/apps/gesture.cc" "src/apps/CMakeFiles/sw_apps.dir/gesture.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/gesture.cc.o.d"
  "/root/repo/src/apps/headbutts.cc" "src/apps/CMakeFiles/sw_apps.dir/headbutts.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/headbutts.cc.o.d"
  "/root/repo/src/apps/music_journal.cc" "src/apps/CMakeFiles/sw_apps.dir/music_journal.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/music_journal.cc.o.d"
  "/root/repo/src/apps/phrase.cc" "src/apps/CMakeFiles/sw_apps.dir/phrase.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/phrase.cc.o.d"
  "/root/repo/src/apps/predefined.cc" "src/apps/CMakeFiles/sw_apps.dir/predefined.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/predefined.cc.o.d"
  "/root/repo/src/apps/siren.cc" "src/apps/CMakeFiles/sw_apps.dir/siren.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/siren.cc.o.d"
  "/root/repo/src/apps/steps.cc" "src/apps/CMakeFiles/sw_apps.dir/steps.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/steps.cc.o.d"
  "/root/repo/src/apps/transitions.cc" "src/apps/CMakeFiles/sw_apps.dir/transitions.cc.o" "gcc" "src/apps/CMakeFiles/sw_apps.dir/transitions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sw_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sw_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  "/root/repo/build/src/il/CMakeFiles/sw_il.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sw_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
