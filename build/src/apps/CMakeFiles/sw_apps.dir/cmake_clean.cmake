file(REMOVE_RECURSE
  "CMakeFiles/sw_apps.dir/apps.cc.o"
  "CMakeFiles/sw_apps.dir/apps.cc.o.d"
  "CMakeFiles/sw_apps.dir/audio_features.cc.o"
  "CMakeFiles/sw_apps.dir/audio_features.cc.o.d"
  "CMakeFiles/sw_apps.dir/floors.cc.o"
  "CMakeFiles/sw_apps.dir/floors.cc.o.d"
  "CMakeFiles/sw_apps.dir/gesture.cc.o"
  "CMakeFiles/sw_apps.dir/gesture.cc.o.d"
  "CMakeFiles/sw_apps.dir/headbutts.cc.o"
  "CMakeFiles/sw_apps.dir/headbutts.cc.o.d"
  "CMakeFiles/sw_apps.dir/music_journal.cc.o"
  "CMakeFiles/sw_apps.dir/music_journal.cc.o.d"
  "CMakeFiles/sw_apps.dir/phrase.cc.o"
  "CMakeFiles/sw_apps.dir/phrase.cc.o.d"
  "CMakeFiles/sw_apps.dir/predefined.cc.o"
  "CMakeFiles/sw_apps.dir/predefined.cc.o.d"
  "CMakeFiles/sw_apps.dir/siren.cc.o"
  "CMakeFiles/sw_apps.dir/siren.cc.o.d"
  "CMakeFiles/sw_apps.dir/steps.cc.o"
  "CMakeFiles/sw_apps.dir/steps.cc.o.d"
  "CMakeFiles/sw_apps.dir/transitions.cc.o"
  "CMakeFiles/sw_apps.dir/transitions.cc.o.d"
  "libsw_apps.a"
  "libsw_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
