file(REMOVE_RECURSE
  "libsw_apps.a"
)
