# Empty compiler generated dependencies file for sw_apps.
# This may be replaced when dependencies are built.
