
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm.cc" "src/core/CMakeFiles/sw_core.dir/algorithm.cc.o" "gcc" "src/core/CMakeFiles/sw_core.dir/algorithm.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/sw_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/sw_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/sensor_manager.cc" "src/core/CMakeFiles/sw_core.dir/sensor_manager.cc.o" "gcc" "src/core/CMakeFiles/sw_core.dir/sensor_manager.cc.o.d"
  "/root/repo/src/core/sensors.cc" "src/core/CMakeFiles/sw_core.dir/sensors.cc.o" "gcc" "src/core/CMakeFiles/sw_core.dir/sensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/il/CMakeFiles/sw_il.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
