file(REMOVE_RECURSE
  "CMakeFiles/sw_core.dir/algorithm.cc.o"
  "CMakeFiles/sw_core.dir/algorithm.cc.o.d"
  "CMakeFiles/sw_core.dir/pipeline.cc.o"
  "CMakeFiles/sw_core.dir/pipeline.cc.o.d"
  "CMakeFiles/sw_core.dir/sensor_manager.cc.o"
  "CMakeFiles/sw_core.dir/sensor_manager.cc.o.d"
  "CMakeFiles/sw_core.dir/sensors.cc.o"
  "CMakeFiles/sw_core.dir/sensors.cc.o.d"
  "libsw_core.a"
  "libsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
