file(REMOVE_RECURSE
  "CMakeFiles/sw_dsp.dir/features.cc.o"
  "CMakeFiles/sw_dsp.dir/features.cc.o.d"
  "CMakeFiles/sw_dsp.dir/fft.cc.o"
  "CMakeFiles/sw_dsp.dir/fft.cc.o.d"
  "CMakeFiles/sw_dsp.dir/filters.cc.o"
  "CMakeFiles/sw_dsp.dir/filters.cc.o.d"
  "CMakeFiles/sw_dsp.dir/goertzel.cc.o"
  "CMakeFiles/sw_dsp.dir/goertzel.cc.o.d"
  "CMakeFiles/sw_dsp.dir/peaks.cc.o"
  "CMakeFiles/sw_dsp.dir/peaks.cc.o.d"
  "CMakeFiles/sw_dsp.dir/threshold.cc.o"
  "CMakeFiles/sw_dsp.dir/threshold.cc.o.d"
  "CMakeFiles/sw_dsp.dir/window.cc.o"
  "CMakeFiles/sw_dsp.dir/window.cc.o.d"
  "libsw_dsp.a"
  "libsw_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
