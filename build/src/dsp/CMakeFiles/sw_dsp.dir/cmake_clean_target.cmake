file(REMOVE_RECURSE
  "libsw_dsp.a"
)
