# Empty compiler generated dependencies file for sw_dsp.
# This may be replaced when dependencies are built.
