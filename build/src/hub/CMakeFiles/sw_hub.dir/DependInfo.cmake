
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hub/autotune.cc" "src/hub/CMakeFiles/sw_hub.dir/autotune.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/autotune.cc.o.d"
  "/root/repo/src/hub/engine.cc" "src/hub/CMakeFiles/sw_hub.dir/engine.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/engine.cc.o.d"
  "/root/repo/src/hub/fpga.cc" "src/hub/CMakeFiles/sw_hub.dir/fpga.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/fpga.cc.o.d"
  "/root/repo/src/hub/kernels.cc" "src/hub/CMakeFiles/sw_hub.dir/kernels.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/kernels.cc.o.d"
  "/root/repo/src/hub/mcu.cc" "src/hub/CMakeFiles/sw_hub.dir/mcu.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/mcu.cc.o.d"
  "/root/repo/src/hub/runtime.cc" "src/hub/CMakeFiles/sw_hub.dir/runtime.cc.o" "gcc" "src/hub/CMakeFiles/sw_hub.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/sw_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/il/CMakeFiles/sw_il.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
