file(REMOVE_RECURSE
  "CMakeFiles/sw_hub.dir/autotune.cc.o"
  "CMakeFiles/sw_hub.dir/autotune.cc.o.d"
  "CMakeFiles/sw_hub.dir/engine.cc.o"
  "CMakeFiles/sw_hub.dir/engine.cc.o.d"
  "CMakeFiles/sw_hub.dir/fpga.cc.o"
  "CMakeFiles/sw_hub.dir/fpga.cc.o.d"
  "CMakeFiles/sw_hub.dir/kernels.cc.o"
  "CMakeFiles/sw_hub.dir/kernels.cc.o.d"
  "CMakeFiles/sw_hub.dir/mcu.cc.o"
  "CMakeFiles/sw_hub.dir/mcu.cc.o.d"
  "CMakeFiles/sw_hub.dir/runtime.cc.o"
  "CMakeFiles/sw_hub.dir/runtime.cc.o.d"
  "libsw_hub.a"
  "libsw_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
