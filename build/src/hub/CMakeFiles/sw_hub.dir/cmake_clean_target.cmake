file(REMOVE_RECURSE
  "libsw_hub.a"
)
