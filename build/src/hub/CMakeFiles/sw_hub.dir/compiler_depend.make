# Empty compiler generated dependencies file for sw_hub.
# This may be replaced when dependencies are built.
