
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/il/algorithm_info.cc" "src/il/CMakeFiles/sw_il.dir/algorithm_info.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/algorithm_info.cc.o.d"
  "/root/repo/src/il/ast.cc" "src/il/CMakeFiles/sw_il.dir/ast.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/ast.cc.o.d"
  "/root/repo/src/il/dot.cc" "src/il/CMakeFiles/sw_il.dir/dot.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/dot.cc.o.d"
  "/root/repo/src/il/lexer.cc" "src/il/CMakeFiles/sw_il.dir/lexer.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/lexer.cc.o.d"
  "/root/repo/src/il/optimize.cc" "src/il/CMakeFiles/sw_il.dir/optimize.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/optimize.cc.o.d"
  "/root/repo/src/il/parser.cc" "src/il/CMakeFiles/sw_il.dir/parser.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/parser.cc.o.d"
  "/root/repo/src/il/validate.cc" "src/il/CMakeFiles/sw_il.dir/validate.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/validate.cc.o.d"
  "/root/repo/src/il/writer.cc" "src/il/CMakeFiles/sw_il.dir/writer.cc.o" "gcc" "src/il/CMakeFiles/sw_il.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
