file(REMOVE_RECURSE
  "CMakeFiles/sw_il.dir/algorithm_info.cc.o"
  "CMakeFiles/sw_il.dir/algorithm_info.cc.o.d"
  "CMakeFiles/sw_il.dir/ast.cc.o"
  "CMakeFiles/sw_il.dir/ast.cc.o.d"
  "CMakeFiles/sw_il.dir/dot.cc.o"
  "CMakeFiles/sw_il.dir/dot.cc.o.d"
  "CMakeFiles/sw_il.dir/lexer.cc.o"
  "CMakeFiles/sw_il.dir/lexer.cc.o.d"
  "CMakeFiles/sw_il.dir/optimize.cc.o"
  "CMakeFiles/sw_il.dir/optimize.cc.o.d"
  "CMakeFiles/sw_il.dir/parser.cc.o"
  "CMakeFiles/sw_il.dir/parser.cc.o.d"
  "CMakeFiles/sw_il.dir/validate.cc.o"
  "CMakeFiles/sw_il.dir/validate.cc.o.d"
  "CMakeFiles/sw_il.dir/writer.cc.o"
  "CMakeFiles/sw_il.dir/writer.cc.o.d"
  "libsw_il.a"
  "libsw_il.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_il.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
