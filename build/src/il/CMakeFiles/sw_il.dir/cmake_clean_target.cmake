file(REMOVE_RECURSE
  "libsw_il.a"
)
