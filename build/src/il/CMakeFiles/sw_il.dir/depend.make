# Empty dependencies file for sw_il.
# This may be replaced when dependencies are built.
