file(REMOVE_RECURSE
  "CMakeFiles/sw_metrics.dir/events.cc.o"
  "CMakeFiles/sw_metrics.dir/events.cc.o.d"
  "libsw_metrics.a"
  "libsw_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
