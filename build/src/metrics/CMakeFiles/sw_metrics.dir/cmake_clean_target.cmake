file(REMOVE_RECURSE
  "libsw_metrics.a"
)
