# Empty compiler generated dependencies file for sw_metrics.
# This may be replaced when dependencies are built.
