
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/calibrate.cc" "src/sim/CMakeFiles/sw_sim.dir/calibrate.cc.o" "gcc" "src/sim/CMakeFiles/sw_sim.dir/calibrate.cc.o.d"
  "/root/repo/src/sim/concurrent.cc" "src/sim/CMakeFiles/sw_sim.dir/concurrent.cc.o" "gcc" "src/sim/CMakeFiles/sw_sim.dir/concurrent.cc.o.d"
  "/root/repo/src/sim/power_model.cc" "src/sim/CMakeFiles/sw_sim.dir/power_model.cc.o" "gcc" "src/sim/CMakeFiles/sw_sim.dir/power_model.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/sw_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/sw_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/sim/CMakeFiles/sw_sim.dir/timeline.cc.o" "gcc" "src/sim/CMakeFiles/sw_sim.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sw_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hub/CMakeFiles/sw_hub.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sw_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sw_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/il/CMakeFiles/sw_il.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sw_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
