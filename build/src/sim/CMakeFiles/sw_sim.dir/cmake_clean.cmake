file(REMOVE_RECURSE
  "CMakeFiles/sw_sim.dir/calibrate.cc.o"
  "CMakeFiles/sw_sim.dir/calibrate.cc.o.d"
  "CMakeFiles/sw_sim.dir/concurrent.cc.o"
  "CMakeFiles/sw_sim.dir/concurrent.cc.o.d"
  "CMakeFiles/sw_sim.dir/power_model.cc.o"
  "CMakeFiles/sw_sim.dir/power_model.cc.o.d"
  "CMakeFiles/sw_sim.dir/simulator.cc.o"
  "CMakeFiles/sw_sim.dir/simulator.cc.o.d"
  "CMakeFiles/sw_sim.dir/timeline.cc.o"
  "CMakeFiles/sw_sim.dir/timeline.cc.o.d"
  "libsw_sim.a"
  "libsw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
