src/sim/CMakeFiles/sw_sim.dir/power_model.cc.o: \
 /root/repo/src/sim/power_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/power_model.h
