file(REMOVE_RECURSE
  "libsw_support.a"
)
