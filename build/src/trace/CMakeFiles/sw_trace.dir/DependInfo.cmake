
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/audio_gen.cc" "src/trace/CMakeFiles/sw_trace.dir/audio_gen.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/audio_gen.cc.o.d"
  "/root/repo/src/trace/augment.cc" "src/trace/CMakeFiles/sw_trace.dir/augment.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/augment.cc.o.d"
  "/root/repo/src/trace/baro_gen.cc" "src/trace/CMakeFiles/sw_trace.dir/baro_gen.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/baro_gen.cc.o.d"
  "/root/repo/src/trace/csv.cc" "src/trace/CMakeFiles/sw_trace.dir/csv.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/csv.cc.o.d"
  "/root/repo/src/trace/human_gen.cc" "src/trace/CMakeFiles/sw_trace.dir/human_gen.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/human_gen.cc.o.d"
  "/root/repo/src/trace/robot_gen.cc" "src/trace/CMakeFiles/sw_trace.dir/robot_gen.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/robot_gen.cc.o.d"
  "/root/repo/src/trace/types.cc" "src/trace/CMakeFiles/sw_trace.dir/types.cc.o" "gcc" "src/trace/CMakeFiles/sw_trace.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
