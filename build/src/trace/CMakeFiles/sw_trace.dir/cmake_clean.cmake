file(REMOVE_RECURSE
  "CMakeFiles/sw_trace.dir/audio_gen.cc.o"
  "CMakeFiles/sw_trace.dir/audio_gen.cc.o.d"
  "CMakeFiles/sw_trace.dir/augment.cc.o"
  "CMakeFiles/sw_trace.dir/augment.cc.o.d"
  "CMakeFiles/sw_trace.dir/baro_gen.cc.o"
  "CMakeFiles/sw_trace.dir/baro_gen.cc.o.d"
  "CMakeFiles/sw_trace.dir/csv.cc.o"
  "CMakeFiles/sw_trace.dir/csv.cc.o.d"
  "CMakeFiles/sw_trace.dir/human_gen.cc.o"
  "CMakeFiles/sw_trace.dir/human_gen.cc.o.d"
  "CMakeFiles/sw_trace.dir/robot_gen.cc.o"
  "CMakeFiles/sw_trace.dir/robot_gen.cc.o.d"
  "CMakeFiles/sw_trace.dir/types.cc.o"
  "CMakeFiles/sw_trace.dir/types.cc.o.d"
  "libsw_trace.a"
  "libsw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
