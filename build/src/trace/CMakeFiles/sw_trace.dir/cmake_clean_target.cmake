file(REMOVE_RECURSE
  "libsw_trace.a"
)
