# Empty compiler generated dependencies file for sw_trace.
# This may be replaced when dependencies are built.
