file(REMOVE_RECURSE
  "CMakeFiles/sw_transport.dir/crc.cc.o"
  "CMakeFiles/sw_transport.dir/crc.cc.o.d"
  "CMakeFiles/sw_transport.dir/frame.cc.o"
  "CMakeFiles/sw_transport.dir/frame.cc.o.d"
  "CMakeFiles/sw_transport.dir/link.cc.o"
  "CMakeFiles/sw_transport.dir/link.cc.o.d"
  "CMakeFiles/sw_transport.dir/messages.cc.o"
  "CMakeFiles/sw_transport.dir/messages.cc.o.d"
  "libsw_transport.a"
  "libsw_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
