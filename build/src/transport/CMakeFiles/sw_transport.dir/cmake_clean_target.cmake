file(REMOVE_RECURSE
  "libsw_transport.a"
)
