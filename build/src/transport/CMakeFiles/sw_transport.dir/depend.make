# Empty dependencies file for sw_transport.
# This may be replaced when dependencies are built.
