file(REMOVE_RECURSE
  "CMakeFiles/apps_floors_test.dir/apps_floors_test.cc.o"
  "CMakeFiles/apps_floors_test.dir/apps_floors_test.cc.o.d"
  "apps_floors_test"
  "apps_floors_test.pdb"
  "apps_floors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_floors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
