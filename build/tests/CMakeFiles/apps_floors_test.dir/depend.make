# Empty dependencies file for apps_floors_test.
# This may be replaced when dependencies are built.
