file(REMOVE_RECURSE
  "CMakeFiles/apps_gesture_test.dir/apps_gesture_test.cc.o"
  "CMakeFiles/apps_gesture_test.dir/apps_gesture_test.cc.o.d"
  "apps_gesture_test"
  "apps_gesture_test.pdb"
  "apps_gesture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_gesture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
