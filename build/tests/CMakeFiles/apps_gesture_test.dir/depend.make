# Empty dependencies file for apps_gesture_test.
# This may be replaced when dependencies are built.
