file(REMOVE_RECURSE
  "CMakeFiles/apps_sweep_test.dir/apps_sweep_test.cc.o"
  "CMakeFiles/apps_sweep_test.dir/apps_sweep_test.cc.o.d"
  "apps_sweep_test"
  "apps_sweep_test.pdb"
  "apps_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
