file(REMOVE_RECURSE
  "CMakeFiles/corpus_calibration_test.dir/corpus_calibration_test.cc.o"
  "CMakeFiles/corpus_calibration_test.dir/corpus_calibration_test.cc.o.d"
  "corpus_calibration_test"
  "corpus_calibration_test.pdb"
  "corpus_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
