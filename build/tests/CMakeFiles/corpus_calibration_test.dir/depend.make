# Empty dependencies file for corpus_calibration_test.
# This may be replaced when dependencies are built.
