file(REMOVE_RECURSE
  "CMakeFiles/dsp_features_test.dir/dsp_features_test.cc.o"
  "CMakeFiles/dsp_features_test.dir/dsp_features_test.cc.o.d"
  "dsp_features_test"
  "dsp_features_test.pdb"
  "dsp_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
