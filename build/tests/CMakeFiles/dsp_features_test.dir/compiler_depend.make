# Empty compiler generated dependencies file for dsp_features_test.
# This may be replaced when dependencies are built.
