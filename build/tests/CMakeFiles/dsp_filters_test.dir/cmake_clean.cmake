file(REMOVE_RECURSE
  "CMakeFiles/dsp_filters_test.dir/dsp_filters_test.cc.o"
  "CMakeFiles/dsp_filters_test.dir/dsp_filters_test.cc.o.d"
  "dsp_filters_test"
  "dsp_filters_test.pdb"
  "dsp_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
