# Empty compiler generated dependencies file for dsp_filters_test.
# This may be replaced when dependencies are built.
