file(REMOVE_RECURSE
  "CMakeFiles/dsp_peaks_test.dir/dsp_peaks_test.cc.o"
  "CMakeFiles/dsp_peaks_test.dir/dsp_peaks_test.cc.o.d"
  "dsp_peaks_test"
  "dsp_peaks_test.pdb"
  "dsp_peaks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_peaks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
