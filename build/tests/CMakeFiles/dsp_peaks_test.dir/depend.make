# Empty dependencies file for dsp_peaks_test.
# This may be replaced when dependencies are built.
