file(REMOVE_RECURSE
  "CMakeFiles/dsp_threshold_test.dir/dsp_threshold_test.cc.o"
  "CMakeFiles/dsp_threshold_test.dir/dsp_threshold_test.cc.o.d"
  "dsp_threshold_test"
  "dsp_threshold_test.pdb"
  "dsp_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
