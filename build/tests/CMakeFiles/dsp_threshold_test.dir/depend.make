# Empty dependencies file for dsp_threshold_test.
# This may be replaced when dependencies are built.
