file(REMOVE_RECURSE
  "CMakeFiles/dsp_window_test.dir/dsp_window_test.cc.o"
  "CMakeFiles/dsp_window_test.dir/dsp_window_test.cc.o.d"
  "dsp_window_test"
  "dsp_window_test.pdb"
  "dsp_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
