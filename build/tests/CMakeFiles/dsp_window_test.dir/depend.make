# Empty dependencies file for dsp_window_test.
# This may be replaced when dependencies are built.
