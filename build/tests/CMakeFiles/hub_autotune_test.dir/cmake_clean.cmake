file(REMOVE_RECURSE
  "CMakeFiles/hub_autotune_test.dir/hub_autotune_test.cc.o"
  "CMakeFiles/hub_autotune_test.dir/hub_autotune_test.cc.o.d"
  "hub_autotune_test"
  "hub_autotune_test.pdb"
  "hub_autotune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_autotune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
