# Empty dependencies file for hub_autotune_test.
# This may be replaced when dependencies are built.
