file(REMOVE_RECURSE
  "CMakeFiles/hub_engine_test.dir/hub_engine_test.cc.o"
  "CMakeFiles/hub_engine_test.dir/hub_engine_test.cc.o.d"
  "hub_engine_test"
  "hub_engine_test.pdb"
  "hub_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
