# Empty compiler generated dependencies file for hub_engine_test.
# This may be replaced when dependencies are built.
