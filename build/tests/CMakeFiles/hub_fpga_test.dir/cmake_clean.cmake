file(REMOVE_RECURSE
  "CMakeFiles/hub_fpga_test.dir/hub_fpga_test.cc.o"
  "CMakeFiles/hub_fpga_test.dir/hub_fpga_test.cc.o.d"
  "hub_fpga_test"
  "hub_fpga_test.pdb"
  "hub_fpga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
