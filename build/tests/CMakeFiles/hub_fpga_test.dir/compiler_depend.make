# Empty compiler generated dependencies file for hub_fpga_test.
# This may be replaced when dependencies are built.
