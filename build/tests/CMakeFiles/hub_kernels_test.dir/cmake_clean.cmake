file(REMOVE_RECURSE
  "CMakeFiles/hub_kernels_test.dir/hub_kernels_test.cc.o"
  "CMakeFiles/hub_kernels_test.dir/hub_kernels_test.cc.o.d"
  "hub_kernels_test"
  "hub_kernels_test.pdb"
  "hub_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
