# Empty dependencies file for hub_kernels_test.
# This may be replaced when dependencies are built.
