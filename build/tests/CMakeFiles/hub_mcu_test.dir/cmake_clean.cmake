file(REMOVE_RECURSE
  "CMakeFiles/hub_mcu_test.dir/hub_mcu_test.cc.o"
  "CMakeFiles/hub_mcu_test.dir/hub_mcu_test.cc.o.d"
  "hub_mcu_test"
  "hub_mcu_test.pdb"
  "hub_mcu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_mcu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
