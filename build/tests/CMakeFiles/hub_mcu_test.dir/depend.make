# Empty dependencies file for hub_mcu_test.
# This may be replaced when dependencies are built.
