file(REMOVE_RECURSE
  "CMakeFiles/hub_runtime_test.dir/hub_runtime_test.cc.o"
  "CMakeFiles/hub_runtime_test.dir/hub_runtime_test.cc.o.d"
  "hub_runtime_test"
  "hub_runtime_test.pdb"
  "hub_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
