# Empty compiler generated dependencies file for hub_runtime_test.
# This may be replaced when dependencies are built.
