file(REMOVE_RECURSE
  "CMakeFiles/hub_value_test.dir/hub_value_test.cc.o"
  "CMakeFiles/hub_value_test.dir/hub_value_test.cc.o.d"
  "hub_value_test"
  "hub_value_test.pdb"
  "hub_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
