# Empty dependencies file for hub_value_test.
# This may be replaced when dependencies are built.
