file(REMOVE_RECURSE
  "CMakeFiles/il_optimize_test.dir/il_optimize_test.cc.o"
  "CMakeFiles/il_optimize_test.dir/il_optimize_test.cc.o.d"
  "il_optimize_test"
  "il_optimize_test.pdb"
  "il_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/il_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
