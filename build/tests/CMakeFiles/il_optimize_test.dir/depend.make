# Empty dependencies file for il_optimize_test.
# This may be replaced when dependencies are built.
