file(REMOVE_RECURSE
  "CMakeFiles/il_property_test.dir/il_property_test.cc.o"
  "CMakeFiles/il_property_test.dir/il_property_test.cc.o.d"
  "il_property_test"
  "il_property_test.pdb"
  "il_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/il_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
