# Empty dependencies file for il_property_test.
# This may be replaced when dependencies are built.
