file(REMOVE_RECURSE
  "CMakeFiles/il_test.dir/il_test.cc.o"
  "CMakeFiles/il_test.dir/il_test.cc.o.d"
  "il_test"
  "il_test.pdb"
  "il_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/il_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
