# Empty dependencies file for il_test.
# This may be replaced when dependencies are built.
