file(REMOVE_RECURSE
  "CMakeFiles/sim_audio_test.dir/sim_audio_test.cc.o"
  "CMakeFiles/sim_audio_test.dir/sim_audio_test.cc.o.d"
  "sim_audio_test"
  "sim_audio_test.pdb"
  "sim_audio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_audio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
