# Empty dependencies file for sim_audio_test.
# This may be replaced when dependencies are built.
