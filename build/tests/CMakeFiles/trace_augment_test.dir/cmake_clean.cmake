file(REMOVE_RECURSE
  "CMakeFiles/trace_augment_test.dir/trace_augment_test.cc.o"
  "CMakeFiles/trace_augment_test.dir/trace_augment_test.cc.o.d"
  "trace_augment_test"
  "trace_augment_test.pdb"
  "trace_augment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_augment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
