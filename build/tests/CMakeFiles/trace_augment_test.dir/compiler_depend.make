# Empty compiler generated dependencies file for trace_augment_test.
# This may be replaced when dependencies are built.
