/**
 * @file
 * Adaptive pedometer: the threshold self-tuning extension of
 * Section 7 of the paper in a full application loop.
 *
 * A step-counting wake-up condition is deployed with a deliberately
 * permissive band, so a vibrating bus ride keeps waking the phone.
 * The application's second-stage classifier rejects those wake-ups as
 * false positives and feeds that verdict back to the hub; after a few
 * reports the tuned condition ignores the bus while still waking for
 * real walking.
 *
 * Run:  ./adaptive_pedometer
 */

#include <cmath>
#include <cstdio>
#include <numbers>

#include "hub/autotune.h"
#include "hub/engine.h"
#include "il/parser.h"
#include "support/rng.h"

using namespace sidewinder;

namespace {

/** Feed @p seconds of bus vibration (no steps). */
int
rideBus(hub::Engine &engine, Rng &rng, double seconds)
{
    int wakes = 0;
    const int n = static_cast<int>(seconds * 50.0);
    for (int i = 0; i < n; ++i) {
        engine.pushSamples({rng.gaussian(0.0, 1.1)}, i * 0.02);
        wakes += static_cast<int>(engine.drainWakeEvents().size());
    }
    return wakes;
}

/** Feed @p seconds of walking (strong periodic bumps). */
int
walk(hub::Engine &engine, Rng &rng, double seconds)
{
    int wakes = 0;
    const int n = static_cast<int>(seconds * 50.0);
    for (int i = 0; i < n; ++i) {
        const double phase = std::fmod(i * 0.02 / 0.55, 1.0);
        double x = 0.0;
        if (phase < 0.4) {
            const double s = std::sin(std::numbers::pi * phase / 0.4);
            x = 3.6 * s * s;
        }
        engine.pushSamples({x + rng.gaussian(0.0, 0.1)}, i * 0.02);
        wakes += static_cast<int>(engine.drainWakeEvents().size());
    }
    return wakes;
}

} // namespace

int
main()
{
    hub::Engine engine({{"ACC_X", 50.0}});

    // Deployed too permissive: local maxima anywhere above 1.2 look
    // like steps to the hub (real steps peak near 3.6).
    hub::AutoTuneConfig config;
    config.falsePositiveStreak = 2;
    config.tightenFactor = 1.3;
    hub::ThresholdAutoTuner tuner(
        engine, 1,
        il::parse("ACC_X -> movingAvg(id=1, params={5});\n"
                  "1 -> localMaxima(id=2, params={1.2,6,15});\n"
                  "2 -> OUT;\n"),
        config);

    Rng rng(7);
    std::printf("phase                wakes  app verdict        "
                "strictness\n");
    for (int round = 1; round <= 6; ++round) {
        const int bus_wakes = rideBus(engine, rng, 20.0);
        // The classifier sees no step periodicity: false positives.
        for (int w = 0; w < bus_wakes; ++w)
            tuner.reportFalsePositive();
        std::printf("bus ride %d        %6d  false positives      "
                    "%6.2f\n",
                    round, bus_wakes, tuner.currentScale());
    }

    const int walk_wakes = walk(engine, rng, 20.0);
    std::printf("walking           %6d  true positives       %6.2f\n",
                walk_wakes, tuner.currentScale());

    std::printf("\nafter %zu retunes the bus no longer wakes the "
                "phone; walking still does (%d wakes in 20 s).\n",
                tuner.retuneCount(), walk_wakes);
    return walk_wakes > 0 ? 0 : 1;
}
