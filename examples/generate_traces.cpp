/**
 * @file
 * Corpus exporter: writes the evaluation traces (robot runs, human
 * subjects, audio environments) to disk in the sidewinder-trace CSV
 * format, for inspection with external tooling or replay through the
 * simulator without regeneration.
 *
 * Run:  ./generate_traces <output-dir> [seconds=120]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "trace/audio_gen.h"
#include "trace/baro_gen.h"
#include "trace/csv.h"
#include "trace/human_gen.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <output-dir> [seconds=120]\n", argv[0]);
        return 2;
    }
    const std::filesystem::path out_dir = argv[1];
    const double seconds = argc > 2 ? std::atof(argv[2]) : 120.0;
    std::filesystem::create_directories(out_dir);

    std::size_t files = 0;
    auto save = [&](const trace::Trace &t) {
        const auto path = out_dir / (t.name + ".csv");
        trace::saveCsvFile(t, path.string());
        std::printf("  %-28s %8.0f s  %9zu samples  %4zu events\n",
                    t.name.c_str(), t.durationSeconds(),
                    t.sampleCount(), t.events.size());
        ++files;
    };

    std::printf("robot corpus (18 runs):\n");
    for (const auto &t : trace::generateRobotCorpus(seconds, 20160402))
        save(t);

    std::printf("human corpus (3 subjects):\n");
    for (const auto &t : trace::generateHumanCorpus(seconds, 20160402))
        save(t);

    std::printf("audio corpus (3 environments):\n");
    for (const auto &t : trace::generateAudioCorpus(seconds, 20160402))
        save(t);

    std::printf("barometer corpus (1 day):\n");
    trace::BaroTraceConfig baro;
    baro.durationSeconds = seconds;
    baro.seed = 20160402;
    baro.name = "baro-day";
    save(trace::generateBaroTrace(baro));

    std::printf("\nwrote %zu traces to %s\n", files,
                out_dir.string().c_str());
    return 0;
}
