/**
 * @file
 * Music journal with a concurrent phrase detector — the multi-
 * application scenario of Section 7 of the paper ("the sensor manager
 * can attempt to improve performance by combining the pipelines that
 * use common algorithms").
 *
 * Installs both audio wake-up conditions on one hub and reports how
 * many algorithm instances the engine's node sharing saves, then
 * replays a coffee-shop recording and journals the songs (detected
 * locally in place of the Echoprint.me web service the paper used).
 *
 * Run:  ./music_journal [seconds=300]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "hub/engine.h"
#include "core/sensors.h"
#include "trace/audio_gen.h"

using namespace sidewinder;

int
main(int argc, char **argv)
{
    const double seconds = argc > 1 ? std::atof(argv[1]) : 300.0;

    trace::AudioTraceConfig config;
    config.environment = trace::AudioEnvironment::CoffeeShop;
    config.durationSeconds = seconds;
    config.seed = 99;
    config.phraseProbability = 0.5;
    const trace::Trace cafe = generateAudioTrace(config);

    const auto music = apps::makeMusicJournalApp();
    const auto phrase = apps::makePhraseApp();

    // --- Node sharing across the two conditions ---------------------
    hub::Engine shared(core::audioChannels(), /*share_nodes=*/true);
    shared.addCondition(1, music->wakeCondition().compile());
    const std::size_t music_only = shared.nodeCount();
    shared.addCondition(2, phrase->wakeCondition().compile());

    hub::Engine unshared(core::audioChannels(), /*share_nodes=*/false);
    unshared.addCondition(1, music->wakeCondition().compile());
    unshared.addCondition(2, phrase->wakeCondition().compile());

    std::printf("hub algorithm instances: music alone %zu, both apps "
                "%zu shared vs %zu unshared (%.0f%% saved)\n",
                music_only, shared.nodeCount(), unshared.nodeCount(),
                100.0 * (1.0 - static_cast<double>(shared.nodeCount()) /
                                   static_cast<double>(
                                       unshared.nodeCount())));
    std::printf("estimated hub load: %.0f vs %.0f cycle units/s\n\n",
                shared.estimatedCyclesPerSecond(),
                unshared.estimatedCyclesPerSecond());

    // --- Replay the cafe; count wake-ups per condition ---------------
    int music_wakes = 0;
    int phrase_wakes = 0;
    const auto &audio = cafe.channels[0];
    for (std::size_t i = 0; i < audio.size(); ++i) {
        shared.pushSamples({audio[i]}, cafe.timeOf(i));
        for (const auto &event : shared.drainWakeEvents()) {
            if (event.conditionId == 1)
                ++music_wakes;
            else
                ++phrase_wakes;
        }
    }

    // --- The journal: main-CPU classification over the whole trace ---
    const auto songs = music->classify(cafe, 0, cafe.sampleCount());
    std::printf("%zu song(s) journaled over %.0f s (ground truth: "
                "%zu); %d music wake(s), %d speech wake(s)\n",
                songs.size(), cafe.durationSeconds(),
                cafe.eventsOfType("music").size(), music_wakes,
                phrase_wakes);
    for (double t : songs)
        std::printf("  song around t=%.0fs\n", t);
    return 0;
}
