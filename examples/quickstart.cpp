/**
 * @file
 * Quickstart: the significant-motion wake-up condition of Figure 2 of
 * the paper, end to end.
 *
 * A developer builds a ProcessingPipeline from platform algorithm
 * stubs, pushes it through the SidewinderSensorManager, and receives a
 * callback when the condition fires on the (simulated) low-power hub.
 * The program prints the generated intermediate language — compare it
 * with Figure 2c of the paper — and the wake-up events produced by a
 * short burst of synthetic accelerometer data.
 *
 * Run:  ./quickstart
 */

#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/algorithm.h"
#include "core/listener.h"
#include "core/pipeline.h"
#include "core/sensor_manager.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/runtime.h"
#include "transport/link.h"

using namespace sidewinder;

namespace {

/** Application-side callback: print every wake-up. */
class PrintingListener : public core::SensorEventListener
{
  public:
    void
    onSensorEvent(const core::SensorData &data) override
    {
        std::printf("  wake-up!  t=%.2fs  trigger=%.2f  "
                    "(%zu raw samples attached)\n",
                    data.timestamp, data.triggerValue,
                    data.rawData.size());
        ++count;
    }

    int count = 0;
};

} // namespace

int
main()
{
    // --- The developer's code (Figure 2a) ---------------------------
    core::ProcessingPipeline significant_motion;
    std::vector<core::ProcessingBranch> branches;
    branches.emplace_back(core::channel::accelerometerX);
    branches.emplace_back(core::channel::accelerometerY);
    branches.emplace_back(core::channel::accelerometerZ);
    branches[0].add(core::MovingAverage(10));
    branches[1].add(core::MovingAverage(10));
    branches[2].add(core::MovingAverage(10));
    significant_motion.add(branches);
    significant_motion.add(core::VectorMagnitude());
    significant_motion.add(core::MinThreshold(15));

    // --- Platform plumbing: phone <-UART-> hub ----------------------
    transport::LinkPair link(115200.0);
    hub::HubRuntime hub_runtime(link, core::accelerometerChannels(),
                                hub::msp430());
    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());

    PrintingListener listener;
    const int id = manager.push(significant_motion, &listener, 0.0);

    std::printf("pushed wake-up condition %d; intermediate code:\n%s\n",
                id, manager.ilTextOf(id).c_str());

    hub_runtime.pollLink(0.1); // hub installs the condition
    manager.poll(0.2);         // manager sees the ack
    std::printf("condition state: %s on %s hub\n\n",
                manager.state(id) == core::ConditionState::Active
                    ? "active"
                    : "not active",
                hub_runtime.mcu().name.c_str());

    // --- Feed sensor data: 2 s of rest, then a vigorous shake -------
    std::printf("feeding 2 s of rest, then a shake:\n");
    double t = 0.2;
    for (int i = 0; i < 100; ++i, t += 0.02)
        hub_runtime.pushSamples({0.0, 0.0, 9.81}, t);
    for (int i = 0; i < 50; ++i, t += 0.02) {
        const double shake =
            25.0 * std::sin(2.0 * std::numbers::pi * 3.0 * t);
        hub_runtime.pushSamples({shake, shake, 9.81 + shake}, t);
    }
    manager.poll(t + 1.0);

    std::printf("\n%d wake-up(s) delivered while resting+shaking; "
                "the main CPU slept through the rest.\n",
                listener.count);
    return listener.count > 0 ? 0 : 1;
}
