/**
 * @file
 * swsim-style command-line simulator: replay a saved sidewinder-trace
 * CSV (see generate_traces) through any application under any sensing
 * strategy and print the power/recall/latency summary — scripted
 * experiments without recompilation.
 *
 * Run:  ./simulate_trace <trace.csv> <app> <strategy> [sleep=10]
 *
 *   app:      steps | transitions | headbutts | siren | music |
 *             phrase | gesture | floors
 *   strategy: aa | dc | ba | pa | sw | sw-fpga | oracle
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/apps.h"
#include "sim/power_model.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "trace/csv.h"

using namespace sidewinder;

namespace {

std::unique_ptr<apps::Application>
appByName(const std::string &name)
{
    if (name == "steps")
        return apps::makeStepsApp();
    if (name == "transitions")
        return apps::makeTransitionsApp();
    if (name == "headbutts")
        return apps::makeHeadbuttsApp();
    if (name == "siren")
        return apps::makeSirenApp();
    if (name == "music")
        return apps::makeMusicJournalApp();
    if (name == "phrase")
        return apps::makePhraseApp();
    if (name == "gesture")
        return apps::makeGestureApp();
    if (name == "floors")
        return apps::makeFloorsApp();
    throw ConfigError("unknown application '" + name + "'");
}

sim::SimConfig
configByName(const std::string &name, double sleep)
{
    sim::SimConfig config;
    config.sleepIntervalSeconds = sleep;
    if (name == "aa")
        config.strategy = sim::Strategy::AlwaysAwake;
    else if (name == "dc")
        config.strategy = sim::Strategy::DutyCycling;
    else if (name == "ba")
        config.strategy = sim::Strategy::Batching;
    else if (name == "pa")
        config.strategy = sim::Strategy::PredefinedActivity;
    else if (name == "sw")
        config.strategy = sim::Strategy::Sidewinder;
    else if (name == "sw-fpga") {
        config.strategy = sim::Strategy::Sidewinder;
        config.hubBackend = sim::HubBackend::Fpga;
    } else if (name == "oracle")
        config.strategy = sim::Strategy::Oracle;
    else
        throw ConfigError("unknown strategy '" + name + "'");
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(
            stderr,
            "usage: %s <trace.csv> <app> <strategy> [sleep=10]\n",
            argv[0]);
        return 2;
    }

    try {
        const trace::Trace trace = trace::loadCsvFile(argv[1]);
        const auto app = appByName(argv[2]);
        const double sleep = argc > 4 ? std::atof(argv[4]) : 10.0;
        const auto config = configByName(argv[3], sleep);

        const auto r = sim::simulate(trace, *app, config);

        std::printf("trace      %s (%.0f s, %zu %s events)\n",
                    trace.name.c_str(), trace.durationSeconds(),
                    trace.eventsOfType(app->eventType()).size(),
                    app->eventType().c_str());
        std::printf("config     %s", r.configName.c_str());
        if (!r.mcuName.empty())
            std::printf("  hub=%s (%.1f mW)", r.mcuName.c_str(),
                        r.hubMw);
        std::printf("\n");
        std::printf("power      %.1f mW  (battery: %.0f h)\n",
                    r.averagePowerMw,
                    sim::batteryLifeHours(r.averagePowerMw));
        std::printf("awake      %.1f s of %.1f s, %zu wake-up(s)\n",
                    r.timeline.awakeSeconds, r.timeline.totalSeconds,
                    r.timeline.wakeUps);
        std::printf("detection  recall %.2f, precision %.2f, "
                    "latency %.2f s\n",
                    r.recall, r.precision,
                    r.meanDetectionLatencySeconds);
        return 0;
    } catch (const SidewinderError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
