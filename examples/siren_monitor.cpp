/**
 * @file
 * Siren monitor (Section 3.7.2 of the paper): detects emergency-
 * vehicle sirens in a synthesized street soundscape.
 *
 * Demonstrates the hub sizing question of Section 3.8: the siren
 * wake-up condition needs audio-rate FFTs, so pushing it to an
 * MSP430-based hub is rejected, while an LM4F120-based hub accepts it
 * (at 13x the idle hub power — exactly the trade recorded in
 * Table 2).
 *
 * Run:  ./siren_monitor [seconds=300]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "core/sensor_manager.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/runtime.h"
#include "sim/simulator.h"
#include "trace/audio_gen.h"
#include "transport/link.h"

using namespace sidewinder;

namespace {

class SirenListener : public core::SensorEventListener
{
  public:
    void
    onSensorEvent(const core::SensorData &data) override
    {
        std::printf("  siren wake-up at t=%.1fs\n", data.timestamp);
        ++count;
    }

    int count = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const double seconds = argc > 1 ? std::atof(argv[1]) : 300.0;

    trace::AudioTraceConfig config;
    config.environment = trace::AudioEnvironment::Outdoors;
    config.durationSeconds = seconds;
    config.seed = 7;
    const trace::Trace street = generateAudioTrace(config);
    const auto app = apps::makeSirenApp();

    std::printf("synthesized %.0f s outdoors, %zu sirens mixed in\n\n",
                street.durationSeconds(),
                street.eventsOfType("siren").size());

    // 1) The MSP430 hub refuses the FFT pipeline.
    {
        transport::LinkPair link(115200.0);
        hub::HubRuntime weak_hub(link, core::audioChannels(),
                                 hub::msp430());
        core::SidewinderSensorManager manager(link,
                                              core::audioChannels());
        SirenListener listener;
        const int id =
            manager.push(app->wakeCondition(), &listener, 0.0);
        weak_hub.pollLink(0.5);
        manager.poll(1.0);
        std::printf("MSP430 hub: %s\n  reason: %s\n\n",
                    manager.state(id) == core::ConditionState::Rejected
                        ? "REJECTED"
                        : "accepted?!",
                    manager.rejectionReason(id).c_str());
    }

    // 2) The LM4F120 hub runs it; replay the street audio through it.
    transport::LinkPair link(1e6);
    hub::HubRuntime hub_runtime(link, core::audioChannels(),
                                hub::lm4f120());
    core::SidewinderSensorManager manager(link, core::audioChannels());
    SirenListener listener;
    manager.push(app->wakeCondition(), &listener, 0.0);
    hub_runtime.pollLink(0.5);
    manager.poll(1.0);
    std::printf("LM4F120 hub: accepted; replaying the street audio\n");

    const auto &audio = street.channels[0];
    for (std::size_t i = 0; i < audio.size(); ++i)
        hub_runtime.pushSamples({audio[i]}, street.timeOf(i));
    manager.poll(street.durationSeconds() + 10.0);

    // 3) Power summary via the simulator.
    sim::SimConfig sim_config;
    sim_config.strategy = sim::Strategy::Sidewinder;
    const auto sw = sim::simulate(street, *app, sim_config);
    sim_config.strategy = sim::Strategy::Oracle;
    const auto oracle = sim::simulate(street, *app, sim_config);

    std::printf("\n%d hub wake-up(s); Sidewinder average power %.1f mW"
                " (Oracle %.1f, Always Awake 323.0)\n",
                listener.count, sw.averagePowerMw,
                oracle.averagePowerMw);
    std::printf("detection recall %.2f, precision %.2f\n", sw.recall,
                sw.precision);
    return 0;
}
