/**
 * @file
 * Step counter on a scripted robot run (Section 3.7.1 of the paper).
 *
 * Generates one synthetic AIBO run, installs the steps application's
 * wake-up condition on the simulated hub, and compares the sensing
 * strategies of Section 4.2: power, wake-ups, recall and precision.
 * This is the Figure 5 experiment at single-run scale.
 *
 * Run:  ./step_counter [idle_fraction=0.5] [seconds=300]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "metrics/events.h"
#include "sim/simulator.h"
#include "trace/robot_gen.h"

using namespace sidewinder;

int
main(int argc, char **argv)
{
    const double idle = argc > 1 ? std::atof(argv[1]) : 0.5;
    const double seconds = argc > 2 ? std::atof(argv[2]) : 300.0;

    trace::RobotRunConfig config;
    config.idleFraction = idle;
    config.durationSeconds = seconds;
    config.seed = 20160402; // ASPLOS'16 conference date
    config.name = "example-robot-run";
    const trace::Trace run = generateRobotRun(config);

    const auto app = apps::makeStepsApp();
    const auto steps = run.eventsOfType(app->eventType());
    std::printf("robot run: %.0f s at %.0f%% idle, %zu ground-truth "
                "steps\n\n",
                run.durationSeconds(), idle * 100.0, steps.size());

    std::printf("%-10s %12s %9s %8s %10s\n", "config", "power(mW)",
                "wakeups", "recall", "precision");

    auto report = [&](sim::Strategy strategy, double sleep) {
        sim::SimConfig sim_config;
        sim_config.strategy = strategy;
        sim_config.sleepIntervalSeconds = sleep;
        const auto r = sim::simulate(run, *app, sim_config);
        std::printf("%-10s %12.1f %9zu %8.2f %10.2f\n",
                    r.configName.c_str(), r.averagePowerMw,
                    r.timeline.wakeUps, r.recall, r.precision);
        return r;
    };

    report(sim::Strategy::AlwaysAwake, 0.0);
    report(sim::Strategy::DutyCycling, 2.0);
    report(sim::Strategy::DutyCycling, 10.0);
    report(sim::Strategy::Batching, 10.0);
    report(sim::Strategy::PredefinedActivity, 0.0);
    const auto sw = report(sim::Strategy::Sidewinder, 0.0);
    const auto oracle = report(sim::Strategy::Oracle, 0.0);

    std::printf("\nSidewinder runs on the %s hub and achieves %.1f%% "
                "of the savings an ideal wake-up would provide.\n",
                sw.mcuName.c_str(),
                100.0 * metrics::savingsFraction(323.0,
                                                 sw.averagePowerMw,
                                                 oracle.averagePowerMw));
    return 0;
}
