#!/usr/bin/env python3
"""Gate benchmark results against checked-in budgets.

Reads a google-benchmark JSON file (as written by scripts/run_benches.sh)
and scripts/bench_budgets.json, and fails when:

 - a budgeted benchmark regressed by more than the tolerance (default
   20%) over its recorded baseline real_time, or
 - a tracked speedup ratio (e.g. per-sample dispatch vs block dispatch
   of the same program) fell below its floor, or
 - (with --fleet BENCH_fleet.json) a fleet-scaling row at or above the
   budgeted population broke the plan-cache hit-rate floor or the
   per-device memory ceiling, or the fleet's serial-vs-parallel
   determinism flag is false, or
 - (with --reconfig BENCH_reconfig.json) a one-threshold delta push
   cost more than the budgeted fraction of a full push on a plan deep
   enough to amortize framing, the committed swap's blind window
   exceeded one block of samples, or the fault-free live update
   failed to commit cleanly, or
 - (with --placement BENCH_placement.json) the negotiated-congestion
   placer spent more than the budgeted fraction of the greedy
   ladder's fleet power, rescued fewer conditions than the floor,
   left conditions unplaced, failed to converge, or broke the
   1-vs-4-thread determinism flag.

Absolute budgets are machine-dependent, so they only fire on large
regressions (the tolerance) and can be re-baselined by re-running
scripts/run_benches.sh on the reference machine and passing
--rebaseline. Ratio floors compare two numbers from the *same* run on
the *same* machine, so they are robust to host speed and encode the
claims the docs make (block dispatch >= 3x on dispatch-bound chains,
planned FFT faster than naive, ...).

Usage: scripts/check_bench_regression.py [BENCH_dsp.json]
  --budgets PATH     budget file (default: scripts/bench_budgets.json)
  --tolerance FRAC   allowed fractional regression (default: 0.20)
  --rebaseline       rewrite the budget baselines from this run
  --fleet PATH       BENCH_fleet.json to check against the "fleet"
                     budgets (skipped, with a note, when omitted)
  --reconfig PATH    BENCH_reconfig.json to check against the
                     "reconfig" budgets (skipped when omitted)
  --placement PATH   BENCH_placement.json to check against the
                     "placement" budgets (skipped when omitted)
"""

import argparse
import json
import sys
from pathlib import Path


def load_results(path):
    """Map benchmark name -> per-item real_time in ns."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        time_ns = float(b["real_time"])
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[name] = time_ns * scale
    return out


def per_item(results, name):
    """real_time per processed item: Foo/64 divides by 64."""
    t = results[name]
    if "/" in name:
        try:
            return t / float(name.rsplit("/", 1)[1])
        except ValueError:
            pass
    return t


def check_fleet(path, spec, failures):
    """Gate BENCH_fleet.json against the "fleet" budget section."""
    with open(path) as fh:
        fleet = json.load(fh)

    min_pop = int(spec.get("min_population", 0))
    hit_floor = float(spec.get("cache_hit_rate_floor", 0.0))
    mem_ceiling = float(spec.get("memory_per_device_max_bytes", 0))

    if spec.get("require_deterministic") and not fleet.get("deterministic"):
        print("REGRESSED  fleet: serial vs parallel results diverged")
        failures.append("fleet_deterministic")
    else:
        print("       ok  fleet: serial vs parallel bit-identical")

    gated = [r for r in fleet.get("populations", [])
             if int(r.get("devices", 0)) >= min_pop]
    if not gated:
        print(f"fleet: no population >= {min_pop} in {path}",
              file=sys.stderr)
        failures.append("fleet_min_population")
        return

    for row in gated:
        devices = int(row["devices"])
        hit_rate = float(row.get("cache_hit_rate", 0.0))
        status = "ok" if hit_rate >= hit_floor else "REGRESSED"
        print(f"{status:>9}  fleet[{devices}]: cache hit rate "
              f"{hit_rate:.4f} (floor {hit_floor:.2f})")
        if hit_rate < hit_floor:
            failures.append(f"fleet_cache_hit_rate[{devices}]")

        mem = float(row.get("memory_bytes_per_device", 0.0))
        if mem <= 0.0:
            # /proc/self/statm was unreadable on this host; the
            # ceiling cannot be evaluated, which is not a regression.
            print(f"     note  fleet[{devices}]: no memory sample")
            continue
        status = "ok" if mem <= mem_ceiling else "REGRESSED"
        print(f"{status:>9}  fleet[{devices}]: {mem:.0f} B/device "
              f"(ceiling {mem_ceiling:.0f})")
        if mem > mem_ceiling:
            failures.append(f"fleet_memory_per_device[{devices}]")


def check_reconfig(path, spec, failures):
    """Gate BENCH_reconfig.json against the "reconfig" budget section."""
    with open(path) as fh:
        reconfig = json.load(fh)

    max_ratio = float(spec.get("delta_to_full_max_ratio", 1.0))
    min_nodes = int(spec.get("min_plan_nodes", 0))
    max_blind = float(spec.get("blind_window_max_samples", 1.0))

    gated = [r for r in reconfig.get("apps", [])
             if int(r.get("plan_nodes", 0)) >= min_nodes]
    if not gated:
        print(f"reconfig: no app with >= {min_nodes} plan nodes in {path}",
              file=sys.stderr)
        failures.append("reconfig_min_plan_nodes")
    for row in gated:
        app = row["app"]
        ratio = float(row["delta_bytes"]) / float(row["full_bytes"])
        status = "ok" if ratio <= max_ratio else "REGRESSED"
        print(f"{status:>9}  reconfig[{app}]: delta/full {ratio:.4f} "
              f"(ceiling {max_ratio:.2f})")
        if ratio > max_ratio:
            failures.append(f"reconfig_delta_ratio[{app}]")

    live = reconfig.get("live_update", {})
    if spec.get("require_committed"):
        committed = int(live.get("committed", 0))
        rolled_back = int(live.get("rolled_back", 0))
        clean = committed == 1 and rolled_back == 0
        status = "ok" if clean else "REGRESSED"
        print(f"{status:>9}  reconfig: fault-free update committed "
              f"{committed}, rolled back {rolled_back}")
        if not clean:
            failures.append("reconfig_committed")

    blind = float(live.get("blind_window_samples", 0.0))
    status = "ok" if 0.0 < blind <= max_blind else "REGRESSED"
    print(f"{status:>9}  reconfig: blind window {blind:.2f} samples "
          f"(ceiling {max_blind:.0f})")
    if not 0.0 < blind <= max_blind:
        failures.append("reconfig_blind_window")


def check_placement(path, spec, failures):
    """Gate BENCH_placement.json against the "placement" section."""
    with open(path) as fh:
        placement = json.load(fh)

    max_ratio = float(spec.get("energy_ratio_max", 1.0))
    min_rescued = int(spec.get("min_rescued", 0))

    greedy = float(placement.get("fleet_power_mw_greedy", 0.0))
    negotiated = float(placement.get("fleet_power_mw_negotiated", 0.0))
    ratio = negotiated / greedy if greedy > 0.0 else 1.0
    status = "ok" if ratio <= max_ratio else "REGRESSED"
    print(f"{status:>9}  placement: negotiated/greedy fleet power "
          f"{ratio:.4f} (ceiling {max_ratio:.2f})")
    if ratio > max_ratio:
        failures.append("placement_energy_ratio")

    rescued = int(placement.get("rescued_conditions", 0))
    status = "ok" if rescued >= min_rescued else "REGRESSED"
    print(f"{status:>9}  placement: {rescued} rescued condition(s) "
          f"(floor {min_rescued})")
    if rescued < min_rescued:
        failures.append("placement_rescued")

    unplaced = int(placement.get("unplaced_negotiated", 0))
    if spec.get("require_total") and unplaced > 0:
        print(f"REGRESSED  placement: {unplaced} condition(s) left "
              "unplaced despite the AP fallback")
        failures.append("placement_unplaced")
    elif spec.get("require_total"):
        print("       ok  placement: every condition found a home")

    unconverged = int(placement.get("unconverged", 0))
    if spec.get("require_converged") and unconverged > 0:
        print(f"REGRESSED  placement: {unconverged} device(s) hit the "
              "negotiation iteration cap")
        failures.append("placement_unconverged")
    elif spec.get("require_converged"):
        print("       ok  placement: every negotiation converged")

    if spec.get("require_deterministic") \
            and not placement.get("deterministic"):
        print("REGRESSED  placement: 1-thread vs 4-thread placements "
              "diverged")
        failures.append("placement_deterministic")
    elif spec.get("require_deterministic"):
        print("       ok  placement: 1 vs 4 threads bit-identical")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("results", nargs="?", default="BENCH_dsp.json")
    ap.add_argument("--budgets",
                    default=str(Path(__file__).parent / "bench_budgets.json"))
    ap.add_argument("--tolerance", type=float, default=0.20)
    ap.add_argument("--rebaseline", action="store_true")
    ap.add_argument("--fleet", default=None)
    ap.add_argument("--reconfig", default=None)
    ap.add_argument("--placement", default=None)
    args = ap.parse_args()

    results = load_results(args.results)
    with open(args.budgets) as fh:
        budgets = json.load(fh)

    failures = []
    missing = []

    for name, entry in sorted(budgets.get("baselines_ns", {}).items()):
        if name not in results:
            missing.append(name)
            continue
        baseline = float(entry)
        current = results[name]
        if args.rebaseline:
            budgets["baselines_ns"][name] = round(current, 2)
            continue
        limit = baseline * (1.0 + args.tolerance)
        status = "ok" if current <= limit else "REGRESSED"
        print(f"{status:>9}  {name}: {current:.1f} ns "
              f"(baseline {baseline:.1f}, limit {limit:.1f})")
        if current > limit:
            failures.append(name)

    for name, spec in sorted(budgets.get("ratio_floors", {}).items()):
        num, den = spec["numerator"], spec["denominator"]
        if num not in results or den not in results:
            missing.append(f"{name} ({num} / {den})")
            continue
        ratio = per_item(results, num) / per_item(results, den)
        floor = float(spec["min_ratio"])
        status = "ok" if ratio >= floor else "REGRESSED"
        print(f"{status:>9}  {name}: {ratio:.2f}x (floor {floor:.2f}x)")
        if ratio < floor:
            failures.append(name)

    if "fleet" in budgets:
        if args.fleet:
            check_fleet(args.fleet, budgets["fleet"], failures)
        else:
            print("fleet budgets skipped (no --fleet BENCH_fleet.json)")

    if "reconfig" in budgets:
        if args.reconfig:
            check_reconfig(args.reconfig, budgets["reconfig"], failures)
        else:
            print("reconfig budgets skipped "
                  "(no --reconfig BENCH_reconfig.json)")

    if "placement" in budgets:
        if args.placement:
            check_placement(args.placement, budgets["placement"],
                            failures)
        else:
            print("placement budgets skipped "
                  "(no --placement BENCH_placement.json)")

    if args.rebaseline:
        with open(args.budgets, "w") as fh:
            json.dump(budgets, fh, indent=2)
            fh.write("\n")
        print(f"rebaselined {args.budgets} from {args.results}")

    if missing:
        print("missing from results (run with the default filter?): "
              + ", ".join(missing), file=sys.stderr)
        failures.extend(missing)
    if failures:
        print(f"check_bench_regression: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("check_bench_regression: all budgets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
