#!/usr/bin/env python3
"""Gate benchmark results against checked-in budgets.

Reads a google-benchmark JSON file (as written by scripts/run_benches.sh)
and scripts/bench_budgets.json, and fails when:

 - a budgeted benchmark regressed by more than the tolerance (default
   20%) over its recorded baseline real_time, or
 - a tracked speedup ratio (e.g. per-sample dispatch vs block dispatch
   of the same program) fell below its floor.

Absolute budgets are machine-dependent, so they only fire on large
regressions (the tolerance) and can be re-baselined by re-running
scripts/run_benches.sh on the reference machine and passing
--rebaseline. Ratio floors compare two numbers from the *same* run on
the *same* machine, so they are robust to host speed and encode the
claims the docs make (block dispatch >= 3x on dispatch-bound chains,
planned FFT faster than naive, ...).

Usage: scripts/check_bench_regression.py [BENCH_dsp.json]
  --budgets PATH     budget file (default: scripts/bench_budgets.json)
  --tolerance FRAC   allowed fractional regression (default: 0.20)
  --rebaseline       rewrite the budget baselines from this run
"""

import argparse
import json
import sys
from pathlib import Path


def load_results(path):
    """Map benchmark name -> per-item real_time in ns."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        time_ns = float(b["real_time"])
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[name] = time_ns * scale
    return out


def per_item(results, name):
    """real_time per processed item: Foo/64 divides by 64."""
    t = results[name]
    if "/" in name:
        try:
            return t / float(name.rsplit("/", 1)[1])
        except ValueError:
            pass
    return t


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("results", nargs="?", default="BENCH_dsp.json")
    ap.add_argument("--budgets",
                    default=str(Path(__file__).parent / "bench_budgets.json"))
    ap.add_argument("--tolerance", type=float, default=0.20)
    ap.add_argument("--rebaseline", action="store_true")
    args = ap.parse_args()

    results = load_results(args.results)
    with open(args.budgets) as fh:
        budgets = json.load(fh)

    failures = []
    missing = []

    for name, entry in sorted(budgets.get("baselines_ns", {}).items()):
        if name not in results:
            missing.append(name)
            continue
        baseline = float(entry)
        current = results[name]
        if args.rebaseline:
            budgets["baselines_ns"][name] = round(current, 2)
            continue
        limit = baseline * (1.0 + args.tolerance)
        status = "ok" if current <= limit else "REGRESSED"
        print(f"{status:>9}  {name}: {current:.1f} ns "
              f"(baseline {baseline:.1f}, limit {limit:.1f})")
        if current > limit:
            failures.append(name)

    for name, spec in sorted(budgets.get("ratio_floors", {}).items()):
        num, den = spec["numerator"], spec["denominator"]
        if num not in results or den not in results:
            missing.append(f"{name} ({num} / {den})")
            continue
        ratio = per_item(results, num) / per_item(results, den)
        floor = float(spec["min_ratio"])
        status = "ok" if ratio >= floor else "REGRESSED"
        print(f"{status:>9}  {name}: {ratio:.2f}x (floor {floor:.2f}x)")
        if ratio < floor:
            failures.append(name)

    if args.rebaseline:
        with open(args.budgets, "w") as fh:
            json.dump(budgets, fh, indent=2)
            fh.write("\n")
        print(f"rebaselined {args.budgets} from {args.results}")

    if missing:
        print("missing from results (run with the default filter?): "
              + ", ".join(missing), file=sys.stderr)
        failures.extend(missing)
    if failures:
        print(f"check_bench_regression: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("check_bench_regression: all budgets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
