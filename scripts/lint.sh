#!/bin/sh
# Run clang-tidy (configuration in .clang-tidy) over the library
# sources by building a lint-enabled tree.
#
# Usage: scripts/lint.sh
#
# Exits 0 with a message when clang-tidy is not installed so CI
# images without LLVM tooling stay green.
set -e
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint: clang-tidy not found; skipping (install clang-tidy to enable)"
    exit 0
fi

cmake -B build-lint -DSIDEWINDER_LINT=ON
cmake --build build-lint -j
echo "lint: clean"
