#!/bin/sh
# Reproduce every result in EXPERIMENTS.md from scratch.
#
# Usage: scripts/reproduce.sh [fast] [tsan] [asan]
#   fast  — run the experiment binaries on ~6x shorter traces.
#   tsan  — additionally build with -DSIDEWINDER_SANITIZE=thread and
#           run the parallel sweep engine's tests (sim_sweep_test,
#           support_thread_pool_test) plus the ExecutionPlan tests
#           (il_plan_test, hub_plan_property_test), the
#           block-execution tests (hub_block_test — pushBlock runs
#           under the same engine mutex the per-sample path takes),
#           and the fleet tests (sim_fleet_test — shard workers
#           racing on the shared plan cache is exactly where a data
#           race would hide), and the live-reconfiguration tests
#           (hub_reconfig_test — staging in the shadow slot while
#           the wave loop executes the live plans crosses the same
#           engine mutex), and the placer tests (hub_placer_test —
#           place() is documented const-safe for concurrent callers,
#           and the test drives it from 8 threads at once) under
#           ThreadSanitizer before the normal run. SW_TSAN=1 enables
#           the same.
#   asan  — additionally build with
#           -DSIDEWINDER_SANITIZE=address,undefined and run the
#           fault-tolerance tests (transport_reliable_test,
#           hub_supervision_test, sim_faults_test) and the
#           ExecutionPlan tests (il_plan_test,
#           hub_plan_property_test) under ASan/UBSan: the fault
#           injectors exercise the decoder's resync and the
#           supervisor's re-push paths with deliberately mangled
#           bytes, and the plan tests drive the engine's cached
#           input-pointer wave loop, exactly where memory bugs would
#           hide. The block-execution tests (hub_block_test) and the
#           Q15 fixed-point primitive tests (dsp_q15_test) also run
#           here: the block path writes through raw lane pointers
#           with per-node strides, and the Q15 kernels are exactly
#           where integer overflow UB would hide. The fleet tests
#           (sim_fleet_test) run here too: tenants share one plan
#           instance, so a lifetime bug in the cache would surface as
#           a use-after-free under churn. The live-reconfiguration
#           tests (hub_reconfig_test) run here too: delta splicing
#           resolves 8-byte hash references into live node pointers
#           and rollback tears the staged half down, exactly where a
#           dangling reference would hide. The placer tests
#           (hub_placer_test) run here too: the fuzzed-workload
#           rounds stress the rip-up/repair bookkeeping, exactly
#           where an out-of-bounds ledger index would hide. The
#           value-range soundness gate (il_range_test) runs under
#           both sanitizers: the Q15
#           saturation-event counters are compiled in there (the
#           sanitize trees define SIDEWINDER_Q15_COUNTERS), so the
#           proof-vs-execution cross-check actually bites.
#           SW_ASAN=1 enables the same.
set -e
cd "$(dirname "$0")/.."

for arg in "$@"; do
    [ "$arg" = "fast" ] && export SW_FAST=1
    [ "$arg" = "tsan" ] && SW_TSAN=1
    [ "$arg" = "asan" ] && SW_ASAN=1
done

if [ "${SW_TSAN:-0}" = "1" ]; then
    # TSan is incompatible with ASan, so it gets its own tree. Only
    # the concurrency-bearing tests run here; the full (uninstrumented)
    # suite still runs below.
    cmake -B build-tsan -G Ninja -DSIDEWINDER_SANITIZE=thread
    cmake --build build-tsan --target sim_sweep_test \
        support_thread_pool_test il_plan_test hub_plan_property_test \
        hub_block_test sim_fleet_test il_range_test hub_reconfig_test \
        hub_placer_test
    echo "== ThreadSanitizer: parallel sweep engine =="
    build-tsan/tests/support_thread_pool_test
    build-tsan/tests/sim_sweep_test
    echo "== ThreadSanitizer: execution plan =="
    build-tsan/tests/il_plan_test
    build-tsan/tests/hub_plan_property_test
    echo "== ThreadSanitizer: block execution =="
    build-tsan/tests/hub_block_test
    echo "== ThreadSanitizer: fleet runtime + shared plan cache =="
    build-tsan/tests/sim_fleet_test
    echo "== ThreadSanitizer: value-range soundness gate =="
    build-tsan/tests/il_range_test
    echo "== ThreadSanitizer: live reconfiguration =="
    build-tsan/tests/hub_reconfig_test
    echo "== ThreadSanitizer: negotiated-congestion placer =="
    build-tsan/tests/hub_placer_test
fi

if [ "${SW_ASAN:-0}" = "1" ]; then
    cmake -B build-asan -G Ninja \
        -DSIDEWINDER_SANITIZE=address,undefined
    cmake --build build-asan --target transport_reliable_test \
        hub_supervision_test sim_faults_test il_plan_test \
        hub_plan_property_test hub_block_test dsp_q15_test \
        sim_fleet_test il_range_test hub_reconfig_test \
        hub_placer_test
    echo "== ASan/UBSan: fault-tolerance stack =="
    build-asan/tests/transport_reliable_test
    build-asan/tests/hub_supervision_test
    build-asan/tests/sim_faults_test
    echo "== ASan/UBSan: execution plan =="
    build-asan/tests/il_plan_test
    build-asan/tests/hub_plan_property_test
    echo "== ASan/UBSan: block execution + Q15 =="
    build-asan/tests/hub_block_test
    build-asan/tests/dsp_q15_test
    echo "== ASan/UBSan: fleet runtime + shared plan cache =="
    build-asan/tests/sim_fleet_test
    echo "== ASan/UBSan: value-range soundness gate =="
    build-asan/tests/il_range_test
    echo "== ASan/UBSan: live reconfiguration =="
    build-asan/tests/hub_reconfig_test
    echo "== ASan/UBSan: negotiated-congestion placer =="
    build-asan/tests/hub_placer_test
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# The shipped wake conditions must pass the static analyzer under the
# strictest setting (also registered as the swlint_all_apps ctest).
echo "== swlint: built-in wake conditions =="
build/tools/swlint --all-apps --Werror

{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            echo
            echo "============================================================"
            echo "== $(basename "$b")"
            echo "============================================================"
            case "$(basename "$b")" in
            bench_dsp_micro)
                # Also capture JSON so the budget gate below can
                # compare this run against scripts/bench_budgets.json.
                "$b" --benchmark_out=bench_check.json \
                    --benchmark_out_format=json
                ;;
            *)
                "$b"
                ;;
            esac
        fi
    done
} 2>&1 | tee bench_output.txt

# Fail the reproduction if a tracked benchmark regressed >20% against
# its recorded baseline, a documented speedup ratio fell below its
# floor, the fleet run broke its cache-hit-rate / memory-per-device
# budgets or determinism flag (docs/performance.md), the
# reconfiguration run broke its delta-wire-cost / blind-window
# budgets (docs/fault-model.md, "Live reconfiguration"), or the
# placement run let the negotiated placer spend more than the greedy
# ladder, rescue nothing, or diverge across thread counts
# (docs/placement.md).
echo "== benchmark regression gate =="
python3 scripts/check_bench_regression.py bench_check.json \
    --fleet BENCH_fleet.json --reconfig BENCH_reconfig.json \
    --placement BENCH_placement.json
