#!/bin/sh
# Reproduce every result in EXPERIMENTS.md from scratch.
#
# Usage: scripts/reproduce.sh [fast]
#   fast  — run the experiment binaries on ~6x shorter traces.
set -e
cd "$(dirname "$0")/.."

[ "$1" = "fast" ] && export SW_FAST=1

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            echo
            echo "============================================================"
            echo "== $(basename "$b")"
            echo "============================================================"
            "$b"
        fi
    done
} 2>&1 | tee bench_output.txt
