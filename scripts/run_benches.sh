#!/usr/bin/env bash
# Build and run the DSP microbenchmarks, recording the results as
# google-benchmark JSON in BENCH_dsp.json at the repo root. The JSON
# contains both the naive reference path (BM_FftRealNaive — the
# pre-planned-FFT baseline) and the planned paths (BM_FftReal,
# BM_FftPlanReal, ...), so the planned-vs-naive speedup and the
# allocs/iter counters are tracked release over release.
#
# Usage: scripts/run_benches.sh [benchmark filter regex]
#   BUILD_DIR=...   build directory (default: build)
#   OUT=...         output JSON path (default: BENCH_dsp.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_dsp.json}"
FILTER="${1:-.}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_dsp_micro >/dev/null

"$BUILD_DIR"/bench/bench_dsp_micro \
    --benchmark_filter="$FILTER" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json

echo "wrote $OUT"
