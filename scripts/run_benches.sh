#!/usr/bin/env bash
# Build and run the tracked benchmarks, recording results as JSON at
# the repo root:
#
#  - BENCH_dsp.json   — google-benchmark output of bench_dsp_micro.
#    Contains both the naive reference path (BM_FftRealNaive — the
#    pre-planned-FFT baseline) and the planned paths (BM_FftReal,
#    BM_FftPlanReal, ...), so the planned-vs-naive speedup and the
#    allocs/iter counters are tracked release over release. Also
#    records the static analyzer's wall-clock over every shipped
#    wake condition (BM_Analyze*): admission control runs on each
#    push, so il::analyze() must stay far under 10 ms per program.
#    The execution-plan benchmarks (BM_Lower, and
#    BM_PlanDispatchSirenPhrase vs BM_LegacyDispatchSirenPhrase —
#    docs/execution-plan.md) track the install-time compile cost and
#    the plan-vs-legacy per-sample dispatch speedup.
#  - BENCH_sweep.json — bench_sweep_scaling: serial vs parallel
#    wall-clock of a fig6-style simulation grid at 1/2/4/hw threads,
#    the speedup per thread count, and a determinism flag asserting
#    the parallel results matched the serial ones field-for-field.
#  - BENCH_faults.json — bench_fault_sweep: recall + power of the
#    supervised Sidewinder stack vs link corruption / frame-drop /
#    hub-reset rate (docs/fault-model.md), plus a flag asserting the
#    fault-free cell stays bit-identical run over run.
#  - BENCH_fleet.json — bench_fleet_scaling: devices/sec, samples/sec,
#    memory per device, and the fleet plan cache's hit rate at 1k /
#    10k / 100k simulated devices (docs/performance.md, "Fleet
#    execution"), plus a serial-vs-parallel determinism flag.
#  - BENCH_reconfig.json — bench_reconfig: delta vs full-push wire
#    bytes of a one-threshold retune per app, the blind window of a
#    committed A/B swap on the fig5 robot workload at 115200 baud,
#    the corrupted-update commit/rollback counts, and the
#    stalled-transfer rollback latency (docs/fault-model.md, "Live
#    reconfiguration").
#  - BENCH_placement.json — bench_placement: fleet-wide hub power of
#    the negotiated-congestion placer vs the frozen greedy ladder
#    over a mixed 10k-device population, the count of rescued
#    conditions, rip-up/convergence counters, and a 1-vs-4-thread
#    determinism flag (docs/placement.md).
#
# Every JSON record carries its worker-thread context — the effective
# pool width, the SW_THREADS override (null/unset when absent), and
# the machine's core count — so numbers from thread-starved or
# single-core containers are identifiable after the fact: a parallel
# "speedup" is only meaningful relative to the recorded "cores".
#
# Usage: scripts/run_benches.sh [benchmark filter regex]
#   BUILD_DIR=...   build directory (default: build)
#   OUT=...         DSP output JSON path (default: BENCH_dsp.json)
#   OUT_SWEEP=...   sweep output JSON path (default: BENCH_sweep.json)
#   OUT_FAULTS=...  fault sweep JSON path (default: BENCH_faults.json)
#   OUT_FLEET=...   fleet scaling JSON path (default: BENCH_fleet.json)
#   OUT_RECONFIG=... reconfiguration JSON path (default: BENCH_reconfig.json)
#   OUT_PLACEMENT=... placement JSON path (default: BENCH_placement.json)
#   SW_FAST=1       scale the sweep traces ~6x down (ratio unchanged)
#                   and drop the fleet's 100k population
#   SW_THREADS=N    override the worker-thread count (recorded in
#                   every JSON context block)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_dsp.json}"
OUT_SWEEP="${OUT_SWEEP:-BENCH_sweep.json}"
OUT_FAULTS="${OUT_FAULTS:-BENCH_faults.json}"
OUT_FLEET="${OUT_FLEET:-BENCH_fleet.json}"
OUT_RECONFIG="${OUT_RECONFIG:-BENCH_reconfig.json}"
OUT_PLACEMENT="${OUT_PLACEMENT:-BENCH_placement.json}"
FILTER="${1:-.}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_dsp_micro \
    bench_sweep_scaling bench_fault_sweep bench_fleet_scaling \
    bench_reconfig bench_placement \
    >/dev/null

# Refuse to record numbers from an unoptimized tree: a Debug build is
# 5-20x slower and would poison the checked-in baselines that
# check_bench_regression.py compares against.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
case "$build_type" in
*[Dd]ebug*)
    echo "run_benches.sh: refusing to benchmark a $build_type build" \
        "($BUILD_DIR); reconfigure with -DCMAKE_BUILD_TYPE=Release" >&2
    exit 1
    ;;
esac

"$BUILD_DIR"/bench/bench_dsp_micro \
    --benchmark_filter="$FILTER" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json

# Belt and braces: the bench binary records whether *it* was compiled
# with optimization (the cache can be empty when the default applies),
# so reject output that self-reports as a debug compile.
if ! grep -q '"sidewinder_build_type": *"release"' "$OUT"; then
    echo "run_benches.sh: $OUT reports a debug compile of" \
        "bench_dsp_micro; refusing to keep it" >&2
    rm -f "$OUT"
    exit 1
fi

echo "wrote $OUT"

"$BUILD_DIR"/bench/bench_sweep_scaling "$OUT_SWEEP"

"$BUILD_DIR"/bench/bench_fault_sweep "$OUT_FAULTS"

"$BUILD_DIR"/bench/bench_fleet_scaling "$OUT_FLEET"

"$BUILD_DIR"/bench/bench_reconfig "$OUT_RECONFIG"

"$BUILD_DIR"/bench/bench_placement "$OUT_PLACEMENT"
