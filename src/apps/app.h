/**
 * @file
 * Application interface: one continuous-sensing application in the
 * two-stage structure the paper advocates (Section 2): a conservative,
 * high-recall wake-up condition that runs on the hub, plus a
 * full-precision classifier that runs on the main CPU after a wake-up
 * to "eliminate any false positives" (Section 2.1.2).
 */

#ifndef SIDEWINDER_APPS_APP_H
#define SIDEWINDER_APPS_APP_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "il/validate.h"
#include "trace/types.h"

namespace sidewinder::apps {

/** One continuous-sensing application under evaluation. */
class Application
{
  public:
    virtual ~Application() = default;

    /** Short identifier, e.g. "steps". */
    virtual std::string name() const = 0;

    /** Ground-truth event type this application detects. */
    virtual std::string eventType() const = 0;

    /** Sensor channels the application consumes. */
    virtual std::vector<il::ChannelInfo> channels() const = 0;

    /**
     * The Sidewinder wake-up condition: conservative (high recall,
     * moderate precision), built only from platform algorithms.
     */
    virtual core::ProcessingPipeline wakeCondition() const = 0;

    /**
     * The full-precision main-CPU classifier, run over the raw trace
     * samples in [@p begin, @p end) while the device is awake.
     *
     * @return detection timestamps in seconds, ascending.
     */
    virtual std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const = 0;

    /** Matching tolerance when scoring detections, seconds. */
    virtual double matchTolerance() const { return 0.5; }

    /**
     * Raw history the application asks the hub to buffer and hand
     * over on a wake-up, seconds (Section 3.8 of the paper: "an API
     * would allow developers to specify what data their application
     * should receive"). Must cover the classifier's warmup plus the
     * part of the event that elapses before the condition fires.
     */
    virtual double recommendedLookbackSeconds() const { return 3.0; }

    /**
     * How long the device should stay awake after the last hub
     * trigger, seconds. Must bridge the condition's re-assertion
     * cadence for sustained events (consecutive count x window hop).
     */
    virtual double recommendedEventDwellSeconds() const { return 1.0; }

    /**
     * True when multiple detections inside one ground-truth event
     * should be scored as a single detection (events with duration).
     */
    virtual bool coalesceDetections() const { return false; }
};

} // namespace sidewinder::apps

#endif // SIDEWINDER_APPS_APP_H
