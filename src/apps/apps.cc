#include "apps/apps.h"

namespace sidewinder::apps {

std::vector<std::unique_ptr<Application>>
accelerometerApps()
{
    std::vector<std::unique_ptr<Application>> apps;
    apps.push_back(makeStepsApp());
    apps.push_back(makeTransitionsApp());
    apps.push_back(makeHeadbuttsApp());
    return apps;
}

std::vector<std::unique_ptr<Application>>
audioApps()
{
    std::vector<std::unique_ptr<Application>> apps;
    apps.push_back(makeSirenApp());
    apps.push_back(makeMusicJournalApp());
    apps.push_back(makePhraseApp());
    return apps;
}

std::vector<std::unique_ptr<Application>>
allApps()
{
    auto apps = accelerometerApps();
    for (auto &app : audioApps())
        apps.push_back(std::move(app));
    return apps;
}

} // namespace sidewinder::apps
