/**
 * @file
 * Factories for the six applications of Section 3.7 of the paper.
 */

#ifndef SIDEWINDER_APPS_APPS_H
#define SIDEWINDER_APPS_APPS_H

#include <memory>
#include <vector>

#include "apps/app.h"

namespace sidewinder::apps {

/** Step counter (Section 3.7.1, after Libby's footstep detector). */
std::unique_ptr<Application> makeStepsApp();

/** Sit/stand posture-transition detector (Section 3.7.1). */
std::unique_ptr<Application> makeTransitionsApp();

/** Headbutt (sudden forward head movement) detector (Section 3.7.1). */
std::unique_ptr<Application> makeHeadbuttsApp();

/** Emergency-vehicle siren detector (Section 3.7.2). */
std::unique_ptr<Application> makeSirenApp();

/** Music journal (Section 3.7.2). */
std::unique_ptr<Application> makeMusicJournalApp();

/** Phrase detection (Section 3.7.2). */
std::unique_ptr<Application> makePhraseApp();

/**
 * Double-shake gesture detector — extension application for the
 * timeliness scenario of Section 5.4 (uWave-style gestures). Not part
 * of the paper's six applications (not included in allApps());
 * requires traces generated with a non-zero gestureFraction.
 */
std::unique_ptr<Application> makeGestureApp();

/**
 * Barometer floor-change detector — extension application showing the
 * architecture on a third sensor domain. Not part of the paper's six
 * applications; requires traces from trace::generateBaroTrace().
 */
std::unique_ptr<Application> makeFloorsApp();

/** The three accelerometer applications. */
std::vector<std::unique_ptr<Application>> accelerometerApps();

/** The three audio applications. */
std::vector<std::unique_ptr<Application>> audioApps();

/** All six applications. */
std::vector<std::unique_ptr<Application>> allApps();

} // namespace sidewinder::apps

#endif // SIDEWINDER_APPS_APPS_H
