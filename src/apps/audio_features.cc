#include "apps/audio_features.h"

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/filters.h"
#include "support/error.h"

namespace sidewinder::apps {

std::vector<AudioWindowFeatures>
extractAudioFeatures(const trace::Trace &trace, std::size_t begin,
                     std::size_t end, const AudioFeatureConfig &config)
{
    if (!dsp::isPowerOfTwo(config.windowSize))
        throw ConfigError("audio feature window must be a power of two");
    if (config.hop == 0 || config.hop > config.windowSize)
        throw ConfigError("audio feature hop must be in [1, window]");
    if (config.subWindowSize == 0 ||
        config.subWindowSize > config.windowSize)
        throw ConfigError("audio sub-window must be in [1, window]");

    const auto audio_idx = trace.channelIndex("AUDIO");
    const auto &samples = trace.channels[audio_idx];
    end = std::min(end, samples.size());

    const dsp::FftBlockFilter high_pass(dsp::PassBand::HighPass,
                                        config.highPassCutoffHz,
                                        trace.sampleRateHz);

    std::vector<AudioWindowFeatures> features;
    for (std::size_t start = begin;
         start + config.windowSize <= end; start += config.hop) {
        const std::vector<double> frame(
            samples.begin() + static_cast<long>(start),
            samples.begin() + static_cast<long>(start +
                                                config.windowSize));

        AudioWindowFeatures f;
        f.time = trace.timeOf(start + config.windowSize / 2);
        f.amplitudeVariance = dsp::variance(frame);
        f.rms = dsp::rootMeanSquare(frame);

        // ZCR variance across sub-windows.
        std::vector<double> zcrs;
        zcrs.reserve(config.windowSize / config.subWindowSize);
        for (std::size_t sub = 0;
             sub + config.subWindowSize <= frame.size();
             sub += config.subWindowSize) {
            const std::vector<double> sub_frame(
                frame.begin() + static_cast<long>(sub),
                frame.begin() +
                    static_cast<long>(sub + config.subWindowSize));
            zcrs.push_back(dsp::zeroCrossingRate(sub_frame));
        }
        f.zcrVariance = dsp::variance(zcrs);

        // Plain spectral features.
        const auto mags = dsp::magnitudeSpectrum(frame);
        const auto dom = dsp::dominantFrequency(mags);
        f.dominantFreqHz = dsp::binFrequencyHz(dom.bin, frame.size(),
                                               trace.sampleRateHz);
        f.peakToMeanRatio = dom.peakToMeanRatio();

        // Siren front end: high-pass then spectral peak.
        const auto hp = high_pass.apply(frame);
        const auto hp_mags = dsp::magnitudeSpectrum(hp);
        const auto hp_dom = dsp::dominantFrequency(hp_mags);
        f.highPassDominantFreqHz = dsp::binFrequencyHz(
            hp_dom.bin, hp.size(), trace.sampleRateHz);
        f.highPassPeakToMeanRatio = hp_dom.peakToMeanRatio();

        features.push_back(f);
    }
    return features;
}

std::vector<double>
runsOfFlaggedWindows(const std::vector<AudioWindowFeatures> &features,
                     const std::vector<bool> &flags, double min_duration,
                     double max_gap)
{
    if (features.size() != flags.size())
        throw ConfigError("feature/flag count mismatch");

    std::vector<double> detections;
    double run_start = 0.0;
    double run_end = 0.0;
    bool in_run = false;

    auto close_run = [&]() {
        if (in_run && run_end - run_start >= min_duration)
            detections.push_back(0.5 * (run_start + run_end));
        in_run = false;
    };

    for (std::size_t i = 0; i < features.size(); ++i) {
        if (!flags[i])
            continue;
        const double t = features[i].time;
        if (in_run && t - run_end <= max_gap) {
            run_end = t;
        } else {
            close_run();
            in_run = true;
            run_start = t;
            run_end = t;
        }
    }
    close_run();
    return detections;
}

} // namespace sidewinder::apps
