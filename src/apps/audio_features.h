/**
 * @file
 * Windowed audio feature extraction shared by the audio applications'
 * main-CPU classifiers (Section 3.7.2 of the paper): amplitude
 * variance, zero-crossing-rate variance across sub-windows, and
 * dominant-frequency statistics.
 */

#ifndef SIDEWINDER_APPS_AUDIO_FEATURES_H
#define SIDEWINDER_APPS_AUDIO_FEATURES_H

#include <cstddef>
#include <vector>

#include "trace/types.h"

namespace sidewinder::apps {

/** Features of one analysis window of audio. */
struct AudioWindowFeatures
{
    /** Window midpoint, seconds from trace start. */
    double time = 0.0;
    /** Variance of the amplitude over the whole window. */
    double amplitudeVariance = 0.0;
    /** Variance of the ZCR across the window's sub-windows. */
    double zcrVariance = 0.0;
    /** Root mean square of the window. */
    double rms = 0.0;
    /** Frequency of the strongest non-DC spectral bin, Hz. */
    double dominantFreqHz = 0.0;
    /** Dominant-bin magnitude over mean bin magnitude. */
    double peakToMeanRatio = 0.0;
    /** Same, computed after a 750 Hz high-pass (siren front end). */
    double highPassPeakToMeanRatio = 0.0;
    /** Dominant frequency after the 750 Hz high-pass, Hz. */
    double highPassDominantFreqHz = 0.0;
};

/** Parameters of the feature extraction. */
struct AudioFeatureConfig
{
    /** Analysis window length in samples (power of two). */
    std::size_t windowSize = 2048;
    /** Advance between windows in samples. */
    std::size_t hop = 1024;
    /** Sub-window length for the ZCR-variance feature. */
    std::size_t subWindowSize = 64;
    /** High-pass cutoff used for the siren features, Hz. */
    double highPassCutoffHz = 750.0;
};

/**
 * Extract features for every analysis window fully contained in
 * [@p begin, @p end) of the audio channel of @p trace.
 */
std::vector<AudioWindowFeatures>
extractAudioFeatures(const trace::Trace &trace, std::size_t begin,
                     std::size_t end,
                     const AudioFeatureConfig &config = {});

/**
 * Group consecutive flagged windows into runs and return the midpoint
 * time of each run at least @p min_duration long. Windows are
 * consecutive when their times differ by at most @p max_gap seconds.
 */
std::vector<double>
runsOfFlaggedWindows(const std::vector<AudioWindowFeatures> &features,
                     const std::vector<bool> &flags, double min_duration,
                     double max_gap);

} // namespace sidewinder::apps

#endif // SIDEWINDER_APPS_AUDIO_FEATURES_H
