/**
 * @file
 * Floor-change detector — a barometer application demonstrating the
 * architecture on a third sensor domain (the Nexus-class barometer
 * from the paper's sensor inventory; the paper evaluates only
 * accelerometer and microphone applications).
 *
 * Elevator rides and stair climbs change ambient pressure by
 * ~0.4 hPa per floor over seconds; weather drift is orders of
 * magnitude slower and door/HVAC blips are brief and small. The
 * wake-up condition thresholds the pressure range of sliding 4 s
 * windows; the main-CPU classifier requires a sustained slope
 * accumulating at least ~0.75 of a floor.
 */

#include "apps/apps.h"

#include <cmath>
#include <cstddef>

#include "core/algorithm.h"
#include "core/sensors.h"
#include "dsp/features.h"
#include "trace/baro_gen.h"

namespace sidewinder::apps {

namespace {

/** Hub window: 4 s sliding by 2 s at 20 Hz. */
constexpr int wakeWindowSize = 80;
constexpr int wakeWindowHop = 40;
/** Pressure range that suggests vertical motion, hPa. */
constexpr double wakeRangeThreshold = 0.14;
constexpr int wakeConsecutiveWindows = 2;

/** Classifier: 2 s window means advancing by 1 s (overlapping). */
constexpr std::size_t slopeWindow = 40;
constexpr std::size_t slopeHop = 20;
constexpr double minSlope = 0.015;
/** Total change that confirms a floor transition, hPa. */
constexpr double minTotalChange = 0.25;

class FloorsApp : public Application
{
  public:
    std::string name() const override { return "floors"; }

    std::string eventType() const override
    {
        return trace::event_type::floorChange;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::barometerChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;
        ProcessingBranch branch(channel::barometer);
        branch.add(Window(wakeWindowSize, false, wakeWindowHop))
            .add(Range())
            .add(MinThreshold(wakeRangeThreshold))
            .add(Consecutive(wakeConsecutiveWindows));
        pipeline.add(std::move(branch));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &p =
            trace.channels[trace.channelIndex("BARO")];
        end = std::min(end, p.size());

        // Means of overlapping 2 s windows, one per second.
        std::vector<double> means;
        std::vector<double> mean_times;
        for (std::size_t s = begin; s + slopeWindow <= end;
             s += slopeHop) {
            const std::vector<double> frame(
                p.begin() + static_cast<long>(s),
                p.begin() + static_cast<long>(s + slopeWindow));
            means.push_back(dsp::mean(frame));
            mean_times.push_back(
                trace.timeOf(s + slopeWindow / 2));
        }

        const double window_seconds =
            static_cast<double>(slopeHop) / trace.sampleRateHz;

        // Runs of sustained same-sign slope accumulating enough
        // change.
        std::vector<double> detections;
        std::size_t run_start = 0;
        double accumulated = 0.0;
        int run_sign = 0;

        auto close_run = [&](std::size_t i) {
            if (run_sign != 0 &&
                std::abs(accumulated) >= minTotalChange) {
                detections.push_back(
                    0.5 * (mean_times[run_start] +
                           mean_times[i - 1]));
            }
            run_sign = 0;
            accumulated = 0.0;
        };

        for (std::size_t i = 1; i < means.size(); ++i) {
            const double slope =
                (means[i] - means[i - 1]) / window_seconds;
            const int sign = slope >= minSlope    ? 1
                             : slope <= -minSlope ? -1
                                                  : 0;
            if (sign != 0 && sign == run_sign) {
                accumulated += means[i] - means[i - 1];
            } else if (sign != 0) {
                close_run(i);
                run_sign = sign;
                run_start = i - 1;
                accumulated = means[i] - means[i - 1];
            } else {
                close_run(i);
            }
        }
        close_run(means.size());
        return detections;
    }

    double matchTolerance() const override { return 6.0; }

    bool coalesceDetections() const override { return true; }

    /** Rides evolve over tens of seconds; buffer a deep history. */
    double recommendedLookbackSeconds() const override { return 6.0; }

    /**
     * The condition re-asserts every 4 s (consecutive x window hop);
     * the dwell must bridge that cadence or a ride fragments into
     * awake islands that split the slope run.
     */
    double
    recommendedEventDwellSeconds() const override
    {
        return 3.0;
    }
};

} // namespace

std::unique_ptr<Application>
makeFloorsApp()
{
    return std::make_unique<FloorsApp>();
}

} // namespace sidewinder::apps
