/**
 * @file
 * Double-shake gesture detector — the timeliness scenario of
 * Section 5.4 of the paper: "the user of a gesture recognition
 * application [uWave] would not be satisfied if the application
 * detects the performed gesture after a delay of more than a couple
 * of seconds." Batching saves power but cannot meet that bound;
 * Sidewinder wakes within the transition time.
 *
 * The gesture is two short bursts of fast, strong x-axis oscillation
 * (see trace::HumanTraceConfig::gestureFraction). The wake-up
 * condition is a sustained-energy detector; the main-CPU classifier
 * confirms the oscillation (high ZCR — object-handling jerks are
 * one-sided and fail this) and the two-burst rhythm.
 */

#include "apps/apps.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/algorithm.h"
#include "core/sensors.h"
#include "dsp/features.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Hub energy window: 0.32 s with half overlap at 50 Hz. */
constexpr int wakeWindowSize = 16;
constexpr int wakeWindowHop = 8;
/** RMS admission: bursts reach ~5-6.4; steps stay near 2. */
constexpr double wakeRmsThreshold = 3.5;
constexpr int wakeConsecutiveWindows = 2;

/** Classifier burst criteria. */
constexpr double burstRms = 4.0;
constexpr double burstZcr = 0.15;
/** Minimum burst length, seconds. */
constexpr double minBurstSeconds = 0.2;
/** Maximum pause between the two bursts, seconds. */
constexpr double maxPauseSeconds = 0.8;

class GestureApp : public Application
{
  public:
    std::string name() const override { return "gesture"; }

    std::string eventType() const override
    {
        return trace::event_type::gesture;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::accelerometerChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;
        ProcessingBranch branch(channel::accelerometerX);
        branch.add(Window(wakeWindowSize, false, wakeWindowHop))
            .add(Rms())
            .add(MinThreshold(wakeRmsThreshold))
            .add(Consecutive(wakeConsecutiveWindows));
        pipeline.add(std::move(branch));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &x =
            trace.channels[trace.channelIndex("ACC_X")];
        end = std::min(end, x.size());

        // Burst runs: windows that are both loud and oscillating.
        struct Run
        {
            double start;
            double end;
        };
        std::vector<Run> runs;

        const auto window =
            static_cast<std::size_t>(wakeWindowSize);
        const auto hop = static_cast<std::size_t>(wakeWindowHop);
        const double window_seconds =
            static_cast<double>(window) / trace.sampleRateHz;

        for (std::size_t start = begin; start + window <= end;
             start += hop) {
            const std::vector<double> frame(
                x.begin() + static_cast<long>(start),
                x.begin() + static_cast<long>(start + window));
            // Oscillation, not a one-sided jerk: loud, frequently
            // crossing zero, and nearly zero-mean (a window straddling
            // a jerk edge has high ZCR from its noise half but a mean
            // comparable to its RMS).
            const double rms = dsp::rootMeanSquare(frame);
            const bool burst =
                rms >= burstRms &&
                dsp::zeroCrossingRate(frame) >= burstZcr &&
                std::abs(dsp::mean(frame)) <= 0.3 * rms;
            if (!burst)
                continue;
            const double t0 = trace.timeOf(start);
            const double t1 = t0 + window_seconds;
            if (!runs.empty() && t0 <= runs.back().end + 1e-9)
                runs.back().end = std::max(runs.back().end, t1);
            else
                runs.push_back(Run{t0, t1});
        }

        // Pair adjacent runs: burst, short pause, burst.
        std::vector<double> detections;
        for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
            const bool long_enough =
                runs[i].end - runs[i].start >= minBurstSeconds &&
                runs[i + 1].end - runs[i + 1].start >= minBurstSeconds;
            const double pause = runs[i + 1].start - runs[i].end;
            if (long_enough && pause > 0.0 &&
                pause <= maxPauseSeconds) {
                detections.push_back(
                    0.5 * (runs[i].start + runs[i + 1].end));
                ++i; // consume both bursts
            }
        }
        return detections;
    }

    double matchTolerance() const override { return 1.0; }

    bool coalesceDetections() const override { return true; }
};

} // namespace

std::unique_ptr<Application>
makeGestureApp()
{
    return std::make_unique<GestureApp>();
}

} // namespace sidewinder::apps
