/**
 * @file
 * Headbutt detector (Section 3.7.1 of the paper): "monitors the
 * y-axis acceleration and searches for local minima between
 * -3.75 m/s^2 and -6.75 m/s^2." Headbutts stand in for very
 * infrequent human actions such as falling.
 */

#include "apps/apps.h"

#include "core/algorithm.h"
#include "core/sensors.h"
#include "dsp/filters.h"
#include "dsp/peaks.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

constexpr int smoothingWindow = 3;
/** Acceptance band for the y-axis dip, m/s^2 (from the paper). */
constexpr double bandLow = -6.75;
constexpr double bandHigh = -3.75;
/** Minimum samples between detections (0.2 s at 50 Hz). */
constexpr int refractorySamples = 10;

class HeadbuttsApp : public Application
{
  public:
    std::string name() const override { return "headbutts"; }

    std::string eventType() const override
    {
        return trace::event_type::headbutt;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::accelerometerChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;
        ProcessingBranch branch(channel::accelerometerY);
        branch.add(MovingAverage(smoothingWindow));
        branch.add(LocalMinima(bandLow, bandHigh, refractorySamples));
        pipeline.add(std::move(branch));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &y =
            trace.channels[trace.channelIndex("ACC_Y")];
        end = std::min(end, y.size());

        dsp::MovingAverage low_pass(smoothingWindow);
        dsp::PeakDetector dips(dsp::PeakPolarity::Minima, bandLow,
                               bandHigh, refractorySamples);

        std::vector<double> detections;
        for (std::size_t i = begin; i < end; ++i) {
            const auto smoothed = low_pass.push(y[i]);
            if (!smoothed)
                continue;
            if (dips.push(*smoothed))
                detections.push_back(trace.timeOf(i));
        }
        return detections;
    }

    double matchTolerance() const override { return 0.5; }

    bool coalesceDetections() const override { return true; }
};

} // namespace

std::unique_ptr<Application>
makeHeadbuttsApp()
{
    return std::make_unique<HeadbuttsApp>();
}

} // namespace sidewinder::apps
