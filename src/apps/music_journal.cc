/**
 * @file
 * Music journal (Section 3.7.2 of the paper): "Audio data is
 * partitioned into windows and passed to two branches for feature
 * extraction. The first branch computes the variance of the amplitude
 * over the entire window. The second branch further partitions the
 * data into smaller windows and computes the zero crossing rate ...
 * It then calculates the variance in zero crossing rate across the
 * set of sub-windows. Finally, an admission control step uses
 * thresholds ... to determine if an event of interest has occurred."
 *
 * Music shows a high amplitude variance (beating envelope) with a
 * *low* ZCR variance (stable pitch); speech shows the opposite ZCR
 * behaviour. After a wake-up the paper hands the audio to the
 * Echoprint.me web service; energy-wise only the wake-up matters, so
 * the main-CPU classifier here performs the music/non-music decision
 * the service's front end would.
 */

#include "apps/apps.h"

#include "apps/audio_features.h"
#include "core/algorithm.h"
#include "core/sensors.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Hub analysis window: 512 ms at 4 kHz. */
constexpr int wakeWindowSize = 2048;
/** Sub-window for the ZCR branch: 16 ms. */
constexpr int zcrSubWindow = 64;
/** Sub-windows per ZCR-variance estimate (aligns both branches). */
constexpr int zcrGroup = 32;
/** Loudness admission: minimum amplitude variance. */
constexpr double minAmplitudeVariance = 0.01;
/** Pitch-stability admission: maximum ZCR variance. */
constexpr double maxZcrVariance = 0.01;
/**
 * Register admission: maximum mean ZCR. Music fundamentals sit below
 * ~520 Hz (ZCR well under 0.5 at 4 kHz) while sirens wail at
 * 900-1800 Hz (ZCR 0.45-0.85); a mean-ZCR ceiling keeps pitched
 * high-register distractors from waking the journal.
 */
constexpr double maxMeanZcr = 0.5;
/** Consecutive qualifying windows (music plays for seconds). */
constexpr int wakeConsecutiveWindows = 3;

/** Main classifier thresholds (tighter than the wake condition). */
constexpr double classifierMinAmpVariance = 0.012;
constexpr double classifierMaxZcrVariance = 0.006;
constexpr double classifierMaxDominantHz = 800.0;
constexpr double classifierMinPitchRatio = 3.0;
constexpr double classifierMinDurationSeconds = 4.0;

class MusicJournalApp : public Application
{
  public:
    std::string name() const override { return "music"; }

    std::string eventType() const override
    {
        return trace::event_type::music;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::audioChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;

        ProcessingBranch loudness(channel::audio);
        loudness.add(Window(wakeWindowSize))
            .add(Variance())
            .add(MinThreshold(minAmplitudeVariance));

        ProcessingBranch pitch_stability(channel::audio);
        pitch_stability.add(Window(zcrSubWindow))
            .add(ZeroCrossingRate())
            .add(Window(zcrGroup))
            .add(Variance())
            .add(MaxThreshold(maxZcrVariance));

        // Shares the window/zcr/window prefix with the branch above
        // (deduplicated by the IL optimizer and the hub engine).
        ProcessingBranch low_register(channel::audio);
        low_register.add(Window(zcrSubWindow))
            .add(ZeroCrossingRate())
            .add(Window(zcrGroup))
            .add(Mean())
            .add(MaxThreshold(maxMeanZcr));

        pipeline.add(std::move(loudness));
        pipeline.add(std::move(pitch_stability));
        pipeline.add(std::move(low_register));
        pipeline.add(And());
        pipeline.add(Consecutive(wakeConsecutiveWindows));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        AudioFeatureConfig config;
        config.windowSize = 2048;
        config.hop = 1024;
        config.subWindowSize = zcrSubWindow;

        const auto features =
            extractAudioFeatures(trace, begin, end, config);
        std::vector<bool> flags(features.size());
        for (std::size_t i = 0; i < features.size(); ++i) {
            const auto &f = features[i];
            flags[i] =
                f.amplitudeVariance >= classifierMinAmpVariance &&
                f.zcrVariance <= classifierMaxZcrVariance &&
                f.dominantFreqHz <= classifierMaxDominantHz &&
                f.peakToMeanRatio >= classifierMinPitchRatio;
        }
        return runsOfFlaggedWindows(features, flags,
                                    classifierMinDurationSeconds, 1.2);
    }

    double matchTolerance() const override { return 3.0; }

    bool coalesceDetections() const override { return true; }
};

} // namespace

std::unique_ptr<Application>
makeMusicJournalApp()
{
    return std::make_unique<MusicJournalApp>();
}

} // namespace sidewinder::apps
