/**
 * @file
 * Phrase detection (Section 3.7.2 of the paper): "Similar to Music
 * Journal, except different parameters are used in the wake-up
 * condition and Google Speech API was used for speech-to-text
 * translation."
 *
 * The wake-up condition is a *speech* detector — high amplitude
 * variance plus high ZCR variance (alternating voiced/unvoiced
 * syllables). It therefore wakes the phone for every speech segment
 * (~5% of each trace) even though the phrase itself occupies < 1%,
 * which is exactly the suboptimality the paper analyzes in
 * Section 5.2.
 *
 * In place of the Google Speech API (a network service we do not
 * have), the main-CPU classifier recognizes the phrase's synthetic
 * acoustic signature: 125 ms slots alternating a 440 + 660 Hz chord
 * with unvoiced noise (see trace/audio_gen.cc and DESIGN.md).
 */

#include "apps/apps.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "dsp/features.h"
#include "dsp/window.h"
#include "dsp/fft.h"
#include "core/algorithm.h"
#include "core/sensors.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Hub analysis window: 512 ms at 4 kHz. */
constexpr int wakeWindowSize = 2048;
constexpr int zcrSubWindow = 64;
constexpr int zcrGroup = 32;
/** Speech is quieter than music: lower loudness admission. */
constexpr double minAmplitudeVariance = 0.004;
/** Speech has *high* ZCR variance (voiced/unvoiced alternation). */
constexpr double minZcrVariance = 0.008;
constexpr int wakeConsecutiveWindows = 2;

/** Phrase recognizer parameters. */
constexpr std::size_t classifierWindow = 512;
constexpr std::size_t classifierHop = 256;
constexpr double toneAHz = 440.0;
constexpr double toneBHz = 660.0;
/** Half-width of each tone's acceptance region, Hz. */
constexpr double toneToleranceHz = 16.0;
/** Both tone regions must exceed this multiple of the mean bin. */
constexpr double toneProminence = 5.0;
/** Guard bands around the tones must stay below this multiple. */
constexpr double guardProminence = 4.0;
constexpr double classifierMinDurationSeconds = 0.6;

class PhraseApp : public Application
{
  public:
    std::string name() const override { return "phrase"; }

    std::string eventType() const override
    {
        return trace::event_type::phrase;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::audioChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;

        ProcessingBranch loudness(channel::audio);
        loudness.add(Window(wakeWindowSize))
            .add(Variance())
            .add(MinThreshold(minAmplitudeVariance));

        ProcessingBranch syllables(channel::audio);
        syllables.add(Window(zcrSubWindow))
            .add(ZeroCrossingRate())
            .add(Window(zcrGroup))
            .add(Variance())
            .add(MinThreshold(minZcrVariance));

        pipeline.add(std::move(loudness));
        pipeline.add(std::move(syllables));
        pipeline.add(And());
        pipeline.add(Consecutive(wakeConsecutiveWindows));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &samples =
            trace.channels[trace.channelIndex("AUDIO")];
        end = std::min(end, samples.size());

        // Scan windows for the dual-tone chord signature; group
        // consecutive hits into a phrase detection.
        std::vector<double> detections;
        double run_start = -1.0;
        double run_end = -1.0;

        auto close_run = [&]() {
            if (run_start >= 0.0 &&
                run_end - run_start >= classifierMinDurationSeconds)
                detections.push_back(0.5 * (run_start + run_end));
            run_start = -1.0;
        };

        for (std::size_t start = begin;
             start + classifierWindow <= end; start += classifierHop) {
            const std::vector<double> frame(
                samples.begin() + static_cast<long>(start),
                samples.begin() +
                    static_cast<long>(start + classifierWindow));
            const double t =
                trace.timeOf(start + classifierWindow / 2);

            if (windowHasChord(frame, trace.sampleRateHz)) {
                if (run_start < 0.0)
                    run_start = t;
                run_end = t;
            } else if (run_start >= 0.0 &&
                       t - run_end > 0.3) {
                close_run();
            }
        }
        close_run();
        return detections;
    }

    double matchTolerance() const override { return 1.5; }

    bool coalesceDetections() const override { return true; }

    /**
     * The phrase may sit at the very start of its speech segment
     * while the wake condition needs ~2-3 s of sustained speech to
     * fire, so the hub must buffer deeper history than the default.
     */
    double recommendedLookbackSeconds() const override { return 5.0; }

  private:
    /**
     * True when @p frame carries both phrase tones prominently and
     * nothing else: music chords whose harmonics graze the tone
     * regions always light up neighbouring frequencies too, so quiet
     * guard bands around the tones reject them.
     */
    static bool
    windowHasChord(std::vector<double> frame, double sample_rate_hz)
    {
        // Hamming windowing keeps tone energy out of the guard bands.
        dsp::applyWindow(frame, dsp::WindowType::Hamming);
        const auto mags = dsp::magnitudeSpectrum(frame);
        double total = 0.0;
        for (std::size_t i = 1; i < mags.size(); ++i)
            total += mags[i];
        const double mean_mag =
            total / static_cast<double>(mags.size() - 1);
        if (mean_mag <= 0.0)
            return false;

        auto band_peak = [&](double lo_hz, double hi_hz) {
            double peak = 0.0;
            for (std::size_t i = 1; i < mags.size(); ++i) {
                const double f = dsp::binFrequencyHz(i, frame.size(),
                                                     sample_rate_hz);
                if (f >= lo_hz && f <= hi_hz)
                    peak = std::max(peak, mags[i]);
            }
            return peak;
        };

        const double tone_a =
            band_peak(toneAHz - toneToleranceHz,
                      toneAHz + toneToleranceHz);
        const double tone_b =
            band_peak(toneBHz - toneToleranceHz,
                      toneBHz + toneToleranceHz);
        const double guard =
            std::max({band_peak(300.0, toneAHz - 2.5 * toneToleranceHz),
                      band_peak(toneAHz + 2.5 * toneToleranceHz,
                                toneBHz - 2.5 * toneToleranceHz),
                      band_peak(toneBHz + 2.5 * toneToleranceHz,
                                1000.0)});

        return tone_a >= toneProminence * mean_mag &&
               tone_b >= toneProminence * mean_mag &&
               guard < guardProminence * mean_mag;
    }
};

} // namespace

std::unique_ptr<Application>
makePhraseApp()
{
    return std::make_unique<PhraseApp>();
}

} // namespace sidewinder::apps
