#include "apps/predefined.h"

#include "core/algorithm.h"
#include "core/sensors.h"

namespace sidewinder::apps {

core::ProcessingPipeline
significantMotionCondition(double threshold)
{
    using namespace core;

    ProcessingPipeline pipeline;
    for (const auto &channel : {channel::accelerometerX,
                                channel::accelerometerY,
                                channel::accelerometerZ}) {
        ProcessingBranch branch(channel);
        // One-second window, half overlap, per-axis jitter.
        branch.add(Window(50, false, 25));
        branch.add(StdDev());
        pipeline.add(std::move(branch));
    }
    pipeline.add(VectorMagnitude());
    pipeline.add(MinThreshold(threshold));
    return pipeline;
}

core::ProcessingPipeline
significantSoundCondition(double threshold)
{
    using namespace core;

    ProcessingPipeline pipeline;
    ProcessingBranch branch(channel::audio);
    branch.add(Window(256));
    branch.add(Rms());
    pipeline.add(std::move(branch));
    pipeline.add(MinThreshold(threshold));
    return pipeline;
}

} // namespace sidewinder::apps
