/**
 * @file
 * The two predefined activities the evaluation compares against
 * (Section 4.2 of the paper): "significant acceleration" and "sound
 * intensity" — the fixed, manufacturer-chosen wake-up conditions of
 * the Predefined Activity configuration.
 *
 * They are expressed as Sidewinder pipelines here (the hub executes
 * them the same way), but in the modeled product they would be burned
 * into the hub firmware; only their thresholds are tunable, which is
 * exactly the limitation the paper's comparison explores.
 */

#ifndef SIDEWINDER_APPS_PREDEFINED_H
#define SIDEWINDER_APPS_PREDEFINED_H

#include "core/pipeline.h"

namespace sidewinder::apps {

/** Default significant-motion threshold (axis jitter magnitude). */
constexpr double defaultMotionThreshold = 0.5;

/** Default significant-sound RMS threshold. */
constexpr double defaultSoundThreshold = 0.09;

/**
 * Significant motion: per-axis standard deviation over a one-second
 * window, combined across axes, thresholded. Fires on any sustained
 * movement — walking, posture changes, headbutts, vehicle vibration.
 *
 * @param threshold Combined jitter magnitude (m/s^2) above which the
 *     device wakes.
 */
core::ProcessingPipeline
significantMotionCondition(double threshold = defaultMotionThreshold);

/**
 * Significant sound: RMS of 64 ms microphone windows, thresholded.
 *
 * @param threshold RMS amplitude above which the device wakes.
 */
core::ProcessingPipeline
significantSoundCondition(double threshold = defaultSoundThreshold);

} // namespace sidewinder::apps

#endif // SIDEWINDER_APPS_PREDEFINED_H
