/**
 * @file
 * Siren detector (Section 3.7.2 of the paper): "applies a 750 Hz
 * high-pass filter ... transformed to the frequency domain using a FFT
 * in order to extract the magnitude of the dominant frequency and the
 * mean magnitude of all frequency bins. The ratio ... is used to
 * determine if the window contains pitched sounds. Pitched sounds
 * between 850 Hz and 1800 Hz that last longer than 650 ms are
 * classified as sirens."
 *
 * The wake-up condition needs audio-rate FFTs, which is why this is
 * the one application whose hub condition requires the LM4F120
 * microcontroller (Table 2 of the paper).
 */

#include "apps/apps.h"

#include "apps/audio_features.h"
#include "core/algorithm.h"
#include "core/sensors.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Hub analysis window: 64 ms at 4 kHz. */
constexpr int wakeWindowSize = 256;
/** High-pass cutoff from the paper, Hz. */
constexpr double highPassCutoffHz = 750.0;
/** Pitchedness (dominant / mean magnitude) admission ratio. */
constexpr double pitchRatio = 4.0;
/** Siren frequency band from the paper, Hz. */
constexpr double sirenBandLowHz = 850.0;
constexpr double sirenBandHighHz = 1800.0;
/**
 * Consecutive pitched windows required: 11 x 64 ms covers the paper's
 * "longer than 650 ms".
 */
constexpr int wakeConsecutiveWindows = 11;

/** Main classifier: same features, finer hop, tighter ratio. */
constexpr double classifierPitchRatio = 5.0;
constexpr double classifierMinDurationSeconds = 0.65;

class SirenApp : public Application
{
  public:
    std::string name() const override { return "siren"; }

    std::string eventType() const override
    {
        return trace::event_type::siren;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::audioChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;

        // Two branches share the window/high-pass/FFT prefix (the hub
        // engine deduplicates the common nodes).
        ProcessingBranch pitched(channel::audio);
        pitched.add(Window(wakeWindowSize, true))
            .add(HighPassFilter(highPassCutoffHz))
            .add(Fft())
            .add(Spectrum())
            .add(PeakToMeanRatio())
            .add(MinThreshold(pitchRatio));

        ProcessingBranch in_band(channel::audio);
        in_band.add(Window(wakeWindowSize, true))
            .add(HighPassFilter(highPassCutoffHz))
            .add(Fft())
            .add(Spectrum())
            .add(DominantFrequencyHz())
            .add(BandThreshold(sirenBandLowHz, sirenBandHighHz));

        // Music whose upper harmonics pass the 750 Hz filter still
        // has its fundamental below the siren band; requiring the
        // *unfiltered* dominant frequency in band as well rejects it
        // (same discrimination the main-CPU classifier applies).
        ProcessingBranch overall(channel::audio);
        overall.add(Window(wakeWindowSize, true))
            .add(Fft())
            .add(Spectrum())
            .add(DominantFrequencyHz())
            .add(BandThreshold(sirenBandLowHz, sirenBandHighHz));

        pipeline.add(std::move(pitched));
        pipeline.add(std::move(in_band));
        pipeline.add(std::move(overall));
        pipeline.add(And());
        pipeline.add(Consecutive(wakeConsecutiveWindows));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        AudioFeatureConfig config;
        config.windowSize = 256;
        config.hop = 128;
        config.highPassCutoffHz = highPassCutoffHz;

        const auto features =
            extractAudioFeatures(trace, begin, end, config);
        std::vector<bool> flags(features.size());
        for (std::size_t i = 0; i < features.size(); ++i) {
            const auto &f = features[i];
            // A real siren dominates the *unfiltered* spectrum too;
            // music whose upper harmonics leak past the high-pass
            // still has its fundamental (< 850 Hz) dominating overall
            // and is rejected here.
            flags[i] =
                f.highPassPeakToMeanRatio >= classifierPitchRatio &&
                f.highPassDominantFreqHz >= sirenBandLowHz &&
                f.highPassDominantFreqHz <= sirenBandHighHz &&
                f.dominantFreqHz >= sirenBandLowHz &&
                f.dominantFreqHz <= sirenBandHighHz;
        }
        return runsOfFlaggedWindows(features, flags,
                                    classifierMinDurationSeconds, 0.2);
    }

    double matchTolerance() const override { return 1.5; }

    bool coalesceDetections() const override { return true; }
};

} // namespace

std::unique_ptr<Application>
makeSirenApp()
{
    return std::make_unique<SirenApp>();
}

} // namespace sidewinder::apps
