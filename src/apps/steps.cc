/**
 * @file
 * Step counter (Section 3.7.1 of the paper), based on Libby's
 * footstep detection: low-pass filter the x-axis acceleration and
 * count local maxima between 2.5 and 4.5 m/s^2.
 *
 * The wake-up condition uses a moving average as its low-pass stage so
 * it fits the MSP430's real-time budget (the FFT-based filter is the
 * one the paper found the MSP430 could not sustain); the main-CPU
 * classifier re-runs the detection with a tighter band.
 */

#include "apps/apps.h"

#include "core/algorithm.h"
#include "core/sensors.h"
#include "dsp/filters.h"
#include "dsp/peaks.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Smoothing window of the low-pass stage, samples. */
constexpr int smoothingWindow = 5;
/** Peak acceptance band, m/s^2 (from the paper). */
constexpr double bandLow = 2.5;
constexpr double bandHigh = 4.5;
/** Minimum samples between counted steps (0.3 s at 50 Hz). */
constexpr int refractorySamples = 15;

class StepsApp : public Application
{
  public:
    std::string name() const override { return "steps"; }

    std::string eventType() const override
    {
        return trace::event_type::step;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::accelerometerChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;
        ProcessingBranch branch(channel::accelerometerX);
        branch.add(MovingAverage(smoothingWindow));
        branch.add(
            LocalMaxima(bandLow, bandHigh, refractorySamples));
        pipeline.add(std::move(branch));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &x =
            trace.channels[trace.channelIndex("ACC_X")];
        end = std::min(end, x.size());

        dsp::MovingAverage low_pass(smoothingWindow);
        dsp::PeakDetector peaks(dsp::PeakPolarity::Maxima, bandLow,
                                bandHigh, refractorySamples);

        std::vector<double> detections;
        for (std::size_t i = begin; i < end; ++i) {
            const auto smoothed = low_pass.push(x[i]);
            if (!smoothed)
                continue;
            if (peaks.push(*smoothed)) {
                // The confirmed peak is the previous sample; the
                // moving average lags by half its window.
                const double lag =
                    (1.0 + smoothingWindow / 2.0) / trace.sampleRateHz;
                detections.push_back(trace.timeOf(i) - lag);
            }
        }
        return detections;
    }

    double matchTolerance() const override { return 0.3; }
};

} // namespace

std::unique_ptr<Application>
makeStepsApp()
{
    return std::make_unique<StepsApp>();
}

} // namespace sidewinder::apps
