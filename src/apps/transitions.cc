/**
 * @file
 * Sit/stand posture-transition detector (Section 3.7.1 of the paper):
 * the device is standing when z is in [9, 11] and y in [-1, 1], and
 * sitting when z is in [7.5, 9.5] and y in [3.5, 5.5]; a transition is
 * a change between the two postures.
 *
 * The wake-up condition exploits that during any transition the y-axis
 * gravity component must sweep through the gap between the two
 * postures' y bands: a band threshold on smoothed y fires exactly
 * while that sweep is in progress and at no other time.
 */

#include "apps/apps.h"

#include "core/algorithm.h"
#include "core/sensors.h"
#include "dsp/filters.h"
#include "trace/types.h"

namespace sidewinder::apps {

namespace {

/** Wake condition: smoothed y inside the inter-posture gap. */
constexpr int wakeSmoothingWindow = 10;
constexpr double wakeBandLow = 1.5;
constexpr double wakeBandHigh = 3.2;

/** Main classifier posture bands (from the paper). */
constexpr double standZLow = 9.0, standZHigh = 11.0;
constexpr double standYLow = -1.0, standYHigh = 1.0;
constexpr double sitZLow = 7.5, sitZHigh = 9.5;
constexpr double sitYLow = 3.5, sitYHigh = 5.5;

/** Smoothing of the main classifier's orientation estimate. */
constexpr int classifierSmoothingWindow = 25;

enum class Posture { Unknown, Standing, Sitting };

Posture
postureOf(double y, double z)
{
    if (z >= standZLow && z <= standZHigh && y >= standYLow &&
        y <= standYHigh)
        return Posture::Standing;
    if (z >= sitZLow && z <= sitZHigh && y >= sitYLow && y <= sitYHigh)
        return Posture::Sitting;
    return Posture::Unknown;
}

class TransitionsApp : public Application
{
  public:
    std::string name() const override { return "transitions"; }

    std::string eventType() const override
    {
        return trace::event_type::transition;
    }

    std::vector<il::ChannelInfo> channels() const override
    {
        return core::accelerometerChannels();
    }

    core::ProcessingPipeline
    wakeCondition() const override
    {
        using namespace core;
        ProcessingPipeline pipeline;
        ProcessingBranch branch(channel::accelerometerY);
        branch.add(MovingAverage(wakeSmoothingWindow));
        branch.add(BandThreshold(wakeBandLow, wakeBandHigh));
        pipeline.add(std::move(branch));
        return pipeline;
    }

    std::vector<double>
    classify(const trace::Trace &trace, std::size_t begin,
             std::size_t end) const override
    {
        const auto &y =
            trace.channels[trace.channelIndex("ACC_Y")];
        const auto &z =
            trace.channels[trace.channelIndex("ACC_Z")];
        end = std::min(end, y.size());

        dsp::MovingAverage smooth_y(classifierSmoothingWindow);
        dsp::MovingAverage smooth_z(classifierSmoothingWindow);

        std::vector<double> detections;
        Posture last_known = Posture::Unknown;
        for (std::size_t i = begin; i < end; ++i) {
            const auto sy = smooth_y.push(y[i]);
            const auto sz = smooth_z.push(z[i]);
            if (!sy || !sz)
                continue;
            const Posture posture = postureOf(*sy, *sz);
            if (posture == Posture::Unknown)
                continue;
            if (last_known != Posture::Unknown &&
                posture != last_known) {
                detections.push_back(trace.timeOf(i));
            }
            last_known = posture;
        }
        return detections;
    }

    double matchTolerance() const override { return 2.0; }

    bool coalesceDetections() const override { return true; }
};

} // namespace

std::unique_ptr<Application>
makeTransitionsApp()
{
    return std::make_unique<TransitionsApp>();
}

} // namespace sidewinder::apps
