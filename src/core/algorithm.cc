#include "core/algorithm.h"

namespace sidewinder::core {

Algorithm
MovingAverage(int window_size)
{
    return Algorithm("movingAvg",
                     {static_cast<double>(window_size)});
}

Algorithm
ExponentialMovingAverage(double alpha)
{
    return Algorithm("expMovingAvg", {alpha});
}

Algorithm
Window(int size, bool hamming, int hop)
{
    std::vector<double> params = {static_cast<double>(size)};
    if (hamming || hop > 0)
        params.push_back(hamming ? 1.0 : 0.0);
    if (hop > 0)
        params.push_back(static_cast<double>(hop));
    return Algorithm("window", std::move(params));
}

Algorithm Fft() { return Algorithm("fft"); }
Algorithm Ifft() { return Algorithm("ifft"); }
Algorithm Spectrum() { return Algorithm("spectrum"); }

Algorithm
LowPassFilter(double cutoff_hz)
{
    return Algorithm("lowPass", {cutoff_hz});
}

Algorithm
HighPassFilter(double cutoff_hz)
{
    return Algorithm("highPass", {cutoff_hz});
}

Algorithm
Goertzel(double target_hz)
{
    return Algorithm("goertzel", {target_hz});
}

Algorithm
GoertzelRelative(double target_hz)
{
    return Algorithm("goertzelRel", {target_hz});
}

Algorithm VectorMagnitude() { return Algorithm("vectorMagnitude"); }
Algorithm ZeroCrossingRate() { return Algorithm("zcr"); }
Algorithm Mean() { return Algorithm("mean"); }
Algorithm Variance() { return Algorithm("variance"); }
Algorithm StdDev() { return Algorithm("stddev"); }
Algorithm Min() { return Algorithm("min"); }
Algorithm Max() { return Algorithm("max"); }
Algorithm Rms() { return Algorithm("rms"); }
Algorithm Range() { return Algorithm("range"); }
Algorithm DominantFrequencyHz() { return Algorithm("dominantFreqHz"); }

Algorithm
DominantFrequencyMagnitude()
{
    return Algorithm("dominantFreqMag");
}

Algorithm PeakToMeanRatio() { return Algorithm("peakToMeanRatio"); }

Algorithm
MinThreshold(double limit)
{
    return Algorithm("minThreshold", {limit});
}

Algorithm
MaxThreshold(double limit)
{
    return Algorithm("maxThreshold", {limit});
}

Algorithm
BandThreshold(double low, double high)
{
    return Algorithm("bandThreshold", {low, high});
}

Algorithm
OutsideBandThreshold(double low, double high)
{
    return Algorithm("outsideBandThreshold", {low, high});
}

Algorithm
LocalMaxima(double low, double high, int refractory)
{
    std::vector<double> params = {low, high};
    if (refractory > 0)
        params.push_back(static_cast<double>(refractory));
    return Algorithm("localMaxima", std::move(params));
}

Algorithm
LocalMinima(double low, double high, int refractory)
{
    std::vector<double> params = {low, high};
    if (refractory > 0)
        params.push_back(static_cast<double>(refractory));
    return Algorithm("localMinima", std::move(params));
}

Algorithm And() { return Algorithm("and"); }
Algorithm Or() { return Algorithm("or"); }

Algorithm
Consecutive(int count)
{
    return Algorithm("consecutive", {static_cast<double>(count)});
}

} // namespace sidewinder::core
