/**
 * @file
 * Phone-side algorithm stubs.
 *
 * "At the API level, these algorithms are simply stubs that represent
 * the algorithm implementations at the low-power processor level"
 * (Section 3.2 of the paper). Each stub carries only the IL name and
 * numeric parameters; the actual computation lives in the hub
 * kernels.
 *
 * Named classes mirror the paper's Java API (Figure 2a): a developer
 * writes `MovingAverage(10)`, `VectorMagnitude()`, `MinThreshold(15)`.
 */

#ifndef SIDEWINDER_CORE_ALGORITHM_H
#define SIDEWINDER_CORE_ALGORITHM_H

#include <string>
#include <vector>

namespace sidewinder::core {

/** A parameterized reference to a platform algorithm. */
class Algorithm
{
  public:
    /** General form: any standardized algorithm by IL name. */
    Algorithm(std::string name, std::vector<double> params = {})
        : ilName(std::move(name)), ilParams(std::move(params))
    {}

    /** IL name of the referenced algorithm. */
    const std::string &name() const { return ilName; }

    /** Numeric parameters in IL order. */
    const std::vector<double> &params() const { return ilParams; }

    bool
    operator==(const Algorithm &other) const
    {
        return ilName == other.ilName && ilParams == other.ilParams;
    }

  private:
    std::string ilName;
    std::vector<double> ilParams;
};

/** @{ Convenience stubs mirroring the paper's API names. */

/** Simple moving average over @p window_size samples. */
Algorithm MovingAverage(int window_size);

/** Exponential moving average with smoothing factor @p alpha. */
Algorithm ExponentialMovingAverage(double alpha);

/**
 * Partition a scalar stream into frames of @p size samples.
 * @param hamming Apply a Hamming window to each frame.
 * @param hop Advance between frames; 0 means no overlap.
 */
Algorithm Window(int size, bool hamming = false, int hop = 0);

/** Fast Fourier Transform of a frame. */
Algorithm Fft();

/** Inverse FFT of a complex spectrum. */
Algorithm Ifft();

/** Magnitudes of the non-redundant half of an FFT spectrum. */
Algorithm Spectrum();

/** FFT-based low-pass filter with the given cutoff. */
Algorithm LowPassFilter(double cutoff_hz);

/** FFT-based high-pass filter with the given cutoff. */
Algorithm HighPassFilter(double cutoff_hz);

/** Goertzel magnitude of the @p target_hz component of a frame. */
Algorithm Goertzel(double target_hz);

/**
 * Goertzel magnitude normalized by the frame's broadband energy
 * (a pure tone at the target scores ~1, noise near 0).
 */
Algorithm GoertzelRelative(double target_hz);

/** Euclidean magnitude across branches. */
Algorithm VectorMagnitude();

/** Zero-crossing rate of a frame. */
Algorithm ZeroCrossingRate();

/** @{ Frame statistics. */
Algorithm Mean();
Algorithm Variance();
Algorithm StdDev();
Algorithm Min();
Algorithm Max();
Algorithm Rms();
Algorithm Range();
/** @} */

/** Frequency (Hz) of the dominant spectral bin. */
Algorithm DominantFrequencyHz();

/** Magnitude of the dominant spectral bin. */
Algorithm DominantFrequencyMagnitude();

/** Dominant-bin magnitude over mean bin magnitude (pitchedness). */
Algorithm PeakToMeanRatio();

/** Admit values >= @p limit. */
Algorithm MinThreshold(double limit);

/** Admit values <= @p limit. */
Algorithm MaxThreshold(double limit);

/** Admit values inside [@p low, @p high]. */
Algorithm BandThreshold(double low, double high);

/** Admit values outside [@p low, @p high]. */
Algorithm OutsideBandThreshold(double low, double high);

/** Local maxima within [@p low, @p high]. */
Algorithm LocalMaxima(double low, double high, int refractory = 0);

/** Local minima within [@p low, @p high]. */
Algorithm LocalMinima(double low, double high, int refractory = 0);

/** Fires when all input branches fired in the same wave. */
Algorithm And();

/** Fires when any input branch fired. */
Algorithm Or();

/** Fires after @p count consecutive upstream firings. */
Algorithm Consecutive(int count);

/** @} */

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_ALGORITHM_H
