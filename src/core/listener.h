/**
 * @file
 * Wake-up callback interface (the paper's SensorEventListener,
 * Section 3.2): "a callback method that is registered with the sensor
 * manager that will be called when the custom wake-up condition is
 * satisfied."
 */

#ifndef SIDEWINDER_CORE_LISTENER_H
#define SIDEWINDER_CORE_LISTENER_H

#include <vector>

namespace sidewinder::core {

/** Payload delivered to the application on a wake-up. */
struct SensorData
{
    /** Manager-assigned id of the condition that fired. */
    int conditionId = 0;
    /** Hub timestamp of the triggering value, seconds. */
    double timestamp = 0.0;
    /** Scalar value that reached OUT on the hub. */
    double triggerValue = 0.0;
    /**
     * Recent raw samples of the condition's primary sensor channel,
     * oldest first (Section 3.8 of the paper).
     */
    std::vector<double> rawData;
};

/** Application callback invoked when a wake-up condition fires. */
class SensorEventListener
{
  public:
    virtual ~SensorEventListener() = default;

    /** Called once per wake-up event, in delivery order. */
    virtual void onSensorEvent(const SensorData &data) = 0;
};

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_LISTENER_H
