#include "core/pipeline.h"

#include "support/error.h"

namespace sidewinder::core {

il::Program
ProcessingPipeline::compile() const
{
    if (inputBranches.empty())
        throw ConfigError("pipeline has no branches");

    il::Program program;
    il::NodeId next_id = 1;

    // Emit each branch's chain; remember the tail of each branch.
    std::vector<il::SourceRef> tails;
    for (const auto &branch : inputBranches) {
        il::SourceRef current =
            il::SourceRef::makeChannel(branch.channel());
        for (const auto &algorithm : branch.algorithms()) {
            il::Statement stmt;
            stmt.inputs = {current};
            stmt.algorithm = algorithm.name();
            stmt.params = algorithm.params();
            stmt.id = next_id++;
            current = il::SourceRef::makeNode(stmt.id);
            program.statements.push_back(std::move(stmt));
        }
        tails.push_back(current);
    }

    if (stages.empty() && tails.size() != 1)
        throw ConfigError(
            "pipeline with multiple branches needs an aggregation "
            "stage; at the end of the pipeline there must be only one "
            "branch remaining");

    // Pipeline-level stages: the first aggregates all tails.
    std::vector<il::SourceRef> current_inputs = tails;
    for (const auto &algorithm : stages) {
        il::Statement stmt;
        stmt.inputs = current_inputs;
        stmt.algorithm = algorithm.name();
        stmt.params = algorithm.params();
        stmt.id = next_id++;
        current_inputs = {il::SourceRef::makeNode(stmt.id)};
        program.statements.push_back(std::move(stmt));
    }

    if (current_inputs.size() != 1)
        throw ConfigError("pipeline does not converge to one branch");
    if (current_inputs[0].kind != il::SourceRef::Kind::Node)
        throw ConfigError("pipeline must contain at least one "
                          "algorithm before OUT");

    il::Statement out;
    out.inputs = current_inputs;
    out.isOut = true;
    program.statements.push_back(std::move(out));
    return program;
}

} // namespace sidewinder::core
