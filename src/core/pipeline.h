/**
 * @file
 * ProcessingPipeline and ProcessingBranch: the developer's view of a
 * wake-up condition (Section 3.2 and Figure 2a of the paper).
 *
 * A pipeline consists of one or more branches, each sourcing a sensor
 * channel and applying a linear chain of algorithms, followed by
 * pipeline-level stages. The first pipeline-level stage consumes the
 * tails of all branches (aggregation); each further stage consumes the
 * previous one; the last stage feeds OUT. "The order in which these
 * algorithms and branches are added to the ProcessingPipeline specify
 * how they are chained together."
 */

#ifndef SIDEWINDER_CORE_PIPELINE_H
#define SIDEWINDER_CORE_PIPELINE_H

#include <string>
#include <vector>

#include "core/algorithm.h"
#include "il/ast.h"

namespace sidewinder::core {

/** A linear chain of algorithms fed by one sensor channel. */
class ProcessingBranch
{
  public:
    /** Create a branch sourcing the channel named @p channel. */
    explicit ProcessingBranch(std::string channel)
        : sourceChannel(std::move(channel))
    {}

    /** Append @p algorithm to the chain; returns *this for chaining. */
    ProcessingBranch &
    add(Algorithm algorithm)
    {
        chain.push_back(std::move(algorithm));
        return *this;
    }

    /** Source channel name. */
    const std::string &channel() const { return sourceChannel; }

    /** Algorithm chain, in data-flow order. */
    const std::vector<Algorithm> &algorithms() const { return chain; }

  private:
    std::string sourceChannel;
    std::vector<Algorithm> chain;
};

/** A complete wake-up condition under construction. */
class ProcessingPipeline
{
  public:
    /** Add one branch; returns *this for chaining. */
    ProcessingPipeline &
    add(ProcessingBranch branch)
    {
        inputBranches.push_back(std::move(branch));
        return *this;
    }

    /** Add several branches at once (Figure 2a style). */
    ProcessingPipeline &
    add(const std::vector<ProcessingBranch> &branches)
    {
        for (const auto &branch : branches)
            inputBranches.push_back(branch);
        return *this;
    }

    /**
     * Append a pipeline-level stage. The first such stage aggregates
     * all branch tails; later stages chain sequentially.
     */
    ProcessingPipeline &
    add(Algorithm algorithm)
    {
        stages.push_back(std::move(algorithm));
        return *this;
    }

    /** The input branches, in addition order. */
    const std::vector<ProcessingBranch> &branches() const
    {
        return inputBranches;
    }

    /** The pipeline-level stages, in addition order. */
    const std::vector<Algorithm> &pipelineStages() const
    {
        return stages;
    }

    /**
     * Compile to the intermediate language (the sensor manager calls
     * this on push; exposed for inspection and tests).
     *
     * Node ids are assigned sequentially in emission order, exactly as
     * in Figure 2c of the paper.
     *
     * @throws ConfigError when the pipeline cannot converge to a
     *     single output (e.g. multiple branches but no aggregation
     *     stage).
     */
    il::Program compile() const;

  private:
    std::vector<ProcessingBranch> inputBranches;
    std::vector<Algorithm> stages;
};

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_PIPELINE_H
