#include "core/sensor_manager.h"

#include <unordered_set>

#include "hub/placer.h"
#include "hub/reconfig.h"
#include "il/analyze.h"
#include "il/delta.h"
#include "il/lower.h"
#include "il/writer.h"
#include "support/error.h"
#include "support/logging.h"
#include "transport/messages.h"

namespace sidewinder::core {

SidewinderSensorManager::SidewinderSensorManager(
    transport::LinkPair &link, std::vector<il::ChannelInfo> channels)
    : link(link), channels(std::move(channels))
{
}

void
SidewinderSensorManager::enableReliableTransport(
    transport::ReliableConfig config)
{
    reliable.emplace(link.phoneToHub(), config);
}

void
SidewinderSensorManager::enableSupervision(SupervisionConfig config,
                                           double now)
{
    if (!(config.heartbeatIntervalSeconds > 0.0))
        throw ConfigError("heartbeat interval must be positive");
    if (!(config.missedBeatsThreshold > 0.0))
        throw ConfigError("missed-beat threshold must be positive");
    supervising = true;
    supConfig = config;
    lastBeatTime = now;
}

void
SidewinderSensorManager::sendToHub(const transport::Frame &frame,
                                   double now)
{
    if (reliable)
        reliable->sendFrame(frame, now);
    else
        link.phoneToHub().sendFrame(frame, now);
}

int
SidewinderSensorManager::push(const ProcessingPipeline &pipeline,
                              SensorEventListener *listener, double now)
{
    if (listener == nullptr)
        throw ConfigError("push requires a SensorEventListener");

    // Statically analyze the developer's pipeline as written, then
    // ship the lowered plan's canonical form: branches sharing a
    // prefix (common in multi-feature conditions) collapse to one
    // chain on the wire, with dense ids in schedule order.
    const il::Program program = pipeline.compile();
    const il::AnalysisResult analysis = il::analyze(program, channels);
    if (!analysis.ok())
        throw ParseError("pipeline failed static analysis:\n" +
                         il::renderText(analysis, "<pipeline>"));
    const il::ExecutionPlan plan = il::lower(program, channels);
    const il::Program canonical = plan.toProgram();

    const int condition_id = nextConditionId++;
    Entry entry;
    entry.listener = listener;
    entry.ilText = il::write(canonical);
    // Shadow the plan's canonical shareKeys: they are the hub-side
    // identity of every node this push instantiates, and the basis
    // future delta updates are computed against.
    entry.shareKeys = plan.shareKeys;
    // Surface the analyzer's warnings at push time — except SW101
    // (duplicate subtrees), which lowering just resolved.
    for (const auto &d : analysis.diagnostics) {
        if (d.severity == il::Severity::Error ||
            d.code == il::SW101_DUPLICATE_SUBTREE)
            continue;
        entry.pushDiagnostics.push_back(d);
        if (d.severity == il::Severity::Warning)
            warn("push: [" + d.code + "] " + d.message +
                 (d.hint.empty() ? "" : " (hint: " + d.hint + ")"));
    }
    // Home the condition across the whole platform space (MCUs, FPGA
    // fabric, AP fallback) and surface the verdict as an SW203 note.
    // The AP fallback makes the placer total, so this never rejects.
    entry.placement =
        hub::placeCondition(plan, hub::platformExecutors());
    entry.pushDiagnostics.push_back(
        hub::placementNote(entry.placement));
    entries[condition_id] = entry;

    sendToHub(transport::encodeConfigPush({condition_id, entry.ilText}),
              now);
    return condition_id;
}

void
SidewinderSensorManager::remove(int condition_id, double now)
{
    auto it = entries.find(condition_id);
    if (it == entries.end())
        throw ConfigError("unknown condition id " +
                          std::to_string(condition_id));
    it->second.state = ConditionState::Removed;
    sendToHub(transport::encodeConfigRemove({condition_id}), now);
}

std::uint32_t
SidewinderSensorManager::beginUpdate(double now)
{
    if (pendingUpdate)
        throw ConfigError("an update transaction is already open");
    if (hubIsDown)
        throw ConfigError("cannot open an update while the hub is down");
    PendingUpdate update;
    update.epoch = nextEpoch++;
    pendingUpdate = std::move(update);
    updateError.clear();
    if (reliable)
        // Stamp everything this transaction sends with its epoch so
        // the hub can refuse delayed retransmits of it after a later
        // commit raises the floor.
        reliable->setLocalEpoch(pendingUpdate->epoch);
    sendToHub(transport::encodeUpdateBegin({pendingUpdate->epoch}), now);
    return pendingUpdate->epoch;
}

void
SidewinderSensorManager::updateCondition(
    int condition_id, const ProcessingPipeline &pipeline, double now)
{
    if (!pendingUpdate)
        throw ConfigError(
            "updateCondition outside an update transaction");
    if (pendingUpdate->commitSent)
        throw ConfigError("update transaction already committed");
    auto it = entries.find(condition_id);
    if (it == entries.end() ||
        it->second.state == ConditionState::Removed)
        throw ConfigError("unknown condition id " +
                          std::to_string(condition_id));

    const il::Program program = pipeline.compile();
    const il::AnalysisResult analysis = il::analyze(program, channels);
    if (!analysis.ok())
        throw ParseError("pipeline failed static analysis:\n" +
                         il::renderText(analysis, "<pipeline>"));
    const il::ExecutionPlan plan = il::lower(program, channels);

    // The hub's presumed-live node set: every shareKey of every
    // installed condition (including the old version of the one being
    // replaced — its unchanged subgraph is exactly the reuse target)
    // plus whatever this transaction already staged. Those nodes are
    // resolvable by hash on the hub, so they need not travel again.
    std::unordered_set<std::string> live_keys;
    for (const auto &[id, entry] : entries) {
        if (entry.state == ConditionState::Removed ||
            entry.state == ConditionState::Rejected)
            continue;
        live_keys.insert(entry.shareKeys.begin(),
                         entry.shareKeys.end());
    }
    for (const auto &[id, staged] : pendingUpdate->staged)
        live_keys.insert(staged.shareKeys.begin(),
                         staged.shareKeys.end());

    const il::PlanDelta delta = il::computeDelta(plan, live_keys);
    const transport::DeltaPushMessage message = hub::buildDeltaPush(
        plan, delta, pendingUpdate->epoch, condition_id);

    reconStats.nodesShipped += delta.shippedNodes.size();
    reconStats.nodesReused += delta.reusedRefs.size();
    reconStats.deltaWireBytes +=
        transport::deltaPushWireBytes(message);
    reconStats.fullPushWireBytes += transport::configPushWireBytes(
        {condition_id, il::write(plan.toProgram())});

    StagedEntry staged;
    staged.ilText = il::write(plan.toProgram());
    staged.shareKeys = plan.shareKeys;
    pendingUpdate->staged[condition_id] = std::move(staged);

    sendToHub(transport::encodeDeltaPush(message), now);
}

void
SidewinderSensorManager::commitUpdate(double now)
{
    if (!pendingUpdate)
        throw ConfigError("commitUpdate outside an update transaction");
    if (pendingUpdate->staged.empty())
        throw ConfigError("commitUpdate with no staged conditions");
    pendingUpdate->commitSent = true;
    sendToHub(transport::encodeUpdateCommit({pendingUpdate->epoch}),
              now);
}

void
SidewinderSensorManager::abortUpdate(double now)
{
    if (!pendingUpdate)
        return;
    sendToHub(transport::encodeUpdateAbort({pendingUpdate->epoch}),
              now);
    discardUpdate("aborted locally");
}

void
SidewinderSensorManager::discardUpdate(const std::string &reason)
{
    pendingUpdate.reset();
    updateError = reason;
    ++reconStats.updatesRolledBack;
    if (reliable)
        // Back to the last committed epoch: frames we send from here
        // on must not look like they belong to the dead transaction.
        reliable->setLocalEpoch(committedEpoch);
}

void
SidewinderSensorManager::recoverHub(double now)
{
    // A hub that lost its RAM also lost anything we had staged; the
    // application retries the update once the re-pushes settle.
    if (pendingUpdate)
        discardUpdate("hub rebooted mid-update");
    if (hubIsDown) {
        closedDownWindows.emplace_back(downSince, now);
        hubIsDown = false;
    }
    // Frames queued for the dead hub (and its stale dedup state) are
    // worthless now; start the conversation over, then re-push every
    // condition the application still wants from the shadow copies.
    if (reliable)
        reliable->reset();
    for (auto &[id, entry] : entries) {
        if (entry.state == ConditionState::Removed ||
            entry.state == ConditionState::Rejected)
            continue;
        entry.state = ConditionState::Pending;
        sendToHub(transport::encodeConfigPush({id, entry.ilText}), now);
        ++supStats.repushedConditions;
    }
}

double
SidewinderSensorManager::hubDownSeconds(double now) const
{
    double total = 0.0;
    for (const auto &[start, end] : closedDownWindows)
        total += end - start;
    if (hubIsDown && now > downSince)
        total += now - downSince;
    return total;
}

void
SidewinderSensorManager::poll(double now)
{
    decoder.feed(link.hubToPhone().receive(now));
    decoder.tickStall(now);
    while (auto frame = decoder.poll()) {
        // A CRC collision can hand us a structurally valid frame with
        // garbage inside; decoding exceptions must not wedge the app.
        try {
            if (reliable) {
                if (auto inner = reliable->onFrame(*frame, now))
                    handleFrame(*inner, now);
            } else {
                handleFrame(*frame, now);
            }
        } catch (const TransportError &error) {
            warn(std::string("manager: dropping undecodable frame: ") +
                 error.what());
        }
    }

    if (reliable)
        reliable->tick(now);

    if (supervising && !hubIsDown) {
        const double silence = now - lastBeatTime;
        if (silence > supConfig.heartbeatIntervalSeconds *
                          supConfig.missedBeatsThreshold) {
            hubIsDown = true;
            downSince = now;
            ++supStats.hubDeathsDetected;
            // Heartbeat-driven rollback: a silent hub cannot finish
            // the transfer. Its own stall timeout reclaims the shadow
            // slot; we drop ours and tell it (best-effort) so a hub
            // that is merely unreachable rolls back promptly too.
            if (pendingUpdate) {
                sendToHub(transport::encodeUpdateAbort(
                              {pendingUpdate->epoch}),
                          now);
                discardUpdate("hub heartbeats vanished mid-update");
            }
        }
    }
}

void
SidewinderSensorManager::handleFrame(const transport::Frame &frame,
                                     double now)
{
    switch (frame.type) {
      case transport::MessageType::ConfigAck: {
        const auto message = transport::decodeConfigAck(frame);
        auto it = entries.find(message.conditionId);
        if (it != entries.end() &&
            it->second.state == ConditionState::Pending)
            it->second.state = ConditionState::Active;
        break;
      }
      case transport::MessageType::ConfigReject: {
        const auto message = transport::decodeConfigReject(frame);
        auto it = entries.find(message.conditionId);
        if (it != entries.end()) {
            it->second.state = ConditionState::Rejected;
            it->second.reason = message.reason;
        }
        break;
      }
      case transport::MessageType::WakeUp: {
        const auto message = transport::decodeWakeUp(frame);
        auto it = entries.find(message.conditionId);
        if (it == entries.end() ||
            it->second.state == ConditionState::Removed)
            break;
        SensorData data;
        data.conditionId = message.conditionId;
        data.timestamp = message.timestamp;
        data.triggerValue = message.triggerValue;
        data.rawData = message.rawData;
        it->second.listener->onSensorEvent(data);
        break;
      }
      case transport::MessageType::UpdateAck: {
        const auto message = transport::decodeUpdateAck(frame);
        if (!pendingUpdate || message.epoch != pendingUpdate->epoch)
            // Ack for a transaction we already gave up on (e.g. a
            // stall-rollback crossing our commit on the wire).
            break;
        if (message.status == transport::UpdateStatus::Committed) {
            // The swap happened: the staged replacements are now the
            // truth, so they become the shadow copies future deltas
            // and re-pushes are computed from.
            for (auto &[id, staged] : pendingUpdate->staged) {
                Entry &entry = entries[id];
                entry.ilText = std::move(staged.ilText);
                entry.shareKeys = std::move(staged.shareKeys);
                entry.state = ConditionState::Active;
            }
            committedEpoch = pendingUpdate->epoch;
            pendingUpdate.reset();
            updateError.clear();
            ++reconStats.updatesCommitted;
        } else {
            // RolledBack or Stale: the hub kept (or reverted to) its
            // A plans and the epoch never advanced. Drop the staged
            // copies and surface the reason so the application can
            // retry under a fresh epoch.
            discardUpdate(message.reason.empty()
                              ? "hub refused the update"
                              : message.reason);
        }
        break;
      }
      case transport::MessageType::Heartbeat: {
        if (!supervising)
            break;
        const auto beat = transport::decodeHeartbeat(frame);
        lastBeatTime = now;
        const bool rebooted = haveBootId && beat.bootId != lastBootId;
        lastBootId = beat.bootId;
        haveBootId = true;
        if (rebooted)
            ++supStats.rebootsDetected;
        // A new boot epoch means the hub forgot everything even if we
        // never missed a beacon; silence followed by any beacon means
        // the hub (or the link) came back.
        if (rebooted || hubIsDown)
            recoverHub(now);
        break;
      }
      default:
        warn("manager: ignoring unexpected frame type " +
             std::to_string(static_cast<int>(frame.type)));
    }
}

const SidewinderSensorManager::Entry &
SidewinderSensorManager::entryOf(int condition_id) const
{
    auto it = entries.find(condition_id);
    if (it == entries.end())
        throw ConfigError("unknown condition id " +
                          std::to_string(condition_id));
    return it->second;
}

ConditionState
SidewinderSensorManager::state(int condition_id) const
{
    return entryOf(condition_id).state;
}

std::string
SidewinderSensorManager::rejectionReason(int condition_id) const
{
    return entryOf(condition_id).reason;
}

std::string
SidewinderSensorManager::ilTextOf(int condition_id) const
{
    return entryOf(condition_id).ilText;
}

const std::vector<il::Diagnostic> &
SidewinderSensorManager::pushDiagnostics(int condition_id) const
{
    return entryOf(condition_id).pushDiagnostics;
}

const hub::PlacementDecision &
SidewinderSensorManager::placementOf(int condition_id) const
{
    return entryOf(condition_id).placement;
}

} // namespace sidewinder::core
