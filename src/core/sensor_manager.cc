#include "core/sensor_manager.h"

#include "il/analyze.h"
#include "il/lower.h"
#include "il/writer.h"
#include "support/error.h"
#include "support/logging.h"
#include "transport/messages.h"

namespace sidewinder::core {

SidewinderSensorManager::SidewinderSensorManager(
    transport::LinkPair &link, std::vector<il::ChannelInfo> channels)
    : link(link), channels(std::move(channels))
{
}

void
SidewinderSensorManager::enableReliableTransport(
    transport::ReliableConfig config)
{
    reliable.emplace(link.phoneToHub(), config);
}

void
SidewinderSensorManager::enableSupervision(SupervisionConfig config,
                                           double now)
{
    if (!(config.heartbeatIntervalSeconds > 0.0))
        throw ConfigError("heartbeat interval must be positive");
    if (!(config.missedBeatsThreshold > 0.0))
        throw ConfigError("missed-beat threshold must be positive");
    supervising = true;
    supConfig = config;
    lastBeatTime = now;
}

void
SidewinderSensorManager::sendToHub(const transport::Frame &frame,
                                   double now)
{
    if (reliable)
        reliable->sendFrame(frame, now);
    else
        link.phoneToHub().sendFrame(frame, now);
}

int
SidewinderSensorManager::push(const ProcessingPipeline &pipeline,
                              SensorEventListener *listener, double now)
{
    if (listener == nullptr)
        throw ConfigError("push requires a SensorEventListener");

    // Statically analyze the developer's pipeline as written, then
    // ship the lowered plan's canonical form: branches sharing a
    // prefix (common in multi-feature conditions) collapse to one
    // chain on the wire, with dense ids in schedule order.
    const il::Program program = pipeline.compile();
    const il::AnalysisResult analysis = il::analyze(program, channels);
    if (!analysis.ok())
        throw ParseError("pipeline failed static analysis:\n" +
                         il::renderText(analysis, "<pipeline>"));
    const il::Program canonical =
        il::lower(program, channels).toProgram();

    const int condition_id = nextConditionId++;
    Entry entry;
    entry.listener = listener;
    entry.ilText = il::write(canonical);
    // Surface the analyzer's warnings at push time — except SW101
    // (duplicate subtrees), which lowering just resolved.
    for (const auto &d : analysis.diagnostics) {
        if (d.severity == il::Severity::Error ||
            d.code == il::SW101_DUPLICATE_SUBTREE)
            continue;
        entry.pushDiagnostics.push_back(d);
        if (d.severity == il::Severity::Warning)
            warn("push: [" + d.code + "] " + d.message +
                 (d.hint.empty() ? "" : " (hint: " + d.hint + ")"));
    }
    entries[condition_id] = entry;

    sendToHub(transport::encodeConfigPush({condition_id, entry.ilText}),
              now);
    return condition_id;
}

void
SidewinderSensorManager::remove(int condition_id, double now)
{
    auto it = entries.find(condition_id);
    if (it == entries.end())
        throw ConfigError("unknown condition id " +
                          std::to_string(condition_id));
    it->second.state = ConditionState::Removed;
    sendToHub(transport::encodeConfigRemove({condition_id}), now);
}

void
SidewinderSensorManager::recoverHub(double now)
{
    if (hubIsDown) {
        closedDownWindows.emplace_back(downSince, now);
        hubIsDown = false;
    }
    // Frames queued for the dead hub (and its stale dedup state) are
    // worthless now; start the conversation over, then re-push every
    // condition the application still wants from the shadow copies.
    if (reliable)
        reliable->reset();
    for (auto &[id, entry] : entries) {
        if (entry.state == ConditionState::Removed ||
            entry.state == ConditionState::Rejected)
            continue;
        entry.state = ConditionState::Pending;
        sendToHub(transport::encodeConfigPush({id, entry.ilText}), now);
        ++supStats.repushedConditions;
    }
}

double
SidewinderSensorManager::hubDownSeconds(double now) const
{
    double total = 0.0;
    for (const auto &[start, end] : closedDownWindows)
        total += end - start;
    if (hubIsDown && now > downSince)
        total += now - downSince;
    return total;
}

void
SidewinderSensorManager::poll(double now)
{
    decoder.feed(link.hubToPhone().receive(now));
    decoder.tickStall(now);
    while (auto frame = decoder.poll()) {
        // A CRC collision can hand us a structurally valid frame with
        // garbage inside; decoding exceptions must not wedge the app.
        try {
            if (reliable) {
                if (auto inner = reliable->onFrame(*frame, now))
                    handleFrame(*inner, now);
            } else {
                handleFrame(*frame, now);
            }
        } catch (const TransportError &error) {
            warn(std::string("manager: dropping undecodable frame: ") +
                 error.what());
        }
    }

    if (reliable)
        reliable->tick(now);

    if (supervising && !hubIsDown) {
        const double silence = now - lastBeatTime;
        if (silence > supConfig.heartbeatIntervalSeconds *
                          supConfig.missedBeatsThreshold) {
            hubIsDown = true;
            downSince = now;
            ++supStats.hubDeathsDetected;
        }
    }
}

void
SidewinderSensorManager::handleFrame(const transport::Frame &frame,
                                     double now)
{
    switch (frame.type) {
      case transport::MessageType::ConfigAck: {
        const auto message = transport::decodeConfigAck(frame);
        auto it = entries.find(message.conditionId);
        if (it != entries.end() &&
            it->second.state == ConditionState::Pending)
            it->second.state = ConditionState::Active;
        break;
      }
      case transport::MessageType::ConfigReject: {
        const auto message = transport::decodeConfigReject(frame);
        auto it = entries.find(message.conditionId);
        if (it != entries.end()) {
            it->second.state = ConditionState::Rejected;
            it->second.reason = message.reason;
        }
        break;
      }
      case transport::MessageType::WakeUp: {
        const auto message = transport::decodeWakeUp(frame);
        auto it = entries.find(message.conditionId);
        if (it == entries.end() ||
            it->second.state == ConditionState::Removed)
            break;
        SensorData data;
        data.conditionId = message.conditionId;
        data.timestamp = message.timestamp;
        data.triggerValue = message.triggerValue;
        data.rawData = message.rawData;
        it->second.listener->onSensorEvent(data);
        break;
      }
      case transport::MessageType::Heartbeat: {
        if (!supervising)
            break;
        const auto beat = transport::decodeHeartbeat(frame);
        lastBeatTime = now;
        const bool rebooted = haveBootId && beat.bootId != lastBootId;
        lastBootId = beat.bootId;
        haveBootId = true;
        if (rebooted)
            ++supStats.rebootsDetected;
        // A new boot epoch means the hub forgot everything even if we
        // never missed a beacon; silence followed by any beacon means
        // the hub (or the link) came back.
        if (rebooted || hubIsDown)
            recoverHub(now);
        break;
      }
      default:
        warn("manager: ignoring unexpected frame type " +
             std::to_string(static_cast<int>(frame.type)));
    }
}

const SidewinderSensorManager::Entry &
SidewinderSensorManager::entryOf(int condition_id) const
{
    auto it = entries.find(condition_id);
    if (it == entries.end())
        throw ConfigError("unknown condition id " +
                          std::to_string(condition_id));
    return it->second;
}

ConditionState
SidewinderSensorManager::state(int condition_id) const
{
    return entryOf(condition_id).state;
}

std::string
SidewinderSensorManager::rejectionReason(int condition_id) const
{
    return entryOf(condition_id).reason;
}

std::string
SidewinderSensorManager::ilTextOf(int condition_id) const
{
    return entryOf(condition_id).ilText;
}

const std::vector<il::Diagnostic> &
SidewinderSensorManager::pushDiagnostics(int condition_id) const
{
    return entryOf(condition_id).pushDiagnostics;
}

} // namespace sidewinder::core
