/**
 * @file
 * The phone-side SidewinderSensorManager (Sections 2.1.3 and 3.1 of
 * the paper): validates and compiles developer pipelines to the
 * intermediate language, pushes them to the hub over the serial link,
 * and dispatches wake-up callbacks back to the application.
 */

#ifndef SIDEWINDER_CORE_SENSOR_MANAGER_H
#define SIDEWINDER_CORE_SENSOR_MANAGER_H

#include <map>
#include <string>
#include <vector>

#include "core/listener.h"
#include "core/pipeline.h"
#include "il/analyze.h"
#include "il/validate.h"
#include "transport/frame.h"
#include "transport/link.h"

namespace sidewinder::core {

/** Lifecycle of one pushed wake-up condition. */
enum class ConditionState {
    /** Pushed; no ack from the hub yet. */
    Pending,
    /** Installed and running on the hub. */
    Active,
    /** Rejected by the hub (validation or capability failure). */
    Rejected,
    /** Removed at the application's request. */
    Removed,
};

/** Phone-side manager for Sidewinder wake-up conditions. */
class SidewinderSensorManager
{
  public:
    /**
     * @param link Full-duplex connection to the hub; the manager
     *     writes the phone-to-hub direction and reads hub-to-phone.
     * @param channels Channels the hub serves, used for local
     *     validation before anything is transmitted.
     */
    SidewinderSensorManager(transport::LinkPair &link,
                            std::vector<il::ChannelInfo> channels);

    /**
     * Compile, statically analyze, and push @p pipeline; @p listener
     * is invoked on every wake-up of this condition.
     *
     * Analysis happens locally first so developer errors surface
     * immediately as exceptions rather than as asynchronous hub
     * rejections; non-fatal diagnostics are logged and kept for
     * inspection via pushDiagnostics().
     *
     * @return the condition id assigned to this push.
     * @throws ParseError / ConfigError on invalid pipelines.
     */
    int push(const ProcessingPipeline &pipeline,
             SensorEventListener *listener, double now = 0.0);

    /** Ask the hub to remove condition @p condition_id. */
    void remove(int condition_id, double now = 0.0);

    /**
     * Process hub responses and wake-ups that arrived by @p now,
     * dispatching listener callbacks.
     */
    void poll(double now);

    /** Lifecycle state of @p condition_id. */
    ConditionState state(int condition_id) const;

    /** Rejection reason (empty unless state is Rejected). */
    std::string rejectionReason(int condition_id) const;

    /** IL text shipped for @p condition_id (for inspection). */
    std::string ilTextOf(int condition_id) const;

    /**
     * Non-fatal analyzer diagnostics (warnings and notes) recorded
     * when @p condition_id was pushed.
     */
    const std::vector<il::Diagnostic> &
    pushDiagnostics(int condition_id) const;

  private:
    struct Entry
    {
        ConditionState state = ConditionState::Pending;
        SensorEventListener *listener = nullptr;
        std::string ilText;
        std::string reason;
        std::vector<il::Diagnostic> pushDiagnostics;
    };

    const Entry &entryOf(int condition_id) const;

    transport::LinkPair &link;
    std::vector<il::ChannelInfo> channels;
    transport::FrameDecoder decoder;
    std::map<int, Entry> entries;
    int nextConditionId = 1;
};

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_SENSOR_MANAGER_H
