/**
 * @file
 * The phone-side SidewinderSensorManager (Sections 2.1.3 and 3.1 of
 * the paper): validates and compiles developer pipelines to the
 * intermediate language, pushes them to the hub over the serial link,
 * and dispatches wake-up callbacks back to the application.
 *
 * The manager also carries the phone half of the fault-tolerance
 * layer (docs/fault-model.md). With supervision enabled it keeps a
 * shadow copy of every pushed pipeline, watches the hub's heartbeat
 * beacons, declares the hub dead after a configurable run of missed
 * beats, and re-pushes all live conditions as soon as the hub comes
 * back (detected by a beacon with a new boot epoch). The down windows
 * it records let the simulator account for the Duty-Cycling fallback
 * an app would run while the hub is blind.
 */

#ifndef SIDEWINDER_CORE_SENSOR_MANAGER_H
#define SIDEWINDER_CORE_SENSOR_MANAGER_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/listener.h"
#include "core/pipeline.h"
#include "hub/placer.h"
#include "il/analyze.h"
#include "il/validate.h"
#include "transport/frame.h"
#include "transport/link.h"
#include "transport/reliable.h"

namespace sidewinder::core {

/** Lifecycle of one pushed wake-up condition. */
enum class ConditionState {
    /** Pushed; no ack from the hub yet. */
    Pending,
    /** Installed and running on the hub. */
    Active,
    /** Rejected by the hub (validation or capability failure). */
    Rejected,
    /** Removed at the application's request. */
    Removed,
};

/** Hub-supervision tuning knobs. */
struct SupervisionConfig
{
    /** Interval the hub was told to beacon at, seconds. */
    double heartbeatIntervalSeconds = 1.0;
    /** Consecutive missed beacons before the hub is declared dead. */
    double missedBeatsThreshold = 3.0;
};

/** Counters the supervisor accumulates over a run. */
struct SupervisionStats
{
    /** Times the hub was declared dead from beacon silence. */
    std::size_t hubDeathsDetected = 0;
    /** Boot-epoch changes observed (state-losing hub resets). */
    std::size_t rebootsDetected = 0;
    /** Conditions re-pushed across all recoveries. */
    std::size_t repushedConditions = 0;
};

/** Counters for live-reconfiguration (delta update) traffic. */
struct ReconfigStats
{
    /** Update transactions the hub acknowledged as committed. */
    std::size_t updatesCommitted = 0;
    /** Update transactions rolled back (hub refusal, heartbeat
        death mid-update, or local abort). */
    std::size_t updatesRolledBack = 0;
    /** Nodes shipped in full across all delta pushes. */
    std::size_t nodesShipped = 0;
    /** Nodes referenced by shareKey hash instead of travelling. */
    std::size_t nodesReused = 0;
    /** Framed bytes the delta pushes actually cost. */
    std::size_t deltaWireBytes = 0;
    /** Framed bytes full ConfigPushes of the same plans would cost. */
    std::size_t fullPushWireBytes = 0;
};

/** Phone-side manager for Sidewinder wake-up conditions. */
class SidewinderSensorManager
{
  public:
    /**
     * @param link Full-duplex connection to the hub; the manager
     *     writes the phone-to-hub direction and reads hub-to-phone.
     * @param channels Channels the hub serves, used for local
     *     validation before anything is transmitted.
     */
    SidewinderSensorManager(transport::LinkPair &link,
                            std::vector<il::ChannelInfo> channels);

    /**
     * Compile, statically analyze, and push @p pipeline; @p listener
     * is invoked on every wake-up of this condition.
     *
     * Analysis happens locally first so developer errors surface
     * immediately as exceptions rather than as asynchronous hub
     * rejections; non-fatal diagnostics are logged and kept for
     * inspection via pushDiagnostics().
     *
     * @return the condition id assigned to this push.
     * @throws ParseError / ConfigError on invalid pipelines.
     */
    int push(const ProcessingPipeline &pipeline,
             SensorEventListener *listener, double now = 0.0);

    /** Ask the hub to remove condition @p condition_id. */
    void remove(int condition_id, double now = 0.0);

    /**
     * Process hub responses and wake-ups that arrived by @p now,
     * dispatching listener callbacks. With supervision enabled, also
     * tracks heartbeats and triggers death detection / re-push.
     */
    void poll(double now);

    /**
     * Ship pushes and removes through a reliable-transport endpoint
     * (and unwrap reliable frames from the hub) instead of writing
     * the link directly. Must match the hub's configuration.
     */
    void enableReliableTransport(transport::ReliableConfig config = {});

    /**
     * Start supervising the hub: expect beacons every
     * config.heartbeatIntervalSeconds (the hub must have
     * enableHeartbeats() with the same interval), declare the hub
     * dead after missedBeatsThreshold silent intervals, and re-push
     * all live conditions when it recovers. @p now anchors the first
     * silence measurement.
     */
    void enableSupervision(SupervisionConfig config, double now = 0.0);

    /** True while the hub is presumed dead (supervision only). */
    bool hubDown() const { return hubIsDown; }

    /**
     * Total seconds the hub has been presumed dead so far, including
     * the currently open window up to @p now.
     */
    double hubDownSeconds(double now) const;

    /** Closed [start, end) windows the hub was presumed dead. */
    const std::vector<std::pair<double, double>> &
    downWindows() const
    {
        return closedDownWindows;
    }

    /** Start of the still-open down window, if the hub is down now. */
    std::optional<double>
    openDownWindowStart() const
    {
        if (!hubIsDown)
            return std::nullopt;
        return downSince;
    }

    /** Bytes the frame decoder discarded while resynchronizing. */
    std::size_t
    linkDropBytes() const
    {
        return decoder.droppedBytes();
    }

    const SupervisionStats &
    supervisionStats() const
    {
        return supStats;
    }

    /** Reliable-endpoint counters; nullptr until enabled. */
    const transport::ReliableStats *
    reliableStats() const
    {
        return reliable ? &reliable->stats() : nullptr;
    }

    // ----- live reconfiguration (the phone half) -----
    //
    // Changing a running condition (retune a threshold, swap a
    // filter) should not cost a full teardown-and-repush: the phone
    // opens a versioned update transaction, ships only the nodes
    // whose canonical shareKey is not already live on the hub (the
    // rest travel as 8-byte hash references), and commits — the hub
    // stages the new plans beside the live ones and swaps them
    // atomically between two evaluation waves, carrying shared-node
    // state across. Anything that fails — hub-side rejection, a
    // heartbeat blackout mid-transfer, an explicit abort — rolls the
    // transaction back on both sides; the shadow copies here are
    // untouched until the hub's Committed ack arrives.

    /**
     * Open an update transaction at a fresh config epoch and tell
     * the hub. One transaction at a time.
     * @return the transaction's config epoch.
     * @throws ConfigError if one is already open or the hub is down.
     */
    std::uint32_t beginUpdate(double now = 0.0);

    /**
     * Stage a replacement @p pipeline for @p condition_id inside the
     * open transaction: compile, analyze and lower locally, delta
     * against every shareKey presumed live on the hub (installed
     * conditions plus earlier stages of this transaction), and ship
     * the delta. The local shadow copy is not touched until commit.
     * @throws ConfigError / ParseError on invalid pipelines or ids.
     */
    void updateCondition(int condition_id,
                         const ProcessingPipeline &pipeline,
                         double now = 0.0);

    /** Ask the hub to atomically swap everything staged live. */
    void commitUpdate(double now = 0.0);

    /** Abandon the open transaction (tells the hub to roll back). */
    void abortUpdate(double now = 0.0);

    /** True while an update transaction is open. */
    bool updateInProgress() const { return pendingUpdate.has_value(); }

    /** Config epoch of the last committed update (0 = none yet). */
    std::uint32_t configEpoch() const { return committedEpoch; }

    /** Why the last update rolled back (empty after a commit). */
    const std::string &lastUpdateError() const { return updateError; }

    const ReconfigStats &reconfigStats() const { return reconStats; }

    /** Lifecycle state of @p condition_id. */
    ConditionState state(int condition_id) const;

    /** Rejection reason (empty unless state is Rejected). */
    std::string rejectionReason(int condition_id) const;

    /** IL text shipped for @p condition_id (for inspection). */
    std::string ilTextOf(int condition_id) const;

    /**
     * Non-fatal analyzer diagnostics (warnings and notes) recorded
     * when @p condition_id was pushed.
     */
    const std::vector<il::Diagnostic> &
    pushDiagnostics(int condition_id) const;

    /**
     * Where the platform placer homed @p condition_id when it was
     * pushed (executor, marginal power, wire target) — the decision
     * behind the SW203 note in pushDiagnostics().
     */
    const hub::PlacementDecision &placementOf(int condition_id) const;

  private:
    struct Entry
    {
        ConditionState state = ConditionState::Pending;
        SensorEventListener *listener = nullptr;
        std::string ilText;
        std::string reason;
        std::vector<il::Diagnostic> pushDiagnostics;
        /** Canonical shareKeys of the shipped plan's nodes — the
            shadow of what is live on the hub, and the basis every
            delta is computed against. */
        std::vector<std::string> shareKeys;
        /** Negotiated home across hub::platformExecutors(). */
        hub::PlacementDecision placement;
    };

    /** A condition's replacement, held until the hub commits. */
    struct StagedEntry
    {
        std::string ilText;
        std::vector<std::string> shareKeys;
    };

    /** The open update transaction, if any. */
    struct PendingUpdate
    {
        std::uint32_t epoch = 0;
        bool commitSent = false;
        std::map<int, StagedEntry> staged;
    };

    const Entry &entryOf(int condition_id) const;
    void handleFrame(const transport::Frame &frame, double now);
    void sendToHub(const transport::Frame &frame, double now);
    void recoverHub(double now);
    /** Drop the open transaction and count the rollback. */
    void discardUpdate(const std::string &reason);

    transport::LinkPair &link;
    std::vector<il::ChannelInfo> channels;
    transport::FrameDecoder decoder;
    std::map<int, Entry> entries;
    int nextConditionId = 1;

    std::optional<transport::ReliableEndpoint> reliable;
    bool supervising = false;
    SupervisionConfig supConfig;
    SupervisionStats supStats;
    double lastBeatTime = 0.0;
    bool haveBootId = false;
    std::uint32_t lastBootId = 0;
    bool hubIsDown = false;
    double downSince = 0.0;
    std::vector<std::pair<double, double>> closedDownWindows;

    std::optional<PendingUpdate> pendingUpdate;
    /** Next epoch to hand out; monotonic for this manager's life. */
    std::uint32_t nextEpoch = 1;
    std::uint32_t committedEpoch = 0;
    std::string updateError;
    ReconfigStats reconStats;
};

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_SENSOR_MANAGER_H
