#include "core/sensors.h"

namespace sidewinder::core {

std::vector<il::ChannelInfo>
accelerometerChannels()
{
    return {
        {channel::accelerometerX, accelerometerRateHz},
        {channel::accelerometerY, accelerometerRateHz},
        {channel::accelerometerZ, accelerometerRateHz},
    };
}

std::vector<il::ChannelInfo>
audioChannels()
{
    return {{channel::audio, audioRateHz}};
}

std::vector<il::ChannelInfo>
barometerChannels()
{
    return {{channel::barometer, barometerRateHz}};
}

std::vector<il::ChannelInfo>
allChannels()
{
    auto channels = accelerometerChannels();
    for (auto &ch : audioChannels())
        channels.push_back(ch);
    for (auto &ch : barometerChannels())
        channels.push_back(ch);
    return channels;
}

} // namespace sidewinder::core
