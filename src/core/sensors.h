/**
 * @file
 * Sensor channel names and default channel configurations.
 *
 * The prototype focuses on the accelerometer and the microphone,
 * "because in our experience they are the most commonly used"
 * (Section 3.4 of the paper).
 */

#ifndef SIDEWINDER_CORE_SENSORS_H
#define SIDEWINDER_CORE_SENSORS_H

#include <string>
#include <vector>

#include "il/validate.h"

namespace sidewinder::core {

/** Channel name constants (mirroring SidewinderSensorManager.*). */
namespace channel {
inline const std::string accelerometerX = "ACC_X";
inline const std::string accelerometerY = "ACC_Y";
inline const std::string accelerometerZ = "ACC_Z";
inline const std::string audio = "AUDIO";
inline const std::string barometer = "BARO";
} // namespace channel

/** Default accelerometer sampling rate of the prototype, Hz. */
constexpr double accelerometerRateHz = 50.0;

/**
 * Default microphone sampling rate of the prototype, Hz. Chosen to
 * keep the siren detector's 1800 Hz upper band below Nyquist.
 */
constexpr double audioRateHz = 4000.0;

/** Default barometer sampling rate, Hz. */
constexpr double barometerRateHz = 20.0;

/** The three accelerometer channels at the default rate. */
std::vector<il::ChannelInfo> accelerometerChannels();

/** The microphone channel at the default rate. */
std::vector<il::ChannelInfo> audioChannels();

/** The barometer channel at the default rate. */
std::vector<il::ChannelInfo> barometerChannels();

/** All channels the prototype hub serves. */
std::vector<il::ChannelInfo> allChannels();

} // namespace sidewinder::core

#endif // SIDEWINDER_CORE_SENSORS_H
