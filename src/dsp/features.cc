#include "dsp/features.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace sidewinder::dsp {

double
vectorMagnitude(const std::vector<double> &components)
{
    double sum_sq = 0.0;
    for (double c : components)
        sum_sq += c * c;
    return std::sqrt(sum_sq);
}

double
zeroCrossingRate(const std::vector<double> &frame)
{
    if (frame.size() < 2)
        return 0.0;
    std::size_t crossings = 0;
    for (std::size_t i = 1; i < frame.size(); ++i) {
        const bool prev_neg = frame[i - 1] < 0.0;
        const bool cur_neg = frame[i] < 0.0;
        if (prev_neg != cur_neg)
            ++crossings;
    }
    return static_cast<double>(crossings) /
           static_cast<double>(frame.size() - 1);
}

double
mean(const std::vector<double> &frame)
{
    if (frame.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : frame)
        sum += x;
    return sum / static_cast<double>(frame.size());
}

double
variance(const std::vector<double> &frame)
{
    if (frame.size() < 2)
        return 0.0;
    const double m = mean(frame);
    double sum_sq = 0.0;
    for (double x : frame)
        sum_sq += (x - m) * (x - m);
    return sum_sq / static_cast<double>(frame.size());
}

double
stddev(const std::vector<double> &frame)
{
    return std::sqrt(variance(frame));
}

double
minimum(const std::vector<double> &frame)
{
    if (frame.empty())
        throw ConfigError("minimum of empty frame");
    return *std::min_element(frame.begin(), frame.end());
}

double
maximum(const std::vector<double> &frame)
{
    if (frame.empty())
        throw ConfigError("maximum of empty frame");
    return *std::max_element(frame.begin(), frame.end());
}

double
rootMeanSquare(const std::vector<double> &frame)
{
    if (frame.empty())
        return 0.0;
    double sum_sq = 0.0;
    for (double x : frame)
        sum_sq += x * x;
    return std::sqrt(sum_sq / static_cast<double>(frame.size()));
}

double
range(const std::vector<double> &frame)
{
    return maximum(frame) - minimum(frame);
}

DominantFrequency
dominantFrequency(const std::vector<double> &magnitudes)
{
    if (magnitudes.size() < 2)
        throw ConfigError("dominantFrequency needs at least two bins");

    std::size_t best = 1;
    double total = 0.0;
    for (std::size_t i = 1; i < magnitudes.size(); ++i) {
        total += magnitudes[i];
        if (magnitudes[i] > magnitudes[best])
            best = i;
    }

    DominantFrequency result;
    result.bin = best;
    result.magnitude = magnitudes[best];
    result.meanMagnitude =
        total / static_cast<double>(magnitudes.size() - 1);
    return result;
}

} // namespace sidewinder::dsp
