/**
 * @file
 * Feature-extraction algorithms from Section 3.6 of the paper:
 * acceleration vector magnitude, zero-crossing rate, a set of
 * statistical functions, and dominant-frequency magnitude.
 */

#ifndef SIDEWINDER_DSP_FEATURES_H
#define SIDEWINDER_DSP_FEATURES_H

#include <cstddef>
#include <vector>

namespace sidewinder::dsp {

/** Euclidean magnitude of a vector of per-axis components. */
double vectorMagnitude(const std::vector<double> &components);

/**
 * Zero-crossing rate of @p frame: fraction of adjacent sample pairs
 * whose signs differ, in [0, 1].
 */
double zeroCrossingRate(const std::vector<double> &frame);

/** Arithmetic mean; zero for an empty frame. */
double mean(const std::vector<double> &frame);

/** Population variance; zero for frames shorter than two samples. */
double variance(const std::vector<double> &frame);

/** Population standard deviation. */
double stddev(const std::vector<double> &frame);

/** Smallest element; throws ConfigError on an empty frame. */
double minimum(const std::vector<double> &frame);

/** Largest element; throws ConfigError on an empty frame. */
double maximum(const std::vector<double> &frame);

/** Root mean square of the frame; zero for an empty frame. */
double rootMeanSquare(const std::vector<double> &frame);

/** max - min; throws ConfigError on an empty frame. */
double range(const std::vector<double> &frame);

/** Result of a dominant-frequency analysis of a magnitude spectrum. */
struct DominantFrequency
{
    /** Index of the strongest non-DC bin. */
    std::size_t bin;
    /** Magnitude of that bin. */
    double magnitude;
    /** Mean magnitude across all non-DC bins. */
    double meanMagnitude;

    /**
     * Peak-to-mean ratio: how much the dominant bin stands out. Pitched
     * sounds (sirens) have a high ratio; broadband noise a low one.
     * Returns 0 when the mean magnitude is 0.
     */
    double
    peakToMeanRatio() const
    {
        return meanMagnitude > 0.0 ? magnitude / meanMagnitude : 0.0;
    }
};

/**
 * Locate the dominant (strongest non-DC) frequency bin in a magnitude
 * spectrum as produced by magnitudeSpectrum().
 *
 * @param magnitudes Bin magnitudes, bin 0 = DC.
 * @throws ConfigError if fewer than two bins are supplied.
 */
DominantFrequency dominantFrequency(const std::vector<double> &magnitudes);

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_FEATURES_H
