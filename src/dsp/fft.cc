#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include "dsp/fft_plan.h"
#include "support/error.h"

namespace sidewinder::dsp {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

namespace {

/** Bit-reversal permutation used by the naive iterative FFT. */
void
bitReverse(std::vector<Complex> &data)
{
    const std::size_t n = data.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

/**
 * Reference butterfly loop; @p inverse selects the conjugate twiddles.
 * Note the w *= wlen recurrence: it accumulates rounding error across
 * a stage, which is exactly what FftPlan's tabulated twiddles fix.
 */
void
naiveTransform(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    if (!isPowerOfTwo(n))
        throw ConfigError("FFT size must be a power of two, got " +
                          std::to_string(n));

    countNaiveTransform();
    bitReverse(data);

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            2.0 * std::numbers::pi / static_cast<double>(len) *
            (inverse ? 1.0 : -1.0);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                Complex u = data[i + k];
                Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= scale;
    }
}

} // namespace

void
fft(std::vector<Complex> &data)
{
    FftPlan::forSize(data.size())->forward(data);
}

void
ifft(std::vector<Complex> &data)
{
    FftPlan::forSize(data.size())->inverse(data);
}

void
naiveFft(std::vector<Complex> &data)
{
    naiveTransform(data, false);
}

void
naiveIfft(std::vector<Complex> &data)
{
    naiveTransform(data, true);
}

std::vector<Complex>
fftReal(const std::vector<double> &samples)
{
    std::vector<Complex> data(samples.size());
    FftPlan::forSize(samples.size())->forwardReal(samples.data(),
                                                  data.data());
    return data;
}

std::vector<double>
ifftToReal(std::vector<Complex> spectrum)
{
    // A general spectrum need not be conjugate-symmetric, so this
    // takes the real part of the full inverse rather than using the
    // half-size real path.
    ifft(spectrum);
    std::vector<double> out;
    out.reserve(spectrum.size());
    for (const auto &x : spectrum)
        out.push_back(x.real());
    return out;
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &samples)
{
    auto spectrum = fftReal(samples);
    const std::size_t half = spectrum.size() / 2;
    std::vector<double> mags;
    mags.reserve(half + 1);
    for (std::size_t i = 0; i <= half; ++i)
        mags.push_back(std::abs(spectrum[i]));
    return mags;
}

double
binFrequencyHz(std::size_t bin, std::size_t fft_size, double sample_rate_hz)
{
    if (fft_size == 0)
        throw ConfigError("binFrequencyHz: fft_size must be positive");
    return static_cast<double>(bin) * sample_rate_hz /
           static_cast<double>(fft_size);
}

} // namespace sidewinder::dsp
