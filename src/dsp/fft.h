/**
 * @file
 * Radix-2 Fast Fourier Transform and inverse.
 *
 * These are the "Transform" algorithms of Section 3.6 of the paper. The
 * implementation is an iterative in-place Cooley-Tukey FFT, which is
 * what a Cortex-M4-class microcontroller (the TI LM4F120 of the
 * prototype) would realistically run.
 *
 * The free functions here execute through cached FftPlan instances
 * (see fft_plan.h): precomputed bit-reversal and twiddle tables, and a
 * half-size packed transform for real input. The original textbook
 * implementation is kept as naiveFft()/naiveIfft() — a reference the
 * property tests and benchmarks compare the planned path against.
 */

#ifndef SIDEWINDER_DSP_FFT_H
#define SIDEWINDER_DSP_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace sidewinder::dsp {

/** Complex sample type used by the transforms. */
using Complex = std::complex<double>;

/** True iff @p n is a positive power of two. */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place forward FFT.
 *
 * @param data Complex samples; size must be a power of two.
 */
void fft(std::vector<Complex> &data);

/**
 * In-place inverse FFT, including the 1/N normalization so that
 * ifft(fft(x)) == x.
 *
 * @param data Complex spectrum; size must be a power of two.
 */
void ifft(std::vector<Complex> &data);

/**
 * Reference forward FFT: the per-call twiddle-recurrence
 * implementation the planned path replaced. Kept for equivalence
 * tests and planned-vs-naive benchmarks; do not use on hot paths.
 */
void naiveFft(std::vector<Complex> &data);

/** Reference inverse FFT (see naiveFft()). */
void naiveIfft(std::vector<Complex> &data);

/** Forward FFT of a real signal (zero imaginary parts). */
std::vector<Complex> fftReal(const std::vector<double> &samples);

/** Real part of the inverse FFT of @p spectrum. */
std::vector<double> ifftToReal(std::vector<Complex> spectrum);

/**
 * Magnitudes of the non-redundant half of the spectrum of a real
 * signal: bins 0 .. N/2 inclusive.
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &samples);

/**
 * Frequency in Hz corresponding to @p bin of an @p fft_size transform
 * at @p sample_rate_hz.
 */
double binFrequencyHz(std::size_t bin, std::size_t fft_size,
                      double sample_rate_hz);

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_FFT_H
