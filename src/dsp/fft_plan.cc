#include "dsp/fft_plan.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "support/error.h"

namespace sidewinder::dsp {

namespace {

std::atomic<std::uint64_t> g_planned{0};
std::atomic<std::uint64_t> g_plannedReal{0};
std::atomic<std::uint64_t> g_naive{0};
std::atomic<std::uint64_t> g_plansBuilt{0};
std::atomic<std::uint64_t> g_cacheHits{0};

inline void
bump(std::atomic<std::uint64_t> &counter)
{
    counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

void
countNaiveTransform()
{
    bump(g_naive);
}

FftCounters
fftCounters()
{
    FftCounters c;
    c.plannedTransforms = g_planned.load(std::memory_order_relaxed);
    c.plannedRealTransforms =
        g_plannedReal.load(std::memory_order_relaxed);
    c.naiveTransforms = g_naive.load(std::memory_order_relaxed);
    c.plansBuilt = g_plansBuilt.load(std::memory_order_relaxed);
    c.planCacheHits = g_cacheHits.load(std::memory_order_relaxed);
    return c;
}

void
resetFftCounters()
{
    g_planned.store(0, std::memory_order_relaxed);
    g_plannedReal.store(0, std::memory_order_relaxed);
    g_naive.store(0, std::memory_order_relaxed);
    g_plansBuilt.store(0, std::memory_order_relaxed);
    g_cacheHits.store(0, std::memory_order_relaxed);
}

FftPlan::FftPlan(std::size_t n)
    : FftPlan(n, n > 1 ? std::shared_ptr<const FftPlan>(
                             new FftPlan(n / 2))
                       : nullptr)
{
}

FftPlan::FftPlan(std::size_t n, std::shared_ptr<const FftPlan> half_plan)
    : points(n), half(std::move(half_plan))
{
    if (!isPowerOfTwo(n))
        throw ConfigError("FFT plan size must be a power of two, got " +
                          std::to_string(n));

    std::size_t log2n = 0;
    while ((static_cast<std::size_t>(1) << log2n) < n)
        ++log2n;

    bitrev.resize(n);
    bitrev[0] = 0;
    for (std::size_t i = 1; i < n; ++i)
        bitrev[i] = static_cast<std::uint32_t>(
            (bitrev[i >> 1] >> 1) | ((i & 1) << (log2n - 1)));

    // Direct cos/sin per index: no recurrence, no accumulated drift.
    twiddles.resize(n / 2);
    for (std::size_t j = 0; j < n / 2; ++j) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(j) /
                             static_cast<double>(n);
        twiddles[j] = Complex(std::cos(angle), std::sin(angle));
    }

    bump(g_plansBuilt);
}

void
FftPlan::transform(Complex *data, bool inv) const
{
    const std::size_t n = points;
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t j = bitrev[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half_len = len / 2;
        const std::size_t stride = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < half_len; ++k) {
                Complex w = twiddles[k * stride];
                if (inv)
                    w = std::conj(w);
                const Complex u = data[i + k];
                const Complex v = data[i + k + half_len] * w;
                data[i + k] = u + v;
                data[i + k + half_len] = u - v;
            }
        }
    }

    if (inv) {
        const double scale = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] *= scale;
    }
}

void
FftPlan::forward(Complex *data) const
{
    bump(g_planned);
    transform(data, false);
}

void
FftPlan::inverse(Complex *data) const
{
    bump(g_planned);
    transform(data, true);
}

void
FftPlan::forward(std::vector<Complex> &data) const
{
    if (data.size() != points)
        throw ConfigError("FFT plan for " + std::to_string(points) +
                          " points applied to " +
                          std::to_string(data.size()));
    forward(data.data());
}

void
FftPlan::inverse(std::vector<Complex> &data) const
{
    if (data.size() != points)
        throw ConfigError("FFT plan for " + std::to_string(points) +
                          " points applied to " +
                          std::to_string(data.size()));
    inverse(data.data());
}

void
FftPlan::forwardReal(const double *samples, Complex *out) const
{
    bump(g_plannedReal);
    const std::size_t n = points;
    if (n == 1) {
        out[0] = Complex(samples[0], 0.0);
        return;
    }

    // Pack pairs of real samples into half-size complex points and
    // run the half transform in place on the output buffer.
    const std::size_t h = n / 2;
    for (std::size_t j = 0; j < h; ++j)
        out[j] = Complex(samples[2 * j], samples[2 * j + 1]);
    half->forward(out);

    // Untangle Z[k] = FFT(even) + i*FFT(odd) into the full spectrum:
    //   Fe[k] = (Z[k] + conj(Z[h-k])) / 2
    //   Fo[k] = (Z[k] - conj(Z[h-k])) / 2i
    //   X[k]      = Fe[k] + W^k Fo[k]     (W = exp(-2*pi*i/n))
    //   X[k + h]  = Fe[k] - W^k Fo[k]
    // Pairs (k, h-k) are resolved together so the in-place writes
    // never clobber a still-needed Z.
    const Complex z0 = out[0];
    out[0] = Complex(z0.real() + z0.imag(), 0.0);
    out[h] = Complex(z0.real() - z0.imag(), 0.0);
    for (std::size_t k = 1; k < h - k; ++k) {
        const std::size_t m = h - k;
        const Complex zk = out[k];
        const Complex zm = out[m];
        const Complex fek = 0.5 * (zk + std::conj(zm));
        const Complex fok =
            Complex(0.0, -0.5) * (zk - std::conj(zm));
        const Complex fem = 0.5 * (zm + std::conj(zk));
        const Complex fom =
            Complex(0.0, -0.5) * (zm - std::conj(zk));
        const Complex tk = twiddles[k] * fok;
        const Complex tm = twiddles[m] * fom;
        out[k] = fek + tk;
        out[k + h] = fek - tk;
        out[m] = fem + tm;
        out[m + h] = fem - tm;
    }
    if (h >= 2) {
        // Quarter point k = n/4: W^k = -i, so X[k] = conj(Z[k]).
        const std::size_t q = h / 2;
        const Complex zq = out[q];
        out[q] = std::conj(zq);
        out[q + h] = zq;
    }
}

void
FftPlan::forwardReal(const std::vector<double> &samples,
                     std::vector<Complex> &out) const
{
    if (samples.size() != points)
        throw ConfigError("FFT plan for " + std::to_string(points) +
                          " points applied to " +
                          std::to_string(samples.size()));
    out.resize(points);
    forwardReal(samples.data(), out.data());
}

void
FftPlan::inverseReal(Complex *spectrum, double *out) const
{
    bump(g_plannedReal);
    const std::size_t n = points;
    if (n == 1) {
        out[0] = spectrum[0].real();
        return;
    }

    // Reverse of the forwardReal untangle: rebuild the packed
    // half-size spectrum Z[k] = Fe[k] + i*Fo[k], inverse-transform it
    // (the half plan's 1/(n/2) scaling is exactly right), and unpack
    // interleaved real samples.
    const std::size_t h = n / 2;
    for (std::size_t k = 0; k < h; ++k) {
        const Complex xk = spectrum[k];
        const Complex xh = spectrum[k + h];
        const Complex fe = 0.5 * (xk + xh);
        const Complex fo =
            std::conj(twiddles[k]) * (0.5 * (xk - xh));
        spectrum[k] = fe + Complex(-fo.imag(), fo.real());
    }
    half->inverse(spectrum);
    for (std::size_t j = 0; j < h; ++j) {
        out[2 * j] = spectrum[j].real();
        out[2 * j + 1] = spectrum[j].imag();
    }
}

void
FftPlan::inverseReal(std::vector<Complex> &spectrum,
                     std::vector<double> &out) const
{
    if (spectrum.size() != points)
        throw ConfigError("FFT plan for " + std::to_string(points) +
                          " points applied to " +
                          std::to_string(spectrum.size()));
    out.resize(points);
    inverseReal(spectrum.data(), out.data());
}

std::shared_ptr<const FftPlan>
FftPlan::forSize(std::size_t n)
{
    if (!isPowerOfTwo(n))
        throw ConfigError("FFT plan size must be a power of two, got " +
                          std::to_string(n));

    static std::mutex lock;
    static std::unordered_map<std::size_t,
                              std::shared_ptr<const FftPlan>>
        cache;

    std::lock_guard<std::mutex> guard(lock);
    auto it = cache.find(n);
    if (it != cache.end()) {
        bump(g_cacheHits);
        return it->second;
    }

    // Build every missing size bottom-up so each plan links the
    // cached half-size plan instead of duplicating the chain.
    std::shared_ptr<const FftPlan> prev;
    for (std::size_t s = 1; s <= n; s <<= 1) {
        auto found = cache.find(s);
        if (found != cache.end()) {
            prev = found->second;
            continue;
        }
        std::shared_ptr<const FftPlan> plan(new FftPlan(s, prev));
        cache.emplace(s, plan);
        prev = plan;
    }
    return prev;
}

} // namespace sidewinder::dsp
