/**
 * @file
 * Planned FFT execution: per-size cached bit-reversal and twiddle
 * tables, in-place transforms on caller-owned storage, and real-input
 * transforms using the packed N/2 complex-FFT trick.
 *
 * The naive transform in fft.cc recomputes its twiddles with a
 * `w *= wlen` recurrence (error accumulates over a stage) and walks
 * the bit-reversal permutation arithmetically on every call. A plan
 * precomputes both once per size, so the steady-state hub interpreter
 * does no trigonometry, no table rebuilds, and — when the caller
 * reuses its buffers — no heap allocation per frame. This is the
 * MCU-shaped fast path behind Section 3.8's sizing argument: the
 * FFT-family kernels dominate hub cost, so they get the planned
 * treatment.
 */

#ifndef SIDEWINDER_DSP_FFT_PLAN_H
#define SIDEWINDER_DSP_FFT_PLAN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dsp/fft.h"

namespace sidewinder::dsp {

/**
 * A reusable transform plan for one power-of-two size.
 *
 * Plans are immutable after construction; all transform methods are
 * const and thread-safe. Obtain shared plans through forSize() — the
 * process-wide cache also shares the half-size plan chain that the
 * real-input transforms use.
 */
class FftPlan
{
  public:
    /**
     * Build a standalone plan (including its half-size chain) for
     * @p n points.
     * @throws ConfigError unless @p n is a power of two.
     */
    explicit FftPlan(std::size_t n);

    /** Transform size in points. */
    std::size_t size() const { return points; }

    /** In-place forward FFT of @p data (size() complex points). */
    void forward(Complex *data) const;

    /** In-place inverse FFT including the 1/N normalization. */
    void inverse(Complex *data) const;

    /** Size-checked vector overload of forward(). */
    void forward(std::vector<Complex> &data) const;

    /** Size-checked vector overload of inverse(). */
    void inverse(std::vector<Complex> &data) const;

    /**
     * Forward FFT of a real signal via the packed half-size complex
     * transform: size()/2 butterfly stages instead of size(), plus an
     * O(N) untangle. Writes the full conjugate-symmetric spectrum.
     *
     * @param samples size() real input samples.
     * @param out Caller-owned storage for size() complex bins; used
     *     in-place as packing scratch, so no allocation occurs.
     */
    void forwardReal(const double *samples, Complex *out) const;

    /**
     * Vector overload of forwardReal(); resizes @p out to size()
     * (allocation-free once its capacity has grown).
     */
    void forwardReal(const std::vector<double> &samples,
                     std::vector<Complex> &out) const;

    /**
     * Inverse of forwardReal() for conjugate-symmetric spectra (the
     * spectrum of any real signal). Runs the half-size inverse
     * transform in-place on @p spectrum — the first size()/2 entries
     * are clobbered as scratch.
     *
     * @param spectrum size() complex bins; modified.
     * @param out Caller-owned storage for size() real samples.
     */
    void inverseReal(Complex *spectrum, double *out) const;

    /** Vector overload of inverseReal(); resizes @p out to size(). */
    void inverseReal(std::vector<Complex> &spectrum,
                     std::vector<double> &out) const;

    /**
     * Shared plan for @p n points from the process-wide cache.
     * Creation is amortized: steady-state callers that hold the
     * returned pointer never touch the cache lock again.
     */
    static std::shared_ptr<const FftPlan> forSize(std::size_t n);

    /**
     * The precomputed bit-reversal permutation (bitrev[i] =
     * bit-reversed i). Shared with the fixed-point Q15FftPlan so the
     * two transforms are table-identical.
     */
    const std::vector<std::uint32_t> &bitReversal() const
    {
        return bitrev;
    }

    /** The precomputed twiddles, exp(-2*pi*i*j/size()), j < size()/2. */
    const std::vector<Complex> &twiddleTable() const { return twiddles; }

  private:
    FftPlan(std::size_t n, std::shared_ptr<const FftPlan> half_plan);

    void transform(Complex *data, bool inv) const;

    std::size_t points;
    /** bitrev[i] = bit-reversed i; permutation applied by swaps. */
    std::vector<std::uint32_t> bitrev;
    /** twiddles[j] = exp(-2*pi*i*j / points), j < points/2. */
    std::vector<Complex> twiddles;
    /** Half-size plan backing the real-input transforms (null for 1). */
    std::shared_ptr<const FftPlan> half;
};

/**
 * Counters distinguishing planned from naive transform executions,
 * used by the benchmarks to prove the hot path actually runs planned.
 * Cheap relaxed atomics; always on.
 */
struct FftCounters
{
    /** forward()/inverse() executions (complex, planned). */
    std::uint64_t plannedTransforms = 0;
    /** forwardReal()/inverseReal() executions (half-size trick). */
    std::uint64_t plannedRealTransforms = 0;
    /** naiveFft()/naiveIfft() reference-path executions. */
    std::uint64_t naiveTransforms = 0;
    /** Plans constructed (cache misses + standalone constructions). */
    std::uint64_t plansBuilt = 0;
    /** forSize() calls served from the cache. */
    std::uint64_t planCacheHits = 0;
};

/** Snapshot of the process-wide transform counters. */
FftCounters fftCounters();

/** Zero the transform counters (benchmark setup). */
void resetFftCounters();

/** Internal: records one naive-path execution (used by fft.cc). */
void countNaiveTransform();

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_FFT_PLAN_H
