#include "dsp/filters.h"

#include <cmath>

#include "dsp/fft.h"
#include "support/error.h"

namespace sidewinder::dsp {

MovingAverage::MovingAverage(std::size_t window_size)
    : history(window_size == 0 ? 1 : window_size), runningSum(0.0)
{
    if (window_size == 0)
        throw ConfigError("moving average window must be positive");
}

void
MovingAverage::reset()
{
    history.clear();
    runningSum = 0.0;
}

ExponentialMovingAverage::ExponentialMovingAverage(double alpha)
    : smoothing(alpha), seeded(false), state(0.0)
{
    if (!(alpha > 0.0) || alpha > 1.0)
        throw ConfigError("EMA alpha must be in (0, 1]");
}

void
ExponentialMovingAverage::reset()
{
    seeded = false;
    state = 0.0;
}

FftBlockFilter::FftBlockFilter(PassBand band, double cutoff_hz,
                               double sample_rate_hz)
    : direction(band), cutoff(cutoff_hz), sampleRate(sample_rate_hz)
{
    if (!(cutoff_hz > 0.0))
        throw ConfigError("filter cutoff must be positive");
    if (!(sample_rate_hz > 0.0))
        throw ConfigError("sample rate must be positive");
    if (cutoff_hz >= sample_rate_hz / 2.0)
        throw ConfigError("filter cutoff must be below Nyquist");
}

std::vector<double>
FftBlockFilter::apply(const std::vector<double> &frame) const
{
    std::vector<double> out;
    applyInto(frame, out);
    return out;
}

void
FftBlockFilter::applyInto(const std::vector<double> &frame,
                          std::vector<double> &out) const
{
    const std::size_t n = frame.size();
    if (!isPowerOfTwo(n))
        throw ConfigError("FFT filter frame size must be a power of two");

    if (!plan || plan->size() != n)
        plan = FftPlan::forSize(n);
    spectrum.resize(n);
    plan->forwardReal(frame.data(), spectrum.data());

    // Zero the stop band. Bin i and its mirror n-i represent the same
    // frequency for a real signal, so both are zeroed together to keep
    // the output real (and the spectrum conjugate-symmetric, which the
    // half-size inverse relies on).
    for (std::size_t i = 0; i <= n / 2; ++i) {
        const double freq = binFrequencyHz(i, n, sampleRate);
        const bool keep = direction == PassBand::LowPass ? freq <= cutoff
                                                         : freq >= cutoff;
        if (!keep) {
            spectrum[i] = Complex(0.0, 0.0);
            if (i != 0 && i != n / 2)
                spectrum[n - i] = Complex(0.0, 0.0);
        }
    }

    out.resize(n);
    plan->inverseReal(spectrum.data(), out.data());
}

} // namespace sidewinder::dsp
