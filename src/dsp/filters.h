/**
 * @file
 * Data-filtering algorithms from Section 3.6 of the paper:
 * noise reduction (moving average, exponential moving average) and
 * FFT-based low-pass / high-pass filtering.
 */

#ifndef SIDEWINDER_DSP_FILTERS_H
#define SIDEWINDER_DSP_FILTERS_H

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "dsp/fft_plan.h"
#include "support/ring_buffer.h"

namespace sidewinder::dsp {

/**
 * Streaming simple moving average over a fixed window.
 *
 * Per the interpreter semantics of Section 3.5, no result is produced
 * until the window has filled: "A moving average with a window size of
 * N will not produce a result until it has received N data points."
 */
class MovingAverage
{
  public:
    /** @param window_size Number of samples averaged; must be positive. */
    explicit MovingAverage(std::size_t window_size);

    /**
     * Feed one sample.
     * @return the window mean once at least window_size samples have
     *     been seen, otherwise nullopt.
     *
     * Defined inline: this is the inner loop of every smoothing node
     * on the hub, and the block-execution path relies on it
     * pipelining inside the kernels' tight wave loops.
     */
    std::optional<double>
    push(double sample)
    {
        if (history.full())
            runningSum -= history.front();
        history.push(sample);
        runningSum += sample;

        if (!history.full())
            return std::nullopt;
        return runningSum / static_cast<double>(history.capacity());
    }

    /** Forget all accumulated samples. */
    void reset();

    /** Configured window size. */
    std::size_t windowSize() const { return history.capacity(); }

  private:
    RingBuffer<double> history;
    double runningSum;
};

/**
 * Streaming exponential moving average:
 * y[n] = alpha * x[n] + (1 - alpha) * y[n-1].
 *
 * Produces a result for every input once the first sample seeds the
 * state.
 */
class ExponentialMovingAverage
{
  public:
    /** @param alpha Smoothing factor in (0, 1]. */
    explicit ExponentialMovingAverage(double alpha);

    /** Feed one sample and return the updated average (inline for
     * the same block-loop pipelining reason as MovingAverage). */
    double
    push(double sample)
    {
        if (!seeded) {
            state = sample;
            seeded = true;
        } else {
            state = smoothing * sample + (1.0 - smoothing) * state;
        }
        return state;
    }

    /** Forget the accumulated state. */
    void reset();

    /** Configured smoothing factor. */
    double alpha() const { return smoothing; }

  private:
    double smoothing;
    bool seeded;
    double state;
};

/** Direction selector for the FFT block filter. */
enum class PassBand { LowPass, HighPass };

/**
 * FFT-based block filter.
 *
 * Operates on whole frames (as produced by a WindowPartitioner): the
 * frame is transformed, bins outside the pass band are zeroed, and the
 * frame is transformed back to the time domain. Frame sizes must be
 * powers of two.
 */
class FftBlockFilter
{
  public:
    /**
     * @param band LowPass keeps frequencies <= cutoff; HighPass keeps
     *     frequencies >= cutoff.
     * @param cutoff_hz Cutoff frequency in Hz; must be positive.
     * @param sample_rate_hz Sampling rate of the input stream.
     */
    FftBlockFilter(PassBand band, double cutoff_hz, double sample_rate_hz);

    /** Filter one frame; the input size must be a power of two. */
    std::vector<double> apply(const std::vector<double> &frame) const;

    /**
     * Filter one frame into caller-owned storage. Uses the planned
     * real transforms and an internal spectrum scratch buffer, so the
     * steady state (same frame size every call) performs no heap
     * allocation. Not safe for concurrent calls on one filter
     * instance (the scratch is shared).
     */
    void applyInto(const std::vector<double> &frame,
                   std::vector<double> &out) const;

    /** Configured cutoff frequency in Hz. */
    double cutoffHz() const { return cutoff; }

    /** Configured pass band direction. */
    PassBand band() const { return direction; }

  private:
    PassBand direction;
    double cutoff;
    double sampleRate;
    /** Plan + scratch for the current frame size, built lazily. */
    mutable std::shared_ptr<const FftPlan> plan;
    mutable std::vector<Complex> spectrum;
};

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_FILTERS_H
