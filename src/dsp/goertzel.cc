#include "dsp/goertzel.h"

#include <cmath>
#include <numbers>

#include "support/error.h"

namespace sidewinder::dsp {

double
goertzelMagnitude(const std::vector<double> &frame, double target_hz,
                  double sample_rate_hz)
{
    if (frame.empty())
        throw ConfigError("goertzel on empty frame");
    if (!(sample_rate_hz > 0.0))
        throw ConfigError("goertzel sample rate must be positive");
    if (!(target_hz > 0.0) || target_hz >= sample_rate_hz / 2.0)
        throw ConfigError("goertzel target must be in (0, Nyquist)");

    const double omega =
        2.0 * std::numbers::pi * target_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);

    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (double x : frame) {
        const double s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }

    const double power = s_prev * s_prev + s_prev2 * s_prev2 -
                         coeff * s_prev * s_prev2;
    return std::sqrt(std::max(power, 0.0));
}

double
goertzelRelative(const std::vector<double> &frame, double target_hz,
                 double sample_rate_hz)
{
    const double mag =
        goertzelMagnitude(frame, target_hz, sample_rate_hz);
    double energy = 0.0;
    for (double x : frame)
        energy += x * x;
    // A pure unit tone of N samples has |X(k)| = N/2 and energy N/2,
    // so normalizing by sqrt(energy * N) / sqrt(2) ... use the direct
    // ratio to the tone's theoretical peak: N/2 * amplitude, where
    // amplitude^2 = 2 * energy / N.
    const double n = static_cast<double>(frame.size());
    const double amplitude = std::sqrt(2.0 * energy / n);
    const double peak = amplitude * n / 2.0;
    return peak > 0.0 ? mag / peak : 0.0;
}

} // namespace sidewinder::dsp
