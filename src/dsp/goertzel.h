/**
 * @file
 * Goertzel single-bin spectral estimation.
 *
 * The classic low-power alternative to a full FFT when only a few
 * frequencies matter: O(N) per probed frequency with three multiplies
 * per sample, no buffering of complex spectra, and no power-of-two
 * requirement — exactly the kind of algorithm Section 3.8 of the
 * paper anticipates adding when "a highly specialized algorithm may
 * provide optimal performance" for a class of applications. It lets a
 * pitched-sound wake-up condition fit the MSP430's real-time budget
 * where the FFT-based version needs the LM4F120.
 */

#ifndef SIDEWINDER_DSP_GOERTZEL_H
#define SIDEWINDER_DSP_GOERTZEL_H

#include <cstddef>
#include <vector>

namespace sidewinder::dsp {

/**
 * Magnitude of the @p target_hz component of @p frame sampled at
 * @p sample_rate_hz, comparable to the corresponding
 * magnitudeSpectrum() bin (same scaling, |X(k)|).
 *
 * @throws ConfigError on an empty frame, a non-positive rate, or a
 *     target at/above Nyquist.
 */
double goertzelMagnitude(const std::vector<double> &frame,
                         double target_hz, double sample_rate_hz);

/**
 * Relative strength of the probed tone: goertzel magnitude divided by
 * the frame's total RMS-equivalent magnitude (||x|| * sqrt(N) / 2
 * normalization, so a pure tone at the target scores ~1 and broadband
 * noise scores near 0).
 */
double goertzelRelative(const std::vector<double> &frame,
                        double target_hz, double sample_rate_hz);

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_GOERTZEL_H
