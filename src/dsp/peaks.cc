#include "dsp/peaks.h"

#include "support/error.h"

namespace sidewinder::dsp {

PeakDetector::PeakDetector(PeakPolarity polarity, double low, double high,
                           std::size_t refractory)
    : polarity(polarity), low(low), high(high), refractory(refractory)
{
    if (low > high)
        throw ConfigError("PeakDetector band is inverted");
}

std::optional<double>
PeakDetector::push(double sample)
{
    ++sinceLastPeak;

    std::optional<double> result;
    if (havePrev && havePrev2) {
        const bool rising = prev > prev2;
        const bool falling = sample <= prev;
        const bool dipping = prev < prev2;
        const bool recovering = sample >= prev;

        const bool is_peak = polarity == PeakPolarity::Maxima
                                 ? (rising && falling)
                                 : (dipping && recovering);
        const bool in_band = prev >= low && prev <= high;
        const bool debounced =
            !peakEmitted || sinceLastPeak > refractory;

        if (is_peak && in_band && debounced) {
            result = prev;
            peakEmitted = true;
            sinceLastPeak = 0;
        }
    }

    prev2 = prev;
    havePrev2 = havePrev;
    prev = sample;
    havePrev = true;
    return result;
}

void
PeakDetector::reset()
{
    havePrev = false;
    havePrev2 = false;
    sinceLastPeak = 0;
    peakEmitted = false;
}

} // namespace sidewinder::dsp
