/**
 * @file
 * Streaming local-extremum detection.
 *
 * The paper's step detector "searches for local maxima in the filtered
 * x-axis acceleration" within a band, and the headbutt detector
 * "searches for local minima" within a band (Section 3.7.1). This
 * module provides a streaming detector for both polarities.
 */

#ifndef SIDEWINDER_DSP_PEAKS_H
#define SIDEWINDER_DSP_PEAKS_H

#include <optional>

namespace sidewinder::dsp {

/** Which extremum polarity to detect. */
enum class PeakPolarity { Maxima, Minima };

/**
 * Detects local extrema whose value lies within [low, high].
 *
 * A local maximum is a sample strictly greater than its predecessor
 * where the following sample is not greater (and symmetrically for
 * minima). Consecutive detections are separated by at least
 * @p refractory samples to avoid double-counting one physical event —
 * the same debouncing the paper's step detector needs to count each
 * step once.
 */
class PeakDetector
{
  public:
    /**
     * @param polarity Maxima or Minima.
     * @param low Lower bound of the acceptance band.
     * @param high Upper bound of the acceptance band.
     * @param refractory Minimum samples between reported peaks.
     */
    PeakDetector(PeakPolarity polarity, double low, double high,
                 std::size_t refractory = 0);

    /**
     * Feed one sample.
     * @return the peak value when the previous sample is confirmed as a
     *     peak inside the band, otherwise nullopt.
     */
    std::optional<double> push(double sample);

    /** Forget history; the next two samples rebuild context. */
    void reset();

  private:
    PeakPolarity polarity;
    double low;
    double high;
    std::size_t refractory;

    bool havePrev = false;
    bool havePrev2 = false;
    double prev = 0.0;
    double prev2 = 0.0;
    std::size_t sinceLastPeak = 0;
    bool peakEmitted = false;
};

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_PEAKS_H
