#include "dsp/q15.h"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "support/error.h"

namespace sidewinder::dsp {

#if SIDEWINDER_Q15_COUNTERS_ENABLED
namespace detail {
thread_local std::uint64_t q15SaturationEvents = 0;
}
#endif

std::uint64_t
q15SaturationEventCount()
{
#if SIDEWINDER_Q15_COUNTERS_ENABLED
    return detail::q15SaturationEvents;
#else
    return 0;
#endif
}

void
resetQ15SaturationEvents()
{
#if SIDEWINDER_Q15_COUNTERS_ENABLED
    detail::q15SaturationEvents = 0;
#endif
}

Q15
toQ15(double x)
{
    // Round-to-nearest on the Q15 grid, saturating at the ends.
    const double scaled = x * kQ15One;
    if (scaled >= static_cast<double>(kQ15Max)) {
#if SIDEWINDER_Q15_COUNTERS_ENABLED
        // Same >1-count event rule as saturateQ15: quantizing values
        // up to and including 1.0 rounds onto (or one count past)
        // the grid and is not an event.
        if (scaled >= static_cast<double>(kQ15Max) + 1.5)
            ++detail::q15SaturationEvents;
#endif
        return kQ15Max;
    }
    if (scaled <= static_cast<double>(kQ15Min)) {
#if SIDEWINDER_Q15_COUNTERS_ENABLED
        if (scaled <= static_cast<double>(kQ15Min) - 1.5)
            ++detail::q15SaturationEvents;
#endif
        return kQ15Min;
    }
    return static_cast<Q15>(std::lround(scaled));
}

void
quantizeQ15(const double *in, Q15 *out, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = toQ15(in[i]);
}

void
dequantizeQ15(const Q15 *in, double *out, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = fromQ15(in[i]);
}

// ---------------------------------------------------------------------
// Streaming filters.

Q15MovingAverage::Q15MovingAverage(std::size_t window_size)
    : history(window_size)
{
}

std::optional<Q15>
Q15MovingAverage::push(Q15 sample)
{
    if (history.full())
        runningSum -= history.front();
    history.push(sample);
    runningSum += sample;
    if (!history.full())
        return std::nullopt;
    const auto n = static_cast<std::int32_t>(history.size());
    // Rounded signed divide: shift the numerator by half the divisor
    // toward the sum's sign so the truncation rounds to nearest.
    const std::int32_t bias = runningSum >= 0 ? n / 2 : -(n / 2);
    return saturateQ15((runningSum + bias) / n);
}

void
Q15MovingAverage::reset()
{
    history.clear();
    runningSum = 0;
}

Q15ExponentialMovingAverage::Q15ExponentialMovingAverage(double alpha)
    : alphaQ15(toQ15(alpha))
{
    if (!(alpha > 0.0) || alpha > 1.0)
        throw ConfigError("Q15 EMA alpha must be in (0, 1]");
}

Q15
Q15ExponentialMovingAverage::push(Q15 sample)
{
    if (!seeded) {
        seeded = true;
        state = sample;
        return state;
    }
    // y += round(alpha * (x - y)): the delta fits 17 bits, so the
    // product runs in 32 bits before the rounding shift.
    const std::int32_t delta =
        static_cast<std::int32_t>(sample) - state;
    const std::int32_t step =
        (static_cast<std::int32_t>(alphaQ15) * delta + 0x4000) >> 15;
    state = saturateQ15(static_cast<std::int32_t>(state) + step);
    return state;
}

void
Q15ExponentialMovingAverage::reset()
{
    seeded = false;
    state = 0;
}

// ---------------------------------------------------------------------
// Biquad.

namespace {

/** Quantize a biquad coefficient to Q14 (|c| < 2). */
std::int16_t
toQ14(double c)
{
    const double scaled = c * 16384.0;
    if (scaled >= 32767.0)
        return 32767;
    if (scaled <= -32768.0)
        return -32768;
    return static_cast<std::int16_t>(std::lround(scaled));
}

} // namespace

Q15Biquad::Q15Biquad(double b0_, double b1_, double b2_, double a1_,
                     double a2_)
    : b0(toQ14(b0_)), b1(toQ14(b1_)), b2(toQ14(b2_)), a1(toQ14(a1_)),
      a2(toQ14(a2_))
{
    if (std::abs(b0_) >= 2.0 || std::abs(b1_) >= 2.0 ||
        std::abs(b2_) >= 2.0 || std::abs(a1_) >= 2.0 ||
        std::abs(a2_) >= 2.0)
        throw ConfigError("Q15 biquad coefficients must be in (-2, 2)");
}

Q15
Q15Biquad::push(Q15 x)
{
    // Q15 samples * Q14 coefficients accumulate in Q29; the +0x2000
    // bias rounds the final >>14 back onto the Q15 grid.
    std::int32_t acc = static_cast<std::int32_t>(b0) * x;
    acc += static_cast<std::int32_t>(b1) * x1;
    acc += static_cast<std::int32_t>(b2) * x2;
    acc -= static_cast<std::int32_t>(a1) * y1;
    acc -= static_cast<std::int32_t>(a2) * y2;
    const Q15 y = saturateQ15((acc + 0x2000) >> 14);
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = y;
    return y;
}

void
Q15Biquad::reset()
{
    x1 = x2 = y1 = y2 = 0;
}

// ---------------------------------------------------------------------
// Threshold.

Q15Threshold::Q15Threshold(ThresholdKind kind, double low_, double high_)
    : mode(kind), low(toQ15(low_)), high(toQ15(high_))
{
}

bool
Q15Threshold::admits(Q15 value) const
{
    switch (mode) {
      case ThresholdKind::Min:
        return value >= low;
      case ThresholdKind::Max:
        return value <= low;
      case ThresholdKind::Band:
        return value >= low && value <= high;
      case ThresholdKind::OutsideBand:
        return value < low || value > high;
    }
    return false;
}

// ---------------------------------------------------------------------
// Goertzel.

namespace {

std::int32_t
goertzelState(const Q15 *frame, std::size_t count, double omega,
              std::int32_t &s_prev, std::int32_t &s_prev2)
{
    // 2cos(w) in [-2, 2] takes Q14; the recurrence state grows to
    // ~N/2 in real terms, so it lives in a 32-bit Q15 accumulator
    // and the products run in 64 bits before the rounding shift.
    const std::int32_t coeff_q14 =
        static_cast<std::int32_t>(std::lround(2.0 * std::cos(omega) *
                                              16384.0));
    s_prev = 0;
    s_prev2 = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::int64_t prod =
            static_cast<std::int64_t>(coeff_q14) * s_prev;
        const std::int32_t s =
            static_cast<std::int32_t>((prod + 0x2000) >> 14) -
            s_prev2 + frame[i];
        s_prev2 = s_prev;
        s_prev = s;
    }
    return coeff_q14;
}

} // namespace

double
q15GoertzelMagnitude(const Q15 *frame, std::size_t count,
                     double target_hz, double sample_rate_hz)
{
    if (count == 0)
        throw ConfigError("goertzel on empty frame");
    if (!(sample_rate_hz > 0.0))
        throw ConfigError("goertzel sample rate must be positive");
    if (!(target_hz > 0.0) || target_hz >= sample_rate_hz / 2.0)
        throw ConfigError("goertzel target must be in (0, Nyquist)");

    const double omega =
        2.0 * std::numbers::pi * target_hz / sample_rate_hz;
    std::int32_t s1 = 0;
    std::int32_t s2 = 0;
    const std::int32_t coeff_q14 =
        goertzelState(frame, count, omega, s1, s2);

    // |X|^2 = s1^2 + s2^2 - 2cos(w) s1 s2, evaluated on the integer
    // state; the final square root is the one floating step, matching
    // firmware that hands the power off to a sqrt routine.
    const double a = static_cast<double>(s1);
    const double b = static_cast<double>(s2);
    const double coeff = static_cast<double>(coeff_q14) / 16384.0;
    const double power = a * a + b * b - coeff * a * b;
    return std::sqrt(std::max(power, 0.0)) / kQ15One;
}

double
q15GoertzelRelative(const Q15 *frame, std::size_t count,
                    double target_hz, double sample_rate_hz)
{
    const double mag =
        q15GoertzelMagnitude(frame, count, target_hz, sample_rate_hz);
    // Same normalization as dsp::goertzelRelative, with the frame
    // energy accumulated in integers (counts of 2^-30).
    std::int64_t energy = 0;
    for (std::size_t i = 0; i < count; ++i)
        energy += static_cast<std::int64_t>(frame[i]) * frame[i];
    const double n = static_cast<double>(count);
    const double energy_real =
        static_cast<double>(energy) / (kQ15One * kQ15One);
    const double amplitude = std::sqrt(2.0 * energy_real / n);
    const double peak = amplitude * n / 2.0;
    return peak > 0.0 ? mag / peak : 0.0;
}

// ---------------------------------------------------------------------
// Fixed-point FFT.

Q15FftPlan::Q15FftPlan(std::size_t n)
    : points(n), tables(FftPlan::forSize(n))
{
    const auto &tw = tables->twiddleTable();
    twiddleRe.reserve(tw.size());
    twiddleIm.reserve(tw.size());
    for (const Complex &w : tw) {
        twiddleRe.push_back(toQ15(w.real()));
        twiddleIm.push_back(toQ15(w.imag()));
    }
}

void
Q15FftPlan::transform(Q15 *re, Q15 *im, bool inv) const
{
    const auto &bitrev = tables->bitReversal();
    for (std::size_t i = 0; i < points; ++i) {
        const std::size_t j = bitrev[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }

    for (std::size_t len = 2; len <= points; len <<= 1) {
        const std::size_t step = points / len;
        const std::size_t half = len / 2;
        for (std::size_t start = 0; start < points; start += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const std::size_t tw = k * step;
                const std::int32_t wr = twiddleRe[tw];
                // Forward twiddles are exp(-j...); the inverse run
                // conjugates them.
                const std::int32_t wi =
                    inv ? -static_cast<std::int32_t>(twiddleIm[tw])
                        : twiddleIm[tw];
                const std::size_t a = start + k;
                const std::size_t b = a + half;
                // (wr + j wi) * (re[b] + j im[b]) in Q30, rounded
                // back to Q15.
                const std::int32_t tr = static_cast<std::int32_t>(
                    (wr * re[b] - wi * im[b] + 0x4000) >> 15);
                const std::int32_t ti = static_cast<std::int32_t>(
                    (wr * im[b] + wi * re[b] + 0x4000) >> 15);
                std::int32_t sum_r = re[a] + tr;
                std::int32_t sum_i = im[a] + ti;
                std::int32_t diff_r = re[a] - tr;
                std::int32_t diff_i = im[a] - ti;
                if (!inv) {
                    // Scale by 1/2 per stage (1/N overall): every
                    // butterfly output stays on the Q15 grid, the
                    // fixed-point equivalent of block floating point
                    // with a known final exponent.
                    sum_r = (sum_r + 1) >> 1;
                    sum_i = (sum_i + 1) >> 1;
                    diff_r = (diff_r + 1) >> 1;
                    diff_i = (diff_i + 1) >> 1;
                }
                re[a] = saturateQ15(sum_r);
                im[a] = saturateQ15(sum_i);
                re[b] = saturateQ15(diff_r);
                im[b] = saturateQ15(diff_i);
            }
        }
    }
}

void
Q15FftPlan::forward(Q15 *re, Q15 *im) const
{
    transform(re, im, false);
}

void
Q15FftPlan::inverse(Q15 *re, Q15 *im) const
{
    // forward() already divided by N, so the mathematical inverse
    // applies no normalization. Intermediate values re-grow toward
    // the time-domain magnitudes, which fit Q15 by construction.
    transform(re, im, true);
}

std::shared_ptr<const Q15FftPlan>
Q15FftPlan::forSize(std::size_t n)
{
    static std::mutex lock;
    static std::unordered_map<std::size_t,
                              std::shared_ptr<const Q15FftPlan>>
        cache;
    std::lock_guard<std::mutex> guard(lock);
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    auto plan = std::make_shared<const Q15FftPlan>(n);
    cache.emplace(n, plan);
    return plan;
}

} // namespace sidewinder::dsp
