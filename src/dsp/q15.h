/**
 * @file
 * Q15 fixed-point arithmetic and kernels: the sample format of the
 * hub's real firmware.
 *
 * The paper's MCU prototypes (MSP430, LM4F120) run their signal
 * chains in 16-bit fixed point — one sign bit, 15 fractional bits,
 * values in [-1, 1 - 2^-15] — which is exactly the 2-bytes-per-sample
 * RAM model the static analyzer already charges (il::nodeRamBytes).
 * This module provides the host-side bit-accurate equivalents:
 * saturating arithmetic, streaming filters, a biquad section, a
 * Goertzel probe with a widened accumulator, and a fixed-point FFT
 * driven by the same bit-reversal/twiddle tables as the double
 * precision FftPlan.
 *
 * Convention: a Q15 value q represents the real number q / 32768.
 * Conversions round to nearest and saturate, so
 * fromQ15(toQ15(x)) == x for every x already on the Q15 grid and
 * |fromQ15(toQ15(x)) - x| <= 2^-16 for every x in [-1, 1).
 */

#ifndef SIDEWINDER_DSP_Q15_H
#define SIDEWINDER_DSP_Q15_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dsp/fft_plan.h"
#include "dsp/threshold.h"
#include "support/ring_buffer.h"

namespace sidewinder::dsp {

/** One Q15 fixed-point sample (1.15 signed). */
using Q15 = std::int16_t;

/** Largest representable Q15 value, 1 - 2^-15. */
inline constexpr Q15 kQ15Max = 32767;
/** Smallest representable Q15 value, -1.0. */
inline constexpr Q15 kQ15Min = -32768;
/** Reals per Q15 count: q represents q / kQ15One. */
inline constexpr double kQ15One = 32768.0;

// Saturation-event counters: instrumentation for the range analyzer's
// soundness gate (tests assert that a plan proven Q15-safe produces
// zero events). Enabled in debug and sanitizer builds; compiled out
// of Release so the saturate path stays two compares. An *event* is a
// clamp that loses more than one count — quantizing exactly 1.0
// (Hamming edge coefficients, the cos(0) twiddle) and the lone
// -1 * -1 multiply land one count past the grid by construction and
// are part of normal fixed-point behavior, not saturation.
#if defined(SIDEWINDER_Q15_COUNTERS) || !defined(NDEBUG)
#define SIDEWINDER_Q15_COUNTERS_ENABLED 1
#else
#define SIDEWINDER_Q15_COUNTERS_ENABLED 0
#endif

#if SIDEWINDER_Q15_COUNTERS_ENABLED
namespace detail {
extern thread_local std::uint64_t q15SaturationEvents;
}
#endif

/**
 * Saturation events observed on this thread since the last reset;
 * always 0 in Release builds (the counter is compiled out).
 */
std::uint64_t q15SaturationEventCount();

/** Reset this thread's saturation-event counter. No-op in Release. */
void resetQ15SaturationEvents();

/** Clamp a widened intermediate onto the Q15 range. */
inline Q15
saturateQ15(std::int32_t wide)
{
    if (wide > kQ15Max) {
#if SIDEWINDER_Q15_COUNTERS_ENABLED
        if (wide > static_cast<std::int32_t>(kQ15Max) + 1)
            ++detail::q15SaturationEvents;
#endif
        return kQ15Max;
    }
    if (wide < kQ15Min) {
#if SIDEWINDER_Q15_COUNTERS_ENABLED
        if (wide < static_cast<std::int32_t>(kQ15Min) - 1)
            ++detail::q15SaturationEvents;
#endif
        return kQ15Min;
    }
    return static_cast<Q15>(wide);
}

/** Quantize @p x: round to nearest Q15 count, saturating at ±1. */
Q15 toQ15(double x);

/** The real number represented by @p q (exact in double). */
inline double
fromQ15(Q15 q)
{
    return static_cast<double>(q) / kQ15One;
}

/** Saturating Q15 addition. */
inline Q15
q15Add(Q15 a, Q15 b)
{
    return saturateQ15(static_cast<std::int32_t>(a) + b);
}

/** Saturating Q15 subtraction. */
inline Q15
q15Sub(Q15 a, Q15 b)
{
    return saturateQ15(static_cast<std::int32_t>(a) - b);
}

/**
 * Saturating Q15 multiplication with round-to-nearest:
 * (a * b + 0x4000) >> 15. The lone saturating case is
 * kQ15Min * kQ15Min (-1 * -1 = +1, unrepresentable).
 */
inline Q15
q15Mul(Q15 a, Q15 b)
{
    const std::int32_t wide =
        (static_cast<std::int32_t>(a) * b + 0x4000) >> 15;
    return saturateQ15(wide);
}

/** Quantize @p count doubles into @p out. */
void quantizeQ15(const double *in, Q15 *out, std::size_t count);

/** Dequantize @p count Q15 samples into @p out. */
void dequantizeQ15(const Q15 *in, double *out, std::size_t count);

/**
 * Streaming moving average over Q15 samples: 32-bit running sum,
 * rounded divide. Mirrors dsp::MovingAverage's fill semantics (no
 * result until the window is full). Stores one Q15 per retained
 * sample — the analyzer's 2-byte cost model, verbatim.
 */
class Q15MovingAverage
{
  public:
    explicit Q15MovingAverage(std::size_t window_size);

    std::optional<Q15> push(Q15 sample);
    void reset();
    std::size_t windowSize() const { return history.capacity(); }

  private:
    RingBuffer<Q15> history;
    std::int32_t runningSum = 0;
};

/**
 * Exponential moving average in Q15:
 * y += (alpha_q15 * (x - y)) >> 15, rounded. Seeds on the first
 * sample like the double version.
 */
class Q15ExponentialMovingAverage
{
  public:
    explicit Q15ExponentialMovingAverage(double alpha);

    Q15 push(Q15 sample);
    void reset();

  private:
    Q15 alphaQ15;
    bool seeded = false;
    Q15 state = 0;
};

/**
 * One biquad section (direct form I) with Q14 coefficients — the
 * standard building block of MCU IIR chains, where coefficient
 * magnitudes up to 2 need one integer bit. State and samples are
 * Q15; the accumulate runs in 32 bits and saturates on output.
 */
class Q15Biquad
{
  public:
    /** y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2; |coeffs| < 2. */
    Q15Biquad(double b0, double b1, double b2, double a1, double a2);

    Q15 push(Q15 x);
    void reset();

  private:
    std::int16_t b0, b1, b2, a1, a2; // Q14
    Q15 x1 = 0, x2 = 0, y1 = 0, y2 = 0;
};

/**
 * Admission-control comparisons on the Q15 grid: the limits are
 * quantized once at construction (shifting each boundary by at most
 * 2^-16), then every test is a pure integer compare — the firmware's
 * threshold check. Same predicate semantics as dsp::Threshold.
 */
class Q15Threshold
{
  public:
    /** @p low / @p high as for dsp::Threshold (equal for Min/Max). */
    Q15Threshold(ThresholdKind kind, double low, double high);

    /** True when @p value satisfies the predicate. */
    bool admits(Q15 value) const;

    /** The value itself when admitted, otherwise nullopt. */
    std::optional<Q15> push(Q15 value) const
    {
        if (!admits(value))
            return std::nullopt;
        return value;
    }

  private:
    ThresholdKind mode;
    Q15 low;
    Q15 high;
};

/**
 * Goertzel single-bin probe over quantized samples. The recurrence
 * state s[n] grows up to ~N/2, far past the Q15 range, so it runs in
 * a 32-bit accumulator (Q15-scaled) with the 2cos(w) coefficient in
 * Q14 — what the MSP430 firmware does with its 16x16->32 multiplier.
 * The returned magnitude is comparable to dsp::goertzelMagnitude on
 * the dequantized frame.
 */
double q15GoertzelMagnitude(const Q15 *frame, std::size_t count,
                            double target_hz, double sample_rate_hz);

/** Q15 counterpart of dsp::goertzelRelative (same normalization). */
double q15GoertzelRelative(const Q15 *frame, std::size_t count,
                           double target_hz, double sample_rate_hz);

/**
 * Fixed-point radix-2 FFT sharing FftPlan's bit-reversal table, with
 * the twiddle factors quantized to Q15 once per size.
 *
 * forward() scales by 1/2 per stage (1/N overall) so no butterfly
 * can overflow: the spectrum of any Q15 signal satisfies
 * |X(k)| <= N * max|x|, so X(k)/N always fits the Q15 grid.
 * inverse() applies no scaling and is thereby the exact inverse of
 * forward() up to rounding: inverse(forward(x)) ~= x.
 */
class Q15FftPlan
{
  public:
    /** @throws ConfigError unless @p n is a power of two. */
    explicit Q15FftPlan(std::size_t n);

    std::size_t size() const { return points; }

    /** In-place forward transform, output scaled by 1/size(). */
    void forward(Q15 *re, Q15 *im) const;

    /** In-place unscaled inverse of forward(). */
    void inverse(Q15 *re, Q15 *im) const;

    /** Shared plan from a process-wide per-size cache. */
    static std::shared_ptr<const Q15FftPlan> forSize(std::size_t n);

  private:
    void transform(Q15 *re, Q15 *im, bool inv) const;

    std::size_t points;
    /** The double-precision plan whose tables this one quantizes. */
    std::shared_ptr<const FftPlan> tables;
    /** twiddles quantized to Q15: exp(-2*pi*i*j/points). */
    std::vector<Q15> twiddleRe;
    std::vector<Q15> twiddleIm;
};

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_Q15_H
