#include "dsp/threshold.h"

#include "support/error.h"

namespace sidewinder::dsp {

Threshold::Threshold(ThresholdKind kind, double limit)
    : mode(kind), low(limit), high(limit)
{
    if (kind != ThresholdKind::Min && kind != ThresholdKind::Max)
        throw ConfigError(
            "single-limit Threshold requires Min or Max kind");
}

Threshold::Threshold(ThresholdKind kind, double low, double high)
    : mode(kind), low(low), high(high)
{
    if (kind != ThresholdKind::Band && kind != ThresholdKind::OutsideBand)
        throw ConfigError(
            "two-limit Threshold requires Band or OutsideBand kind");
    if (low > high)
        throw ConfigError("Threshold band is inverted");
}

bool
Threshold::admits(double value) const
{
    switch (mode) {
      case ThresholdKind::Min:
        return value >= low;
      case ThresholdKind::Max:
        return value <= high;
      case ThresholdKind::Band:
        return value >= low && value <= high;
      case ThresholdKind::OutsideBand:
        return value < low || value > high;
    }
    return false;
}

std::optional<double>
Threshold::push(double value) const
{
    if (admits(value))
        return value;
    return std::nullopt;
}

} // namespace sidewinder::dsp
