/**
 * @file
 * Admission-control algorithms: configurable high and low thresholds
 * (Section 3.6 of the paper). A threshold "will only produce a result
 * when the threshold is met" (Section 3.5), which is what makes it the
 * natural terminal stage of a wake-up condition.
 */

#ifndef SIDEWINDER_DSP_THRESHOLD_H
#define SIDEWINDER_DSP_THRESHOLD_H

#include <optional>

namespace sidewinder::dsp {

/** Comparison mode for an admission-control stage. */
enum class ThresholdKind {
    /** Pass values >= limit (the paper's MinThreshold). */
    Min,
    /** Pass values <= limit. */
    Max,
    /** Pass values inside [low, high]. */
    Band,
    /** Pass values outside [low, high]. */
    OutsideBand,
};

/**
 * Stateless admission control: forwards the input value only when the
 * configured predicate holds.
 */
class Threshold
{
  public:
    /** Min/Max threshold against a single @p limit. */
    Threshold(ThresholdKind kind, double limit);

    /** Band / OutsideBand threshold against [low, high]. */
    Threshold(ThresholdKind kind, double low, double high);

    /**
     * Test one value.
     * @return the value itself when admitted, otherwise nullopt.
     */
    std::optional<double> push(double value) const;

    /** True when @p value satisfies the predicate. */
    bool admits(double value) const;

    /** Configured comparison mode. */
    ThresholdKind kind() const { return mode; }

    /** Lower bound (or the single limit for Min/Max kinds). */
    double lowLimit() const { return low; }

    /** Upper bound (equals lowLimit() for Min/Max kinds). */
    double highLimit() const { return high; }

  private:
    ThresholdKind mode;
    double low;
    double high;
};

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_THRESHOLD_H
