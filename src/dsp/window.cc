#include "dsp/window.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.h"

namespace sidewinder::dsp {

double
hammingCoefficient(std::size_t i, std::size_t n)
{
    if (n <= 1)
        return 1.0;
    return 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                                  static_cast<double>(i) /
                                  static_cast<double>(n - 1));
}

void
applyWindow(std::vector<double> &frame, WindowType type)
{
    if (type == WindowType::Rectangular)
        return;
    const std::size_t n = frame.size();
    for (std::size_t i = 0; i < n; ++i)
        frame[i] *= hammingCoefficient(i, n);
}

WindowPartitioner::WindowPartitioner(std::size_t size, WindowType type,
                                     std::size_t hop)
    : frameSize(size), hopSize(hop == 0 ? size : hop), windowType(type)
{
    if (frameSize == 0)
        throw ConfigError("window size must be positive");
    if (hopSize == 0 || hopSize > frameSize)
        throw ConfigError("window hop must be in [1, size]");
    pending.reserve(frameSize);
    if (windowType == WindowType::Hamming) {
        coefficients.resize(frameSize);
        for (std::size_t i = 0; i < frameSize; ++i)
            coefficients[i] = hammingCoefficient(i, frameSize);
    }
}

std::optional<std::vector<double>>
WindowPartitioner::push(double sample)
{
    std::vector<double> frame;
    if (!pushInto(sample, frame))
        return std::nullopt;
    return frame;
}

bool
WindowPartitioner::pushInto(double sample, std::vector<double> &frame)
{
    pending.push_back(sample);
    if (pending.size() < frameSize)
        return false;

    frame.resize(frameSize);
    if (coefficients.empty()) {
        std::copy(pending.begin(), pending.end(), frame.begin());
    } else {
        for (std::size_t i = 0; i < frameSize; ++i)
            frame[i] = pending[i] * coefficients[i];
    }

    // Retain the overlap tail for the next frame.
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(hopSize));
    return true;
}

void
WindowPartitioner::appendPartial(const double *samples, std::size_t n)
{
    if (n >= remainingToFrame())
        throw ConfigError("appendPartial would complete a frame");
    pending.insert(pending.end(), samples, samples + n);
}

void
WindowPartitioner::reset()
{
    pending.clear();
}

} // namespace sidewinder::dsp
