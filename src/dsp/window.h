/**
 * @file
 * Windowing algorithms: partitioning a sample stream into rectangular
 * or Hamming windows (Section 3.6 of the paper, "Windowing").
 */

#ifndef SIDEWINDER_DSP_WINDOW_H
#define SIDEWINDER_DSP_WINDOW_H

#include <cstddef>
#include <optional>
#include <vector>

namespace sidewinder::dsp {

/** Shape applied to each emitted window. */
enum class WindowType { Rectangular, Hamming };

/** Hamming coefficient for position @p i of an @p n point window. */
double hammingCoefficient(std::size_t i, std::size_t n);

/** Multiply @p frame in place by the coefficients of @p type. */
void applyWindow(std::vector<double> &frame, WindowType type);

/**
 * Streaming partitioner that groups incoming scalar samples into
 * fixed-size frames with optional overlap (hop < size) and applies a
 * window shape to each emitted frame.
 */
class WindowPartitioner
{
  public:
    /**
     * @param size Samples per emitted frame; must be positive.
     * @param type Shape applied to each frame.
     * @param hop Samples to advance between frames; defaults to @p size
     *     (no overlap). Must be in [1, size].
     */
    explicit WindowPartitioner(std::size_t size,
                               WindowType type = WindowType::Rectangular,
                               std::size_t hop = 0);

    /**
     * Feed one sample.
     * @return a completed frame when one becomes available.
     */
    std::optional<std::vector<double>> push(double sample);

    /**
     * Feed one sample, writing a completed frame into caller-owned
     * storage instead of allocating one. @p frame is resized to the
     * window size when a frame is emitted, so a caller reusing the
     * same vector allocates nothing in steady state.
     *
     * @return true when @p frame was filled with a completed window.
     */
    bool pushInto(double sample, std::vector<double> &frame);

    /**
     * Samples still needed before the next push completes a frame
     * (always >= 1). Block-mode callers use this to bulk-append the
     * quiet stretch between emissions.
     */
    std::size_t
    remainingToFrame() const
    {
        return frameSize - pending.size();
    }

    /**
     * Bulk-append @p n samples known not to complete a frame
     * (@p n < remainingToFrame()): one contiguous insert instead of
     * @p n pushes, with identical resulting state.
     */
    void appendPartial(const double *samples, std::size_t n);

    /** Discard any partially accumulated frame. */
    void reset();

    /** Configured frame size. */
    std::size_t size() const { return frameSize; }

    /** Configured hop (advance between frames). */
    std::size_t hop() const { return hopSize; }

  private:
    std::size_t frameSize;
    std::size_t hopSize;
    WindowType windowType;
    std::vector<double> pending;
    /** Window shape, tabulated once (cos per sample otherwise). */
    std::vector<double> coefficients;
};

} // namespace sidewinder::dsp

#endif // SIDEWINDER_DSP_WINDOW_H
