#include "hub/autotune.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::hub {

namespace {

bool
isTunable(const il::Statement &stmt)
{
    return stmt.algorithm == "minThreshold" ||
           stmt.algorithm == "maxThreshold" ||
           stmt.algorithm == "bandThreshold" ||
           stmt.algorithm == "outsideBandThreshold" ||
           stmt.algorithm == "localMaxima" ||
           stmt.algorithm == "localMinima";
}

/** Re-parameterize @p stmt to strictness @p scale (1 = original). */
void
rescale(il::Statement &stmt, const il::Statement &original,
        double scale)
{
    if (stmt.algorithm == "minThreshold") {
        // Stricter = higher floor.
        stmt.params[0] = original.params[0] * scale;
    } else if (stmt.algorithm == "maxThreshold") {
        // Stricter = lower ceiling.
        stmt.params[0] = original.params[0] / scale;
    } else if (stmt.algorithm == "bandThreshold" ||
               stmt.algorithm == "localMaxima" ||
               stmt.algorithm == "localMinima") {
        // Stricter = narrower band around the original center.
        const double center =
            0.5 * (original.params[0] + original.params[1]);
        const double half =
            0.5 * (original.params[1] - original.params[0]) / scale;
        stmt.params[0] = center - half;
        stmt.params[1] = center + half;
    } else if (stmt.algorithm == "outsideBandThreshold") {
        // Stricter = wider excluded band.
        const double center =
            0.5 * (original.params[0] + original.params[1]);
        const double half =
            0.5 * (original.params[1] - original.params[0]) * scale;
        stmt.params[0] = center - half;
        stmt.params[1] = center + half;
    }
}

} // namespace

ThresholdAutoTuner::ThresholdAutoTuner(Engine &engine, int condition_id,
                                       il::Program program,
                                       AutoTuneConfig config)
    : engine(engine), conditionId(condition_id),
      original(std::move(program)), current(original), config(config)
{
    bool found = false;
    for (std::size_t i = 0; i < original.statements.size(); ++i) {
        if (isTunable(original.statements[i])) {
            tunableIndex = i;
            found = true;
        }
    }
    if (!found)
        throw ConfigError(
            "auto-tuning needs a threshold-family stage");

    engine.addCondition(conditionId, current);
}

void
ThresholdAutoTuner::applyScale(double new_scale)
{
    new_scale = std::clamp(new_scale, config.minScale, config.maxScale);
    if (new_scale == scale)
        return;
    scale = new_scale;

    current = original;
    rescale(current.statements[tunableIndex],
            original.statements[tunableIndex], scale);

    engine.removeCondition(conditionId);
    engine.addCondition(conditionId, current);
    ++retunes;
}

void
ThresholdAutoTuner::reportFalsePositive()
{
    tpSinceRelax = 0;
    if (++fpStreak >= config.falsePositiveStreak) {
        fpStreak = 0;
        applyScale(scale * config.tightenFactor);
    }
}

void
ThresholdAutoTuner::reportTruePositive()
{
    fpStreak = 0;
    if (++tpSinceRelax >= config.relaxAfterTruePositives) {
        tpSinceRelax = 0;
        applyScale(scale * config.relaxFactor);
    }
}

} // namespace sidewinder::hub
