/**
 * @file
 * Self-tuning wake-up thresholds from application feedback.
 *
 * Section 7 of the paper: "given feedback from the more complex
 * algorithms running on the application level, self-learning
 * mechanisms may be able to tune the parameters used on the wake-up
 * conditions. It is easy to imagine an application notifying the
 * sensor hub about wake-ups when events of interest were not actually
 * detected (i.e. false positives). However, it will be more difficult
 * to automatically identify events of interest missed by the wake-up
 * condition (i.e. false negatives)."
 *
 * The tuner therefore reacts asymmetrically: streaks of reported
 * false positives tighten the condition's admission stage; because
 * false negatives are invisible, a slow periodic relaxation after
 * sustained true positives bounds the risk of having tightened past
 * real events.
 */

#ifndef SIDEWINDER_HUB_AUTOTUNE_H
#define SIDEWINDER_HUB_AUTOTUNE_H

#include <cstddef>

#include "hub/engine.h"
#include "il/ast.h"

namespace sidewinder::hub {

/** Tuning policy parameters. */
struct AutoTuneConfig
{
    /** Strictness multiplier applied after a false-positive streak. */
    double tightenFactor = 1.12;
    /** Strictness multiplier (< 1) for the periodic relaxation. */
    double relaxFactor = 0.97;
    /** Consecutive false positives that trigger a tightening step. */
    int falsePositiveStreak = 3;
    /** True positives between relaxation steps. */
    int relaxAfterTruePositives = 20;
    /** Lower bound on the strictness scale (1 = as deployed). */
    double minScale = 0.8;
    /** Upper bound on the strictness scale. */
    double maxScale = 4.0;
};

/**
 * Adjusts the admission-control stage of one installed condition in
 * response to the application's wake-up verdicts.
 *
 * The tuner owns the condition: it installs it at construction and
 * re-installs a re-parameterized copy on every tuning step (node
 * sharing makes the unchanged prefix free). The tunable stage is the
 * last threshold-family statement of the program.
 */
class ThresholdAutoTuner
{
  public:
    /**
     * @param engine Engine to install the condition on.
     * @param condition_id Condition id to use.
     * @param program Validated wake-up condition; must contain a
     *     threshold-family stage.
     * @throws ConfigError when no tunable stage exists.
     */
    ThresholdAutoTuner(Engine &engine, int condition_id,
                       il::Program program, AutoTuneConfig config = {});

    /** The application judged the last wake-up spurious. */
    void reportFalsePositive();

    /** The application confirmed the last wake-up. */
    void reportTruePositive();

    /** Current strictness scale (1 = as originally deployed). */
    double currentScale() const { return scale; }

    /** Number of re-parameterizations performed so far. */
    std::size_t retuneCount() const { return retunes; }

    /** The currently installed program. */
    const il::Program &currentProgram() const { return current; }

  private:
    void applyScale(double new_scale);

    Engine &engine;
    int conditionId;
    il::Program original;
    il::Program current;
    AutoTuneConfig config;
    std::size_t tunableIndex = 0;

    double scale = 1.0;
    int fpStreak = 0;
    int tpSinceRelax = 0;
    std::size_t retunes = 0;
};

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_AUTOTUNE_H
