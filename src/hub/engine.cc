#include "hub/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dsp/q15.h"
#include "il/delta.h"
#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::hub {

// Install-time costs come precomputed on the ExecutionPlan
// (il::invokeCost / il::nodeRamBytes via il::lower), so the admission
// verdict and the runtime account identically — the engine never
// re-derives a cost from the AST.

namespace {

constexpr std::uint8_t kWaveIdle =
    static_cast<std::uint8_t>(WaveState::Idle);
constexpr std::uint8_t kWaveBlocked =
    static_cast<std::uint8_t>(WaveState::Blocked);
constexpr std::uint8_t kWaveEmitted =
    static_cast<std::uint8_t>(WaveState::Emitted);

} // namespace

Engine::Engine(std::vector<il::ChannelInfo> channels, bool share_nodes,
               std::size_t raw_buffer_size, KernelMode kernel_mode)
    : channelInfos(std::move(channels)), shareNodes(share_nodes),
      rawBufferSize(raw_buffer_size), numericMode(kernel_mode)
{
    if (channelInfos.empty())
        throw ConfigError("engine needs at least one channel");
    for (std::size_t i = 0; i < channelInfos.size(); ++i) {
        rawBuffers.emplace_back(rawBufferSize);
        channelIndexByName.emplace(channelInfos[i].name,
                                   static_cast<int>(i));
    }
    // Sized once and never reallocated: install-time cached input
    // pointers reference these slots.
    channelValues.assign(channelInfos.size(), Value());
}

int
Engine::channelIndexOf(const std::string &name) const
{
    auto it = channelIndexByName.find(name);
    if (it == channelIndexByName.end())
        throw ConfigError("engine has no channel '" + name + "'");
    return it->second;
}

void
Engine::addCondition(int condition_id, const il::Program &program)
{
    // Re-validate and lower on the hub side: a condition that arrives
    // over the link is untrusted input. A non-sharing hub preserves
    // every statement as its own node, duplicates included.
    addCondition(condition_id,
                 il::lower(program, channelInfos,
                           il::LowerOptions{shareNodes}));
}

void
Engine::addCondition(int condition_id, const il::ExecutionPlan &plan)
{
    if (conditions.count(condition_id))
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " already installed");
    conditions[condition_id] = buildCondition(condition_id, plan);
    rebuildSchedule();
}

Engine::Condition
Engine::buildCondition(int condition_id, const il::ExecutionPlan &plan)
{
    // Immutability tripwire: a sealed plan (anything out of
    // il::lower(), possibly shared fleet-wide) must not have been
    // touched since lowering. No-op in release builds.
    plan.debugAssertUnchanged();

    // The plan carries channel *indices*; remap them into this
    // engine's channel space by name (identity when the plan was
    // lowered against our channels, which the runtime guarantees).
    std::vector<int> channel_map;
    channel_map.reserve(plan.channels.size());
    for (const auto &ch : plan.channels) {
        const int index = channelIndexOf(ch.name);
        if (channelInfos[static_cast<std::size_t>(index)].sampleRateHz !=
            ch.sampleRateHz)
            throw ConfigError("plan was lowered against channel '" +
                              ch.name + "' at a different sample rate");
        channel_map.push_back(index);
    }

    Condition cond;
    cond.id = condition_id;
    cond.primaryChannel =
        channel_map[static_cast<std::size_t>(plan.primaryChannel)];

    /** Plan node index -> global node index. */
    std::vector<int> local_to_global(plan.nodeCount(), -1);

    for (std::size_t local = 0; local < plan.nodeCount(); ++local) {
        const std::int32_t *refs = plan.inputsOf(local);
        const std::uint32_t arity = plan.inputCounts[local];

        int index = -1;
        if (shareNodes) {
            auto it = nodeByKey.find(plan.shareKeys[local]);
            if (it != nodeByKey.end())
                index = it->second;
        }

        if (index < 0) {
            auto node = std::make_unique<Node>();
            node->key = plan.shareKeys[local];
            node->algorithm = plan.algorithms[local];
            node->params = plan.params[local];

            std::vector<il::NodeStream> input_streams;
            input_streams.reserve(arity);
            node->inputs.reserve(arity);
            node->producers.reserve(arity);
            node->cachedInputs.reserve(arity);
            for (std::uint32_t k = 0; k < arity; ++k) {
                input_streams.push_back(plan.inputStream(local, k));
                if (refs[k] >= 0) {
                    const int global = local_to_global
                        [static_cast<std::size_t>(refs[k])];
                    Node *producer =
                        nodes[static_cast<std::size_t>(global)].get();
                    node->inputs.push_back(global);
                    node->producers.push_back(producer);
                    node->nodeProducers.push_back(producer);
                    node->cachedInputs.push_back(&producer->result);
                } else {
                    const int ch = channel_map
                        [static_cast<std::size_t>(-refs[k] - 1)];
                    node->inputs.push_back(-(ch + 1));
                    node->producers.push_back(nullptr);
                    node->hasChannelInput = true;
                    node->cachedInputs.push_back(
                        &channelValues[static_cast<std::size_t>(ch)]);
                }
            }

            node->kernel =
                makeKernel(plan.algorithms[local], plan.params[local],
                           input_streams, numericMode);
            node->policy = node->kernel->firingPolicy();
            node->rejects = node->kernel->conditional();
            node->stream = plan.streams[local];
            node->cyclesPerInvoke = plan.cyclesPerInvoke[local];
            node->invokeRateHz = plan.invokeRateHz[local];
            node->ramBytes = plan.ramBytes[local];

            index = static_cast<int>(nodes.size());
            nodes.push_back(std::move(node));
            if (shareNodes) {
                const std::string &key =
                    nodes[static_cast<std::size_t>(index)]->key;
                nodeByKey[key] = index;
                // Delta references resolve through this 8-byte hash;
                // a collision between two distinct live keys would
                // silently splice the wrong subgraph, so it must be
                // loud (64-bit FNV over canonical keys — effectively
                // unreachable).
                const auto [slot, inserted] =
                    nodeByKeyHash.emplace(il::shareKeyHash(key), index);
                if (!inserted && slot->second != index)
                    throw InternalError(
                        "shareKey hash collision on '" + key + "'");
            }
        }

        nodes[static_cast<std::size_t>(index)]->refCount += 1;
        cond.ownedNodes.push_back(index);
        local_to_global[local] = index;
    }

    if (plan.outNode < 0)
        throw InternalError("plan without OUT routing");
    cond.outNode =
        local_to_global[static_cast<std::size_t>(plan.outNode)];
    return cond;
}

void
Engine::releaseConditionNodes(const Condition &cond)
{
    for (int index : cond.ownedNodes) {
        Node *node = nodes[static_cast<std::size_t>(index)].get();
        if (node == nullptr)
            throw InternalError("condition references freed node");
        node->refCount -= 1;
        if (node->refCount == 0) {
            nodeByKey.erase(node->key);
            nodeByKeyHash.erase(il::shareKeyHash(node->key));
            nodes[static_cast<std::size_t>(index)].reset();
        }
    }
}

void
Engine::removeCondition(int condition_id)
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");
    releaseConditionNodes(it->second);
    conditions.erase(it);
    rebuildSchedule();
}

void
Engine::stageCondition(int condition_id, const il::ExecutionPlan &plan)
{
    auto staged = stagedConditions.find(condition_id);
    if (staged != stagedConditions.end()) {
        // A retried update restages the same id; the earlier staged
        // copy is superseded, never merged.
        releaseConditionNodes(staged->second);
        stagedConditions.erase(staged);
    }
    stagedConditions[condition_id] = buildCondition(condition_id, plan);
    rebuildSchedule();
}

bool
Engine::hasStagedCondition(int condition_id) const
{
    return stagedConditions.count(condition_id) != 0;
}

std::vector<int>
Engine::stagedConditionIds() const
{
    std::vector<int> ids;
    ids.reserve(stagedConditions.size());
    for (const auto &[id, cond] : stagedConditions) {
        (void)cond;
        ids.push_back(id);
    }
    return ids;
}

void
Engine::commitStaged()
{
    if (stagedConditions.empty())
        return;
    for (auto &[id, staged] : stagedConditions) {
        auto live = conditions.find(id);
        if (live != conditions.end()) {
            // The staged copy already holds references to every node
            // it shares with the retiring one, so releasing the A
            // copy frees exactly the nodes only it used — shared
            // subgraph state survives the swap untouched.
            releaseConditionNodes(live->second);
            conditions.erase(live);
        }
        conditions[id] = std::move(staged);
    }
    stagedConditions.clear();
    rebuildSchedule();
}

void
Engine::abortStaged()
{
    if (stagedConditions.empty())
        return;
    for (const auto &[id, staged] : stagedConditions) {
        (void)id;
        releaseConditionNodes(staged);
    }
    stagedConditions.clear();
    rebuildSchedule();
}

bool
Engine::hasNodeWithKeyHash(std::uint64_t key_hash) const
{
    return nodeByKeyHash.count(key_hash) != 0;
}

std::vector<std::string>
Engine::liveShareKeys() const
{
    std::vector<std::string> keys;
    keys.reserve(nodeByKey.size());
    for (const auto &[key, index] : nodeByKey) {
        (void)index;
        keys.push_back(key);
    }
    return keys;
}

il::NodeId
Engine::exportSubgraph(std::uint64_t key_hash, il::Program &out,
                       il::NodeId &next_id,
                       std::unordered_map<int, il::NodeId> &emitted) const
{
    const auto root = nodeByKeyHash.find(key_hash);
    if (root == nodeByKeyHash.end())
        throw ConfigError("delta reuses a node that is not live "
                          "(stale shareKey hash)");

    // Depth-first emission so every statement's inputs precede it;
    // an explicit stack keeps deep chains off the call stack.
    struct Visit
    {
        int index;
        bool expanded;
    };
    std::vector<Visit> stack{{root->second, false}};
    while (!stack.empty()) {
        const Visit visit = stack.back();
        stack.pop_back();
        if (emitted.count(visit.index))
            continue;
        const Node *node =
            nodes[static_cast<std::size_t>(visit.index)].get();
        if (node == nullptr)
            throw InternalError("subgraph export hit a freed node");
        if (!visit.expanded) {
            stack.push_back({visit.index, true});
            for (int in : node->inputs)
                if (in >= 0 && !emitted.count(in))
                    stack.push_back({in, false});
            continue;
        }
        il::Statement stmt;
        stmt.algorithm = node->algorithm;
        stmt.params = node->params;
        stmt.id = next_id++;
        for (int in : node->inputs) {
            if (in >= 0) {
                stmt.inputs.push_back(
                    il::SourceRef::makeNode(emitted.at(in)));
            } else {
                const auto ch = static_cast<std::size_t>(-in - 1);
                stmt.inputs.push_back(
                    il::SourceRef::makeChannel(channelInfos[ch].name));
            }
        }
        out.statements.push_back(std::move(stmt));
        emitted[visit.index] = out.statements.back().id;
    }
    return emitted.at(root->second);
}

void
Engine::rebuildSchedule()
{
    schedule.clear();
    schedule.reserve(nodes.size());
    for (auto &slot : nodes)
        if (slot != nullptr)
            schedule.push_back(slot.get());
}

bool
Engine::hasCondition(int condition_id) const
{
    return conditions.count(condition_id) != 0;
}

std::vector<int>
Engine::conditionIds() const
{
    std::vector<int> ids;
    ids.reserve(conditions.size());
    for (const auto &[id, cond] : conditions) {
        (void)cond;
        ids.push_back(id);
    }
    return ids;
}

void
Engine::pushSamples(const std::vector<double> &values, double timestamp)
{
    if (values.size() != channelInfos.size())
        throw ConfigError("pushSamples expects " +
                          std::to_string(channelInfos.size()) +
                          " values, got " +
                          std::to_string(values.size()));

    for (std::size_t ch = 0; ch < values.size(); ++ch)
        rawBuffers[ch].push(values[ch]);

    // Evaluation wave: the schedule holds the live nodes in
    // topological (installation) order, so a single forward pass
    // settles the whole graph. Firing policies and input value
    // pointers were resolved at install time — per node the loop only
    // reads producer states, channels always count as Emitted.
    for (std::size_t ch = 0; ch < values.size(); ++ch)
        channelValues[ch] = Value(values[ch]);

    for (Node *node : schedule) {
        bool all_emitted = true;
        bool any_emitted = node->hasChannelInput;
        bool any_blocked = false;
        for (const Node *producer : node->nodeProducers) {
            all_emitted = all_emitted &&
                          producer->state == WaveState::Emitted;
            any_emitted = any_emitted ||
                          producer->state == WaveState::Emitted;
            any_blocked = any_blocked ||
                          producer->state == WaveState::Blocked;
        }

        bool run = false;
        switch (node->policy) {
          case FiringPolicy::AllInputs:
            run = all_emitted;
            break;
          case FiringPolicy::AnyInput:
            run = any_emitted;
            break;
          case FiringPolicy::ObserveBlocks:
            run = any_emitted || any_blocked;
            break;
        }

        if (!run) {
            // Not evaluated: a rejection upstream propagates as a
            // miss; pure inactivity stays invisible.
            node->state = any_blocked ? WaveState::Blocked
                                      : WaveState::Idle;
            continue;
        }

        const std::vector<const Value *> *inputs = &node->cachedInputs;
        if (!all_emitted) {
            // AnyInput/ObserveBlocks firing with non-emitting inputs:
            // those positions must read as null.
            node->scratch.resize(node->cachedInputs.size());
            for (std::size_t k = 0; k < node->scratch.size(); ++k) {
                const Node *producer = node->producers[k];
                node->scratch[k] =
                    (producer == nullptr ||
                     producer->state == WaveState::Emitted)
                        ? node->cachedInputs[k]
                        : nullptr;
            }
            inputs = &node->scratch;
        }

        dynamicCycles += node->cyclesPerInvoke;
        // Output-parameter invocation: the kernel writes into the
        // node's persistent result slot, reusing frame storage
        // wave after wave instead of reallocating it.
        if (node->kernel->invokeInto(*inputs, node->result)) {
            node->state = WaveState::Emitted;
            if (tripwireArmed)
                checkRangeTripwire(*node);
        } else {
            // Conditional kernels reject (observable miss); an
            // accumulator is merely not ready yet.
            node->state = node->rejects ? WaveState::Blocked
                                        : WaveState::Idle;
        }
    }

    for (const auto &[id, cond] : conditions) {
        const Node *out_node =
            nodes[static_cast<std::size_t>(cond.outNode)].get();
        if (out_node != nullptr &&
            out_node->state == WaveState::Emitted) {
            pendingWakeEvents.push_back(
                WakeEvent{id, timestamp, out_node->result.scalar()});
        }
    }
}

void
Engine::prepareNodeBlock(Node *node, const double *samples,
                         std::size_t count)
{
    node->blockStates.resize(count);
    if (node->stream.kind == il::ValueKind::Scalar)
        node->blockScalars.resize(count);
    else if (node->blockBoxed.size() < count)
        // Persistent Values: each wave slot keeps its frame storage
        // across blocks, so steady-state frame emission allocates
        // nothing once capacities have grown.
        node->blockBoxed.resize(count);

    node->blockInputs.resize(node->inputs.size());
    for (std::size_t k = 0; k < node->inputs.size(); ++k) {
        BlockInput view;
        const Node *producer = node->producers[k];
        if (producer == nullptr) {
            // Channel input: read the caller's channel-major lane
            // directly — no copy, and channels emit on every wave.
            const auto ch =
                static_cast<std::size_t>(-node->inputs[k] - 1);
            view.scalars = samples + ch * count;
        } else {
            view.states = producer->blockStates.data();
            if (producer->stream.kind == il::ValueKind::Scalar)
                view.scalars = producer->blockScalars.data();
            else
                view.boxed = producer->blockBoxed.data();
        }
        node->blockInputs[k] = view;
    }
}

void
Engine::invokeNodeWave(Node *node, const BlockOutput &out, std::size_t w)
{
    sliceInputs.resize(node->blockInputs.size());
    for (std::size_t k = 0; k < node->blockInputs.size(); ++k) {
        BlockInput view = node->blockInputs[k];
        if (view.states != nullptr)
            view.states += w;
        if (view.scalars != nullptr)
            view.scalars += w;
        if (view.boxed != nullptr)
            view.boxed += w;
        sliceInputs[k] = view;
    }
    BlockOutput slice;
    slice.states = out.states + w;
    slice.scalars = out.scalars != nullptr ? out.scalars + w : nullptr;
    slice.boxed = out.boxed != nullptr ? out.boxed + w : nullptr;
    node->kernel->invokeBlock(sliceInputs, nullptr, 1, slice);
}

void
Engine::pushBlock(const double *samples, std::size_t count,
                  const double *timestamps)
{
    if (count == 0)
        return;
    if (count == 1) {
        // Degenerate block: the per-sample path is both simpler and
        // exactly equivalent.
        std::vector<double> values(channelInfos.size());
        for (std::size_t ch = 0; ch < channelInfos.size(); ++ch)
            values[ch] = samples[ch];
        pushSamples(values, timestamps[0]);
        return;
    }

    for (std::size_t ch = 0; ch < channelInfos.size(); ++ch) {
        const double *lane = samples + ch * count;
        for (std::size_t w = 0; w < count; ++w)
            rawBuffers[ch].push(lane[w]);
    }

    // Node-major block loop: for each node, settle all waves at once.
    // Valid because cross-wave state lives only inside kernel objects
    // and a node's firing decisions depend only on producers that
    // precede it in the (topological) schedule — so running node n
    // over waves 0..K-1 before node n+1 sees any wave produces the
    // same stream of states and results as the wave-major loop.
    for (Node *node : schedule) {
        prepareNodeBlock(node, samples, count);

        BlockOutput out;
        out.states = node->blockStates.data();
        if (node->stream.kind == il::ValueKind::Scalar)
            out.scalars = node->blockScalars.data();
        else
            out.boxed = node->blockBoxed.data();

        if (node->nodeProducers.empty()) {
            // All inputs are channels: every wave fires with every
            // input present — the dense fast path, no per-wave
            // decision work at all.
            dynamicCycles +=
                node->cyclesPerInvoke * static_cast<double>(count);
            node->kernel->invokeBlock(node->blockInputs, nullptr,
                                      count, out);
            continue;
        }

        if (node->policy == FiringPolicy::AllInputs &&
            node->nodeProducers.size() == 1) {
            // Single-producer AllInputs node — the overwhelmingly
            // common shape. The firing decision per wave is a pure
            // function of the producer's state byte, and WaveState
            // and BlockFire share their numeric encoding (Idle = 0 =
            // SkipIdle, Blocked = 1 = SkipBlocked, Emitted = 2 =
            // RunAll; single-input AllInputs firings are never
            // partial), so the producer's state lane *is* the fire
            // lane. Everything below is byte scans the compiler
            // vectorizes, not per-wave control flow.
            const std::uint8_t *in =
                node->nodeProducers.front()->blockStates.data();
            const std::size_t runs = static_cast<std::size_t>(
                std::count(in, in + count, kWaveEmitted));
            dynamicCycles +=
                node->cyclesPerInvoke * static_cast<double>(runs);
            if (runs == count) {
                node->kernel->invokeBlock(node->blockInputs, nullptr,
                                          count, out);
            } else if (runs * 8 <= count) {
                // Sparse firing (decimating producer upstream, e.g. a
                // window): prefill the miss states — Blocked
                // propagates, Idle stays invisible, exactly
                // `state & 1` on the {0,1,2} encoding — then run the
                // kernel only on the firing waves, located by memchr.
                for (std::size_t w = 0; w < count; ++w)
                    node->blockStates[w] = in[w] & kWaveBlocked;
                if (runs != 0) {
                    const std::uint8_t *pos = in;
                    const std::uint8_t *end = in + count;
                    while ((pos = static_cast<const std::uint8_t *>(
                                std::memchr(pos, kWaveEmitted,
                                            static_cast<std::size_t>(
                                                end - pos)))) !=
                           nullptr) {
                        invokeNodeWave(
                            node, out,
                            static_cast<std::size_t>(pos - in));
                        ++pos;
                    }
                }
            } else {
                // Dense-ish partial firing: hand the producer's state
                // lane to the kernel as the fire lane (one byte copy;
                // the kernel makes a single pass).
                static_assert(sizeof(BlockFire) == 1,
                              "fire lanes copy from state lanes");
                fireDecisions.resize(count);
                std::memcpy(fireDecisions.data(), in, count);
                node->kernel->invokeBlock(node->blockInputs,
                                          fireDecisions.data(), count,
                                          out);
            }
            continue;
        }

        // General path (multi-input nodes, AnyInput, ObserveBlocks):
        // combine the producers' state lanes into per-wave
        // all-emitted / any-emitted / any-blocked lanes — one
        // vectorizable pass per producer — then derive the fire lane
        // arithmetically: run ? (RunAll + !all_emitted) : any_blocked.
        blockAllEmitted.assign(count, 1);
        blockAnyEmitted.assign(count,
                               node->hasChannelInput ? 1 : 0);
        blockAnyBlocked.assign(count, 0);
        for (const Node *producer : node->nodeProducers) {
            const std::uint8_t *s = producer->blockStates.data();
            std::uint8_t *all = blockAllEmitted.data();
            std::uint8_t *any = blockAnyEmitted.data();
            std::uint8_t *blk = blockAnyBlocked.data();
            for (std::size_t w = 0; w < count; ++w) {
                const std::uint8_t emitted = s[w] == kWaveEmitted;
                all[w] &= emitted;
                any[w] |= emitted;
                blk[w] |= s[w] == kWaveBlocked;
            }
        }

        const std::uint8_t *run_lane = blockAnyEmitted.data();
        if (node->policy == FiringPolicy::AllInputs) {
            run_lane = blockAllEmitted.data();
        } else if (node->policy == FiringPolicy::ObserveBlocks) {
            std::uint8_t *any = blockAnyEmitted.data();
            const std::uint8_t *blk = blockAnyBlocked.data();
            for (std::size_t w = 0; w < count; ++w)
                any[w] |= blk[w];
        }

        fireDecisions.resize(count);
        std::size_t runs = 0;
        std::size_t run_alls = 0;
        {
            const std::uint8_t *all = blockAllEmitted.data();
            const std::uint8_t *blk = blockAnyBlocked.data();
            BlockFire *fire = fireDecisions.data();
            for (std::size_t w = 0; w < count; ++w) {
                // run: RunAll (2) when all inputs emitted, else
                // RunPartial (3). skip: SkipBlocked (1) when a miss
                // propagates, else SkipIdle (0) — numerically the
                // any_blocked byte.
                fire[w] = static_cast<BlockFire>(
                    run_lane[w]
                        ? static_cast<std::uint8_t>(3 - all[w])
                        : blk[w]);
                runs += run_lane[w];
                run_alls += run_lane[w] & all[w];
            }
        }

        dynamicCycles +=
            node->cyclesPerInvoke * static_cast<double>(runs);

        if (runs == 0) {
            // Nothing fires: the skip decisions are the states
            // (SkipBlocked = Blocked, SkipIdle = Idle).
            std::memcpy(node->blockStates.data(), fireDecisions.data(),
                        count);
            continue;
        }

        node->kernel->invokeBlock(node->blockInputs,
                                  runs == count && run_alls == count
                                      ? nullptr
                                      : fireDecisions.data(),
                                  count, out);
    }

    // Post-block sync so single waves can interleave with blocks: the
    // per-sample loop reads producer->state / producer->result, which
    // must reflect the last wave of this block. Only Emitted results
    // are ever read downstream, so copying the last emitted wave's
    // value suffices.
    for (Node *node : schedule) {
        node->state =
            static_cast<WaveState>(node->blockStates[count - 1]);
        if (node->state == WaveState::Emitted) {
            if (node->stream.kind == il::ValueKind::Scalar)
                node->result = Value(node->blockScalars[count - 1]);
            else
                node->result = node->blockBoxed[count - 1];
        }
    }

    // Wave-major wake scan in condition order: the exact event order
    // the per-sample loop produces. Waking is rare, so first OR the
    // out-node emitted lanes into one any-condition-fired lane
    // (vectorizable), then visit only the waves memchr finds set.
    wakeScan.assign(count, 0);
    for (const auto &[id, cond] : conditions) {
        (void)id;
        const Node *out_node =
            nodes[static_cast<std::size_t>(cond.outNode)].get();
        if (out_node == nullptr)
            continue;
        const std::uint8_t *s = out_node->blockStates.data();
        std::uint8_t *scan = wakeScan.data();
        for (std::size_t w = 0; w < count; ++w)
            scan[w] |= s[w] == kWaveEmitted;
    }
    const std::uint8_t *scan_pos = wakeScan.data();
    const std::uint8_t *scan_end = scan_pos + count;
    while ((scan_pos = static_cast<const std::uint8_t *>(std::memchr(
                scan_pos, 1,
                static_cast<std::size_t>(scan_end - scan_pos)))) !=
           nullptr) {
        const std::size_t w =
            static_cast<std::size_t>(scan_pos - wakeScan.data());
        for (const auto &[id, cond] : conditions) {
            const Node *out_node =
                nodes[static_cast<std::size_t>(cond.outNode)].get();
            if (out_node == nullptr ||
                out_node->blockStates[w] != kWaveEmitted)
                continue;
            const double value =
                out_node->stream.kind == il::ValueKind::Scalar
                    ? out_node->blockScalars[w]
                    : out_node->blockBoxed[w].scalar();
            pendingWakeEvents.push_back(
                WakeEvent{id, timestamps[w], value});
        }
        ++scan_pos;
    }
}

void
Engine::pushBlock(const double *samples, std::size_t count, double t0,
                  double dt)
{
    blockTimestamps.resize(count);
    for (std::size_t w = 0; w < count; ++w)
        blockTimestamps[w] = t0 + static_cast<double>(w) * dt;
    pushBlock(samples, count, blockTimestamps.data());
}

void
Engine::resetState()
{
    for (Node *node : schedule) {
        node->kernel->reset();
        node->state = WaveState::Idle;
    }
    for (auto &buffer : rawBuffers)
        buffer.clear();
    pendingWakeEvents.clear();
    dynamicCycles = 0.0;
}

std::vector<WakeEvent>
Engine::drainWakeEvents()
{
    std::vector<WakeEvent> out;
    out.swap(pendingWakeEvents);
    return out;
}

std::vector<double>
Engine::rawSnapshot(int condition_id) const
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");
    return rawBuffers[static_cast<std::size_t>(
                          it->second.primaryChannel)]
        .snapshot();
}

std::size_t
Engine::nodeCount() const
{
    return schedule.size();
}

double
Engine::estimatedCyclesPerSecond() const
{
    double total = 0.0;
    for (const Node *node : schedule)
        total += node->cyclesPerInvoke * node->invokeRateHz;
    return total;
}

std::size_t
Engine::estimatedRamBytes() const
{
    std::size_t total = 0;
    for (const Node *node : schedule)
        total += node->ramBytes;
    return total;
}

il::ProgramCost
Engine::marginalCost(const il::ExecutionPlan &plan) const
{
    il::ProgramCost cost;
    cost.wakeRateBoundHz = plan.wakeRateBoundHz;
    cost.planNodeCount = plan.nodeCount();
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        // Nodes the engine already holds (same sharing key) are free.
        if (shareNodes && nodeByKey.count(plan.shareKeys[i]))
            continue;
        cost.cyclesPerSecond +=
            plan.cyclesPerInvoke[i] * plan.invokeRateHz[i];
        cost.ramBytes += plan.ramBytes[i];
    }
    return cost;
}

double
Engine::estimateProgramCycles(const il::Program &program,
                              const std::vector<il::ChannelInfo> &channels)
{
    // dedupe=false: charge the program as written (the historical
    // unshared upper bound this estimate has always reported).
    return il::lower(program, channels, il::LowerOptions{false})
        .cost()
        .cyclesPerSecond;
}

void
Engine::armRangeTripwire(
    std::unordered_map<std::string, RangeBound> bounds)
{
    tripwireBounds = std::move(bounds);
    tripwireArmed = true;
    tripwireViolationCount = 0;
    tripwireFirstViolation.clear();
}

void
Engine::disarmRangeTripwire()
{
    tripwireArmed = false;
    tripwireBounds.clear();
}

void
Engine::checkRangeTripwire(const Node &node)
{
    const auto it = tripwireBounds.find(node.key);
    if (it == tripwireBounds.end())
        return;
    const RangeBound &bound = it->second;
    // Absorb double round-off between the analyzer's closed-form
    // bounds and the kernels' accumulation order.
    const double slack =
        1e-9 * std::max({1.0, std::abs(bound.lo), std::abs(bound.hi)});
    const double lo = bound.lo - slack;
    const double hi = bound.hi + slack;
    double worst = 0.0;
    bool violated = false;
    switch (node.result.kind()) {
      case il::ValueKind::Scalar: {
        const double v = node.result.scalar();
        if (v < lo || v > hi) {
            violated = true;
            worst = v;
        }
        break;
      }
      case il::ValueKind::Frame:
        for (double v : node.result.frame()) {
            if (v < lo || v > hi) {
                violated = true;
                worst = v;
            }
        }
        break;
      case il::ValueKind::ComplexFrame:
        // Complex bins are bounded by magnitude: |X(k)| <= hi.
        for (const dsp::Complex &z : node.result.complexFrame()) {
            const double mag = std::abs(z);
            if (mag > hi) {
                violated = true;
                worst = mag;
            }
        }
        break;
    }
    if (!violated)
        return;
    ++tripwireViolationCount;
    if (tripwireFirstViolation.empty()) {
        tripwireFirstViolation = node.key + ": observed " +
                                 std::to_string(worst) +
                                 " outside proven [" +
                                 std::to_string(bound.lo) + ", " +
                                 std::to_string(bound.hi) + "]";
    }
}

std::uint64_t
Engine::q15SaturationEvents()
{
    return dsp::q15SaturationEventCount();
}

void
Engine::resetQ15SaturationEvents()
{
    dsp::resetQ15SaturationEvents();
}

} // namespace sidewinder::hub
