#include "hub/engine.h"

#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::hub {

// Install-time costs come precomputed on the ExecutionPlan
// (il::invokeCost / il::nodeRamBytes via il::lower), so the admission
// verdict and the runtime account identically — the engine never
// re-derives a cost from the AST.

Engine::Engine(std::vector<il::ChannelInfo> channels, bool share_nodes,
               std::size_t raw_buffer_size)
    : channelInfos(std::move(channels)), shareNodes(share_nodes),
      rawBufferSize(raw_buffer_size)
{
    if (channelInfos.empty())
        throw ConfigError("engine needs at least one channel");
    for (std::size_t i = 0; i < channelInfos.size(); ++i) {
        rawBuffers.emplace_back(rawBufferSize);
        channelIndexByName.emplace(channelInfos[i].name,
                                   static_cast<int>(i));
    }
    // Sized once and never reallocated: install-time cached input
    // pointers reference these slots.
    channelValues.assign(channelInfos.size(), Value());
}

int
Engine::channelIndexOf(const std::string &name) const
{
    auto it = channelIndexByName.find(name);
    if (it == channelIndexByName.end())
        throw ConfigError("engine has no channel '" + name + "'");
    return it->second;
}

void
Engine::addCondition(int condition_id, const il::Program &program)
{
    // Re-validate and lower on the hub side: a condition that arrives
    // over the link is untrusted input. A non-sharing hub preserves
    // every statement as its own node, duplicates included.
    addCondition(condition_id,
                 il::lower(program, channelInfos,
                           il::LowerOptions{shareNodes}));
}

void
Engine::addCondition(int condition_id, const il::ExecutionPlan &plan)
{
    if (conditions.count(condition_id))
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " already installed");

    // The plan carries channel *indices*; remap them into this
    // engine's channel space by name (identity when the plan was
    // lowered against our channels, which the runtime guarantees).
    std::vector<int> channel_map;
    channel_map.reserve(plan.channels.size());
    for (const auto &ch : plan.channels) {
        const int index = channelIndexOf(ch.name);
        if (channelInfos[static_cast<std::size_t>(index)].sampleRateHz !=
            ch.sampleRateHz)
            throw ConfigError("plan was lowered against channel '" +
                              ch.name + "' at a different sample rate");
        channel_map.push_back(index);
    }

    Condition cond;
    cond.id = condition_id;
    cond.primaryChannel =
        channel_map[static_cast<std::size_t>(plan.primaryChannel)];

    /** Plan node index -> global node index. */
    std::vector<int> local_to_global(plan.nodeCount(), -1);

    for (std::size_t local = 0; local < plan.nodeCount(); ++local) {
        const std::int32_t *refs = plan.inputsOf(local);
        const std::uint32_t arity = plan.inputCounts[local];

        int index = -1;
        if (shareNodes) {
            auto it = nodeByKey.find(plan.shareKeys[local]);
            if (it != nodeByKey.end())
                index = it->second;
        }

        if (index < 0) {
            auto node = std::make_unique<Node>();
            node->key = plan.shareKeys[local];
            node->algorithm = plan.algorithms[local];

            std::vector<il::NodeStream> input_streams;
            input_streams.reserve(arity);
            node->inputs.reserve(arity);
            node->producers.reserve(arity);
            node->cachedInputs.reserve(arity);
            for (std::uint32_t k = 0; k < arity; ++k) {
                input_streams.push_back(plan.inputStream(local, k));
                if (refs[k] >= 0) {
                    const int global = local_to_global
                        [static_cast<std::size_t>(refs[k])];
                    Node *producer =
                        nodes[static_cast<std::size_t>(global)].get();
                    node->inputs.push_back(global);
                    node->producers.push_back(producer);
                    node->nodeProducers.push_back(producer);
                    node->cachedInputs.push_back(&producer->result);
                } else {
                    const int ch = channel_map
                        [static_cast<std::size_t>(-refs[k] - 1)];
                    node->inputs.push_back(-(ch + 1));
                    node->producers.push_back(nullptr);
                    node->hasChannelInput = true;
                    node->cachedInputs.push_back(
                        &channelValues[static_cast<std::size_t>(ch)]);
                }
            }

            node->kernel = makeKernel(plan.algorithms[local],
                                      plan.params[local], input_streams);
            node->policy = node->kernel->firingPolicy();
            node->rejects = node->kernel->conditional();
            node->stream = plan.streams[local];
            node->cyclesPerInvoke = plan.cyclesPerInvoke[local];
            node->invokeRateHz = plan.invokeRateHz[local];
            node->ramBytes = plan.ramBytes[local];

            index = static_cast<int>(nodes.size());
            nodes.push_back(std::move(node));
            if (shareNodes)
                nodeByKey[nodes[static_cast<std::size_t>(index)]->key] =
                    index;
        }

        nodes[static_cast<std::size_t>(index)]->refCount += 1;
        cond.ownedNodes.push_back(index);
        local_to_global[local] = index;
    }

    if (plan.outNode < 0)
        throw InternalError("plan without OUT routing");
    cond.outNode =
        local_to_global[static_cast<std::size_t>(plan.outNode)];

    conditions[condition_id] = std::move(cond);
    rebuildSchedule();
}

void
Engine::removeCondition(int condition_id)
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");

    for (int index : it->second.ownedNodes) {
        Node *node = nodes[static_cast<std::size_t>(index)].get();
        if (node == nullptr)
            throw InternalError("condition references freed node");
        node->refCount -= 1;
        if (node->refCount == 0) {
            nodeByKey.erase(node->key);
            nodes[static_cast<std::size_t>(index)].reset();
        }
    }
    conditions.erase(it);
    rebuildSchedule();
}

void
Engine::rebuildSchedule()
{
    schedule.clear();
    schedule.reserve(nodes.size());
    for (auto &slot : nodes)
        if (slot != nullptr)
            schedule.push_back(slot.get());
}

bool
Engine::hasCondition(int condition_id) const
{
    return conditions.count(condition_id) != 0;
}

std::vector<int>
Engine::conditionIds() const
{
    std::vector<int> ids;
    ids.reserve(conditions.size());
    for (const auto &[id, cond] : conditions) {
        (void)cond;
        ids.push_back(id);
    }
    return ids;
}

void
Engine::pushSamples(const std::vector<double> &values, double timestamp)
{
    if (values.size() != channelInfos.size())
        throw ConfigError("pushSamples expects " +
                          std::to_string(channelInfos.size()) +
                          " values, got " +
                          std::to_string(values.size()));

    for (std::size_t ch = 0; ch < values.size(); ++ch)
        rawBuffers[ch].push(values[ch]);

    // Evaluation wave: the schedule holds the live nodes in
    // topological (installation) order, so a single forward pass
    // settles the whole graph. Firing policies and input value
    // pointers were resolved at install time — per node the loop only
    // reads producer states, channels always count as Emitted.
    for (std::size_t ch = 0; ch < values.size(); ++ch)
        channelValues[ch] = Value(values[ch]);

    for (Node *node : schedule) {
        bool all_emitted = true;
        bool any_emitted = node->hasChannelInput;
        bool any_blocked = false;
        for (const Node *producer : node->nodeProducers) {
            all_emitted = all_emitted &&
                          producer->state == WaveState::Emitted;
            any_emitted = any_emitted ||
                          producer->state == WaveState::Emitted;
            any_blocked = any_blocked ||
                          producer->state == WaveState::Blocked;
        }

        bool run = false;
        switch (node->policy) {
          case FiringPolicy::AllInputs:
            run = all_emitted;
            break;
          case FiringPolicy::AnyInput:
            run = any_emitted;
            break;
          case FiringPolicy::ObserveBlocks:
            run = any_emitted || any_blocked;
            break;
        }

        if (!run) {
            // Not evaluated: a rejection upstream propagates as a
            // miss; pure inactivity stays invisible.
            node->state = any_blocked ? WaveState::Blocked
                                      : WaveState::Idle;
            continue;
        }

        const std::vector<const Value *> *inputs = &node->cachedInputs;
        if (!all_emitted) {
            // AnyInput/ObserveBlocks firing with non-emitting inputs:
            // those positions must read as null.
            node->scratch.resize(node->cachedInputs.size());
            for (std::size_t k = 0; k < node->scratch.size(); ++k) {
                const Node *producer = node->producers[k];
                node->scratch[k] =
                    (producer == nullptr ||
                     producer->state == WaveState::Emitted)
                        ? node->cachedInputs[k]
                        : nullptr;
            }
            inputs = &node->scratch;
        }

        dynamicCycles += node->cyclesPerInvoke;
        // Output-parameter invocation: the kernel writes into the
        // node's persistent result slot, reusing frame storage
        // wave after wave instead of reallocating it.
        if (node->kernel->invokeInto(*inputs, node->result)) {
            node->state = WaveState::Emitted;
        } else {
            // Conditional kernels reject (observable miss); an
            // accumulator is merely not ready yet.
            node->state = node->rejects ? WaveState::Blocked
                                        : WaveState::Idle;
        }
    }

    for (const auto &[id, cond] : conditions) {
        const Node *out_node =
            nodes[static_cast<std::size_t>(cond.outNode)].get();
        if (out_node != nullptr &&
            out_node->state == WaveState::Emitted) {
            pendingWakeEvents.push_back(
                WakeEvent{id, timestamp, out_node->result.scalar()});
        }
    }
}

void
Engine::resetState()
{
    for (Node *node : schedule) {
        node->kernel->reset();
        node->state = WaveState::Idle;
    }
    for (auto &buffer : rawBuffers)
        buffer.clear();
    pendingWakeEvents.clear();
    dynamicCycles = 0.0;
}

std::vector<WakeEvent>
Engine::drainWakeEvents()
{
    std::vector<WakeEvent> out;
    out.swap(pendingWakeEvents);
    return out;
}

std::vector<double>
Engine::rawSnapshot(int condition_id) const
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");
    return rawBuffers[static_cast<std::size_t>(
                          it->second.primaryChannel)]
        .snapshot();
}

std::size_t
Engine::nodeCount() const
{
    return schedule.size();
}

double
Engine::estimatedCyclesPerSecond() const
{
    double total = 0.0;
    for (const Node *node : schedule)
        total += node->cyclesPerInvoke * node->invokeRateHz;
    return total;
}

std::size_t
Engine::estimatedRamBytes() const
{
    std::size_t total = 0;
    for (const Node *node : schedule)
        total += node->ramBytes;
    return total;
}

il::ProgramCost
Engine::marginalCost(const il::ExecutionPlan &plan) const
{
    il::ProgramCost cost;
    cost.wakeRateBoundHz = plan.wakeRateBoundHz;
    cost.planNodeCount = plan.nodeCount();
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        // Nodes the engine already holds (same sharing key) are free.
        if (shareNodes && nodeByKey.count(plan.shareKeys[i]))
            continue;
        cost.cyclesPerSecond +=
            plan.cyclesPerInvoke[i] * plan.invokeRateHz[i];
        cost.ramBytes += plan.ramBytes[i];
    }
    return cost;
}

double
Engine::estimateProgramCycles(const il::Program &program,
                              const std::vector<il::ChannelInfo> &channels)
{
    // dedupe=false: charge the program as written (the historical
    // unshared upper bound this estimate has always reported).
    return il::lower(program, channels, il::LowerOptions{false})
        .cost()
        .cyclesPerSecond;
}

} // namespace sidewinder::hub
