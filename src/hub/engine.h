/**
 * @file
 * The hub's dataflow engine: executes one or more installed wake-up
 * conditions over the incoming sensor sample stream.
 *
 * This is the C++ equivalent of the paper's interpreter (Section 3.5):
 * "Upon receiving a new configuration, the runtime allocates memory
 * for each algorithm in the configuration. The interpreter then waits
 * for sensor data to be available and feeds the data into the
 * appropriate algorithm. If the algorithm produces a result, it sets a
 * flag. The interpreter checks the flag and if necessary sends the
 * result to the next algorithm."
 *
 * Unlike the paper's interpreter, the engine does not re-discover the
 * graph per install or per sample: conditions arrive as (or are
 * lowered to) an il::ExecutionPlan — indices resolved, costs
 * precomputed, canonical sharing keys assigned — and the wave loop
 * runs over a dense schedule of live nodes with firing policies
 * cached at install time (no per-wave virtual dispatch just to ask a
 * kernel how it fires).
 *
 * The engine additionally implements the paper's future-work
 * optimization (Section 7): "When receiving multiple wake-up
 * conditions, the sensor manager can attempt to improve performance by
 * combining the pipelines that use common algorithms." Structurally
 * identical nodes (equal plan sharing keys) are shared across
 * conditions when sharing is enabled.
 */

#ifndef SIDEWINDER_HUB_ENGINE_H
#define SIDEWINDER_HUB_ENGINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hub/kernel.h"
#include "il/ast.h"
#include "il/plan.h"
#include "il/validate.h"
#include "support/ring_buffer.h"

namespace sidewinder::hub {

/** One wake-up raised by an installed condition. */
struct WakeEvent
{
    /** Identifier of the condition that fired. */
    int conditionId = 0;
    /** Timestamp of the triggering sample, seconds. */
    double timestamp = 0.0;
    /** Scalar value that reached OUT. */
    double value = 0.0;
};

/** Executes installed wake-up conditions against sensor samples. */
class Engine
{
  public:
    /**
     * @param channels Sensor channels this hub serves; pushSamples()
     *     must supply one value per channel per tick, so the
     *     channels of one engine must share a sampling rate (the
     *     prototype hardware runs one engine per synchronous sensor
     *     group — accelerometer axes together, microphone separate —
     *     matching the paper's one-processor-per-sensor sizing
     *     option in Section 3.8).
     * @param share_nodes Enable cross-condition node sharing.
     * @param raw_buffer_size Per-channel raw history handed to the
     *     application on wake-up.
     * @param kernel_mode Numeric mode for every kernel this engine
     *     instantiates: Float64 (reference) or FixedQ15 (bit-accurate
     *     16-bit fixed point, the firmware sample format).
     */
    explicit Engine(std::vector<il::ChannelInfo> channels,
                    bool share_nodes = true,
                    std::size_t raw_buffer_size = 200,
                    KernelMode kernel_mode = KernelMode::Float64);

    /**
     * Validate, lower, and install a wake-up condition.
     * @throws ParseError on invalid programs, ConfigError on duplicate
     *     condition ids.
     */
    void addCondition(int condition_id, const il::Program &program);

    /**
     * Install a pre-lowered wake-up condition (the hub runtime lowers
     * once at admission and installs the same plan). The plan must
     * have been lowered against this engine's channels.
     * @throws ConfigError on duplicate ids or unknown channels.
     */
    void addCondition(int condition_id, const il::ExecutionPlan &plan);

    /** Remove a condition, freeing nodes no other condition uses. */
    void removeCondition(int condition_id);

    /** True when @p condition_id is installed. */
    bool hasCondition(int condition_id) const;

    /** Installed condition ids. */
    std::vector<int> conditionIds() const;

    // ----- live reconfiguration: the A/B shadow slot -----
    //
    // stageCondition() installs a plan next to the live one instead of
    // replacing it: staged nodes join the schedule (so they execute
    // and warm up — windows fill, averages settle — while the A copy
    // keeps waking the phone), nodes shared with live conditions are
    // refcounted rather than duplicated (their ring buffers, EMA
    // state, and dwell timers carry over bit-identically), but staged
    // OUT nodes never raise wake events. commitStaged() retires the
    // replaced A conditions and promotes every staged one between two
    // waves — the atomic swap — and abortStaged() frees whatever only
    // the staged copies held. During the overlap window
    // estimatedCyclesPerSecond()/estimatedRamBytes() charge both
    // copies; admission must gate on that combined load.

    /**
     * Stage @p plan in the shadow slot under @p condition_id. A live
     * condition with the same id keeps running untouched until
     * commitStaged(). Restaging an already-staged id replaces the
     * earlier staged copy (a retried update must be idempotent).
     * @throws ConfigError on unknown channels.
     */
    void stageCondition(int condition_id, const il::ExecutionPlan &plan);

    /** True when @p condition_id is staged in the shadow slot. */
    bool hasStagedCondition(int condition_id) const;

    /** Ids staged in the shadow slot. */
    std::vector<int> stagedConditionIds() const;

    /** Number of staged conditions. */
    std::size_t stagedCount() const { return stagedConditions.size(); }

    /**
     * The atomic A/B swap: for every staged condition, retire the
     * live condition with the same id (if any) and promote the staged
     * copy. Runs between waves — callers must not invoke it from
     * inside a push. Nodes shared between the retiring and promoted
     * copies survive with their state; nodes only the retired copy
     * held are freed.
     */
    void commitStaged();

    /**
     * Roll back the shadow slot: discard every staged condition,
     * freeing nodes no live condition shares. The A copies are
     * untouched — this is the rollback path when a transfer fails
     * mid-update.
     */
    void abortStaged();

    /**
     * True when a live or staged node's canonical shareKey hashes to
     * @p key_hash (il::shareKeyHash). Only meaningful with sharing
     * enabled — delta pushes require a sharing hub.
     */
    bool hasNodeWithKeyHash(std::uint64_t key_hash) const;

    /** Canonical shareKeys of all live nodes (sharing enabled). */
    std::vector<std::string> liveShareKeys() const;

    /**
     * Reconstruct the subgraph rooted at the node whose shareKey
     * hashes to @p key_hash as IL statements appended to @p out —
     * the receive side of a delta push: a reused reference pulls the
     * whole transitive cone, which commitStaged() then shares (state
     * and all) rather than re-instantiates. @p emitted memoizes
     * node-index -> statement id across calls so subgraphs referenced
     * twice in one message splice once; @p next_id supplies fresh
     * statement ids.
     * @return the statement id of the root node.
     * @throws ConfigError when no such node is live.
     */
    il::NodeId exportSubgraph(
        std::uint64_t key_hash, il::Program &out, il::NodeId &next_id,
        std::unordered_map<int, il::NodeId> &emitted) const;

    /**
     * Feed one synchronous sample per channel (in the channel order
     * given at construction) and run one evaluation wave.
     */
    void pushSamples(const std::vector<double> &values, double timestamp);

    /**
     * Block execution: feed @p count consecutive waves at once.
     *
     * @p samples is channel-major — samples[ch * count + w] is
     * channel ch's sample on wave w — so each kernel's block loop
     * reads a contiguous lane, and channel inputs are consumed
     * directly from the caller's buffer with no per-sample copying.
     * @p timestamps holds one timestamp per wave.
     *
     * Semantically identical to calling pushSamples() once per wave
     * (same wake events in the same order, same raw history, same
     * node state afterward — blocks and single waves interleave
     * freely), but each node runs one Kernel::invokeBlock() over the
     * whole block instead of @p count virtual calls: node-major
     * iteration over SoA lanes is valid because all cross-wave state
     * lives inside kernel objects, and a node's per-wave firing
     * decisions depend only on producers that precede it in the
     * schedule.
     */
    void pushBlock(const double *samples, std::size_t count,
                   const double *timestamps);

    /**
     * Convenience overload for evenly spaced waves: wave w carries
     * timestamp @p t0 + w * @p dt.
     */
    void pushBlock(const double *samples, std::size_t count, double t0,
                   double dt);

    /** Numeric mode the engine's kernels were instantiated with. */
    KernelMode kernelMode() const { return numericMode; }

    /** Retrieve and clear the wake-ups raised since the last drain. */
    std::vector<WakeEvent> drainWakeEvents();

    /**
     * Recent raw samples of the condition's primary (first-referenced)
     * channel, oldest first.
     */
    std::vector<double> rawSnapshot(int condition_id) const;

    /** Live (shared) algorithm instances across all conditions. */
    std::size_t nodeCount() const;

    /**
     * Static estimate of the sustained compute demand of the installed
     * conditions, in abstract MCU cycle units per second. Summed from
     * the installed plans' precomputed per-node costs. Used by the
     * capability model to size the microcontroller.
     */
    double estimatedCyclesPerSecond() const;

    /**
     * Static estimate of the RAM held by the installed conditions'
     * live nodes (state blocks + result storage), in bytes. Shared
     * nodes are counted once — installing a condition whose nodes
     * dedupe against existing ones costs less than its standalone
     * footprint. Checked against McuModel::ramBytes at admission.
     */
    std::size_t estimatedRamBytes() const;

    /**
     * The *additional* cost of installing @p plan on this engine:
     * nodes whose sharing key is already instantiated (when sharing
     * is enabled) are free, everything else is charged its plan cost.
     * Admission control gates on current load + this marginal cost.
     */
    il::ProgramCost marginalCost(const il::ExecutionPlan &plan) const;

    /** Abstract cycles consumed by kernel invocations so far. */
    double cyclesConsumed() const { return dynamicCycles; }

    /**
     * Proven value interval for the range tripwire, keyed by the
     * canonical node sharing key (il::ExecutionPlan::shareKeys).
     * For ComplexFrame nodes hi is additionally a magnitude bound.
     */
    struct RangeBound
    {
        double lo = 0.0;
        double hi = 0.0;
    };

    /**
     * Arm the range tripwire: while armed, every value a node emits
     * on the per-sample path is cross-checked against its proven
     * interval (plus a tiny floating-point slack); violations are
     * counted and the first one is described. The soundness gate of
     * the value-range analyzer (tests/il_range_test.cc, ASan/TSan
     * trees) runs with this armed; production runs leave it off, so
     * the steady-state cost is one predictable branch per emission.
     */
    void armRangeTripwire(
        std::unordered_map<std::string, RangeBound> bounds);

    /** Disarm the tripwire and forget the installed bounds. */
    void disarmRangeTripwire();

    /** Emissions observed outside their proven interval so far. */
    std::size_t rangeTripwireViolations() const
    {
        return tripwireViolationCount;
    }

    /** Human-readable description of the first violation; empty. */
    const std::string &rangeTripwireFirstViolation() const
    {
        return tripwireFirstViolation;
    }

    /**
     * Q15 saturation events recorded on this thread by the dsp
     * counters (dsp::q15SaturationEventCount) — the empirical side of
     * the analyzer's SW301 verdict. Always 0 in Release builds, where
     * the counters are compiled out.
     */
    static std::uint64_t q15SaturationEvents();

    /** Reset this thread's Q15 saturation-event counter. */
    static void resetQ15SaturationEvents();

    /**
     * Power-cycle semantics: keep the installed conditions but drop
     * all accumulated signal state — window contents, averages, peak
     * context, consecutive counters, raw history, pending wake-ups,
     * and the dynamic cycle counter.
     */
    void resetState();

    /** Channels this engine serves. */
    const std::vector<il::ChannelInfo> &channels() const
    {
        return channelInfos;
    }

    /**
     * Static compute-demand estimate for @p program on @p channels
     * without building an engine (used for MCU selection on push).
     * Charges every statement — the unshared upper bound, matching a
     * hub that instantiates the program as written.
     */
    static double estimateProgramCycles(
        const il::Program &program,
        const std::vector<il::ChannelInfo> &channels);

  private:
    struct Node
    {
        std::string key;
        std::string algorithm;
        /** Literal parameters, kept for subgraph export (delta
            reconstruction needs to re-render reused nodes as IL). */
        std::vector<double> params;
        std::unique_ptr<Kernel> kernel;
        /** Inputs: node index (>= 0) or channel as -(index + 1). */
        std::vector<int> inputs;
        /** Producer per input; nullptr for channel inputs. */
        std::vector<const Node *> producers;
        /**
         * Input value pointer per input, resolved at install time:
         * channel slots and producer result slots are address-stable,
         * so the wave loop reuses these instead of rebuilding an
         * input array per wave. Entries are patched to null through
         * `scratch` only for AnyInput/ObserveBlocks firings with
         * non-emitting inputs.
         */
        std::vector<const Value *> cachedInputs;
        /** The non-channel producers, for per-wave state checks. */
        std::vector<const Node *> nodeProducers;
        /** True when any input is a channel (emits every wave). */
        bool hasChannelInput = false;
        /** Firing policy, cached at install (kernels are immutable). */
        FiringPolicy policy = FiringPolicy::AllInputs;
        /** Kernel::conditional(), cached at install. */
        bool rejects = false;
        il::NodeStream stream;
        double cyclesPerInvoke = 0.0;
        double invokeRateHz = 0.0;
        std::size_t ramBytes = 0;
        int refCount = 0;

        // Per-wave state.
        WaveState state = WaveState::Idle;
        Value result;
        /** Reused input-pointer scratch (hot-path allocation avoidance). */
        std::vector<const Value *> scratch;

        // Block-execution storage, grown to the largest block seen.
        // One lane per wave: states always; scalars for scalar
        // emitters, boxed Values (persistent, storage-reusing) for
        // frame emitters.
        std::vector<std::uint8_t> blockStates;
        std::vector<double> blockScalars;
        std::vector<Value> blockBoxed;
        /** Reused SoA input views for invokeBlock(). */
        std::vector<BlockInput> blockInputs;
    };

    struct Condition
    {
        int id = 0;
        /** Node whose result reaching OUT wakes the main CPU. */
        int outNode = -1;
        /** Node indices referenced (for refcounting), one per stmt. */
        std::vector<int> ownedNodes;
        /** Index of the first channel the program reads. */
        int primaryChannel = 0;
    };

    int channelIndexOf(const std::string &name) const;
    /** Install @p plan's nodes (hash-consed, refcounted) and build
        the Condition record; shared by install and staging. */
    Condition buildCondition(int condition_id,
                             const il::ExecutionPlan &plan);
    /** Drop one condition's node references, freeing orphans. */
    void releaseConditionNodes(const Condition &cond);
    /** Rebuild the dense wave schedule after any add/remove. */
    void rebuildSchedule();
    /** Size a node's block lanes and input views for @p count waves. */
    void prepareNodeBlock(Node *node, const double *samples,
                          std::size_t count);
    /**
     * Run @p node's kernel on the single wave @p w of a block: every
     * block lane is sliced to that wave and the kernel sees a dense
     * one-wave invocation. Used by the sparse-firing fast path, where
     * scanning states is cheaper than a full-block kernel pass.
     */
    void invokeNodeWave(Node *node, const BlockOutput &out,
                        std::size_t w);

    std::vector<il::ChannelInfo> channelInfos;
    /** Channel name -> index, built once in the constructor. */
    std::unordered_map<std::string, int> channelIndexByName;
    bool shareNodes;
    std::size_t rawBufferSize;
    KernelMode numericMode;

    std::vector<std::unique_ptr<Node>> nodes;
    /** Live nodes in topological order — the wave loop's worklist. */
    std::vector<Node *> schedule;
    std::unordered_map<std::string, int> nodeByKey;
    /** il::shareKeyHash(key) -> node index (sharing enabled only) —
        the resolution table for 8-byte delta references. */
    std::unordered_map<std::uint64_t, int> nodeByKeyHash;
    std::map<int, Condition> conditions;
    /** The shadow (B) slot: staged but not yet live conditions. */
    std::map<int, Condition> stagedConditions;
    std::vector<RingBuffer<double>> rawBuffers;
    std::vector<WakeEvent> pendingWakeEvents;
    /** Reused per-wave channel value scratch. */
    std::vector<Value> channelValues;
    /** Reused per-block firing-decision scratch. */
    std::vector<BlockFire> fireDecisions;
    /** Reused per-block combined-input-state scratch (multi-input). */
    std::vector<std::uint8_t> blockAllEmitted;
    std::vector<std::uint8_t> blockAnyEmitted;
    std::vector<std::uint8_t> blockAnyBlocked;
    /** Reused one-wave input-slice scratch (sparse dispatch). */
    std::vector<BlockInput> sliceInputs;
    /** Reused per-wave any-condition-fired scratch (wake scan). */
    std::vector<std::uint8_t> wakeScan;
    /** Reused timestamp scratch for the evenly-spaced overload. */
    std::vector<double> blockTimestamps;
    double dynamicCycles = 0.0;

    /** Range-tripwire state (armRangeTripwire). */
    bool tripwireArmed = false;
    std::unordered_map<std::string, RangeBound> tripwireBounds;
    std::size_t tripwireViolationCount = 0;
    std::string tripwireFirstViolation;

    void checkRangeTripwire(const Node &node);
};

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_ENGINE_H
