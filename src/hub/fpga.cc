#include "hub/fpga.h"

#include <algorithm>

#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::hub {

FpgaModel
ice40Hub()
{
    FpgaModel fpga;
    fpga.name = "iCE40-hub";
    // A small flash FPGA idles near a milliwatt and reconfigures from
    // SPI flash in well under a second.
    fpga.staticPowerMw = 1.2;
    fpga.logicCells = 7680;
    fpga.reconfigSeconds = 0.08;
    fpga.nanojoulesPerCycleUnit = 0.05;
    return fpga;
}

std::size_t
fpgaCellCost(const std::string &algorithm, std::size_t frame_size)
{
    // Footprints of the pre-compiled blocks, in logic cells. Frame
    // algorithms scale with buffer depth (BRAM mapped to cells here
    // for a single-resource budget).
    const std::size_t frame =
        std::max<std::size_t>(frame_size, 1);

    if (algorithm == "movingAvg" || algorithm == "expMovingAvg")
        return 120;
    if (algorithm == "window")
        return 60 + frame / 4;
    if (algorithm == "fft" || algorithm == "ifft")
        return 900 + frame / 2;
    if (algorithm == "spectrum")
        return 300;
    if (algorithm == "lowPass" || algorithm == "highPass")
        return 1400 + frame / 2; // FFT + bin mask + IFFT datapath
    if (algorithm == "vectorMagnitude")
        return 350; // multipliers + sqrt
    if (algorithm == "goertzel" || algorithm == "goertzelRel")
        return 160; // two-tap IIR + magnitude datapath
    if (algorithm == "zcr")
        return 90;
    if (algorithm == "mean" || algorithm == "min" ||
        algorithm == "max" || algorithm == "range")
        return 80;
    if (algorithm == "variance" || algorithm == "stddev" ||
        algorithm == "rms")
        return 220;
    if (algorithm == "dominantFreqHz" ||
        algorithm == "dominantFreqMag" ||
        algorithm == "peakToMeanRatio")
        return 180;
    if (algorithm == "minThreshold" || algorithm == "maxThreshold" ||
        algorithm == "bandThreshold" ||
        algorithm == "outsideBandThreshold")
        return 40;
    if (algorithm == "localMaxima" || algorithm == "localMinima")
        return 110;
    if (algorithm == "and" || algorithm == "or")
        return 20;
    if (algorithm == "consecutive")
        return 60;

    throw ConfigError("no FPGA block for algorithm '" + algorithm +
                      "'");
}

FpgaPlacement
planFpgaPlacement(const il::ExecutionPlan &plan, const FpgaModel &fpga)
{
    FpgaPlacement placement;
    double dynamic_mw = 0.0;

    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        // Buffer-bearing blocks size with the larger of their input
        // and output frames (a window's cells hold its output frame).
        const std::size_t input_frame =
            plan.inputCounts[i] > 0 ? plan.inputStream(i, 0).frameSize
                                    : 0;
        const std::size_t sizing_frame =
            std::max(input_frame, plan.streams[i].frameSize);

        FpgaPlacementEntry entry;
        entry.node = plan.sourceIds[i];
        entry.algorithm = plan.algorithms[i];
        entry.cells = fpgaCellCost(plan.algorithms[i], sizing_frame);
        placement.entries.push_back(entry);
        placement.cellsUsed += entry.cells;

        // Dynamic power: the plan's cycle-unit demand priced at the
        // fabric's energy per unit. mW = (units/s) * nJ/unit * 1e-6.
        dynamic_mw += plan.cyclesPerInvoke[i] * plan.invokeRateHz[i] *
                      fpga.nanojoulesPerCycleUnit * 1e-6;
    }

    placement.dynamicPowerMw = dynamic_mw;
    placement.fits = placement.cellsUsed <= fpga.logicCells;
    return placement;
}

FpgaPlacement
planFpgaPlacement(const il::Program &program,
                  const std::vector<il::ChannelInfo> &channels,
                  const FpgaModel &fpga)
{
    // lower() re-validates the program and hash-conses structurally
    // identical nodes — the sealed plan is the sole representation
    // the fabric sizer reads.
    return planFpgaPlacement(il::lower(program, channels), fpga);
}

} // namespace sidewinder::hub
