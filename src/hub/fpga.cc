#include "hub/fpga.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "il/algorithm_info.h"
#include "support/error.h"

namespace sidewinder::hub {

FpgaModel
ice40Hub()
{
    FpgaModel fpga;
    fpga.name = "iCE40-hub";
    // A small flash FPGA idles near a milliwatt and reconfigures from
    // SPI flash in well under a second.
    fpga.staticPowerMw = 1.2;
    fpga.logicCells = 7680;
    fpga.reconfigSeconds = 0.08;
    fpga.nanojoulesPerCycleUnit = 0.05;
    return fpga;
}

std::size_t
fpgaCellCost(const std::string &algorithm, std::size_t frame_size)
{
    // Footprints of the pre-compiled blocks, in logic cells. Frame
    // algorithms scale with buffer depth (BRAM mapped to cells here
    // for a single-resource budget).
    const std::size_t frame =
        std::max<std::size_t>(frame_size, 1);

    if (algorithm == "movingAvg" || algorithm == "expMovingAvg")
        return 120;
    if (algorithm == "window")
        return 60 + frame / 4;
    if (algorithm == "fft" || algorithm == "ifft")
        return 900 + frame / 2;
    if (algorithm == "spectrum")
        return 300;
    if (algorithm == "lowPass" || algorithm == "highPass")
        return 1400 + frame / 2; // FFT + bin mask + IFFT datapath
    if (algorithm == "vectorMagnitude")
        return 350; // multipliers + sqrt
    if (algorithm == "goertzel" || algorithm == "goertzelRel")
        return 160; // two-tap IIR + magnitude datapath
    if (algorithm == "zcr")
        return 90;
    if (algorithm == "mean" || algorithm == "min" ||
        algorithm == "max" || algorithm == "range")
        return 80;
    if (algorithm == "variance" || algorithm == "stddev" ||
        algorithm == "rms")
        return 220;
    if (algorithm == "dominantFreqHz" ||
        algorithm == "dominantFreqMag" ||
        algorithm == "peakToMeanRatio")
        return 180;
    if (algorithm == "minThreshold" || algorithm == "maxThreshold" ||
        algorithm == "bandThreshold" ||
        algorithm == "outsideBandThreshold")
        return 40;
    if (algorithm == "localMaxima" || algorithm == "localMinima")
        return 110;
    if (algorithm == "and" || algorithm == "or")
        return 20;
    if (algorithm == "consecutive")
        return 60;

    throw ConfigError("no FPGA block for algorithm '" + algorithm +
                      "'");
}

FpgaPlacement
planFpgaPlacement(const il::Program &program,
                  const std::vector<il::ChannelInfo> &channels,
                  const FpgaModel &fpga)
{
    const il::StreamMap streams = il::validate(program, channels);

    auto channel_rate = [&](const std::string &name) {
        for (const auto &ch : channels)
            if (ch.name == name)
                return ch.sampleRateHz;
        throw ConfigError("unknown channel '" + name + "'");
    };

    FpgaPlacement placement;
    double dynamic_mw = 0.0;

    // Structurally identical nodes map to one physical block, the
    // same hash-consing the Engine applies (a reconfigurable fabric
    // has even more reason to instantiate each datapath once).
    std::map<std::string, std::string> canonical_key;
    std::set<std::string> placed;

    for (const auto &stmt : program.statements) {
        if (stmt.isOut)
            continue;
        const auto info = il::findAlgorithm(stmt.algorithm);
        if (!info)
            throw InternalError("validated program with unknown "
                                "algorithm");

        std::ostringstream key;
        key << stmt.algorithm << "(";
        for (double p : stmt.params)
            key << p << ",";
        key << ")";
        for (const auto &src : stmt.inputs) {
            if (src.kind == il::SourceRef::Kind::Channel)
                key << "<ch:" << src.channel;
            else
                key << "<"
                    << canonical_key.at(std::to_string(src.node));
        }
        canonical_key[std::to_string(stmt.id)] = key.str();
        const bool is_new = placed.insert(key.str()).second;
        if (!is_new)
            continue;

        // Input stream of the first operand: unit count and rate.
        il::NodeStream first;
        double rate = 0.0;
        bool rate_set = false;
        for (std::size_t i = 0; i < stmt.inputs.size(); ++i) {
            il::NodeStream s;
            if (stmt.inputs[i].kind == il::SourceRef::Kind::Channel) {
                s.kind = il::ValueKind::Scalar;
                s.fireRateHz = channel_rate(stmt.inputs[i].channel);
                s.baseRateHz = s.fireRateHz;
            } else {
                s = streams.at(stmt.inputs[i].node);
            }
            if (i == 0)
                first = s;
            rate = rate_set ? std::min(rate, s.fireRateHz)
                            : s.fireRateHz;
            rate_set = true;
        }

        // Buffer-bearing blocks size with the larger of their input
        // and output frames (a window's cells hold its output frame).
        const std::size_t sizing_frame = std::max(
            first.frameSize, streams.at(stmt.id).frameSize);

        FpgaPlacementEntry entry;
        entry.node = stmt.id;
        entry.algorithm = stmt.algorithm;
        entry.cells = fpgaCellCost(stmt.algorithm, sizing_frame);
        placement.entries.push_back(entry);
        placement.cellsUsed += entry.cells;

        // Dynamic power: cycle-unit demand priced at the fabric's
        // energy per unit. mW = (units/s) * nJ/unit * 1e-6.
        double units = 1.0;
        if (info->inputKind != il::ValueKind::Scalar)
            units = static_cast<double>(
                std::max<std::size_t>(first.frameSize, 1));
        double cost = info->cyclesPerUnit * units;
        if (info->fftFamily && first.frameSize > 1)
            cost *= std::log2(static_cast<double>(first.frameSize));
        dynamic_mw += cost * rate * fpga.nanojoulesPerCycleUnit * 1e-6;
    }

    placement.dynamicPowerMw = dynamic_mw;
    placement.fits = placement.cellsUsed <= fpga.logicCells;
    return placement;
}

} // namespace sidewinder::hub
