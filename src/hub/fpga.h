/**
 * @file
 * FPGA-based sensor-hub backend model.
 *
 * Section 7 of the paper: "Our immediate future work includes
 * developing an FPGA-based prototype"; Section 2.1.1 already allows
 * it: "The runtime could ... reconfigure FPGAs according to the
 * requirements of the wake-up condition ... the algorithms will most
 * likely be pre-compiled and the runtime would need to reconfigure
 * according to the specific configuration."
 *
 * The model captures what matters for the sizing decision of
 * Section 3.8: each standardized algorithm has a pre-compiled block
 * with a logic-cell footprint; a wake-up condition *fits* when the sum
 * of its nodes' footprints is within the fabric budget; installing a
 * new condition costs a reconfiguration delay during which the hub is
 * blind. Power is static (always-on fabric) plus per-block dynamic
 * power scaled by each node's firing rate — FPGAs trade a higher
 * static floor for far better energy per operation on streaming DSP.
 */

#ifndef SIDEWINDER_HUB_FPGA_H
#define SIDEWINDER_HUB_FPGA_H

#include <map>
#include <string>
#include <vector>

#include "il/ast.h"
#include "il/plan.h"
#include "il/validate.h"

namespace sidewinder::hub {

/** Static description of an FPGA hub fabric. */
struct FpgaModel
{
    /** Part name. */
    std::string name;
    /** Always-on fabric power, mW. */
    double staticPowerMw = 0.0;
    /** Logic-cell budget available to algorithm blocks. */
    std::size_t logicCells = 0;
    /** Full-fabric reconfiguration time, seconds. */
    double reconfigSeconds = 0.0;
    /**
     * Dynamic energy per abstract cycle unit, in nanojoules —
     * substantially below a microcontroller's because each block is a
     * dedicated datapath rather than fetch/decode/execute.
     */
    double nanojoulesPerCycleUnit = 0.0;
};

/** A small flash-based FPGA in the iCE40 class. */
FpgaModel ice40Hub();

/** Per-node placement record of a planned configuration. */
struct FpgaPlacementEntry
{
    il::NodeId node = 0;
    std::string algorithm;
    std::size_t cells = 0;
};

/** Result of planning a wake-up condition onto a fabric. */
struct FpgaPlacement
{
    /** Per-node block assignments. */
    std::vector<FpgaPlacementEntry> entries;
    /** Total logic cells consumed. */
    std::size_t cellsUsed = 0;
    /** True when the condition fits the fabric budget. */
    bool fits = false;
    /** Average dynamic power of the running configuration, mW. */
    double dynamicPowerMw = 0.0;

    /** Static plus dynamic power, mW. */
    double
    totalPowerMw(const FpgaModel &fpga) const
    {
        return fpga.staticPowerMw + dynamicPowerMw;
    }
};

/** Logic-cell footprint of one standardized algorithm instance. */
std::size_t fpgaCellCost(const std::string &algorithm,
                         std::size_t frame_size);

/**
 * Plan a sealed execution plan onto @p fpga: assign each node a
 * pre-compiled block, sum footprints, and estimate dynamic power from
 * the per-node firing rates. The plan is the sole representation —
 * lowering already hash-consed structurally identical nodes, so each
 * datapath is placed once.
 */
FpgaPlacement planFpgaPlacement(const il::ExecutionPlan &plan,
                                const FpgaModel &fpga);

/**
 * Convenience overload: lower @p program against @p channels, then
 * plan the sealed result.
 *
 * @throws ParseError when the program is invalid.
 */
FpgaPlacement planFpgaPlacement(const il::Program &program,
                                const std::vector<il::ChannelInfo> &channels,
                                const FpgaModel &fpga);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_FPGA_H
