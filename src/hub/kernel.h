/**
 * @file
 * Kernel interface: one executable algorithm instance on the hub.
 *
 * Mirrors the paper's runtime (Section 3.5): "Each algorithm operates
 * on its own instance of a data structure ... The algorithm operates
 * on the data available in the structure and, if required, stores the
 * result in the structure and sets the hasResult flag." Here the data
 * structure is the kernel object; the interpreter owns the hasResult
 * bookkeeping around invoke().
 */

#ifndef SIDEWINDER_HUB_KERNEL_H
#define SIDEWINDER_HUB_KERNEL_H

#include <memory>
#include <optional>
#include <vector>

#include "hub/value.h"
#include "il/ast.h"
#include "il/validate.h"

namespace sidewinder::hub {

/**
 * Per-wave state of a node, generalizing the paper's hasResult flag.
 *
 * - Idle: the node produced nothing because its inputs have not
 *   reached their cadence yet (a window still filling, a moving
 *   average warming up). Not an observable event downstream.
 * - Blocked: the node was evaluated at its cadence and *rejected* —
 *   an admission-control stage whose predicate failed, or a node
 *   downstream of one. Observable as a "miss" by kernels like
 *   consecutive.
 * - Emitted: the node produced a result (hasResult set).
 */
enum class WaveState { Idle, Blocked, Emitted };

/** When the interpreter invokes a kernel within a wave. */
enum class FiringPolicy {
    /** Invoke only when every input emitted this wave. */
    AllInputs,
    /** Invoke when at least one input emitted. */
    AnyInput,
    /**
     * Invoke whenever any input emitted *or blocked*, with nullptr
     * for non-emitting inputs — kernels that must observe misses
     * (consecutive) use this.
     */
    ObserveBlocks,
};

/**
 * Numeric mode of a kernel set, selected per engine.
 *
 * - Float64: the host-native double pipeline (the historical
 *   behavior and the reference semantics).
 * - FixedQ15: bit-accurate 16-bit fixed point — samples quantized to
 *   the Q15 grid, arithmetic saturating, matching the MCU firmware
 *   sample width the analyzer's RAM model already charges
 *   (il::nodeRamBytes, 2 bytes per sample). Values flowing between
 *   nodes stay doubles, but every one of them is exactly a
 *   dequantized Q15 (or scaled-Q15) quantity, so the host run
 *   reproduces what the real hub would compute.
 */
enum class KernelMode { Float64, FixedQ15 };

/**
 * Engine-computed firing decision for one wave within a block.
 * SkipIdle/SkipBlocked mirror the per-sample wave loop's !run
 * branches; RunAll fires with every input emitted (no nulls);
 * RunPartial fires under AnyInput/ObserveBlocks with at least one
 * non-emitting input, so kernels must consult the per-input states.
 */
enum class BlockFire : std::uint8_t {
    SkipIdle = 0,
    SkipBlocked = 1,
    RunAll = 2,
    RunPartial = 3,
};

/**
 * SoA view of one input stream across a block of waves. Exactly one
 * of scalars/boxed is non-null (scalar streams travel as raw double
 * arrays; frame and complex streams as per-wave Values). states is
 * null for channel inputs, which emit on every wave.
 */
struct BlockInput
{
    /** WaveState per wave (as uint8_t); null for channel inputs. */
    const std::uint8_t *states = nullptr;
    /** Per-wave scalar results; null for frame streams. */
    const double *scalars = nullptr;
    /** Per-wave boxed results; null for scalar streams. */
    const Value *boxed = nullptr;
};

/** SoA output view of one node across a block of waves. */
struct BlockOutput
{
    /** WaveState per wave; always written for every wave. */
    std::uint8_t *states = nullptr;
    /** Scalar results (scalar-emitting nodes), else null. */
    double *scalars = nullptr;
    /** Boxed results (frame-emitting nodes), else null. */
    Value *boxed = nullptr;
};

/**
 * An executable algorithm instance.
 *
 * Subclasses implement at least one of invoke() / invokeInto(); each
 * has a default implementation in terms of the other. Frame-producing
 * kernels override invokeInto() and write into the output value's
 * existing storage, so the interpreter's steady state reuses buffers
 * instead of constructing and destroying frame vectors every sample.
 *
 * Block execution: invokeBlock() runs K waves in one virtual call
 * over contiguous SoA buffers. The default implementation loops the
 * per-sample invokeInto() path, so every kernel is block-correct by
 * construction; the hot per-wave kernels override it with tight
 * loops the compiler can vectorize.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /**
     * Execute one firing.
     *
     * @param inputs One entry per declared input; entries are null
     *     only under FiringPolicy::Activated when that input produced
     *     no result this wave.
     * @return the produced value, or nullopt when this firing yields
     *     no result (the hasResult flag stays clear).
     */
    virtual std::optional<Value>
    invoke(const std::vector<const Value *> &inputs)
    {
        Value out;
        if (!invokeInto(inputs, out))
            return std::nullopt;
        return out;
    }

    /**
     * Execute one firing, writing the result into @p out — the hot
     * interpreter path. @p out is the node's persistent result slot;
     * kernels reuse its storage (Value::frameStorage()) across waves.
     *
     * @return true when a result was produced (hasResult set).
     */
    virtual bool
    invokeInto(const std::vector<const Value *> &inputs, Value &out)
    {
        auto result = invoke(inputs);
        if (!result)
            return false;
        out = std::move(*result);
        return true;
    }

    /**
     * Execute @p count consecutive waves in one call — the block
     * execution fast path.
     *
     * @param inputs One BlockInput per declared input, each viewing
     *     @p count waves of that producer's states/results.
     * @param fire Per-wave firing decisions, or nullptr meaning every
     *     wave is BlockFire::RunAll (the dense fast path: the engine
     *     proved all inputs emit on every wave).
     * @param count Number of waves in the block.
     * @param out SoA destination; out.states[w] must be written for
     *     every wave (Skip* waves copy the engine's decision).
     *
     * The default implementation replays the per-sample invokeInto()
     * path wave by wave, reproducing partial-firing nulls and
     * Blocked/Idle mapping exactly — so block execution is
     * bit-identical to per-sample execution for every kernel, and
     * overrides are purely an optimization.
     */
    virtual void invokeBlock(const std::vector<BlockInput> &inputs,
                             const BlockFire *fire, std::size_t count,
                             const BlockOutput &out);

    /** Discard accumulated state (window contents, counters, ...). */
    virtual void reset() {}

    /** Invocation policy; AllInputs unless overridden. */
    virtual FiringPolicy firingPolicy() const
    {
        return FiringPolicy::AllInputs;
    }

    /**
     * True for admission-control kernels whose non-emission is a
     * rejection (Blocked) rather than mere inactivity (Idle):
     * thresholds and consecutive. Accumulators (windows, moving
     * averages, peak detectors) return false — their silence just
     * means "not yet".
     */
    virtual bool conditional() const { return false; }
};

/**
 * Instantiate the kernel for one plan node.
 *
 * @param algorithm Standardized algorithm name (the plan opcode).
 * @param params Validated numeric parameters.
 * @param inputStreams Stream properties of each input, as carried by
 *     the ExecutionPlan — filters and spectral features need the base
 *     sample rate and FFT size from here.
 * @param mode Numeric mode: KernelMode::FixedQ15 selects the 16-bit
 *     fixed-point variant set where one exists; kernels whose inputs
 *     are already on the Q15 grid (logic, peaks, scale-invariant
 *     spectral features) are shared between modes.
 * @throws ConfigError for unknown algorithms (cannot happen for
 *     validated programs).
 */
std::unique_ptr<Kernel>
makeKernel(const std::string &algorithm,
           const std::vector<double> &params,
           const std::vector<il::NodeStream> &inputStreams,
           KernelMode mode = KernelMode::Float64);

/** Convenience overload for AST statements. */
std::unique_ptr<Kernel>
makeKernel(const il::Statement &stmt,
           const std::vector<il::NodeStream> &inputStreams,
           KernelMode mode = KernelMode::Float64);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_KERNEL_H
