/**
 * @file
 * Kernel interface: one executable algorithm instance on the hub.
 *
 * Mirrors the paper's runtime (Section 3.5): "Each algorithm operates
 * on its own instance of a data structure ... The algorithm operates
 * on the data available in the structure and, if required, stores the
 * result in the structure and sets the hasResult flag." Here the data
 * structure is the kernel object; the interpreter owns the hasResult
 * bookkeeping around invoke().
 */

#ifndef SIDEWINDER_HUB_KERNEL_H
#define SIDEWINDER_HUB_KERNEL_H

#include <memory>
#include <optional>
#include <vector>

#include "hub/value.h"
#include "il/ast.h"
#include "il/validate.h"

namespace sidewinder::hub {

/**
 * Per-wave state of a node, generalizing the paper's hasResult flag.
 *
 * - Idle: the node produced nothing because its inputs have not
 *   reached their cadence yet (a window still filling, a moving
 *   average warming up). Not an observable event downstream.
 * - Blocked: the node was evaluated at its cadence and *rejected* —
 *   an admission-control stage whose predicate failed, or a node
 *   downstream of one. Observable as a "miss" by kernels like
 *   consecutive.
 * - Emitted: the node produced a result (hasResult set).
 */
enum class WaveState { Idle, Blocked, Emitted };

/** When the interpreter invokes a kernel within a wave. */
enum class FiringPolicy {
    /** Invoke only when every input emitted this wave. */
    AllInputs,
    /** Invoke when at least one input emitted. */
    AnyInput,
    /**
     * Invoke whenever any input emitted *or blocked*, with nullptr
     * for non-emitting inputs — kernels that must observe misses
     * (consecutive) use this.
     */
    ObserveBlocks,
};

/**
 * An executable algorithm instance.
 *
 * Subclasses implement at least one of invoke() / invokeInto(); each
 * has a default implementation in terms of the other. Frame-producing
 * kernels override invokeInto() and write into the output value's
 * existing storage, so the interpreter's steady state reuses buffers
 * instead of constructing and destroying frame vectors every sample.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /**
     * Execute one firing.
     *
     * @param inputs One entry per declared input; entries are null
     *     only under FiringPolicy::Activated when that input produced
     *     no result this wave.
     * @return the produced value, or nullopt when this firing yields
     *     no result (the hasResult flag stays clear).
     */
    virtual std::optional<Value>
    invoke(const std::vector<const Value *> &inputs)
    {
        Value out;
        if (!invokeInto(inputs, out))
            return std::nullopt;
        return out;
    }

    /**
     * Execute one firing, writing the result into @p out — the hot
     * interpreter path. @p out is the node's persistent result slot;
     * kernels reuse its storage (Value::frameStorage()) across waves.
     *
     * @return true when a result was produced (hasResult set).
     */
    virtual bool
    invokeInto(const std::vector<const Value *> &inputs, Value &out)
    {
        auto result = invoke(inputs);
        if (!result)
            return false;
        out = std::move(*result);
        return true;
    }

    /** Discard accumulated state (window contents, counters, ...). */
    virtual void reset() {}

    /** Invocation policy; AllInputs unless overridden. */
    virtual FiringPolicy firingPolicy() const
    {
        return FiringPolicy::AllInputs;
    }

    /**
     * True for admission-control kernels whose non-emission is a
     * rejection (Blocked) rather than mere inactivity (Idle):
     * thresholds and consecutive. Accumulators (windows, moving
     * averages, peak detectors) return false — their silence just
     * means "not yet".
     */
    virtual bool conditional() const { return false; }
};

/**
 * Instantiate the kernel for one plan node.
 *
 * @param algorithm Standardized algorithm name (the plan opcode).
 * @param params Validated numeric parameters.
 * @param inputStreams Stream properties of each input, as carried by
 *     the ExecutionPlan — filters and spectral features need the base
 *     sample rate and FFT size from here.
 * @throws ConfigError for unknown algorithms (cannot happen for
 *     validated programs).
 */
std::unique_ptr<Kernel>
makeKernel(const std::string &algorithm,
           const std::vector<double> &params,
           const std::vector<il::NodeStream> &inputStreams);

/** Convenience overload for AST statements. */
std::unique_ptr<Kernel>
makeKernel(const il::Statement &stmt,
           const std::vector<il::NodeStream> &inputStreams);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_KERNEL_H
