/**
 * @file
 * Kernel implementations for the standardized algorithm set. Every
 * entry of il::standardAlgorithms() has a kernel here; a static
 * registry test asserts the two stay in sync.
 */

#include "hub/kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/filters.h"
#include "dsp/goertzel.h"
#include "dsp/peaks.h"
#include "dsp/q15.h"
#include "dsp/threshold.h"
#include "dsp/window.h"
#include "support/error.h"

namespace sidewinder::hub {

namespace {

constexpr std::uint8_t kWaveIdle =
    static_cast<std::uint8_t>(WaveState::Idle);
constexpr std::uint8_t kWaveBlocked =
    static_cast<std::uint8_t>(WaveState::Blocked);
constexpr std::uint8_t kWaveEmitted =
    static_cast<std::uint8_t>(WaveState::Emitted);

/** Did this input emit on wave @p w? (Channels always emit.) */
inline bool
inputPresent(const BlockInput &in, std::size_t w)
{
    return in.states == nullptr || in.states[w] == kWaveEmitted;
}

/**
 * Shared skeleton for single-input scalar-to-scalar streaming kernels
 * (AllInputs policy, so RunPartial never occurs): @p step consumes one
 * sample and either writes the output scalar (returning true) or
 * produces nothing, in which case the wave lands in @p miss_state
 * (Idle for accumulators, Blocked for admission control).
 */
template <typename Step>
inline void
runScalarBlock(const BlockInput &in, const BlockFire *fire,
               std::size_t count, const BlockOutput &out,
               std::uint8_t miss_state, Step step)
{
    if (fire == nullptr) {
        // Dense fast path: every wave fires, no per-wave branching on
        // engine decisions — the loop the compiler can pipeline.
        for (std::size_t w = 0; w < count; ++w)
            out.states[w] = step(in.scalars[w], out.scalars[w])
                                ? kWaveEmitted
                                : miss_state;
        return;
    }
    for (std::size_t w = 0; w < count; ++w) {
        const BlockFire decision = fire[w];
        if (decision == BlockFire::SkipIdle)
            out.states[w] = kWaveIdle;
        else if (decision == BlockFire::SkipBlocked)
            out.states[w] = kWaveBlocked;
        else
            out.states[w] = step(in.scalars[w], out.scalars[w])
                                ? kWaveEmitted
                                : miss_state;
    }
}

/** As runScalarBlock, for frame-emitting kernels (window). */
template <typename Step>
inline void
runScalarToFrameBlock(const BlockInput &in, const BlockFire *fire,
                      std::size_t count, const BlockOutput &out,
                      Step step)
{
    if (fire == nullptr) {
        for (std::size_t w = 0; w < count; ++w)
            out.states[w] = step(in.scalars[w], out.boxed[w])
                                ? kWaveEmitted
                                : kWaveIdle;
        return;
    }
    for (std::size_t w = 0; w < count; ++w) {
        const BlockFire decision = fire[w];
        if (decision == BlockFire::SkipIdle)
            out.states[w] = kWaveIdle;
        else if (decision == BlockFire::SkipBlocked)
            out.states[w] = kWaveBlocked;
        else
            out.states[w] = step(in.scalars[w], out.boxed[w])
                                ? kWaveEmitted
                                : kWaveIdle;
    }
}

} // namespace

void
Kernel::invokeBlock(const std::vector<BlockInput> &inputs,
                    const BlockFire *fire, std::size_t count,
                    const BlockOutput &out)
{
    // Reference fallback: replay the per-sample invokeInto() path wave
    // by wave, boxing scalar lanes into temporary Values and patching
    // nulls for partial firings — bit-identical to the per-sample wave
    // loop for any kernel, at per-sample cost.
    std::vector<Value> boxed_scalars(inputs.size());
    std::vector<const Value *> ptrs(inputs.size());
    const bool rejects = conditional();
    Value scalar_out;
    for (std::size_t w = 0; w < count; ++w) {
        const BlockFire decision = fire ? fire[w] : BlockFire::RunAll;
        if (decision == BlockFire::SkipIdle) {
            out.states[w] = kWaveIdle;
            continue;
        }
        if (decision == BlockFire::SkipBlocked) {
            out.states[w] = kWaveBlocked;
            continue;
        }
        for (std::size_t k = 0; k < inputs.size(); ++k) {
            const BlockInput &in = inputs[k];
            if (decision == BlockFire::RunPartial &&
                !inputPresent(in, w)) {
                ptrs[k] = nullptr;
            } else if (in.boxed != nullptr) {
                ptrs[k] = &in.boxed[w];
            } else {
                boxed_scalars[k] = Value(in.scalars[w]);
                ptrs[k] = &boxed_scalars[k];
            }
        }
        Value &dest = out.boxed != nullptr ? out.boxed[w] : scalar_out;
        const bool ok = invokeInto(ptrs, dest);
        if (ok && out.scalars != nullptr)
            out.scalars[w] = dest.scalar();
        out.states[w] = ok ? kWaveEmitted
                           : (rejects ? kWaveBlocked : kWaveIdle);
    }
}

namespace {

/** movingAvg(n): scalar noise reduction. */
class MovingAvgKernel : public Kernel
{
  public:
    explicit MovingAvgKernel(std::size_t n) : filter(n) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = filter.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [this](double x, double &y) {
                           auto r = filter.push(x);
                           if (!r)
                               return false;
                           y = *r;
                           return true;
                       });
    }

    void reset() override { filter.reset(); }

  private:
    dsp::MovingAverage filter;
};

/** expMovingAvg(alpha). */
class ExpMovingAvgKernel : public Kernel
{
  public:
    explicit ExpMovingAvgKernel(double alpha) : filter(alpha) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(filter.push(inputs[0]->scalar()));
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [this](double x, double &y) {
                           y = filter.push(x);
                           return true;
                       });
    }

    void reset() override { filter.reset(); }

  private:
    dsp::ExponentialMovingAverage filter;
};

/** window(size[, hamming[, hop]]): scalar stream -> frames. */
class WindowKernel : public Kernel
{
  public:
    WindowKernel(std::size_t size, bool hamming, std::size_t hop)
        : partitioner(size,
                      hamming ? dsp::WindowType::Hamming
                              : dsp::WindowType::Rectangular,
                      hop)
    {}

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        return partitioner.pushInto(inputs[0]->scalar(),
                                    out.frameStorage());
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        if (fire == nullptr) {
            // Dense lane: bulk-append the quiet stretch between frame
            // completions (a contiguous insert, not one push per
            // wave), and run the per-sample path only on the wave
            // that completes a frame — identical resulting state.
            const double *lane = inputs[0].scalars;
            std::size_t w = 0;
            while (w < count) {
                const std::size_t quiet = std::min(
                    partitioner.remainingToFrame() - 1, count - w);
                if (quiet != 0) {
                    partitioner.appendPartial(lane + w, quiet);
                    std::memset(out.states + w, kWaveIdle, quiet);
                    w += quiet;
                }
                if (w == count)
                    break;
                out.states[w] =
                    partitioner.pushInto(lane[w],
                                         out.boxed[w].frameStorage())
                        ? kWaveEmitted
                        : kWaveIdle;
                ++w;
            }
            return;
        }
        runScalarToFrameBlock(
            inputs[0], fire, count, out, [this](double x, Value &frame) {
                return partitioner.pushInto(x, frame.frameStorage());
            });
    }

    void reset() override { partitioner.reset(); }

  private:
    dsp::WindowPartitioner partitioner;
};

/** fft: real frame -> complex spectrum (planned real transform). */
class FftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &frame = inputs[0]->frame();
        if (!plan || plan->size() != frame.size())
            plan = dsp::FftPlan::forSize(frame.size());
        plan->forwardReal(frame, out.complexFrameStorage());
        return true;
    }

  private:
    std::shared_ptr<const dsp::FftPlan> plan;
};

/** ifft: complex spectrum -> real frame. */
class IfftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        if (!plan || plan->size() != bins.size())
            plan = dsp::FftPlan::forSize(bins.size());
        // General spectra need not be conjugate-symmetric, so run the
        // full inverse on a per-node scratch copy and keep the real
        // parts (same semantics as dsp::ifftToReal).
        scratch.assign(bins.begin(), bins.end());
        plan->inverse(scratch.data());
        auto &frame = out.frameStorage();
        frame.resize(scratch.size());
        for (std::size_t i = 0; i < scratch.size(); ++i)
            frame[i] = scratch[i].real();
        return true;
    }

  private:
    std::shared_ptr<const dsp::FftPlan> plan;
    std::vector<dsp::Complex> scratch;
};

/** spectrum: complex bins -> magnitudes of the non-redundant half. */
class SpectrumKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        const std::size_t half = bins.size() / 2;
        auto &mags = out.frameStorage();
        mags.clear();
        mags.reserve(half + 1);
        for (std::size_t i = 0; i <= half && i < bins.size(); ++i)
            mags.push_back(std::abs(bins[i]));
        return true;
    }
};

/** lowPass / highPass (FFT block filter on frames). */
class BlockFilterKernel : public Kernel
{
  public:
    BlockFilterKernel(dsp::PassBand band, double cutoff_hz,
                      double sample_rate_hz)
        : filter(band, cutoff_hz, sample_rate_hz)
    {}

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        filter.applyInto(inputs[0]->frame(), out.frameStorage());
        return true;
    }

  private:
    dsp::FftBlockFilter filter;
};

/** vectorMagnitude over 1..8 scalar branches. */
class VectorMagnitudeKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        // Inline sqrt-of-squares (same math as dsp::vectorMagnitude)
        // to avoid building a component vector per sample.
        double sum = 0.0;
        for (const Value *v : inputs)
            sum += v->scalar() * v->scalar();
        out = Value(std::sqrt(sum));
        return true;
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        if (fire != nullptr) {
            // AllInputs with upstream gaps: rare, replay per-sample.
            Kernel::invokeBlock(inputs, fire, count, out);
            return;
        }
        for (std::size_t w = 0; w < count; ++w) {
            double sum = 0.0;
            for (const BlockInput &in : inputs)
                sum += in.scalars[w] * in.scalars[w];
            out.scalars[w] = std::sqrt(sum);
            out.states[w] = kWaveEmitted;
        }
    }
};

/** Frame -> scalar reducers (zcr, statistics). */
class ReducerKernel : public Kernel
{
  public:
    using Fn = double (*)(const std::vector<double> &);

    explicit ReducerKernel(Fn fn) : fn(fn) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(fn(inputs[0]->frame()));
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        const BlockInput &in = inputs[0];
        for (std::size_t w = 0; w < count; ++w) {
            const BlockFire decision =
                fire ? fire[w] : BlockFire::RunAll;
            if (decision == BlockFire::SkipIdle)
                out.states[w] = kWaveIdle;
            else if (decision == BlockFire::SkipBlocked)
                out.states[w] = kWaveBlocked;
            else {
                out.scalars[w] = fn(in.boxed[w].frame());
                out.states[w] = kWaveEmitted;
            }
        }
    }

  private:
    Fn fn;
};

/** Spectral features over a magnitude-spectrum frame. */
class SpectralFeatureKernel : public Kernel
{
  public:
    enum class Feature { FrequencyHz, Magnitude, PeakToMeanRatio };

    SpectralFeatureKernel(Feature feature, std::size_t fft_size,
                          double base_rate_hz)
        : feature(feature), fftSize(fft_size), baseRateHz(base_rate_hz)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        const auto dom = dsp::dominantFrequency(inputs[0]->frame());
        switch (feature) {
          case Feature::FrequencyHz:
            return Value(
                dsp::binFrequencyHz(dom.bin, fftSize, baseRateHz));
          case Feature::Magnitude:
            return Value(dom.magnitude);
          case Feature::PeakToMeanRatio:
            return Value(dom.peakToMeanRatio());
        }
        return std::nullopt;
    }

  private:
    Feature feature;
    std::size_t fftSize;
    double baseRateHz;
};

/** Single-bin spectral probe (Goertzel). */
class GoertzelKernel : public Kernel
{
  public:
    GoertzelKernel(double target_hz, double base_rate_hz,
                   bool relative)
        : targetHz(target_hz), baseRateHz(base_rate_hz),
          relative(relative)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        const auto &frame = inputs[0]->frame();
        return Value(relative
                         ? dsp::goertzelRelative(frame, targetHz,
                                                 baseRateHz)
                         : dsp::goertzelMagnitude(frame, targetHz,
                                                  baseRateHz));
    }

  private:
    double targetHz;
    double baseRateHz;
    bool relative;
};

/** Admission control: forwards only admitted values. */
class ThresholdKernel : public Kernel
{
  public:
    explicit ThresholdKernel(dsp::Threshold threshold)
        : threshold(threshold)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = threshold.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveBlocked,
                       [this](double x, double &y) {
                           if (!threshold.admits(x))
                               return false;
                           y = x;
                           return true;
                       });
    }

    bool conditional() const override { return true; }

  private:
    dsp::Threshold threshold;
};

/** localMaxima / localMinima streaming peak detection. */
class PeakKernel : public Kernel
{
  public:
    PeakKernel(dsp::PeakPolarity polarity, double low, double high,
               std::size_t refractory)
        : detector(polarity, low, high, refractory)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = detector.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [this](double x, double &y) {
                           auto r = detector.push(x);
                           if (!r)
                               return false;
                           y = *r;
                           return true;
                       });
    }

    void reset() override { detector.reset(); }

  private:
    dsp::PeakDetector detector;
};

/** and: fires only when all (conditional) branches fired this wave. */
class AndKernel : public Kernel
{
  public:
    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(inputs[0]->scalar());
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [](double x, double &y) {
                           y = x;
                           return true;
                       });
    }
};

/** or: fires when any branch fired; forwards the first present one. */
class OrKernel : public Kernel
{
  public:
    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        for (const Value *v : inputs)
            if (v != nullptr)
                return Value(v->scalar());
        return std::nullopt;
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        for (std::size_t w = 0; w < count; ++w) {
            const BlockFire decision =
                fire ? fire[w] : BlockFire::RunAll;
            if (decision == BlockFire::SkipIdle) {
                out.states[w] = kWaveIdle;
                continue;
            }
            if (decision == BlockFire::SkipBlocked) {
                out.states[w] = kWaveBlocked;
                continue;
            }
            out.states[w] = kWaveIdle;
            for (const BlockInput &in : inputs) {
                if (decision == BlockFire::RunAll ||
                    inputPresent(in, w)) {
                    out.scalars[w] = in.scalars[w];
                    out.states[w] = kWaveEmitted;
                    break;
                }
            }
        }
    }

    FiringPolicy firingPolicy() const override
    {
        return FiringPolicy::AnyInput;
    }
};

/**
 * consecutive(m): fires when its input has produced a result in m
 * consecutive upstream firings; a miss resets the count. While the
 * condition stays true it re-fires at every further multiple of m, so
 * a sustained event (a long siren, a whole song) keeps re-asserting
 * the wake-up instead of firing once and going silent — the main CPU
 * stays awake for as long as the event lasts.
 */
class ConsecutiveKernel : public Kernel
{
  public:
    explicit ConsecutiveKernel(std::size_t required)
        : required(required)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        if (inputs[0] == nullptr) {
            count = 0;
            return std::nullopt;
        }
        ++count;
        if (count >= required && count % required == 0)
            return Value(inputs[0]->scalar());
        return std::nullopt;
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t waves,
                     const BlockOutput &out) override
    {
        const BlockInput &in = inputs[0];
        for (std::size_t w = 0; w < waves; ++w) {
            const BlockFire decision =
                fire ? fire[w] : BlockFire::RunAll;
            if (decision == BlockFire::SkipIdle) {
                out.states[w] = kWaveIdle;
                continue;
            }
            if (decision == BlockFire::SkipBlocked) {
                out.states[w] = kWaveBlocked;
                continue;
            }
            // RunPartial on the single input means it blocked this
            // wave: an observed miss resets the streak.
            if (decision == BlockFire::RunPartial &&
                !inputPresent(in, w)) {
                count = 0;
                out.states[w] = kWaveBlocked;
                continue;
            }
            ++count;
            if (count >= required && count % required == 0) {
                out.scalars[w] = in.scalars[w];
                out.states[w] = kWaveEmitted;
            } else {
                out.states[w] = kWaveBlocked;
            }
        }
    }

    void reset() override { count = 0; }

    FiringPolicy firingPolicy() const override
    {
        return FiringPolicy::ObserveBlocks;
    }

    bool conditional() const override { return true; }

  private:
    std::size_t required;
    std::size_t count = 0;
};

// ---------------------------------------------------------------------
// Q15 fixed-point variants (KernelMode::FixedQ15): the numeric kernels
// quantize to the MCU's 16-bit sample format, compute with saturating
// integer arithmetic (dsp/q15.h), and dequantize results — so the
// Values flowing between nodes stay doubles, but every one of them
// lies exactly on the Q15 grid the firmware would produce. Kernels
// whose behavior is already grid-exact on such inputs (logic, peaks,
// spectral features over compensated magnitudes) are shared with the
// float set.

/** movingAvg(n) on Q15 samples with a 32-bit running sum. */
class Q15MovingAvgKernel : public Kernel
{
  public:
    explicit Q15MovingAvgKernel(std::size_t n) : filter(n) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = filter.push(dsp::toQ15(inputs[0]->scalar()));
        if (!out)
            return std::nullopt;
        return Value(dsp::fromQ15(*out));
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [this](double x, double &y) {
                           auto r = filter.push(dsp::toQ15(x));
                           if (!r)
                               return false;
                           y = dsp::fromQ15(*r);
                           return true;
                       });
    }

    void reset() override { filter.reset(); }

  private:
    dsp::Q15MovingAverage filter;
};

/** expMovingAvg(alpha) in Q15. */
class Q15ExpMovingAvgKernel : public Kernel
{
  public:
    explicit Q15ExpMovingAvgKernel(double alpha) : filter(alpha) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(
            dsp::fromQ15(filter.push(dsp::toQ15(inputs[0]->scalar()))));
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveIdle,
                       [this](double x, double &y) {
                           y = dsp::fromQ15(filter.push(dsp::toQ15(x)));
                           return true;
                       });
    }

    void reset() override { filter.reset(); }

  private:
    dsp::Q15ExponentialMovingAverage filter;
};

/**
 * window(size[, hamming[, hop]]) storing Q15 samples — exactly the
 * 2 bytes per retained sample that il::nodeRamBytes charges. Hamming
 * coefficients are quantized once; the taper multiply is q15Mul.
 * Emitted frames are the dequantized Q15 products.
 */
class Q15WindowKernel : public Kernel
{
  public:
    Q15WindowKernel(std::size_t size, bool hamming, std::size_t hop)
        : frameSize(size), hopSize(hop == 0 ? size : hop)
    {
        if (frameSize == 0)
            throw ConfigError("window size must be positive");
        if (hopSize == 0 || hopSize > frameSize)
            throw ConfigError("window hop must be in [1, size]");
        pending.reserve(frameSize);
        if (hamming) {
            coefficients.resize(frameSize);
            for (std::size_t i = 0; i < frameSize; ++i)
                coefficients[i] =
                    dsp::toQ15(dsp::hammingCoefficient(i, frameSize));
        }
    }

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        return push(dsp::toQ15(inputs[0]->scalar()),
                    out.frameStorage());
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarToFrameBlock(
            inputs[0], fire, count, out, [this](double x, Value &frame) {
                return push(dsp::toQ15(x), frame.frameStorage());
            });
    }

    void reset() override { pending.clear(); }

  private:
    bool
    push(dsp::Q15 sample, std::vector<double> &frame)
    {
        pending.push_back(sample);
        if (pending.size() < frameSize)
            return false;
        frame.resize(frameSize);
        if (coefficients.empty()) {
            for (std::size_t i = 0; i < frameSize; ++i)
                frame[i] = dsp::fromQ15(pending[i]);
        } else {
            for (std::size_t i = 0; i < frameSize; ++i)
                frame[i] = dsp::fromQ15(
                    dsp::q15Mul(pending[i], coefficients[i]));
        }
        pending.erase(pending.begin(),
                      pending.begin() +
                          static_cast<std::ptrdiff_t>(hopSize));
        return true;
    }

    std::size_t frameSize;
    std::size_t hopSize;
    std::vector<dsp::Q15> pending;
    std::vector<dsp::Q15> coefficients;
};

/** fft in Q15: forward transform scaled by 1/N (see Q15FftPlan). */
class Q15FftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &frame = inputs[0]->frame();
        const std::size_t n = frame.size();
        if (!plan || plan->size() != n)
            plan = dsp::Q15FftPlan::forSize(n);
        re.resize(n);
        im.assign(n, 0);
        dsp::quantizeQ15(frame.data(), re.data(), n);
        plan->forward(re.data(), im.data());
        auto &bins = out.complexFrameStorage();
        bins.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            bins[i] = dsp::Complex(dsp::fromQ15(re[i]),
                                   dsp::fromQ15(im[i]));
        return true;
    }

  private:
    std::shared_ptr<const dsp::Q15FftPlan> plan;
    std::vector<dsp::Q15> re;
    std::vector<dsp::Q15> im;
};

/** ifft in Q15: unscaled inverse of the 1/N-scaled forward. */
class Q15IfftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        const std::size_t n = bins.size();
        if (!plan || plan->size() != n)
            plan = dsp::Q15FftPlan::forSize(n);
        re.resize(n);
        im.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            re[i] = dsp::toQ15(bins[i].real());
            im[i] = dsp::toQ15(bins[i].imag());
        }
        plan->inverse(re.data(), im.data());
        auto &frame = out.frameStorage();
        frame.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            frame[i] = dsp::fromQ15(re[i]);
        return true;
    }

  private:
    std::shared_ptr<const dsp::Q15FftPlan> plan;
    std::vector<dsp::Q15> re;
    std::vector<dsp::Q15> im;
};

/**
 * spectrum over Q15 FFT bins: multiplies the magnitudes by N to undo
 * the forward transform's 1/N block scaling, so downstream features
 * and thresholds see magnitudes on the same scale as the float
 * pipeline. The magnitude square root is the one floating step.
 */
class Q15SpectrumKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        const std::size_t half = bins.size() / 2;
        const double scale = static_cast<double>(bins.size());
        auto &mags = out.frameStorage();
        mags.clear();
        mags.reserve(half + 1);
        for (std::size_t i = 0; i <= half && i < bins.size(); ++i)
            mags.push_back(std::abs(bins[i]) * scale);
        return true;
    }
};

/**
 * lowPass / highPass in Q15: the same FFT block filter shape as the
 * float kernel, run through the fixed-point transform — forward
 * (scaled 1/N), zero the stop band, unscaled inverse restores the
 * time-domain scale.
 */
class Q15BlockFilterKernel : public Kernel
{
  public:
    Q15BlockFilterKernel(dsp::PassBand band, double cutoff_hz,
                         double sample_rate_hz)
        : direction(band), cutoff(cutoff_hz), sampleRate(sample_rate_hz)
    {
        if (!(cutoff_hz > 0.0))
            throw ConfigError("filter cutoff must be positive");
        if (!(sample_rate_hz > 0.0))
            throw ConfigError("sample rate must be positive");
        if (cutoff_hz >= sample_rate_hz / 2.0)
            throw ConfigError("filter cutoff must be below Nyquist");
    }

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &frame = inputs[0]->frame();
        const std::size_t n = frame.size();
        if (!plan || plan->size() != n)
            plan = dsp::Q15FftPlan::forSize(n);
        re.resize(n);
        im.assign(n, 0);
        dsp::quantizeQ15(frame.data(), re.data(), n);
        plan->forward(re.data(), im.data());

        // Zero the stop band, mirroring FftBlockFilter: bin i and its
        // conjugate mirror n-i carry the same frequency.
        for (std::size_t i = 0; i <= n / 2; ++i) {
            const double freq = dsp::binFrequencyHz(i, n, sampleRate);
            const bool keep = direction == dsp::PassBand::LowPass
                                  ? freq <= cutoff
                                  : freq >= cutoff;
            if (!keep) {
                re[i] = 0;
                im[i] = 0;
                if (i != 0 && i != n / 2) {
                    re[n - i] = 0;
                    im[n - i] = 0;
                }
            }
        }

        plan->inverse(re.data(), im.data());
        auto &filtered = out.frameStorage();
        filtered.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            filtered[i] = dsp::fromQ15(re[i]);
        return true;
    }

  private:
    dsp::PassBand direction;
    double cutoff;
    double sampleRate;
    std::shared_ptr<const dsp::Q15FftPlan> plan;
    std::vector<dsp::Q15> re;
    std::vector<dsp::Q15> im;
};

/** vectorMagnitude with a 64-bit integer sum of Q15 squares. */
class Q15VectorMagnitudeKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        std::int64_t sum = 0;
        for (const Value *v : inputs) {
            const std::int32_t q = dsp::toQ15(v->scalar());
            sum += static_cast<std::int64_t>(q) * q;
        }
        out = Value(std::sqrt(static_cast<double>(sum)) / dsp::kQ15One);
        return true;
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        if (fire != nullptr) {
            Kernel::invokeBlock(inputs, fire, count, out);
            return;
        }
        for (std::size_t w = 0; w < count; ++w) {
            std::int64_t sum = 0;
            for (const BlockInput &in : inputs) {
                const std::int32_t q = dsp::toQ15(in.scalars[w]);
                sum += static_cast<std::int64_t>(q) * q;
            }
            out.scalars[w] =
                std::sqrt(static_cast<double>(sum)) / dsp::kQ15One;
            out.states[w] = kWaveEmitted;
        }
    }
};

/**
 * Frame reducers over quantized samples: integer accumulators
 * (16x16->64 MACs), one floating divide/sqrt at the end — the
 * firmware's shape for statistics on Q15 buffers.
 */
class Q15ReducerKernel : public Kernel
{
  public:
    enum class Op { Zcr, Mean, Variance, Stddev, Min, Max, Rms, Range };

    explicit Q15ReducerKernel(Op op) : op(op) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(reduce(inputs[0]->frame()));
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        const BlockInput &in = inputs[0];
        for (std::size_t w = 0; w < count; ++w) {
            const BlockFire decision =
                fire ? fire[w] : BlockFire::RunAll;
            if (decision == BlockFire::SkipIdle)
                out.states[w] = kWaveIdle;
            else if (decision == BlockFire::SkipBlocked)
                out.states[w] = kWaveBlocked;
            else {
                out.scalars[w] = reduce(in.boxed[w].frame());
                out.states[w] = kWaveEmitted;
            }
        }
    }

  private:
    double
    reduce(const std::vector<double> &frame)
    {
        const std::size_t n = frame.size();
        scratch.resize(n);
        dsp::quantizeQ15(frame.data(), scratch.data(), n);
        switch (op) {
          case Op::Zcr: {
            if (n < 2)
                return 0.0;
            std::size_t crossings = 0;
            for (std::size_t i = 1; i < n; ++i)
                if ((scratch[i - 1] < 0) != (scratch[i] < 0))
                    ++crossings;
            return static_cast<double>(crossings) /
                   static_cast<double>(n - 1);
          }
          case Op::Mean: {
            if (n == 0)
                return 0.0;
            std::int64_t sum = 0;
            for (dsp::Q15 q : scratch)
                sum += q;
            return static_cast<double>(sum) /
                   (static_cast<double>(n) * dsp::kQ15One);
          }
          case Op::Variance:
          case Op::Stddev: {
            if (n < 2)
                return 0.0;
            std::int64_t sum = 0;
            std::int64_t sum_sq = 0;
            for (dsp::Q15 q : scratch) {
                sum += q;
                sum_sq += static_cast<std::int64_t>(q) * q;
            }
            // Population variance from the exact integer moments:
            // (E[x^2] - E[x]^2) in Q15^2 counts.
            const double nn = static_cast<double>(n);
            const double var =
                (static_cast<double>(sum_sq) -
                 static_cast<double>(sum) *
                     static_cast<double>(sum) / nn) /
                (nn * dsp::kQ15One * dsp::kQ15One);
            return op == Op::Variance ? std::max(var, 0.0)
                                      : std::sqrt(std::max(var, 0.0));
          }
          case Op::Min:
          case Op::Max:
          case Op::Range: {
            if (n == 0)
                throw ConfigError("reducer on empty frame");
            dsp::Q15 lo = scratch[0];
            dsp::Q15 hi = scratch[0];
            for (dsp::Q15 q : scratch) {
                lo = std::min(lo, q);
                hi = std::max(hi, q);
            }
            if (op == Op::Min)
                return dsp::fromQ15(lo);
            if (op == Op::Max)
                return dsp::fromQ15(hi);
            return dsp::fromQ15(hi) - dsp::fromQ15(lo);
          }
          case Op::Rms: {
            if (n == 0)
                return 0.0;
            std::int64_t sum_sq = 0;
            for (dsp::Q15 q : scratch)
                sum_sq += static_cast<std::int64_t>(q) * q;
            return std::sqrt(static_cast<double>(sum_sq) /
                             static_cast<double>(n)) /
                   dsp::kQ15One;
          }
        }
        return 0.0;
    }

    Op op;
    std::vector<dsp::Q15> scratch;
};

/** goertzel / goertzelRel with the widened fixed-point recurrence. */
class Q15GoertzelKernel : public Kernel
{
  public:
    Q15GoertzelKernel(double target_hz, double base_rate_hz,
                      bool relative)
        : targetHz(target_hz), baseRateHz(base_rate_hz),
          relative(relative)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        const auto &frame = inputs[0]->frame();
        scratch.resize(frame.size());
        dsp::quantizeQ15(frame.data(), scratch.data(), frame.size());
        return Value(relative
                         ? dsp::q15GoertzelRelative(
                               scratch.data(), scratch.size(),
                               targetHz, baseRateHz)
                         : dsp::q15GoertzelMagnitude(
                               scratch.data(), scratch.size(),
                               targetHz, baseRateHz));
    }

  private:
    double targetHz;
    double baseRateHz;
    bool relative;
    std::vector<dsp::Q15> scratch;
};

/**
 * Threshold in Q15 mode. Limits within the Q15 range compare as
 * quantized integers (dsp::Q15Threshold) and forward the quantized
 * value; limits outside ±1 — frequencies in Hz, peak-to-mean ratios —
 * live in feature units the 16-bit firmware compares in a wider
 * format, so those fall back to the exact double comparison.
 */
class Q15ThresholdKernel : public Kernel
{
  public:
    explicit Q15ThresholdKernel(dsp::Threshold threshold)
        : ref(threshold),
          q15(threshold.kind(), threshold.lowLimit(),
              threshold.highLimit()),
          useQ15(fitsQ15(threshold.lowLimit()) &&
                 fitsQ15(threshold.highLimit()))
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        double y;
        if (!admit(inputs[0]->scalar(), y))
            return std::nullopt;
        return Value(y);
    }

    void invokeBlock(const std::vector<BlockInput> &inputs,
                     const BlockFire *fire, std::size_t count,
                     const BlockOutput &out) override
    {
        runScalarBlock(inputs[0], fire, count, out, kWaveBlocked,
                       [this](double x, double &y) {
                           return admit(x, y);
                       });
    }

    bool conditional() const override { return true; }

  private:
    static bool
    fitsQ15(double v)
    {
        return v >= -1.0 && v < 1.0;
    }

    bool
    admit(double x, double &y)
    {
        if (useQ15) {
            const dsp::Q15 q = dsp::toQ15(x);
            if (!q15.admits(q))
                return false;
            y = dsp::fromQ15(q);
            return true;
        }
        if (!ref.admits(x))
            return false;
        y = x;
        return true;
    }

    dsp::Threshold ref;
    dsp::Q15Threshold q15;
    bool useQ15;
};

} // namespace

namespace {

/**
 * Q15 variant dispatch; nullptr for algorithms shared between modes
 * (logic, peaks, spectral features — their inputs are already on the
 * Q15 grid or in compensated feature units, so the float kernel is
 * the fixed-point behavior).
 */
std::unique_ptr<Kernel>
makeQ15Kernel(const std::string &name, const std::vector<double> &p,
              const il::NodeStream &in)
{
    if (name == "movingAvg")
        return std::make_unique<Q15MovingAvgKernel>(
            static_cast<std::size_t>(p[0]));
    if (name == "expMovingAvg")
        return std::make_unique<Q15ExpMovingAvgKernel>(p[0]);
    if (name == "window") {
        const auto size = static_cast<std::size_t>(p[0]);
        const bool hamming = p.size() >= 2 && p[1] != 0.0;
        const auto hop =
            p.size() >= 3 ? static_cast<std::size_t>(p[2]) : size;
        return std::make_unique<Q15WindowKernel>(size, hamming, hop);
    }
    if (name == "fft")
        return std::make_unique<Q15FftKernel>();
    if (name == "ifft")
        return std::make_unique<Q15IfftKernel>();
    if (name == "spectrum")
        return std::make_unique<Q15SpectrumKernel>();
    if (name == "lowPass")
        return std::make_unique<Q15BlockFilterKernel>(
            dsp::PassBand::LowPass, p[0], in.baseRateHz);
    if (name == "highPass")
        return std::make_unique<Q15BlockFilterKernel>(
            dsp::PassBand::HighPass, p[0], in.baseRateHz);
    if (name == "goertzel")
        return std::make_unique<Q15GoertzelKernel>(p[0], in.baseRateHz,
                                                   false);
    if (name == "goertzelRel")
        return std::make_unique<Q15GoertzelKernel>(p[0], in.baseRateHz,
                                                   true);
    if (name == "vectorMagnitude")
        return std::make_unique<Q15VectorMagnitudeKernel>();
    if (name == "zcr")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Zcr);
    if (name == "mean")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Mean);
    if (name == "variance")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Variance);
    if (name == "stddev")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Stddev);
    if (name == "min")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Min);
    if (name == "max")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Max);
    if (name == "rms")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Rms);
    if (name == "range")
        return std::make_unique<Q15ReducerKernel>(
            Q15ReducerKernel::Op::Range);
    if (name == "minThreshold")
        return std::make_unique<Q15ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Min, p[0]));
    if (name == "maxThreshold")
        return std::make_unique<Q15ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Max, p[0]));
    if (name == "bandThreshold")
        return std::make_unique<Q15ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Band, p[0], p[1]));
    if (name == "outsideBandThreshold")
        return std::make_unique<Q15ThresholdKernel>(dsp::Threshold(
            dsp::ThresholdKind::OutsideBand, p[0], p[1]));
    return nullptr;
}

} // namespace

std::unique_ptr<Kernel>
makeKernel(const il::Statement &stmt,
           const std::vector<il::NodeStream> &inputStreams,
           KernelMode mode)
{
    return makeKernel(stmt.algorithm, stmt.params, inputStreams, mode);
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name, const std::vector<double> &p,
           const std::vector<il::NodeStream> &inputStreams,
           KernelMode mode)
{
    const auto &in = inputStreams.front();

    if (mode == KernelMode::FixedQ15)
        if (auto kernel = makeQ15Kernel(name, p, in))
            return kernel;

    if (name == "movingAvg")
        return std::make_unique<MovingAvgKernel>(
            static_cast<std::size_t>(p[0]));
    if (name == "expMovingAvg")
        return std::make_unique<ExpMovingAvgKernel>(p[0]);
    if (name == "window") {
        const auto size = static_cast<std::size_t>(p[0]);
        const bool hamming = p.size() >= 2 && p[1] != 0.0;
        const auto hop =
            p.size() >= 3 ? static_cast<std::size_t>(p[2]) : size;
        return std::make_unique<WindowKernel>(size, hamming, hop);
    }
    if (name == "fft")
        return std::make_unique<FftKernel>();
    if (name == "ifft")
        return std::make_unique<IfftKernel>();
    if (name == "spectrum")
        return std::make_unique<SpectrumKernel>();
    if (name == "lowPass")
        return std::make_unique<BlockFilterKernel>(
            dsp::PassBand::LowPass, p[0], in.baseRateHz);
    if (name == "highPass")
        return std::make_unique<BlockFilterKernel>(
            dsp::PassBand::HighPass, p[0], in.baseRateHz);
    if (name == "goertzel")
        return std::make_unique<GoertzelKernel>(p[0], in.baseRateHz,
                                                false);
    if (name == "goertzelRel")
        return std::make_unique<GoertzelKernel>(p[0], in.baseRateHz,
                                                true);
    if (name == "vectorMagnitude")
        return std::make_unique<VectorMagnitudeKernel>();
    if (name == "zcr")
        return std::make_unique<ReducerKernel>(dsp::zeroCrossingRate);
    if (name == "mean")
        return std::make_unique<ReducerKernel>(dsp::mean);
    if (name == "variance")
        return std::make_unique<ReducerKernel>(dsp::variance);
    if (name == "stddev")
        return std::make_unique<ReducerKernel>(dsp::stddev);
    if (name == "min")
        return std::make_unique<ReducerKernel>(dsp::minimum);
    if (name == "max")
        return std::make_unique<ReducerKernel>(dsp::maximum);
    if (name == "rms")
        return std::make_unique<ReducerKernel>(dsp::rootMeanSquare);
    if (name == "range")
        return std::make_unique<ReducerKernel>(dsp::range);
    if (name == "dominantFreqHz")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::FrequencyHz, in.fftSize,
            in.baseRateHz);
    if (name == "dominantFreqMag")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::Magnitude, in.fftSize,
            in.baseRateHz);
    if (name == "peakToMeanRatio")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::PeakToMeanRatio, in.fftSize,
            in.baseRateHz);
    if (name == "minThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Min, p[0]));
    if (name == "maxThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Max, p[0]));
    if (name == "bandThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Band, p[0], p[1]));
    if (name == "outsideBandThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::OutsideBand, p[0], p[1]));
    if (name == "localMaxima" || name == "localMinima") {
        const auto refractory =
            p.size() >= 3 ? static_cast<std::size_t>(p[2]) : 0;
        return std::make_unique<PeakKernel>(
            name == "localMaxima" ? dsp::PeakPolarity::Maxima
                                  : dsp::PeakPolarity::Minima,
            p[0], p[1], refractory);
    }
    if (name == "and")
        return std::make_unique<AndKernel>();
    if (name == "or")
        return std::make_unique<OrKernel>();
    if (name == "consecutive")
        return std::make_unique<ConsecutiveKernel>(
            static_cast<std::size_t>(p[0]));

    throw ConfigError("no kernel registered for algorithm '" + name +
                      "'");
}

} // namespace sidewinder::hub
