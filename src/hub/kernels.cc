/**
 * @file
 * Kernel implementations for the standardized algorithm set. Every
 * entry of il::standardAlgorithms() has a kernel here; a static
 * registry test asserts the two stay in sync.
 */

#include "hub/kernel.h"

#include <cmath>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/filters.h"
#include "dsp/goertzel.h"
#include "dsp/peaks.h"
#include "dsp/threshold.h"
#include "dsp/window.h"
#include "support/error.h"

namespace sidewinder::hub {

namespace {

/** movingAvg(n): scalar noise reduction. */
class MovingAvgKernel : public Kernel
{
  public:
    explicit MovingAvgKernel(std::size_t n) : filter(n) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = filter.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    void reset() override { filter.reset(); }

  private:
    dsp::MovingAverage filter;
};

/** expMovingAvg(alpha). */
class ExpMovingAvgKernel : public Kernel
{
  public:
    explicit ExpMovingAvgKernel(double alpha) : filter(alpha) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(filter.push(inputs[0]->scalar()));
    }

    void reset() override { filter.reset(); }

  private:
    dsp::ExponentialMovingAverage filter;
};

/** window(size[, hamming[, hop]]): scalar stream -> frames. */
class WindowKernel : public Kernel
{
  public:
    WindowKernel(std::size_t size, bool hamming, std::size_t hop)
        : partitioner(size,
                      hamming ? dsp::WindowType::Hamming
                              : dsp::WindowType::Rectangular,
                      hop)
    {}

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        return partitioner.pushInto(inputs[0]->scalar(),
                                    out.frameStorage());
    }

    void reset() override { partitioner.reset(); }

  private:
    dsp::WindowPartitioner partitioner;
};

/** fft: real frame -> complex spectrum (planned real transform). */
class FftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &frame = inputs[0]->frame();
        if (!plan || plan->size() != frame.size())
            plan = dsp::FftPlan::forSize(frame.size());
        plan->forwardReal(frame, out.complexFrameStorage());
        return true;
    }

  private:
    std::shared_ptr<const dsp::FftPlan> plan;
};

/** ifft: complex spectrum -> real frame. */
class IfftKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        if (!plan || plan->size() != bins.size())
            plan = dsp::FftPlan::forSize(bins.size());
        // General spectra need not be conjugate-symmetric, so run the
        // full inverse on a per-node scratch copy and keep the real
        // parts (same semantics as dsp::ifftToReal).
        scratch.assign(bins.begin(), bins.end());
        plan->inverse(scratch.data());
        auto &frame = out.frameStorage();
        frame.resize(scratch.size());
        for (std::size_t i = 0; i < scratch.size(); ++i)
            frame[i] = scratch[i].real();
        return true;
    }

  private:
    std::shared_ptr<const dsp::FftPlan> plan;
    std::vector<dsp::Complex> scratch;
};

/** spectrum: complex bins -> magnitudes of the non-redundant half. */
class SpectrumKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        const auto &bins = inputs[0]->complexFrame();
        const std::size_t half = bins.size() / 2;
        auto &mags = out.frameStorage();
        mags.clear();
        mags.reserve(half + 1);
        for (std::size_t i = 0; i <= half && i < bins.size(); ++i)
            mags.push_back(std::abs(bins[i]));
        return true;
    }
};

/** lowPass / highPass (FFT block filter on frames). */
class BlockFilterKernel : public Kernel
{
  public:
    BlockFilterKernel(dsp::PassBand band, double cutoff_hz,
                      double sample_rate_hz)
        : filter(band, cutoff_hz, sample_rate_hz)
    {}

    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        filter.applyInto(inputs[0]->frame(), out.frameStorage());
        return true;
    }

  private:
    dsp::FftBlockFilter filter;
};

/** vectorMagnitude over 1..8 scalar branches. */
class VectorMagnitudeKernel : public Kernel
{
  public:
    bool
    invokeInto(const std::vector<const Value *> &inputs,
               Value &out) override
    {
        // Inline sqrt-of-squares (same math as dsp::vectorMagnitude)
        // to avoid building a component vector per sample.
        double sum = 0.0;
        for (const Value *v : inputs)
            sum += v->scalar() * v->scalar();
        out = Value(std::sqrt(sum));
        return true;
    }
};

/** Frame -> scalar reducers (zcr, statistics). */
class ReducerKernel : public Kernel
{
  public:
    using Fn = double (*)(const std::vector<double> &);

    explicit ReducerKernel(Fn fn) : fn(fn) {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(fn(inputs[0]->frame()));
    }

  private:
    Fn fn;
};

/** Spectral features over a magnitude-spectrum frame. */
class SpectralFeatureKernel : public Kernel
{
  public:
    enum class Feature { FrequencyHz, Magnitude, PeakToMeanRatio };

    SpectralFeatureKernel(Feature feature, std::size_t fft_size,
                          double base_rate_hz)
        : feature(feature), fftSize(fft_size), baseRateHz(base_rate_hz)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        const auto dom = dsp::dominantFrequency(inputs[0]->frame());
        switch (feature) {
          case Feature::FrequencyHz:
            return Value(
                dsp::binFrequencyHz(dom.bin, fftSize, baseRateHz));
          case Feature::Magnitude:
            return Value(dom.magnitude);
          case Feature::PeakToMeanRatio:
            return Value(dom.peakToMeanRatio());
        }
        return std::nullopt;
    }

  private:
    Feature feature;
    std::size_t fftSize;
    double baseRateHz;
};

/** Single-bin spectral probe (Goertzel). */
class GoertzelKernel : public Kernel
{
  public:
    GoertzelKernel(double target_hz, double base_rate_hz,
                   bool relative)
        : targetHz(target_hz), baseRateHz(base_rate_hz),
          relative(relative)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        const auto &frame = inputs[0]->frame();
        return Value(relative
                         ? dsp::goertzelRelative(frame, targetHz,
                                                 baseRateHz)
                         : dsp::goertzelMagnitude(frame, targetHz,
                                                  baseRateHz));
    }

  private:
    double targetHz;
    double baseRateHz;
    bool relative;
};

/** Admission control: forwards only admitted values. */
class ThresholdKernel : public Kernel
{
  public:
    explicit ThresholdKernel(dsp::Threshold threshold)
        : threshold(threshold)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = threshold.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    bool conditional() const override { return true; }

  private:
    dsp::Threshold threshold;
};

/** localMaxima / localMinima streaming peak detection. */
class PeakKernel : public Kernel
{
  public:
    PeakKernel(dsp::PeakPolarity polarity, double low, double high,
               std::size_t refractory)
        : detector(polarity, low, high, refractory)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        auto out = detector.push(inputs[0]->scalar());
        if (!out)
            return std::nullopt;
        return Value(*out);
    }

    void reset() override { detector.reset(); }

  private:
    dsp::PeakDetector detector;
};

/** and: fires only when all (conditional) branches fired this wave. */
class AndKernel : public Kernel
{
  public:
    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        return Value(inputs[0]->scalar());
    }
};

/** or: fires when any branch fired; forwards the first present one. */
class OrKernel : public Kernel
{
  public:
    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        for (const Value *v : inputs)
            if (v != nullptr)
                return Value(v->scalar());
        return std::nullopt;
    }

    FiringPolicy firingPolicy() const override
    {
        return FiringPolicy::AnyInput;
    }
};

/**
 * consecutive(m): fires when its input has produced a result in m
 * consecutive upstream firings; a miss resets the count. While the
 * condition stays true it re-fires at every further multiple of m, so
 * a sustained event (a long siren, a whole song) keeps re-asserting
 * the wake-up instead of firing once and going silent — the main CPU
 * stays awake for as long as the event lasts.
 */
class ConsecutiveKernel : public Kernel
{
  public:
    explicit ConsecutiveKernel(std::size_t required)
        : required(required)
    {}

    std::optional<Value>
    invoke(const std::vector<const Value *> &inputs) override
    {
        if (inputs[0] == nullptr) {
            count = 0;
            return std::nullopt;
        }
        ++count;
        if (count >= required && count % required == 0)
            return Value(inputs[0]->scalar());
        return std::nullopt;
    }

    void reset() override { count = 0; }

    FiringPolicy firingPolicy() const override
    {
        return FiringPolicy::ObserveBlocks;
    }

    bool conditional() const override { return true; }

  private:
    std::size_t required;
    std::size_t count = 0;
};

} // namespace

std::unique_ptr<Kernel>
makeKernel(const il::Statement &stmt,
           const std::vector<il::NodeStream> &inputStreams)
{
    return makeKernel(stmt.algorithm, stmt.params, inputStreams);
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name, const std::vector<double> &p,
           const std::vector<il::NodeStream> &inputStreams)
{
    const auto &in = inputStreams.front();

    if (name == "movingAvg")
        return std::make_unique<MovingAvgKernel>(
            static_cast<std::size_t>(p[0]));
    if (name == "expMovingAvg")
        return std::make_unique<ExpMovingAvgKernel>(p[0]);
    if (name == "window") {
        const auto size = static_cast<std::size_t>(p[0]);
        const bool hamming = p.size() >= 2 && p[1] != 0.0;
        const auto hop =
            p.size() >= 3 ? static_cast<std::size_t>(p[2]) : size;
        return std::make_unique<WindowKernel>(size, hamming, hop);
    }
    if (name == "fft")
        return std::make_unique<FftKernel>();
    if (name == "ifft")
        return std::make_unique<IfftKernel>();
    if (name == "spectrum")
        return std::make_unique<SpectrumKernel>();
    if (name == "lowPass")
        return std::make_unique<BlockFilterKernel>(
            dsp::PassBand::LowPass, p[0], in.baseRateHz);
    if (name == "highPass")
        return std::make_unique<BlockFilterKernel>(
            dsp::PassBand::HighPass, p[0], in.baseRateHz);
    if (name == "goertzel")
        return std::make_unique<GoertzelKernel>(p[0], in.baseRateHz,
                                                false);
    if (name == "goertzelRel")
        return std::make_unique<GoertzelKernel>(p[0], in.baseRateHz,
                                                true);
    if (name == "vectorMagnitude")
        return std::make_unique<VectorMagnitudeKernel>();
    if (name == "zcr")
        return std::make_unique<ReducerKernel>(dsp::zeroCrossingRate);
    if (name == "mean")
        return std::make_unique<ReducerKernel>(dsp::mean);
    if (name == "variance")
        return std::make_unique<ReducerKernel>(dsp::variance);
    if (name == "stddev")
        return std::make_unique<ReducerKernel>(dsp::stddev);
    if (name == "min")
        return std::make_unique<ReducerKernel>(dsp::minimum);
    if (name == "max")
        return std::make_unique<ReducerKernel>(dsp::maximum);
    if (name == "rms")
        return std::make_unique<ReducerKernel>(dsp::rootMeanSquare);
    if (name == "range")
        return std::make_unique<ReducerKernel>(dsp::range);
    if (name == "dominantFreqHz")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::FrequencyHz, in.fftSize,
            in.baseRateHz);
    if (name == "dominantFreqMag")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::Magnitude, in.fftSize,
            in.baseRateHz);
    if (name == "peakToMeanRatio")
        return std::make_unique<SpectralFeatureKernel>(
            SpectralFeatureKernel::Feature::PeakToMeanRatio, in.fftSize,
            in.baseRateHz);
    if (name == "minThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Min, p[0]));
    if (name == "maxThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Max, p[0]));
    if (name == "bandThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::Band, p[0], p[1]));
    if (name == "outsideBandThreshold")
        return std::make_unique<ThresholdKernel>(
            dsp::Threshold(dsp::ThresholdKind::OutsideBand, p[0], p[1]));
    if (name == "localMaxima" || name == "localMinima") {
        const auto refractory =
            p.size() >= 3 ? static_cast<std::size_t>(p[2]) : 0;
        return std::make_unique<PeakKernel>(
            name == "localMaxima" ? dsp::PeakPolarity::Maxima
                                  : dsp::PeakPolarity::Minima,
            p[0], p[1], refractory);
    }
    if (name == "and")
        return std::make_unique<AndKernel>();
    if (name == "or")
        return std::make_unique<OrKernel>();
    if (name == "consecutive")
        return std::make_unique<ConsecutiveKernel>(
            static_cast<std::size_t>(p[0]));

    throw ConfigError("no kernel registered for algorithm '" + name +
                      "'");
}

} // namespace sidewinder::hub
