#include "hub/mcu.h"

#include <sstream>

#include "hub/placer.h"
#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::hub {

McuModel
msp430()
{
    // 16 KB-class SRAM (MSP430F5438 family): enough for
    // accelerometer-rate windows, too small for audio FFT state.
    return McuModel{"MSP430", 3.6, 50'000.0, 16 * 1024};
}

McuModel
lm4f120()
{
    // 32 KB SRAM on the LM4F120H5QR Cortex-M4.
    return McuModel{"LM4F120", 49.4, 10'000'000.0, 32 * 1024};
}

const std::vector<McuModel> &
availableMcus()
{
    static const std::vector<McuModel> mcus = {msp430(), lm4f120()};
    return mcus;
}

bool
canRunInRealTime(const McuModel &mcu, double cycles_per_second)
{
    return cycles_per_second <= mcu.cyclesPerSecond;
}

bool
fitsBudget(const McuModel &mcu, const il::ProgramCost &cost)
{
    if (!canRunInRealTime(mcu, cost.cyclesPerSecond))
        return false;
    if (mcu.ramBytes != 0 && cost.ramBytes > mcu.ramBytes)
        return false;
    return mcu.wakeBudgetHz == 0.0 ||
           cost.wakeRateBoundHz <= mcu.wakeBudgetHz;
}

McuModel
selectMcuForCost(const il::ProgramCost &cost)
{
    for (const auto &mcu : availableMcus())
        if (fitsBudget(mcu, cost))
            return mcu;
    std::ostringstream msg;
    msg << "no available hub microcontroller fits the condition ("
        << cost.cyclesPerSecond << " cycle units/s, " << cost.ramBytes
        << " bytes of state)";
    throw CapabilityError(msg.str());
}

McuModel
selectMcu(const il::Program &program,
          const std::vector<il::ChannelInfo> &channels)
{
    // Cost the lowered plan — the deduplicated node set the hub
    // actually instantiates. lower() re-validates, surfacing invalid
    // programs with validate()'s exact error.
    return selectMcuForPlan(il::lower(program, channels));
}

McuModel
selectMcuForPlan(const il::ExecutionPlan &plan)
{
    // Single-executor placement over the MCU ladder: with one
    // condition and no congestion, the negotiated placer's
    // minimum-power choice is exactly the cheapest-first ladder walk
    // this function used to hand-roll.
    std::vector<ExecutorModel> ladder;
    for (const auto &mcu : availableMcus())
        ladder.push_back(mcuExecutor(mcu));
    const PlacementDecision home = placeCondition(plan, ladder);
    if (home.placed())
        return availableMcus()[static_cast<std::size_t>(
            home.executorIndex)];
    // Re-derive selectMcuForCost's exact error for callers that pin
    // its message.
    selectMcuForCost(plan.cost());
    throw InternalError("placer rejected a plan selectMcuForCost fits");
}

std::vector<il::Diagnostic>
admissionDiagnostics(const il::ProgramCost &cost)
{
    std::vector<il::Diagnostic> diagnostics;
    const auto &mcus = availableMcus();
    if (mcus.empty())
        return diagnostics;

    for (const auto &mcu : mcus) {
        if (!fitsBudget(mcu, cost))
            continue;
        if (mcu.name != mcus.front().name) {
            il::Diagnostic note;
            note.code = il::SW201_MCU_ASSIGNMENT;
            note.severity = il::Severity::Note;
            note.line = 1;
            note.column = 1;
            std::ostringstream msg;
            msg << "condition needs the " << mcu.name << " ("
                << cost.cyclesPerSecond << " cycle units/s, "
                << cost.ramBytes << " bytes; " << mcus.front().name
                << " sustains " << mcus.front().cyclesPerSecond
                << " cycle units/s with " << mcus.front().ramBytes
                << " bytes)";
            note.message = msg.str();
            note.hint = "expect " + std::to_string(mcu.activePowerMw) +
                        " mW while awake instead of " +
                        std::to_string(mcus.front().activePowerMw) +
                        " mW";
            diagnostics.push_back(std::move(note));
        }
        return diagnostics;
    }

    il::Diagnostic error;
    error.code = il::SW017_ADMISSION;
    error.severity = il::Severity::Error;
    error.line = 1;
    error.column = 1;
    std::ostringstream msg;
    msg << "condition fits no available hub microcontroller ("
        << cost.cyclesPerSecond << " cycle units/s, " << cost.ramBytes
        << " bytes of state";
    if (cost.wakeRateBoundHz > 0.0)
        msg << ", up to " << cost.wakeRateBoundHz << " wake-ups/s";
    msg << "; largest budget is " << mcus.back().cyclesPerSecond
        << " cycle units/s with " << mcus.back().ramBytes << " bytes)";
    error.message = msg.str();
    error.hint = "reduce window sizes or firing rates, or split the "
                 "condition; a tighter proven wake bound "
                 "(swlint --ranges, SW312) may also fit a wake budget "
                 "the syntactic bound blows";
    diagnostics.push_back(std::move(error));
    return diagnostics;
}

} // namespace sidewinder::hub
