#include "hub/mcu.h"

#include "hub/engine.h"
#include "support/error.h"

namespace sidewinder::hub {

McuModel
msp430()
{
    return McuModel{"MSP430", 3.6, 50'000.0};
}

McuModel
lm4f120()
{
    return McuModel{"LM4F120", 49.4, 10'000'000.0};
}

const std::vector<McuModel> &
availableMcus()
{
    static const std::vector<McuModel> mcus = {msp430(), lm4f120()};
    return mcus;
}

bool
canRunInRealTime(const McuModel &mcu, double cycles_per_second)
{
    return cycles_per_second <= mcu.cyclesPerSecond;
}

McuModel
selectMcuForLoad(double cycles_per_second)
{
    for (const auto &mcu : availableMcus())
        if (canRunInRealTime(mcu, cycles_per_second))
            return mcu;
    throw CapabilityError(
        "no available hub microcontroller sustains " +
        std::to_string(cycles_per_second) + " cycle units/s");
}

McuModel
selectMcu(const il::Program &program,
          const std::vector<il::ChannelInfo> &channels)
{
    return selectMcuForLoad(
        Engine::estimateProgramCycles(program, channels));
}

} // namespace sidewinder::hub
