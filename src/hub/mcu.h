/**
 * @file
 * Microcontroller capability and power model for the sensor hub.
 *
 * The prototype evaluated two hub microcontrollers (Section 4 of the
 * paper): a TI MSP430 "consuming only 3.6 mW while awake" but which
 * "was unable to run the FFT-based low-pass filter in real-time", and
 * a TI LM4F120 (Cortex-M4) which "can run all our filters in real
 * time" but consumes "an average of 49.4 mW while awake".
 *
 * Compute demand is expressed in the abstract cycle units of
 * il::AlgorithmInfo::cyclesPerUnit. Budgets are calibrated so that
 * accelerometer pipelines (50 Hz) fit on the MSP430 while audio-rate
 * FFT pipelines (the siren detector) require the LM4F120 — matching
 * the MCU assignment the paper uses for Table 2.
 */

#ifndef SIDEWINDER_HUB_MCU_H
#define SIDEWINDER_HUB_MCU_H

#include <cstddef>
#include <string>
#include <vector>

#include "il/analyze.h"
#include "il/ast.h"
#include "il/plan.h"
#include "il/validate.h"

namespace sidewinder::hub {

/** Static description of a hub microcontroller. */
struct McuModel
{
    /** Part name, e.g. "MSP430". */
    std::string name;
    /** Average power while awake and processing, milliwatts. */
    double activePowerMw = 0.0;
    /** Sustained compute budget in abstract cycle units per second. */
    double cyclesPerSecond = 0.0;
    /**
     * On-chip SRAM available to wake-up condition state, bytes;
     * 0 means no RAM budget is modeled (admission checks compute
     * only). Checked against il::ProgramCost::ramBytes.
     */
    std::size_t ramBytes = 0;
    /**
     * Sustained wake-up interrupts per second the application
     * processor tolerates from this hub; 0 means no wake budget is
     * modeled. Checked against il::ProgramCost::wakeRateBoundHz —
     * callers with a range-analysis proof (il::analyzeRanges) may
     * substitute the tighter proven bound before admission, which is
     * how provably quiet conditions fit budgets their syntactic
     * bound would blow.
     */
    double wakeBudgetHz = 0.0;
};

/** The TI MSP430 of the prototype: 3.6 mW, small compute budget. */
McuModel msp430();

/** The TI LM4F120 (Cortex-M4): 49.4 mW, large compute budget. */
McuModel lm4f120();

/** All hub MCUs known to the platform, cheapest first. */
const std::vector<McuModel> &availableMcus();

/** True when @p mcu sustains @p cycles_per_second in real time. */
bool canRunInRealTime(const McuModel &mcu, double cycles_per_second);

/**
 * True when @p mcu satisfies both budgets of @p cost: sustained
 * compute and (when the model declares one) RAM.
 */
bool fitsBudget(const McuModel &mcu, const il::ProgramCost &cost);

/**
 * Pick the lowest-power MCU able to run @p program on @p channels in
 * real time ("Sizing", Section 3.8).
 *
 * The verdict comes from the static analyzer's cost model — compute
 * *and* RAM — applied to the deduplicated program the hub actually
 * instantiates (il::optimize(), matching what the sensor manager
 * ships and what the engine hash-conses at install time).
 *
 * @throws ParseError when the program is invalid.
 * @throws CapabilityError when no available MCU suffices.
 */
McuModel selectMcu(const il::Program &program,
                   const std::vector<il::ChannelInfo> &channels);

/**
 * As selectMcu, for an already-lowered plan. Implemented as
 * single-executor placement over the MCU ladder (hub/placer.h) —
 * selectMcu is a thin wrapper over the fleet placer restricted to
 * microcontrollers.
 * @throws CapabilityError when no available MCU suffices.
 */
McuModel selectMcuForPlan(const il::ExecutionPlan &plan);

/**
 * Lowest-power MCU whose compute, RAM, *and* wake budgets cover
 * @p cost (the cycles-only selectMcuForLoad shortcut is gone — no
 * admission decision bypasses the full budget set).
 * @throws CapabilityError when no available MCU suffices.
 */
McuModel selectMcuForCost(const il::ProgramCost &cost);

/**
 * Admission-control diagnostics for @p cost against the platform's
 * MCU fleet: SW017 (error) when no available MCU can run the program,
 * SW201 (note) when the program needs more than the cheapest MCU.
 * Empty when the cheapest MCU suffices.
 */
std::vector<il::Diagnostic> admissionDiagnostics(
    const il::ProgramCost &cost);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_MCU_H
