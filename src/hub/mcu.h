/**
 * @file
 * Microcontroller capability and power model for the sensor hub.
 *
 * The prototype evaluated two hub microcontrollers (Section 4 of the
 * paper): a TI MSP430 "consuming only 3.6 mW while awake" but which
 * "was unable to run the FFT-based low-pass filter in real-time", and
 * a TI LM4F120 (Cortex-M4) which "can run all our filters in real
 * time" but consumes "an average of 49.4 mW while awake".
 *
 * Compute demand is expressed in the abstract cycle units of
 * il::AlgorithmInfo::cyclesPerUnit. Budgets are calibrated so that
 * accelerometer pipelines (50 Hz) fit on the MSP430 while audio-rate
 * FFT pipelines (the siren detector) require the LM4F120 — matching
 * the MCU assignment the paper uses for Table 2.
 */

#ifndef SIDEWINDER_HUB_MCU_H
#define SIDEWINDER_HUB_MCU_H

#include <string>
#include <vector>

#include "il/ast.h"
#include "il/validate.h"

namespace sidewinder::hub {

/** Static description of a hub microcontroller. */
struct McuModel
{
    /** Part name, e.g. "MSP430". */
    std::string name;
    /** Average power while awake and processing, milliwatts. */
    double activePowerMw = 0.0;
    /** Sustained compute budget in abstract cycle units per second. */
    double cyclesPerSecond = 0.0;
};

/** The TI MSP430 of the prototype: 3.6 mW, small compute budget. */
McuModel msp430();

/** The TI LM4F120 (Cortex-M4): 49.4 mW, large compute budget. */
McuModel lm4f120();

/** All hub MCUs known to the platform, cheapest first. */
const std::vector<McuModel> &availableMcus();

/** True when @p mcu sustains @p cycles_per_second in real time. */
bool canRunInRealTime(const McuModel &mcu, double cycles_per_second);

/**
 * Pick the lowest-power MCU able to run @p program on @p channels in
 * real time ("Sizing", Section 3.8).
 *
 * @throws CapabilityError when no available MCU suffices.
 */
McuModel selectMcu(const il::Program &program,
                   const std::vector<il::ChannelInfo> &channels);

/**
 * Lowest-power MCU able to sustain @p cycles_per_second.
 * @throws CapabilityError when no available MCU suffices.
 */
McuModel selectMcuForLoad(double cycles_per_second);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_MCU_H
