#include "hub/placer.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace sidewinder::hub {

namespace {

/** splitmix64 finalizer — the placer's stateless tie-break hash. */
std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Logic-cell footprint of a whole plan (one block per shared node,
 *  the same sizing rule planFpgaPlacement applies). */
std::size_t
planLogicCells(const il::ExecutionPlan &plan)
{
    std::size_t cells = 0;
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        const std::size_t input_frame =
            plan.inputCounts[i] > 0 ? plan.inputStream(i, 0).frameSize
                                    : 0;
        const std::size_t sizing_frame =
            std::max(input_frame, plan.streams[i].frameSize);
        cells += fpgaCellCost(plan.algorithms[i], sizing_frame);
    }
    return cells;
}

/** Dynamic power of a plan on a fabric: cycle-unit demand priced at
 *  the fabric's energy per unit. mW = (units/s) * nJ/unit * 1e-6. */
double
planFabricDynamicMw(const il::ExecutionPlan &plan,
                    double nanojoules_per_cycle_unit)
{
    double mw = 0.0;
    for (std::size_t i = 0; i < plan.nodeCount(); ++i)
        mw += plan.cyclesPerInvoke[i] * plan.invokeRateHz[i] *
              nanojoules_per_cycle_unit * 1e-6;
    return mw;
}

const char *
kindLabel(ExecutorKind kind)
{
    switch (kind) {
      case ExecutorKind::Mcu:
        return "mcu";
      case ExecutorKind::Fpga:
        return "fpga";
      case ExecutorKind::ApFallback:
        return "ap";
    }
    return "?";
}

std::string
wireTargetFor(const ExecutorModel &executor)
{
    return executor.kind == ExecutorKind::ApFallback
               ? std::string("ap:local")
               : "hub:" + executor.name;
}

/** Fractional overflow a demand would cause on top of a ledger:
 *  sum over modeled axes of max(0, (load + demand - cap) / cap). */
double
overflowAfter(const ExecutorModel &e, const ExecutorLedger &led,
              const PlacementDemand &d)
{
    double over = 0.0;
    if (e.cyclesPerSecond > 0.0) {
        const double load = led.cyclesPerSecond + d.cyclesPerSecond;
        if (load > e.cyclesPerSecond)
            over += (load - e.cyclesPerSecond) / e.cyclesPerSecond;
    }
    if (e.ramBytes != 0) {
        const double load =
            static_cast<double>(led.ramBytes + d.ramBytes);
        const double cap = static_cast<double>(e.ramBytes);
        if (load > cap)
            over += (load - cap) / cap;
    }
    if (e.wakeBudgetHz > 0.0) {
        const double load = led.wakeRateHz + d.wakeRateHz;
        if (load > e.wakeBudgetHz)
            over += (load - e.wakeBudgetHz) / e.wakeBudgetHz;
    }
    if (e.logicCells != 0) {
        const double load =
            static_cast<double>(led.logicCells + d.logicCells);
        const double cap = static_cast<double>(e.logicCells);
        if (load > cap)
            over += (load - cap) / cap;
    }
    return over;
}

/** Overflow of the ledger as it stands. */
double
ledgerOverflow(const ExecutorModel &e, const ExecutorLedger &led)
{
    return overflowAfter(e, led, PlacementDemand{});
}

void
addDemand(ExecutorLedger &led, const PlacementDemand &d)
{
    led.cyclesPerSecond += d.cyclesPerSecond;
    led.ramBytes += d.ramBytes;
    led.wakeRateHz += d.wakeRateHz;
    led.logicCells += d.logicCells;
    led.dynamicPowerMw += d.dynamicPowerMw;
    led.conditions += 1;
}

void
removeDemand(ExecutorLedger &led, const PlacementDemand &d)
{
    led.cyclesPerSecond -= d.cyclesPerSecond;
    led.ramBytes -= d.ramBytes;
    led.wakeRateHz -= d.wakeRateHz;
    led.logicCells -= d.logicCells;
    led.dynamicPowerMw -= d.dynamicPowerMw;
    led.conditions -= 1;
}

} // namespace

ExecutorModel
mcuExecutor(const McuModel &mcu)
{
    ExecutorModel e;
    e.kind = ExecutorKind::Mcu;
    e.name = mcu.name;
    e.activePowerMw = mcu.activePowerMw;
    e.cyclesPerSecond = mcu.cyclesPerSecond;
    e.ramBytes = mcu.ramBytes;
    e.wakeBudgetHz = mcu.wakeBudgetHz;
    return e;
}

ExecutorModel
fpgaExecutor(const FpgaModel &fpga)
{
    ExecutorModel e;
    e.kind = ExecutorKind::Fpga;
    e.name = fpga.name;
    e.activePowerMw = fpga.staticPowerMw;
    e.logicCells = fpga.logicCells;
    e.nanojoulesPerCycleUnit = fpga.nanojoulesPerCycleUnit;
    return e;
}

ExecutorModel
apFallbackExecutor()
{
    ExecutorModel e;
    e.kind = ExecutorKind::ApFallback;
    e.name = "AP";
    // No hub: the AP duty-cycles to poll the sensor itself. Average
    // power from the paper's Table 1 Nexus 4 numbers — a 4 s awake
    // dwell plus one wake (384 mW x 1 s) and one sleep (341 mW x 1 s)
    // transition per minute, asleep (9.7 mW) the remaining 54 s:
    //   (4 x 323 + 384 + 341 + 54 x 9.7) / 60 = 42.3467 mW.
    e.activePowerMw = (4.0 * 323.0 + 384.0 + 341.0 + 54.0 * 9.7) / 60.0;
    return e;
}

const std::vector<ExecutorModel> &
platformExecutors()
{
    static const std::vector<ExecutorModel> executors = {
        mcuExecutor(msp430()),
        mcuExecutor(lm4f120()),
        fpgaExecutor(ice40Hub()),
        apFallbackExecutor(),
    };
    return executors;
}

std::string
executorSetSignature(const std::vector<ExecutorModel> &executors)
{
    std::ostringstream sig;
    for (const auto &e : executors)
        sig << kindLabel(e.kind) << ':' << e.name << '@'
            << e.activePowerMw << '/' << e.cyclesPerSecond << '/'
            << e.ramBytes << '/' << e.wakeBudgetHz << '/'
            << e.logicCells << '/' << e.nanojoulesPerCycleUnit << ';';
    return sig.str();
}

PlacementDemand
demandFor(const il::ExecutionPlan &plan, const ExecutorModel &executor,
          const il::ProgramCost &charged)
{
    PlacementDemand d;
    switch (executor.kind) {
      case ExecutorKind::Mcu:
        d.cyclesPerSecond = charged.cyclesPerSecond;
        d.ramBytes = charged.ramBytes;
        d.wakeRateHz = charged.wakeRateBoundHz;
        break;
      case ExecutorKind::Fpga:
        try {
            d.logicCells = planLogicCells(plan);
        } catch (const ConfigError &) {
            // An algorithm without a pre-compiled block cannot go on
            // the fabric at all.
            d.feasible = false;
            return d;
        }
        d.wakeRateHz = charged.wakeRateBoundHz;
        d.dynamicPowerMw = planFabricDynamicMw(
            plan, executor.nanojoulesPerCycleUnit);
        break;
      case ExecutorKind::ApFallback:
        // The AP runs the condition in software at full rate; its
        // cost is the duty-cycling active power, not a capacity.
        d.feasible = true;
        return d;
    }
    d.feasible = overflowAfter(executor, ExecutorLedger{}, d) == 0.0;
    return d;
}

Placer::Placer(std::vector<ExecutorModel> executors_,
               PlacerConfig config_)
    : execs(std::move(executors_)), config(config_)
{
    if (execs.empty())
        throw ConfigError("placer needs at least one executor");
}

std::size_t
Placer::addCondition(const il::ExecutionPlan &plan)
{
    return addCondition(plan, plan.cost());
}

std::size_t
Placer::addCondition(const il::ExecutionPlan &plan,
                     const il::ProgramCost &charged)
{
    std::vector<PlacementDemand> row;
    row.reserve(execs.size());
    for (const auto &e : execs)
        row.push_back(demandFor(plan, e, charged));
    demands.push_back(std::move(row));
    return demands.size() - 1;
}

void
Placer::removeLast()
{
    if (demands.empty())
        throw ConfigError("placer has no condition to remove");
    demands.pop_back();
}

void
Placer::removeAt(std::size_t slot)
{
    if (slot >= demands.size())
        throw ConfigError("placer slot out of range");
    demands.erase(demands.begin() +
                  static_cast<std::ptrdiff_t>(slot));
}

const std::vector<PlacementDemand> &
Placer::demandRow(std::size_t slot) const
{
    return demands.at(slot);
}

PlacementResult
Placer::place() const
{
    const std::size_t C = demands.size();
    const std::size_t E = execs.size();

    PlacementResult out;
    out.decisions.resize(C);
    out.ledgers.assign(E, ExecutorLedger{});
    std::vector<int> assign(C, -1);
    std::vector<double> history(E, 0.0);
    auto &led = out.ledgers;

    // Cheapest feasible home for one condition under the current
    // ledgers: base cost (activation the condition would trigger plus
    // its dynamic power) + accumulated history cost + the present
    // overflow it would cause, scaled by penalty_mw. Ties break on a
    // seeded hash, then the lower executor index — placement is a
    // pure function of (demands, executors, config).
    auto choose = [&](std::size_t c, double penalty_mw,
                      bool forbid_overflow, int banned) -> int {
        int best = -1;
        double best_cost = 0.0;
        std::uint64_t best_tie = 0;
        for (std::size_t e = 0; e < E; ++e) {
            const PlacementDemand &d = demands[c][e];
            if (!d.feasible || static_cast<int>(e) == banned)
                continue;
            const double over = overflowAfter(execs[e], led[e], d);
            if (forbid_overflow && over > 0.0)
                continue;
            const double activation =
                led[e].conditions == 0 ? execs[e].activePowerMw : 0.0;
            const double cost = activation + d.dynamicPowerMw +
                                history[e] + penalty_mw * over;
            const std::uint64_t tie = mixHash(
                config.seed ^ (c * 0x9e3779b97f4a7c15ULL) ^
                (e * 0xc2b2ae3d27d4eb4fULL));
            if (best < 0 || cost < best_cost ||
                (cost == best_cost &&
                 (tie < best_tie ||
                  (tie == best_tie && e < static_cast<std::size_t>(
                                              best))))) {
                best = static_cast<int>(e);
                best_cost = cost;
                best_tie = tie;
            }
        }
        return best;
    };

    // Initial placement: each condition takes its individually
    // cheapest home in stable order. Overflow is allowed (penalized,
    // not forbidden) — negotiation resolves it.
    for (std::size_t c = 0; c < C; ++c) {
        const int e = choose(c, config.presentPenaltyMw, false, -1);
        if (e >= 0) {
            assign[c] = e;
            addDemand(led[static_cast<std::size_t>(e)], demands[c][e]);
        }
    }

    // Negotiation: executors over capacity gain history cost, their
    // tenants are ripped up (stable order) and re-placed under a
    // present penalty that grows each round, so persistent contention
    // escalates until someone moves to a pricier-but-free home.
    for (std::size_t iter = 1; iter <= config.maxIterations; ++iter) {
        bool any_overflow = false;
        for (std::size_t e = 0; e < E; ++e) {
            const double over = ledgerOverflow(execs[e], led[e]);
            if (over > 0.0) {
                any_overflow = true;
                history[e] +=
                    config.historyIncrementMw * (1.0 + over);
            }
        }
        if (!any_overflow) {
            out.converged = true;
            out.iterations = iter - 1;
            break;
        }

        std::vector<std::size_t> ripped;
        for (std::size_t c = 0; c < C; ++c) {
            const int e = assign[c];
            if (e < 0)
                continue;
            if (ledgerOverflow(execs[static_cast<std::size_t>(e)],
                               led[static_cast<std::size_t>(e)]) >
                0.0) {
                removeDemand(led[static_cast<std::size_t>(e)],
                             demands[c][static_cast<std::size_t>(e)]);
                assign[c] = -1;
                ripped.push_back(c);
            }
        }
        const double penalty =
            config.presentPenaltyMw * (1.0 + static_cast<double>(iter));
        for (std::size_t c : ripped) {
            const int e = choose(c, penalty, false, -1);
            if (e >= 0) {
                assign[c] = e;
                addDemand(led[static_cast<std::size_t>(e)],
                          demands[c][e]);
            }
            out.ripUps += 1;
        }
        out.iterations = iter;
    }

    // Final repair: if the iteration cap tripped with residual
    // overflow, evict newest-first from each overflowed executor onto
    // strictly non-overflowing homes (never back onto the executor
    // being repaired), or mark unplaced. Each condition moves at most
    // once here, so the pass terminates with every ledger sound.
    if (!out.converged) {
        bool clean = true;
        for (std::size_t e = 0; e < E; ++e) {
            while (ledgerOverflow(execs[e], led[e]) > 0.0) {
                clean = false;
                std::size_t victim = C;
                for (std::size_t c = C; c-- > 0;) {
                    if (assign[c] == static_cast<int>(e)) {
                        victim = c;
                        break;
                    }
                }
                if (victim == C)
                    break; // Capacity exceeded with no tenants left.
                removeDemand(led[e], demands[victim][e]);
                assign[victim] = -1;
                const int alt = choose(victim, 0.0, true,
                                       static_cast<int>(e));
                if (alt >= 0) {
                    assign[victim] = alt;
                    addDemand(led[static_cast<std::size_t>(alt)],
                              demands[victim][static_cast<std::size_t>(
                                  alt)]);
                }
                out.ripUps += 1;
            }
        }
        out.converged = clean;
    }

    for (std::size_t c = 0; c < C; ++c) {
        PlacementDecision &dec = out.decisions[c];
        const int e = assign[c];
        if (e < 0) {
            out.unplaced += 1;
            continue;
        }
        const auto eu = static_cast<std::size_t>(e);
        dec.executorIndex = e;
        dec.kind = execs[eu].kind;
        dec.executorName = execs[eu].name;
        dec.wireTarget = wireTargetFor(execs[eu]);
        dec.marginalPowerMw =
            demands[c][eu].dynamicPowerMw +
            (led[eu].conditions == 1 ? execs[eu].activePowerMw : 0.0);
    }
    for (std::size_t e = 0; e < E; ++e)
        if (led[e].conditions > 0)
            out.totalPowerMw +=
                execs[e].activePowerMw + led[e].dynamicPowerMw;
    return out;
}

PlacementResult
Placer::placeGreedy() const
{
    const std::size_t C = demands.size();
    const std::size_t E = execs.size();

    PlacementResult out;
    out.decisions.resize(C);
    out.ledgers.assign(E, ExecutorLedger{});
    out.converged = true;
    std::vector<int> assign(C, -1);
    auto &led = out.ledgers;

    for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t e = 0; e < E; ++e) {
            const PlacementDemand &d = demands[c][e];
            if (!d.feasible ||
                overflowAfter(execs[e], led[e], d) > 0.0)
                continue;
            assign[c] = static_cast<int>(e);
            addDemand(led[e], d);
            break;
        }
        if (assign[c] < 0)
            out.unplaced += 1;
    }

    for (std::size_t c = 0; c < C; ++c) {
        const int e = assign[c];
        if (e < 0)
            continue;
        const auto eu = static_cast<std::size_t>(e);
        PlacementDecision &dec = out.decisions[c];
        dec.executorIndex = e;
        dec.kind = execs[eu].kind;
        dec.executorName = execs[eu].name;
        dec.wireTarget = wireTargetFor(execs[eu]);
        dec.marginalPowerMw =
            demands[c][eu].dynamicPowerMw +
            (led[eu].conditions == 1 ? execs[eu].activePowerMw : 0.0);
    }
    for (std::size_t e = 0; e < E; ++e)
        if (led[e].conditions > 0)
            out.totalPowerMw +=
                execs[e].activePowerMw + led[e].dynamicPowerMw;
    return out;
}

PlacementDecision
placeCondition(const il::ExecutionPlan &plan,
               const std::vector<ExecutorModel> &executors,
               const PlacerConfig &config)
{
    Placer placer(executors, config);
    placer.addCondition(plan);
    PlacementResult result = placer.place();
    return std::move(result.decisions.front());
}

il::Diagnostic
placementNote(const PlacementDecision &home)
{
    if (!home.placed())
        throw ConfigError(
            "placementNote needs a placed PlacementDecision");
    il::Diagnostic note;
    note.code = il::SW203_PLACEMENT;
    note.severity = il::Severity::Note;
    note.line = 1;
    note.column = 1;
    std::ostringstream msg;
    msg << "condition homed on " << home.executorName << " ["
        << kindLabel(home.kind) << "] at " << home.marginalPowerMw
        << " mW marginal";
    note.message = msg.str();
    note.hint = "config push wired to " + home.wireTarget;
    return note;
}

std::string
renderPlacementReport(const il::ExecutionPlan &plan,
                      const std::vector<ExecutorModel> &executors,
                      const PlacerConfig &config)
{
    Placer placer(executors, config);
    placer.addCondition(plan);
    const PlacementResult negotiated = placer.place();
    const PlacementResult greedy = placer.placeGreedy();

    std::ostringstream os;
    const PlacementDecision &home = negotiated.decisions.front();
    if (home.placed())
        os << "home: " << home.executorName << " via "
           << home.wireTarget << " (" << home.marginalPowerMw
           << " mW)\n";
    else
        os << "home: unplaced (no executor fits)\n";
    const PlacementDecision &ladder = greedy.decisions.front();
    if (ladder.placed())
        os << "greedy: " << ladder.executorName << " ("
           << ladder.marginalPowerMw << " mW)\n";
    else
        os << "greedy: unplaced\n";

    os << "executors:\n";
    const auto &row = placer.demandRow(0);
    for (std::size_t e = 0; e < executors.size(); ++e) {
        const ExecutorModel &x = executors[e];
        const PlacementDemand &d = row[e];
        os << "  " << x.name << " [" << kindLabel(x.kind) << "] ";
        if (!d.feasible) {
            os << "unfit";
            if (x.cyclesPerSecond > 0.0 &&
                d.cyclesPerSecond > x.cyclesPerSecond)
                os << "; cycles " << d.cyclesPerSecond << " > "
                   << x.cyclesPerSecond << " units/s";
            if (x.ramBytes != 0 && d.ramBytes > x.ramBytes)
                os << "; ram " << d.ramBytes << " > " << x.ramBytes
                   << " B";
            if (x.wakeBudgetHz > 0.0 && d.wakeRateHz > x.wakeBudgetHz)
                os << "; wake " << d.wakeRateHz << " > "
                   << x.wakeBudgetHz << " Hz";
            if (x.logicCells != 0 && d.logicCells > x.logicCells)
                os << "; cells " << d.logicCells << " > "
                   << x.logicCells;
            if (x.kind == ExecutorKind::Fpga && d.logicCells == 0)
                os << "; no fabric block for some algorithm";
            os << '\n';
            continue;
        }
        os << "fit; ";
        switch (x.kind) {
          case ExecutorKind::Mcu:
            os << "demand " << d.cyclesPerSecond << " units/s, "
               << d.ramBytes << " B, " << d.wakeRateHz << " wake/s";
            break;
          case ExecutorKind::Fpga:
            os << "demand " << d.logicCells << " cells";
            break;
          case ExecutorKind::ApFallback:
            os << "duty-cycled poll";
            break;
        }
        os << "; power " << (x.activePowerMw + d.dynamicPowerMw)
           << " mW";
        if (home.placed() &&
            home.executorIndex == static_cast<int>(e))
            os << "  <- home";
        os << '\n';
    }
    return os.str();
}

} // namespace sidewinder::hub
