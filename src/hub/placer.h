/**
 * @file
 * Fleet-level negotiated-congestion placement across heterogeneous
 * hub executors (MCU / FPGA / AP-fallback).
 *
 * The paper's "Sizing" step (Section 3.8) picks one hub per condition
 * greedily: the cheapest MCU that sustains the load, or the FPGA when
 * that backend is forced. A fleet serving thousands of tenants wants
 * the dual question answered globally: given a *set* of admitted
 * conditions and a *set* of executors with cycle / RAM / wake /
 * logic-cell capacities, find the assignment minimizing total power.
 *
 * That is a packing problem, and the placer borrows the
 * negotiated-congestion pattern FPGA routers use (PathFinder-style:
 * base cost + history cost + present-overflow penalty, iterative
 * rip-up/re-place): every (condition, executor) pair gets a
 * precomputed demand row from the sealed il::ExecutionPlan's
 * per-node numbers; conditions first take their individually cheapest
 * home, then executors that overflow accumulate history cost and
 * their tenants are ripped up and re-placed under a growing present
 * penalty until no capacity is exceeded (or the iteration cap trips
 * and a final repair pass evicts newest-first). Ordering is stable
 * and tie-breaks are seeded hashes, so placement is a pure
 * deterministic function of (conditions, executors, config) —
 * independent of thread count, repeatable run over run.
 *
 * The greedy baseline survives as Placer::placeGreedy() (first-fit in
 * executor order, no re-homing) for the bench_placement ablation.
 */

#ifndef SIDEWINDER_HUB_PLACER_H
#define SIDEWINDER_HUB_PLACER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hub/fpga.h"
#include "hub/mcu.h"
#include "il/analyze.h"
#include "il/plan.h"

namespace sidewinder::hub {

/** What kind of silicon a placement target is. */
enum class ExecutorKind
{
    /** A hub microcontroller (cycle/RAM/wake budgets). */
    Mcu,
    /** A reconfigurable fabric (logic-cell budget, dynamic power). */
    Fpga,
    /**
     * The application processor itself: no hub offload, the AP
     * duty-cycles to poll the sensor. Unbounded capacity, priced at
     * the duty-cycling average power — the "last resort" home that
     * turns admission rejection into an expensive accept.
     */
    ApFallback,
};

/**
 * One placement target. Capacity axes left at 0 are unmodeled
 * (unbounded), mirroring McuModel's convention.
 */
struct ExecutorModel
{
    ExecutorKind kind = ExecutorKind::Mcu;
    /** Part name, e.g. "MSP430", "iCE40-hub", "AP". */
    std::string name;
    /** Power while the executor hosts >= 1 condition, mW. */
    double activePowerMw = 0.0;
    /** Sustained compute budget, abstract cycle units/s; 0 = none. */
    double cyclesPerSecond = 0.0;
    /** State RAM budget, bytes; 0 = unmodeled. */
    std::size_t ramBytes = 0;
    /** Sustained AP wake-ups/s budget; 0 = unmodeled. */
    double wakeBudgetHz = 0.0;
    /** Logic-cell budget (FPGA); 0 = unmodeled. */
    std::size_t logicCells = 0;
    /** Dynamic energy per cycle unit, nJ (FPGA); 0 = none. */
    double nanojoulesPerCycleUnit = 0.0;
};

/** Wrap a hub MCU as a placement target. */
ExecutorModel mcuExecutor(const McuModel &mcu);

/** Wrap an FPGA fabric as a placement target. */
ExecutorModel fpgaExecutor(const FpgaModel &fpga);

/**
 * The AP-fallback pseudo-executor: always feasible, priced at the
 * duty-cycling average power of the paper's Table 1 (the Nexus 4
 * polling the sensor itself — see placer.cc for the derivation).
 */
ExecutorModel apFallbackExecutor();

/**
 * The platform's full placement space, cheapest-first within each
 * kind: MSP430, LM4F120, iCE40-hub, AP-fallback.
 */
const std::vector<ExecutorModel> &platformExecutors();

/** Stable signature of an executor set (cache keys, reports). */
std::string executorSetSignature(
    const std::vector<ExecutorModel> &executors);

/**
 * What one condition consumes on one executor. Axes the executor
 * does not model are 0. `feasible` is the empty-ledger check: false
 * when the condition cannot fit this executor even alone (or, for an
 * FPGA, when some algorithm has no pre-compiled block).
 */
struct PlacementDemand
{
    double cyclesPerSecond = 0.0;
    std::size_t ramBytes = 0;
    double wakeRateHz = 0.0;
    std::size_t logicCells = 0;
    /** Load-dependent power this condition adds here, mW. */
    double dynamicPowerMw = 0.0;
    bool feasible = false;
};

/**
 * Demand of @p plan on @p executor. @p charged overrides the
 * cycle/RAM/wake numbers (a fleet charges the engine's *marginal*
 * cost under cross-condition sharing, and admission substitutes the
 * range-proven wake bound); pass plan.cost() for a standalone
 * condition. FPGA logic cells always come from the plan's nodes.
 */
PlacementDemand demandFor(const il::ExecutionPlan &plan,
                          const ExecutorModel &executor,
                          const il::ProgramCost &charged);

/** Running capacity account of one executor. */
struct ExecutorLedger
{
    double cyclesPerSecond = 0.0;
    std::size_t ramBytes = 0;
    double wakeRateHz = 0.0;
    std::size_t logicCells = 0;
    double dynamicPowerMw = 0.0;
    /** Conditions homed here. */
    std::size_t conditions = 0;
};

/** Where one condition ended up. */
struct PlacementDecision
{
    /** Index into the executor set; -1 when unplaced. */
    int executorIndex = -1;
    ExecutorKind kind = ExecutorKind::Mcu;
    /** Executor name; empty when unplaced. */
    std::string executorName;
    /**
     * Power released if this condition alone were removed, mW:
     * its dynamic power, plus the executor's active power when it is
     * the sole tenant.
     */
    double marginalPowerMw = 0.0;
    /**
     * Where the phone wires this condition's config push:
     * "hub:<name>" for MCU/FPGA homes, "ap:local" for the fallback.
     */
    std::string wireTarget;

    bool
    placed() const
    {
        return executorIndex >= 0;
    }
};

/** Outcome of one placement run. */
struct PlacementResult
{
    /** Per-condition decisions, in addCondition() order. */
    std::vector<PlacementDecision> decisions;
    /** Per-executor accounts, in executor order. */
    std::vector<ExecutorLedger> ledgers;
    /** Active + dynamic power over all occupied executors, mW. */
    double totalPowerMw = 0.0;
    /** Negotiation iterations consumed (0 = first try fit). */
    std::size_t iterations = 0;
    /** Conditions ripped up and re-homed during negotiation. */
    std::size_t ripUps = 0;
    /** True when no executor overflowed when iteration stopped. */
    bool converged = false;
    /** Conditions no executor could take (no AP fallback present). */
    std::size_t unplaced = 0;
};

/** Negotiation knobs. Defaults converge every workload in the repo. */
struct PlacerConfig
{
    /** Rip-up/re-place rounds before the final repair pass. */
    std::size_t maxIterations = 32;
    /** History cost an executor gains per overflowed round, mW. */
    double historyIncrementMw = 8.0;
    /** Present-overflow penalty scale, mW per unit overflow. */
    double presentPenaltyMw = 64.0;
    /** Salt for deterministic tie-breaks between equal-cost homes. */
    std::uint64_t seed = 0x5157u;
};

/**
 * The placement engine. Register conditions (their demand rows are
 * computed once, against every executor), then place(). The object
 * itself is cheap state — executors plus demand rows — so a fleet
 * keeps one per device and re-runs place() at each admission.
 */
class Placer
{
  public:
    explicit Placer(std::vector<ExecutorModel> executors,
                    PlacerConfig config = {});

    /** Register a standalone condition (charged at plan.cost()). */
    std::size_t addCondition(const il::ExecutionPlan &plan);

    /** Register a condition charged at an explicit cost (fleets pass
     *  the engine's marginal cost + the proven wake bound). */
    std::size_t addCondition(const il::ExecutionPlan &plan,
                             const il::ProgramCost &charged);

    /** Unregister the most recently added condition (a rejected
     *  admission backs out without rebuilding the table). */
    void removeLast();

    /** Unregister the condition at @p slot; later slots shift down
     *  (callers keeping slot maps must re-index). */
    void removeAt(std::size_t slot);

    /**
     * Negotiated-congestion placement of every registered condition.
     * Pure and deterministic: same conditions + executors + config
     * give bit-identical results at any thread count, run over run.
     */
    PlacementResult place() const;

    /**
     * The frozen pre-placer baseline: first-fit in executor order
     * with running ledgers, no history, no rip-up — exactly the
     * selectMcu/planFpgaPlacement ladder. Kept for the
     * bench_placement ablation.
     */
    PlacementResult placeGreedy() const;

    std::size_t
    conditionCount() const
    {
        return demands.size();
    }

    const std::vector<ExecutorModel> &
    executors() const
    {
        return execs;
    }

    /** Demand row of condition @p slot (tests, reports). */
    const std::vector<PlacementDemand> &demandRow(std::size_t slot) const;

  private:
    std::vector<ExecutorModel> execs;
    PlacerConfig config;
    /** demands[condition][executor]. */
    std::vector<std::vector<PlacementDemand>> demands;
};

/**
 * Place one condition on an otherwise empty executor set — the
 * single-condition sizing question selectMcu/planFpgaPlacement used
 * to answer, now asked of the whole placement space.
 */
PlacementDecision placeCondition(
    const il::ExecutionPlan &plan,
    const std::vector<ExecutorModel> &executors,
    const PlacerConfig &config = {});

/**
 * SW203 note surfaced at push time: where the placer homed the
 * condition across the full platform space and the marginal power it
 * adds there. @p home must be placed().
 */
il::Diagnostic placementNote(const PlacementDecision &home);

/**
 * Human-readable sizing report for one condition against
 * @p executors: per-executor fit/unfit with the binding axis, the
 * negotiated home, and the greedy ladder's pick. Deterministic text;
 * `swlint --place` pins it in the tests/data/placements corpus.
 */
std::string renderPlacementReport(
    const il::ExecutionPlan &plan,
    const std::vector<ExecutorModel> &executors,
    const PlacerConfig &config = {});

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_PLACER_H
