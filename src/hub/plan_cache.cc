#include "hub/plan_cache.h"

#include <cstdio>
#include <utility>

#include "il/analyze_range.h"
#include "il/lower.h"
#include "il/writer.h"
#include "support/error.h"

namespace sidewinder::hub {

namespace {

/** Channel-set signature: names and rates in declaration order. */
std::string
channelSignature(const std::vector<il::ChannelInfo> &channels)
{
    std::string sig;
    for (const auto &ch : channels) {
        sig += ch.name;
        sig += '@';
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", ch.sampleRateHz);
        sig += buf;
        sig += ';';
    }
    return sig;
}

} // namespace

std::string
FleetPlanCache::programKey(const il::Program &program,
                           const std::vector<il::ChannelInfo> &channels)
{
    return channelSignature(channels) + '\n' + il::write(program);
}

std::string
FleetPlanCache::canonicalPlanKey(const il::ExecutionPlan &plan)
{
    if (plan.outNode < 0)
        throw InternalError("plan without OUT routing has no identity");
    return channelSignature(plan.channels) + '\n' +
           plan.shareKeys[static_cast<std::size_t>(plan.outNode)];
}

FleetPlanCache::PlanPtr
FleetPlanCache::internGlobal(
    const std::string &text_key, const il::Program &program,
    const std::vector<il::ChannelInfo> &channels)
{
    std::lock_guard<std::mutex> guard(lock);

    auto it = byText.find(text_key);
    if (it != byText.end()) {
        globalHitCount.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    // Lower inside the lock: serializing the (rare) cold path is what
    // makes `misses` exactly the number of distinct conditions — two
    // shards racing on the same key produce one miss and one global
    // hit, at any thread count.
    il::ExecutionPlan lowered = il::lower(program, channels);
    lowered.debugAssertUnchanged();
    const std::string canonical_key = canonicalPlanKey(lowered);

    auto canon = byCanonical.find(canonical_key);
    if (canon != byCanonical.end()) {
        // Textually new rendering of a structurally known condition:
        // alias the text key to the existing instance. The lowering
        // work happened, but the retained plan (and every tenant
        // pointer) stays deduplicated.
        globalHitCount.fetch_add(1, std::memory_order_relaxed);
        byText.emplace(text_key, canon->second);
        return canon->second;
    }

    missCount.fetch_add(1, std::memory_order_relaxed);
    auto plan = std::make_shared<const il::ExecutionPlan>(
        std::move(lowered));
    retainedBytes += planRetainedBytes(*plan);
    byCanonical.emplace(canonical_key, plan);
    byText.emplace(text_key, plan);
    return plan;
}

FleetPlanCache::PlanPtr
FleetPlanCache::intern(const il::Program &program,
                       const std::vector<il::ChannelInfo> &channels)
{
    return internGlobal(programKey(program, channels), program,
                        channels);
}

FleetPlanCache::PlanPtr
FleetPlanCache::Shard::intern(
    const il::Program &program,
    const std::vector<il::ChannelInfo> &channels)
{
    std::string key = programKey(program, channels);
    auto it = local.find(key);
    if (it != local.end()) {
        // Lock-free fast path: this shard has served the key before.
        cache->localHitCount.fetch_add(1, std::memory_order_relaxed);
        it->second->debugAssertUnchanged();
        return it->second;
    }
    PlanPtr plan = cache->internGlobal(key, program, channels);
    local.emplace(std::move(key), plan);
    return plan;
}

double
FleetPlanCache::provenWakeRateHz(const il::ExecutionPlan &plan)
{
    const std::string key = canonicalPlanKey(plan);
    {
        std::lock_guard<std::mutex> guard(lock);
        auto it = provenWakeByCanonical.find(key);
        if (it != provenWakeByCanonical.end())
            return it->second;
    }
    // Analyze outside the lock — the analysis is pure, so a racing
    // duplicate computes the same value and the memo stays exact.
    const double proven = il::analyzeRanges(plan).provenWakeRateHz;
    std::lock_guard<std::mutex> guard(lock);
    provenWakeByCanonical.emplace(key, proven);
    return proven;
}

PlacementDecision
FleetPlanCache::firstInstallPlacement(
    const il::ExecutionPlan &plan,
    const std::string &executor_signature,
    const std::function<PlacementDecision()> &compute)
{
    const std::string key =
        canonicalPlanKey(plan) + '\n' + executor_signature;
    {
        std::lock_guard<std::mutex> guard(lock);
        auto it = placementByKey.find(key);
        if (it != placementByKey.end())
            return it->second;
    }
    // Place outside the lock — the placer is deterministic, so a
    // racing duplicate computes the identical decision and the memo
    // stays exact.
    PlacementDecision decision = compute();
    std::lock_guard<std::mutex> guard(lock);
    placementByKey.emplace(key, decision);
    return decision;
}

PlanCacheStats
FleetPlanCache::stats() const
{
    PlanCacheStats out;
    out.misses = missCount.load(std::memory_order_relaxed);
    out.globalHits = globalHitCount.load(std::memory_order_relaxed);
    out.localHits = localHitCount.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> guard(lock);
        out.planCount = byCanonical.size();
        out.retainedBytes = retainedBytes;
    }
    return out;
}

std::size_t
FleetPlanCache::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return byCanonical.size();
}

std::size_t
planRetainedBytes(const il::ExecutionPlan &plan)
{
    std::size_t bytes = sizeof(il::ExecutionPlan);
    for (const auto &ch : plan.channels)
        bytes += sizeof(ch) + ch.name.capacity();
    for (const auto &a : plan.algorithms)
        bytes += sizeof(a) + a.capacity();
    for (const auto &p : plan.params)
        bytes += sizeof(p) + p.capacity() * sizeof(double);
    for (const auto &k : plan.shareKeys)
        bytes += sizeof(k) + k.capacity();
    bytes += plan.inputOffsets.capacity() * sizeof(std::uint32_t);
    bytes += plan.inputCounts.capacity() * sizeof(std::uint32_t);
    bytes += plan.streams.capacity() * sizeof(il::NodeStream);
    bytes += plan.cyclesPerInvoke.capacity() * sizeof(double);
    bytes += plan.invokeRateHz.capacity() * sizeof(double);
    bytes += plan.ramBytes.capacity() * sizeof(std::size_t);
    bytes += plan.blockStride.capacity() * sizeof(std::uint32_t);
    bytes += plan.sourceIds.capacity() * sizeof(il::NodeId);
    bytes += plan.inputRefs.capacity() * sizeof(std::int32_t);
    return bytes;
}

} // namespace sidewinder::hub
