/**
 * @file
 * Fleet-wide shared plan cache: hash-consing promoted from per-engine
 * to cross-tenant.
 *
 * One engine already dedupes structurally identical nodes via the
 * plan's canonical shareKeys. A fleet of thousands of simulated
 * devices (sim::FleetRuntime) goes one level up: identical *wake-up
 * conditions* — same canonical IL against the same channels — are
 * lowered exactly once process-wide and the resulting immutable
 * il::ExecutionPlan is shared by every tenant that installs it.
 * Realistic app-mix skew means a handful of plans serve the whole
 * population, so install cost and plan memory stop scaling with
 * device count.
 *
 * Safety rests on the ExecutionPlan immutability invariant
 * (il/plan.h): plans are sealed by il::lower() and only ever read
 * afterwards, so one instance can be handed to concurrent shard
 * workers without synchronization. Each engine still instantiates its
 * own kernels and state lanes at install time — tenants share the
 * plan's constant structure-of-arrays description, never runtime
 * state — which is also what keeps the engine's address-stable
 * cached-input pointers per-tenant.
 *
 * Concurrency model: the shared map is guarded by one mutex, but the
 * hot path never reaches it — each shard of the fleet owns a Shard
 * view whose local unordered_map is touched by exactly one worker at
 * a time, so repeat lookups (the overwhelming majority under a skewed
 * mix) are lock-free. Counters are exact and deterministic at any
 * thread count: lowering happens at most once per key (inside the
 * lock), so `misses` equals the number of distinct conditions, and
 * the local/global split depends only on the device-to-shard mapping,
 * never on scheduling.
 */

#ifndef SIDEWINDER_HUB_PLAN_CACHE_H
#define SIDEWINDER_HUB_PLAN_CACHE_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hub/placer.h"
#include "il/ast.h"
#include "il/plan.h"
#include "il/validate.h"

namespace sidewinder::hub {

/** Snapshot of the cache's exact lookup accounting. */
struct PlanCacheStats
{
    /** Conditions that had to be lowered (distinct canonical plans
     *  plus text-level aliases of an existing canonical plan). */
    std::size_t misses = 0;
    /** Lookups served from the shared map (first per shard+key). */
    std::size_t globalHits = 0;
    /** Lookups served lock-free from a shard-local view. */
    std::size_t localHits = 0;
    /** Distinct canonical plans retained. */
    std::size_t planCount = 0;
    /** Approximate heap bytes retained by the cached plans. */
    std::size_t retainedBytes = 0;

    /** Total intern() calls observed. */
    std::size_t
    lookups() const
    {
        return misses + globalHits + localHits;
    }

    /** Fraction of lookups that avoided lowering; 1.0 when idle. */
    double
    hitRate() const
    {
        const std::size_t n = lookups();
        return n == 0 ? 1.0
                      : static_cast<double>(n - misses) /
                            static_cast<double>(n);
    }
};

/**
 * Process-wide store of immutable, canonically keyed execution plans.
 */
class FleetPlanCache
{
  public:
    using PlanPtr = std::shared_ptr<const il::ExecutionPlan>;

    /**
     * Pre-lowering lookup key: channel signature plus the program's
     * canonical wire text. Cheap to compute (no lowering), and equal
     * for the repeat installs a fleet actually sees (every tenant of
     * one app pushes byte-identical IL).
     */
    static std::string
    programKey(const il::Program &program,
               const std::vector<il::ChannelInfo> &channels);

    /**
     * Canonical identity of a lowered condition: channel signature
     * plus the OUT node's shareKey (which transitively encodes the
     * whole reachable graph — il::canonicalNodeKey). Two programs
     * whose texts differ but whose lowered graphs are structurally
     * identical intern to the SAME plan instance.
     */
    static std::string canonicalPlanKey(const il::ExecutionPlan &plan);

    /**
     * Return the shared plan for @p program lowered against
     * @p channels, lowering at most once per distinct condition.
     * Thread-safe; lowering runs under the cache lock so the miss
     * counter is exactly the number of lower() calls.
     *
     * @throws ParseError when the program fails validation (first
     *     lookup only — cached conditions are known-valid).
     */
    PlanPtr intern(const il::Program &program,
                   const std::vector<il::ChannelInfo> &channels);

    /**
     * Single-owner read-mostly view: repeat lookups of a key this
     * shard has already seen are served from a private map with no
     * atomics and no locks. One Shard must only ever be used by one
     * thread at a time (sim::FleetRuntime gives each device shard its
     * own, and a shard is processed by exactly one worker).
     */
    class Shard
    {
      public:
        explicit Shard(FleetPlanCache &owner) : cache(&owner) {}

        /** As FleetPlanCache::intern, with the lock-free fast path. */
        PlanPtr intern(const il::Program &program,
                       const std::vector<il::ChannelInfo> &channels);

      private:
        FleetPlanCache *cache;
        std::unordered_map<std::string, PlanPtr> local;
    };

    /**
     * Proven wake-rate bound for @p plan from the value-range
     * analyzer (il::analyzeRanges, default channel ranges), memoized
     * per canonical plan so a fleet pays the analysis once per
     * distinct condition, not once per tenant. Always
     * <= plan.wakeRateBoundHz; admission substitutes it for the
     * syntactic bound when an MCU models a wake budget. Thread-safe;
     * works for plans that were never intern()ed (they memoize on
     * first use).
     */
    double provenWakeRateHz(const il::ExecutionPlan &plan);

    /**
     * Memoized placement verdict for one condition alone on an
     * executor set — the overwhelmingly common fleet admission (a
     * device's *first* install lands on an empty ledger, and skewed
     * app mixes mean a handful of distinct conditions serve the whole
     * population). The verdict is a pure function of (canonical plan,
     * executor-set signature), so it is computed once via @p compute
     * and replayed for every other tenant. Thread-safe; a racing
     * duplicate computes the same value (deterministic placer) and
     * the memo stays exact.
     */
    PlacementDecision firstInstallPlacement(
        const il::ExecutionPlan &plan,
        const std::string &executor_signature,
        const std::function<PlacementDecision()> &compute);

    /** Exact counters; safe to call concurrently with intern(). */
    PlanCacheStats stats() const;

    /** Distinct canonical plans currently retained. */
    std::size_t size() const;

  private:
    PlanPtr internGlobal(const std::string &text_key,
                         const il::Program &program,
                         const std::vector<il::ChannelInfo> &channels);

    mutable std::mutex lock;
    /** Canonical plan key -> the one shared instance. */
    std::unordered_map<std::string, PlanPtr> byCanonical;
    /** Pre-lowering text key -> plan (aliases into byCanonical). */
    std::unordered_map<std::string, PlanPtr> byText;
    /** Canonical plan key -> memoized proven wake-rate bound. */
    std::unordered_map<std::string, double> provenWakeByCanonical;
    /** (Canonical plan key + executor signature) -> placement. */
    std::unordered_map<std::string, PlacementDecision>
        placementByKey;
    std::size_t retainedBytes = 0;

    std::atomic<std::size_t> missCount{0};
    std::atomic<std::size_t> globalHitCount{0};
    std::atomic<std::size_t> localHitCount{0};
};

/**
 * Approximate heap footprint of one plan (vector payloads + string
 * payloads), for the cache's memory accounting.
 */
std::size_t planRetainedBytes(const il::ExecutionPlan &plan);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_PLAN_CACHE_H
