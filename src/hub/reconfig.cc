#include "hub/reconfig.h"

#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "il/writer.h"
#include "support/error.h"
#include "transport/link.h"

namespace sidewinder::hub {

transport::DeltaPushMessage
buildDeltaPush(const il::ExecutionPlan &plan, const il::PlanDelta &delta,
               std::uint32_t epoch, std::int32_t condition_id)
{
    transport::DeltaPushMessage message;
    message.epoch = epoch;
    message.conditionId = condition_id;

    // Entry order is plan (topological) order over the nodes that
    // appear on the wire, so every entry's node inputs precede it.
    std::vector<std::int32_t> entry_of(plan.nodeCount(), -1);
    std::vector<bool> on_wire(plan.nodeCount(), false);
    for (std::size_t i : delta.shippedNodes)
        on_wire[i] = true;
    for (std::size_t i : delta.reusedRefs)
        on_wire[i] = true;

    std::unordered_map<std::string, std::int32_t> channel_ref;
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        if (!on_wire[i])
            continue;
        transport::DeltaNodeEntry entry;
        if (!delta.shipped[i]) {
            entry.reused = true;
            entry.keyHash = il::shareKeyHash(plan.shareKeys[i]);
        } else {
            entry.algorithm = plan.algorithms[i];
            entry.params = plan.params[i];
            const std::int32_t *inputs = plan.inputsOf(i);
            for (std::uint32_t k = 0; k < plan.inputCounts[i]; ++k) {
                const std::int32_t ref = inputs[k];
                if (ref >= 0) {
                    const std::int32_t entry_index =
                        entry_of[static_cast<std::size_t>(ref)];
                    if (entry_index < 0)
                        throw InternalError(
                            "delta input node missing from the wire");
                    entry.inputs.push_back(entry_index);
                } else {
                    const std::string &name =
                        plan.channels[static_cast<std::size_t>(-ref - 1)]
                            .name;
                    auto [slot, inserted] = channel_ref.emplace(
                        name, static_cast<std::int32_t>(
                                  message.channelNames.size()));
                    if (inserted)
                        message.channelNames.push_back(name);
                    entry.inputs.push_back(-(slot->second + 1));
                }
            }
        }
        entry_of[i] =
            static_cast<std::int32_t>(message.entries.size());
        message.entries.push_back(std::move(entry));
    }

    if (plan.outNode < 0 ||
        entry_of[static_cast<std::size_t>(plan.outNode)] < 0)
        throw InternalError("delta has no OUT entry");
    message.outEntry = static_cast<std::uint32_t>(
        entry_of[static_cast<std::size_t>(plan.outNode)]);
    return message;
}

il::Program
spliceDeltaProgram(const transport::DeltaPushMessage &message,
                   const Engine &engine)
{
    il::Program out;
    il::NodeId next_id = 1;
    /** Engine node index -> statement id (shared across reused refs). */
    std::unordered_map<int, il::NodeId> emitted;
    std::vector<il::NodeId> entry_ids(message.entries.size(), 0);

    for (std::size_t i = 0; i < message.entries.size(); ++i) {
        const transport::DeltaNodeEntry &entry = message.entries[i];
        if (entry.reused) {
            entry_ids[i] = engine.exportSubgraph(entry.keyHash, out,
                                                 next_id, emitted);
            continue;
        }
        il::Statement stmt;
        stmt.algorithm = entry.algorithm;
        stmt.params = entry.params;
        stmt.id = next_id++;
        for (std::int32_t ref : entry.inputs) {
            if (ref >= 0)
                stmt.inputs.push_back(il::SourceRef::makeNode(
                    entry_ids[static_cast<std::size_t>(ref)]));
            else
                stmt.inputs.push_back(il::SourceRef::makeChannel(
                    message.channelNames[static_cast<std::size_t>(
                        -ref - 1)]));
        }
        out.statements.push_back(std::move(stmt));
        entry_ids[i] = out.statements.back().id;
    }

    il::Statement out_stmt;
    out_stmt.isOut = true;
    out_stmt.inputs.push_back(il::SourceRef::makeNode(
        entry_ids[static_cast<std::size_t>(message.outEntry)]));
    out.statements.push_back(std::move(out_stmt));
    return out;
}

UpdateWireCost
updateWireCost(const il::ExecutionPlan &plan, const il::PlanDelta &delta)
{
    UpdateWireCost cost;
    cost.nodesShipped = delta.shippedNodes.size();
    cost.nodesReused = delta.reusedRefs.size();
    cost.deltaBytes = transport::deltaPushWireBytes(
        buildDeltaPush(plan, delta, /*epoch=*/1, /*condition_id=*/0));
    cost.fullBytes = transport::configPushWireBytes(
        {0, il::write(plan.toProgram())});
    return cost;
}

std::string
renderDiffPlan(const il::ExecutionPlan &old_plan,
               const il::ExecutionPlan &new_plan)
{
    std::unordered_set<std::string> live(old_plan.shareKeys.begin(),
                                         old_plan.shareKeys.end());
    const il::PlanDelta delta = il::computeDelta(new_plan, live);
    const UpdateWireCost cost = updateWireCost(new_plan, delta);

    std::ostringstream out;
    out << "delta: " << delta.shippedNodes.size() << " of "
        << new_plan.nodeCount() << " nodes ship, " << delta.reusedCount
        << " reused (" << delta.reusedRefs.size()
        << " referenced by hash)\n";
    out << "shipped:\n";
    if (delta.shippedNodes.empty())
        out << "  (none)\n";
    for (std::size_t i : delta.shippedNodes)
        out << "  " << new_plan.shareKeys[i] << "\n";
    out << "reused on the wire:\n";
    if (delta.reusedRefs.empty())
        out << "  (none)\n";
    for (std::size_t i : delta.reusedRefs)
        out << "  " << new_plan.shareKeys[i] << "\n";

    const transport::UartLink uart(115200.0);
    out << "wire: " << cost.deltaBytes << " delta bytes vs "
        << cost.fullBytes << " full bytes (" << std::fixed
        << std::setprecision(1)
        << 100.0 * static_cast<double>(cost.deltaBytes) /
               static_cast<double>(cost.fullBytes)
        << "% of full, ~"
        << uart.transferSeconds(cost.deltaBytes) * 1e3 << " ms vs ~"
        << uart.transferSeconds(cost.fullBytes) * 1e3
        << " ms at 115200 baud)\n";
    return out.str();
}

} // namespace sidewinder::hub
