/**
 * @file
 * Delta-push construction and reconstruction for live reconfiguration.
 *
 * The send side (buildDeltaPush) turns an il::PlanDelta partition into
 * the wire message: shipped nodes as full statements, reused nodes as
 * 8-byte shareKey hashes. The receive side (spliceDeltaProgram)
 * resolves those hashes against a live Engine and reconstructs a
 * complete IL program the normal analyze/lower/stage pipeline can
 * gate — so a delta-installed plan passes through exactly the same
 * validation as a full push, and its reused nodes hash-cons onto the
 * live instances (state and all) when staged.
 *
 * Both halves live here (not in transport/) because they need il::
 * plans and the hub engine; the transport layer stays a pure codec.
 */

#ifndef SIDEWINDER_HUB_RECONFIG_H
#define SIDEWINDER_HUB_RECONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "hub/engine.h"
#include "il/delta.h"
#include "il/plan.h"
#include "transport/messages.h"

namespace sidewinder::hub {

/**
 * Encode @p plan as a DeltaPush under @p delta (from il::computeDelta
 * against the hub's live shareKeys): shipped nodes in full, reused
 * roots as hash references, channels by name.
 */
transport::DeltaPushMessage
buildDeltaPush(const il::ExecutionPlan &plan, const il::PlanDelta &delta,
               std::uint32_t epoch, std::int32_t condition_id);

/**
 * Reconstruct the complete IL program a DeltaPush describes, splicing
 * reused subgraphs out of @p engine's live node table.
 * @throws ConfigError when a hash reference matches no live node
 *     (the phone's view of the hub was stale — reject and retry with
 *     a full push).
 */
il::Program spliceDeltaProgram(const transport::DeltaPushMessage &message,
                               const Engine &engine);

/** Side-by-side wire cost of one condition update, for accounting. */
struct UpdateWireCost
{
    /** Nodes shipped in full. */
    std::size_t nodesShipped = 0;
    /** Reused nodes referenced by hash on the wire. */
    std::size_t nodesReused = 0;
    /** Bytes of the delta push (framed, non-reliable). */
    std::size_t deltaBytes = 0;
    /** Bytes a full ConfigPush of the same plan would cost. */
    std::size_t fullBytes = 0;
};

/**
 * Compute the delta-vs-full wire cost of shipping @p plan to a hub
 * whose live keys produced @p delta. Shared by the SW202 note,
 * `swlint --diff-plan`, and bench_reconfig.
 */
UpdateWireCost updateWireCost(const il::ExecutionPlan &plan,
                              const il::PlanDelta &delta);

/**
 * Render the update a hub running @p old_plan would receive to move
 * to @p new_plan: the shipped and reused node sets (by canonical
 * shareKey) and the delta-vs-full wire bytes with their transfer
 * times at 115200 baud. Drives `swlint --diff-plan`; the output is
 * golden-tested (tests/data/deltas/), so its format is stable.
 */
std::string renderDiffPlan(const il::ExecutionPlan &old_plan,
                           const il::ExecutionPlan &new_plan);

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_RECONFIG_H
