#include "hub/runtime.h"

#include "il/analyze.h"
#include "il/parser.h"
#include "support/error.h"
#include "support/logging.h"
#include "transport/messages.h"

namespace sidewinder::hub {

HubRuntime::HubRuntime(transport::LinkPair &link,
                       std::vector<il::ChannelInfo> channels,
                       McuModel mcu, bool share_nodes)
    : link(link), dataflow(std::move(channels), share_nodes),
      mcuModel(std::move(mcu))
{
}

void
HubRuntime::pollLink(double now)
{
    decoder.feed(link.phoneToHub().receive(now));
    while (auto frame = decoder.poll())
        handleFrame(*frame, now);
}

void
HubRuntime::handleFrame(const transport::Frame &frame, double now)
{
    switch (frame.type) {
      case transport::MessageType::ConfigPush: {
        const auto message = transport::decodeConfigPush(frame);
        try {
            const il::Program program = il::parse(message.ilText);

            // Pre-instantiation check: run the static analyzer once
            // and reject on its verdict before any kernel is built —
            // with every error, not just the first.
            const il::AnalysisResult analysis =
                il::analyze(program, dataflow.channels());
            if (!analysis.ok()) {
                std::string reason = "static analysis rejected the "
                                     "condition:";
                for (const auto &d : analysis.diagnostics) {
                    if (d.severity != il::Severity::Error)
                        continue;
                    reason += " [" + d.code + "] " + d.message + ";";
                }
                throw ParseError(reason);
            }

            // Capability gate: the engine's existing load plus this
            // program must fit the MCU's real-time and RAM budgets.
            const double load = dataflow.estimatedCyclesPerSecond() +
                                analysis.cost.cyclesPerSecond;
            if (!canRunInRealTime(mcuModel, load))
                throw CapabilityError(
                    "condition needs " + std::to_string(load) +
                    " cycle units/s; " + mcuModel.name + " sustains " +
                    std::to_string(mcuModel.cyclesPerSecond));
            const std::size_t ram =
                dataflow.estimatedRamBytes() + analysis.cost.ramBytes;
            if (mcuModel.ramBytes > 0 && ram > mcuModel.ramBytes)
                throw CapabilityError(
                    "condition needs " + std::to_string(ram) +
                    " bytes of hub RAM; " + mcuModel.name + " has " +
                    std::to_string(mcuModel.ramBytes));

            dataflow.addCondition(message.conditionId, program);
            link.hubToPhone().sendFrame(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            link.hubToPhone().sendFrame(
                transport::encodeConfigReject(
                    {message.conditionId, error.what()}),
                now);
        }
        return;
      }
      case transport::MessageType::ConfigRemove: {
        const auto message = transport::decodeConfigRemove(frame);
        try {
            dataflow.removeCondition(message.conditionId);
            link.hubToPhone().sendFrame(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            link.hubToPhone().sendFrame(
                transport::encodeConfigReject(
                    {message.conditionId, error.what()}),
                now);
        }
        return;
      }
      default:
        warn("hub: ignoring unexpected frame type " +
             std::to_string(static_cast<int>(frame.type)));
    }
}

void
HubRuntime::enableBatchStreaming(std::size_t channel_index,
                                 std::size_t batch_samples)
{
    if (channel_index >= dataflow.channels().size())
        throw ConfigError("batch streaming: no channel " +
                          std::to_string(channel_index));
    if (batch_samples == 0)
        throw ConfigError("batch streaming needs a positive batch");
    BatchStream stream;
    stream.batchSamples = batch_samples;
    batchStreams[channel_index] = std::move(stream);
}

void
HubRuntime::disableBatchStreaming(std::size_t channel_index)
{
    batchStreams.erase(channel_index);
}

void
HubRuntime::pushSamples(const std::vector<double> &values,
                        double timestamp)
{
    dataflow.pushSamples(values, timestamp);

    for (auto &[channel, stream] : batchStreams) {
        if (stream.pending.empty())
            stream.firstTimestamp = timestamp;
        stream.pending.push_back(values[channel]);
        if (stream.pending.size() >= stream.batchSamples) {
            transport::SensorBatchMessage message;
            message.channelIndex = static_cast<std::int32_t>(channel);
            message.firstTimestamp = stream.firstTimestamp;
            message.sampleRateHz =
                dataflow.channels()[channel].sampleRateHz;
            message.samples = std::move(stream.pending);
            link.hubToPhone().sendFrame(
                transport::encodeSensorBatch(message), timestamp);
            // Recover the batch buffer so the steady-state streaming
            // path stops allocating once the first batch has sized it.
            stream.pending = std::move(message.samples);
            stream.pending.clear();
        }
    }

    for (const auto &event : dataflow.drainWakeEvents()) {
        transport::WakeUpMessage message;
        message.conditionId = event.conditionId;
        message.timestamp = event.timestamp;
        message.triggerValue = event.value;
        message.rawData = dataflow.rawSnapshot(event.conditionId);
        link.hubToPhone().sendFrame(transport::encodeWakeUp(message),
                                    timestamp);
    }
}

} // namespace sidewinder::hub
