#include "hub/runtime.h"

#include "hub/reconfig.h"
#include "il/analyze.h"
#include "il/analyze_range.h"
#include "il/lower.h"
#include "il/parser.h"
#include "support/error.h"
#include "support/logging.h"
#include "transport/messages.h"

namespace sidewinder::hub {

HubRuntime::HubRuntime(transport::LinkPair &link,
                       std::vector<il::ChannelInfo> channels,
                       McuModel mcu, bool share_nodes)
    : link(link), dataflow(std::move(channels), share_nodes),
      mcuModel(std::move(mcu)), shareNodes(share_nodes)
{
}

void
HubRuntime::enableHeartbeats(double interval_seconds)
{
    if (!(interval_seconds > 0.0))
        throw ConfigError("heartbeat interval must be positive");
    heartbeatInterval = interval_seconds;
}

void
HubRuntime::enableReliableTransport(transport::ReliableConfig config)
{
    reliableConfig = config;
    reliable.emplace(link.hubToPhone(), config);
}

void
HubRuntime::setWakeCoalescing(double min_interval_seconds)
{
    if (min_interval_seconds < 0.0)
        throw ConfigError("wake coalescing interval must be >= 0");
    wakeCoalesceInterval = min_interval_seconds;
}

void
HubRuntime::sendToPhone(const transport::Frame &frame, double now)
{
    if (reliable)
        reliable->sendFrame(frame, now);
    else
        link.hubToPhone().sendFrame(frame, now);
}

void
HubRuntime::reboot(double now)
{
    // Brownout: RAM is gone. Rebuild the engine from the channel map
    // (which lives in ROM on a real hub) and forget every condition,
    // stream and half-received frame.
    dataflow = Engine(std::vector<il::ChannelInfo>(dataflow.channels()),
                      shareNodes);
    batchStreams.clear();
    lastWakeSent.clear();
    decoderDropsBeforeReboot += decoder.droppedBytes();
    decoder = transport::FrameDecoder();
    if (reliable)
        // reset() flushes undelivered frames and dedup state but keeps
        // the counters cumulative, so per-run fault metrics survive
        // the power cycle.
        reliable->reset();
    ++bootEpoch;
    bootTime = now;
    heartbeatSent = false;
    // An update transaction dies with the RAM that held its staged
    // plans; the phone's supervisor notices the boot-epoch change and
    // retries. The committed epoch also lived in RAM — re-pushed
    // configs and the next update re-establish it.
    if (txn) {
        ++updatesRolledBackCount;
        txn.reset();
    }
    committedEpoch = 0;
    swapPending = false;
    lastWaveTime = -1.0;
}

void
HubRuntime::setUpdateStallTimeout(double seconds)
{
    if (!(seconds > 0.0))
        throw ConfigError("update stall timeout must be positive");
    updateStallTimeout = seconds;
}

void
HubRuntime::pollLink(double now)
{
    decoder.feed(link.phoneToHub().receive(now));
    decoder.tickStall(now);
    while (auto frame = decoder.poll()) {
        // A CRC collision on a noisy line can hand us a structurally
        // valid frame with garbage inside; decoding exceptions must
        // not wedge the hub loop.
        try {
            if (reliable) {
                if (auto inner = reliable->onFrame(*frame, now))
                    handleFrame(*inner, now);
            } else {
                handleFrame(*frame, now);
            }
        } catch (const TransportError &error) {
            warn(std::string("hub: dropping undecodable frame: ") +
                 error.what());
        }
    }

    if (reliable)
        reliable->tick(now);

    // Mid-update death of the phone (or of the link beyond what ARQ
    // recovers) must not park staged plans in the shadow slot
    // forever: when the update frames stop, roll back to the A copy.
    if (txn && now - txn->lastFrameAt > updateStallTimeout)
        rollbackUpdate(now, "update stalled mid-transfer");

    if (heartbeatInterval > 0.0 &&
        (!heartbeatSent || now >= lastHeartbeat + heartbeatInterval)) {
        transport::HeartbeatMessage beat;
        beat.bootId = bootEpoch;
        beat.uptimeSeconds = now - bootTime;
        // Directly on the wire: beacons must stay timely even when the
        // reliable queue is backed up with retransmissions.
        link.hubToPhone().sendFrame(transport::encodeHeartbeat(beat),
                                    now);
        lastHeartbeat = now;
        heartbeatSent = true;
    }
}

void
HubRuntime::handleFrame(const transport::Frame &frame, double now)
{
    switch (frame.type) {
      case transport::MessageType::ConfigPush: {
        const auto message = transport::decodeConfigPush(frame);
        try {
            const il::Program program = il::parse(message.ilText);

            // Re-pushes after a hub recovery (and retransmissions that
            // slipped past duplicate suppression) carry ids we may
            // already hold: replace rather than reject, so a push is
            // idempotent.
            if (dataflow.hasCondition(message.conditionId))
                dataflow.removeCondition(message.conditionId);

            // Pre-instantiation check: run the static analyzer once
            // and reject on its verdict before any kernel is built —
            // with every error, not just the first.
            const il::AnalysisResult analysis =
                il::analyze(program, dataflow.channels());
            if (!analysis.ok()) {
                std::string reason = "static analysis rejected the "
                                     "condition:";
                for (const auto &d : analysis.diagnostics) {
                    if (d.severity != il::Severity::Error)
                        continue;
                    reason += " [" + d.code + "] " + d.message + ";";
                }
                throw ParseError(reason);
            }

            // Lower once; the same plan prices admission and gets
            // installed, so the gate's verdict and the runtime's
            // account can never diverge.
            const il::ExecutionPlan plan = il::lower(
                program, dataflow.channels(),
                il::LowerOptions{shareNodes});

            // Capability gate: the engine's existing load plus this
            // plan's *marginal* cost (nodes the engine already shares
            // are free) must fit the MCU's real-time and RAM budgets.
            const il::ProgramCost marginal = dataflow.marginalCost(plan);
            const double load = dataflow.estimatedCyclesPerSecond() +
                                marginal.cyclesPerSecond;
            if (!canRunInRealTime(mcuModel, load))
                throw CapabilityError(
                    "condition needs " + std::to_string(load) +
                    " cycle units/s; " + mcuModel.name + " sustains " +
                    std::to_string(mcuModel.cyclesPerSecond));
            const std::size_t ram =
                dataflow.estimatedRamBytes() + marginal.ramBytes;
            if (mcuModel.ramBytes > 0 && ram > mcuModel.ramBytes)
                throw CapabilityError(
                    "condition needs " + std::to_string(ram) +
                    " bytes of hub RAM; " + mcuModel.name + " has " +
                    std::to_string(mcuModel.ramBytes));

            dataflow.addCondition(message.conditionId, plan);
            sendToPhone(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            sendToPhone(transport::encodeConfigReject(
                            {message.conditionId, error.what()}),
                        now);
        }
        return;
      }
      case transport::MessageType::UpdateBegin: {
        const auto message = transport::decodeUpdateBegin(frame);
        if (message.epoch <= committedEpoch) {
            ++staleEpochMessagesCount;
            sendToPhone(transport::encodeUpdateAck(
                            {message.epoch,
                             transport::UpdateStatus::Stale,
                             "epoch already superseded"}),
                        now);
            return;
        }
        if (txn && txn->epoch == message.epoch) {
            // Duplicate begin (retransmit after a link recovery).
            txn->lastFrameAt = now;
            return;
        }
        if (txn)
            // A newer transaction supersedes an unfinished older one.
            rollbackUpdate(now, "superseded by epoch " +
                                    std::to_string(message.epoch));
        txn = UpdateTxn{message.epoch, now, false, {}};
        return;
      }
      case transport::MessageType::DeltaPush: {
        const auto message = transport::decodeDeltaPush(frame);
        if (message.epoch <= committedEpoch) {
            ++staleEpochMessagesCount;
            return;
        }
        if (!txn || txn->epoch != message.epoch) {
            // The begin was lost (e.g. across a reboot mid-retry);
            // the retrying phone's delta implicitly re-opens.
            if (txn)
                rollbackUpdate(now, "superseded by epoch " +
                                        std::to_string(message.epoch));
            txn = UpdateTxn{message.epoch, now, false, {}};
        }
        txn->lastFrameAt = now;
        if (txn->failed)
            // Already doomed — ignore the rest of the transfer; the
            // commit will carry the first failure back to the phone.
            return;
        try {
            gateAndStage(message.conditionId,
                         spliceDeltaProgram(message, dataflow));
        } catch (const SidewinderError &error) {
            txn->failed = true;
            txn->failReason = error.what();
        }
        return;
      }
      case transport::MessageType::UpdateCommit: {
        const auto message = transport::decodeUpdateCommit(frame);
        if (message.epoch == committedEpoch && committedEpoch != 0) {
            // Retransmit of a commit we already applied: re-ack so
            // the phone converges (idempotent commit).
            sendToPhone(transport::encodeUpdateAck(
                            {message.epoch,
                             transport::UpdateStatus::Committed, ""}),
                        now);
            return;
        }
        if (message.epoch < committedEpoch) {
            ++staleEpochMessagesCount;
            sendToPhone(transport::encodeUpdateAck(
                            {message.epoch,
                             transport::UpdateStatus::Stale,
                             "epoch already superseded"}),
                        now);
            return;
        }
        if (!txn || txn->epoch != message.epoch) {
            ++staleEpochMessagesCount;
            sendToPhone(transport::encodeUpdateAck(
                            {message.epoch,
                             transport::UpdateStatus::RolledBack,
                             "no open update transaction"}),
                        now);
            return;
        }
        if (txn->failed) {
            rollbackUpdate(now, txn->failReason);
            return;
        }
        if (dataflow.stagedCount() == 0) {
            rollbackUpdate(now, "commit with nothing staged");
            return;
        }
        // The atomic A/B swap. pollLink runs between pushes, so the
        // swap lands between two evaluation waves: the A plans saw
        // every wave up to here, the B plans see every wave after —
        // no sample is evaluated by neither or both.
        dataflow.commitStaged();
        committedEpoch = message.epoch;
        if (reliable) {
            // Delayed retransmits from before this swap must never
            // be delivered as fresh configuration.
            reliable->setMinimumEpoch(committedEpoch);
            reliable->setLocalEpoch(committedEpoch);
        }
        swapPending = true;
        swapLastWave = lastWaveTime;
        ++updatesCommittedCount;
        txn.reset();
        sendToPhone(
            transport::encodeUpdateAck(
                {message.epoch, transport::UpdateStatus::Committed, ""}),
            now);
        return;
      }
      case transport::MessageType::UpdateAbort: {
        const auto message = transport::decodeUpdateAbort(frame);
        if (txn && txn->epoch == message.epoch)
            rollbackUpdate(now, "aborted by the phone");
        return;
      }
      case transport::MessageType::ConfigRemove: {
        const auto message = transport::decodeConfigRemove(frame);
        try {
            dataflow.removeCondition(message.conditionId);
            sendToPhone(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            sendToPhone(transport::encodeConfigReject(
                            {message.conditionId, error.what()}),
                        now);
        }
        return;
      }
      default:
        warn("hub: ignoring unexpected frame type " +
             std::to_string(static_cast<int>(frame.type)));
    }
}

void
HubRuntime::gateAndStage(int condition_id, const il::Program &program)
{
    // The full ConfigPush gauntlet, aimed at the shadow slot: a
    // delta-installed plan gets no weaker validation than a full push.
    const il::AnalysisResult analysis =
        il::analyze(program, dataflow.channels());
    if (!analysis.ok()) {
        std::string reason = "static analysis rejected the update:";
        for (const auto &d : analysis.diagnostics) {
            if (d.severity != il::Severity::Error)
                continue;
            reason += " [" + d.code + "] " + d.message + ";";
        }
        throw ParseError(reason);
    }

    const il::ExecutionPlan plan = il::lower(
        program, dataflow.channels(), il::LowerOptions{shareNodes});

    // Value-range gate: the interval interpreter must not flag the
    // staged plan (Q15 saturation proofs when the engine runs
    // fixed-point kernels). A plan that is unsound for the active
    // numeric mode must never reach commit.
    il::RangeOptions range_options;
    range_options.q15 = dataflow.kernelMode() == KernelMode::FixedQ15;
    const il::RangeAnalysis ranges =
        il::analyzeRanges(plan, range_options);
    std::string range_reason = "range analysis rejected the update:";
    bool range_error = false;
    for (const auto &d : ranges.diagnostics) {
        if (d.severity != il::Severity::Error)
            continue;
        range_error = true;
        range_reason += " [" + d.code + "] " + d.message + ";";
    }
    if (range_error)
        throw ParseError(range_reason);

    // Admission: the engine's current load already charges both the
    // live copies and anything staged so far, so adding this plan's
    // marginal cost prices the worst instant of the update window —
    // A and B running side by side.
    const il::ProgramCost marginal = dataflow.marginalCost(plan);
    const double load = dataflow.estimatedCyclesPerSecond() +
                        marginal.cyclesPerSecond;
    if (!canRunInRealTime(mcuModel, load))
        throw CapabilityError(
            "update needs " + std::to_string(load) +
            " cycle units/s during the A/B window; " + mcuModel.name +
            " sustains " + std::to_string(mcuModel.cyclesPerSecond));
    const std::size_t ram =
        dataflow.estimatedRamBytes() + marginal.ramBytes;
    if (mcuModel.ramBytes > 0 && ram > mcuModel.ramBytes)
        throw CapabilityError(
            "update needs " + std::to_string(ram) +
            " bytes of hub RAM during the A/B window; " + mcuModel.name +
            " has " + std::to_string(mcuModel.ramBytes));

    dataflow.stageCondition(condition_id, plan);
}

void
HubRuntime::rollbackUpdate(double now, const std::string &reason)
{
    dataflow.abortStaged();
    const std::uint32_t epoch = txn ? txn->epoch : 0;
    // Copy before the reset: callers pass txn->failReason, which
    // txn.reset() would destroy out from under the reference.
    const std::string why = reason;
    txn.reset();
    ++updatesRolledBackCount;
    // The epoch stays un-bumped: the failed transaction never
    // existed as far as ordering is concerned, and the phone retries
    // under a fresh epoch.
    sendToPhone(transport::encodeUpdateAck(
                    {epoch, transport::UpdateStatus::RolledBack, why}),
                now);
}

void
HubRuntime::noteWave(double first_timestamp, double last_timestamp)
{
    if (swapPending) {
        // First wave after a committed swap closes the blind window:
        // the gap between the last wave the A plans evaluated and the
        // first wave the B plans see. Under zero loss this is one
        // sample period.
        if (swapLastWave >= 0.0)
            blindWindow = first_timestamp - swapLastWave;
        swapPending = false;
    }
    lastWaveTime = last_timestamp;
}

void
HubRuntime::enableBatchStreaming(std::size_t channel_index,
                                 std::size_t batch_samples)
{
    if (channel_index >= dataflow.channels().size())
        throw ConfigError("batch streaming: no channel " +
                          std::to_string(channel_index));
    if (batch_samples == 0)
        throw ConfigError("batch streaming needs a positive batch");
    BatchStream stream;
    stream.batchSamples = batch_samples;
    // Size the buffer once: the steady-state streaming path (per
    // sample or per block) never reallocates it.
    stream.pending.reserve(batch_samples);
    batchStreams[channel_index] = std::move(stream);
}

void
HubRuntime::disableBatchStreaming(std::size_t channel_index)
{
    batchStreams.erase(channel_index);
}

void
HubRuntime::flushBatch(std::size_t channel, BatchStream &stream,
                       double timestamp)
{
    transport::SensorBatchMessage message;
    message.channelIndex = static_cast<std::int32_t>(channel);
    message.firstTimestamp = stream.firstTimestamp;
    message.sampleRateHz = dataflow.channels()[channel].sampleRateHz;
    message.samples = std::move(stream.pending);
    link.hubToPhone().sendFrame(transport::encodeSensorBatch(message),
                                timestamp);
    // Recover the batch buffer so the steady-state streaming path
    // stops allocating once the first batch has sized it.
    stream.pending = std::move(message.samples);
    stream.pending.clear();
}

void
HubRuntime::forwardWakeEvents()
{
    // Each event carries its own wave timestamp, so coalescing
    // decisions are identical whether the events arrived one wave at
    // a time or in a block.
    for (const auto &event : dataflow.drainWakeEvents()) {
        if (wakeCoalesceInterval > 0.0) {
            const auto last = lastWakeSent.find(event.conditionId);
            if (last != lastWakeSent.end() &&
                event.timestamp - last->second < wakeCoalesceInterval) {
                ++coalescedWakes;
                continue;
            }
            lastWakeSent[event.conditionId] = event.timestamp;
        }
        transport::WakeUpMessage message;
        message.conditionId = event.conditionId;
        message.timestamp = event.timestamp;
        message.triggerValue = event.value;
        message.rawData = dataflow.rawSnapshot(event.conditionId);
        sendToPhone(transport::encodeWakeUp(message), event.timestamp);
    }
}

void
HubRuntime::pushSamples(const std::vector<double> &values,
                        double timestamp)
{
    dataflow.pushSamples(values, timestamp);
    noteWave(timestamp, timestamp);

    for (auto &[channel, stream] : batchStreams) {
        if (stream.pending.empty())
            stream.firstTimestamp = timestamp;
        stream.pending.push_back(values[channel]);
        if (stream.pending.size() >= stream.batchSamples)
            flushBatch(channel, stream, timestamp);
    }

    forwardWakeEvents();
}

void
HubRuntime::pushBlock(const double *samples, std::size_t count,
                      const double *timestamps)
{
    if (count == 0)
        return;
    dataflow.pushBlock(samples, count, timestamps);
    noteWave(timestamps[0], timestamps[count - 1]);

    for (auto &[channel, stream] : batchStreams) {
        // Span append: whole slices of the caller's channel lane go
        // into the batch buffer at once — no per-sample push_back.
        const double *lane = samples + channel * count;
        std::size_t done = 0;
        while (done < count) {
            if (stream.pending.empty())
                stream.firstTimestamp = timestamps[done];
            const std::size_t take =
                std::min(stream.batchSamples - stream.pending.size(),
                         count - done);
            stream.pending.insert(stream.pending.end(), lane + done,
                                  lane + done + take);
            done += take;
            if (stream.pending.size() >= stream.batchSamples)
                flushBatch(channel, stream, timestamps[done - 1]);
        }
    }

    forwardWakeEvents();
}

} // namespace sidewinder::hub
