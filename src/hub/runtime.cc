#include "hub/runtime.h"

#include "il/analyze.h"
#include "il/lower.h"
#include "il/parser.h"
#include "support/error.h"
#include "support/logging.h"
#include "transport/messages.h"

namespace sidewinder::hub {

HubRuntime::HubRuntime(transport::LinkPair &link,
                       std::vector<il::ChannelInfo> channels,
                       McuModel mcu, bool share_nodes)
    : link(link), dataflow(std::move(channels), share_nodes),
      mcuModel(std::move(mcu)), shareNodes(share_nodes)
{
}

void
HubRuntime::enableHeartbeats(double interval_seconds)
{
    if (!(interval_seconds > 0.0))
        throw ConfigError("heartbeat interval must be positive");
    heartbeatInterval = interval_seconds;
}

void
HubRuntime::enableReliableTransport(transport::ReliableConfig config)
{
    reliableConfig = config;
    reliable.emplace(link.hubToPhone(), config);
}

void
HubRuntime::setWakeCoalescing(double min_interval_seconds)
{
    if (min_interval_seconds < 0.0)
        throw ConfigError("wake coalescing interval must be >= 0");
    wakeCoalesceInterval = min_interval_seconds;
}

void
HubRuntime::sendToPhone(const transport::Frame &frame, double now)
{
    if (reliable)
        reliable->sendFrame(frame, now);
    else
        link.hubToPhone().sendFrame(frame, now);
}

void
HubRuntime::reboot(double now)
{
    // Brownout: RAM is gone. Rebuild the engine from the channel map
    // (which lives in ROM on a real hub) and forget every condition,
    // stream and half-received frame.
    dataflow = Engine(std::vector<il::ChannelInfo>(dataflow.channels()),
                      shareNodes);
    batchStreams.clear();
    lastWakeSent.clear();
    decoderDropsBeforeReboot += decoder.droppedBytes();
    decoder = transport::FrameDecoder();
    if (reliable)
        // reset() flushes undelivered frames and dedup state but keeps
        // the counters cumulative, so per-run fault metrics survive
        // the power cycle.
        reliable->reset();
    ++bootEpoch;
    bootTime = now;
    heartbeatSent = false;
}

void
HubRuntime::pollLink(double now)
{
    decoder.feed(link.phoneToHub().receive(now));
    decoder.tickStall(now);
    while (auto frame = decoder.poll()) {
        // A CRC collision on a noisy line can hand us a structurally
        // valid frame with garbage inside; decoding exceptions must
        // not wedge the hub loop.
        try {
            if (reliable) {
                if (auto inner = reliable->onFrame(*frame, now))
                    handleFrame(*inner, now);
            } else {
                handleFrame(*frame, now);
            }
        } catch (const TransportError &error) {
            warn(std::string("hub: dropping undecodable frame: ") +
                 error.what());
        }
    }

    if (reliable)
        reliable->tick(now);

    if (heartbeatInterval > 0.0 &&
        (!heartbeatSent || now >= lastHeartbeat + heartbeatInterval)) {
        transport::HeartbeatMessage beat;
        beat.bootId = bootEpoch;
        beat.uptimeSeconds = now - bootTime;
        // Directly on the wire: beacons must stay timely even when the
        // reliable queue is backed up with retransmissions.
        link.hubToPhone().sendFrame(transport::encodeHeartbeat(beat),
                                    now);
        lastHeartbeat = now;
        heartbeatSent = true;
    }
}

void
HubRuntime::handleFrame(const transport::Frame &frame, double now)
{
    switch (frame.type) {
      case transport::MessageType::ConfigPush: {
        const auto message = transport::decodeConfigPush(frame);
        try {
            const il::Program program = il::parse(message.ilText);

            // Re-pushes after a hub recovery (and retransmissions that
            // slipped past duplicate suppression) carry ids we may
            // already hold: replace rather than reject, so a push is
            // idempotent.
            if (dataflow.hasCondition(message.conditionId))
                dataflow.removeCondition(message.conditionId);

            // Pre-instantiation check: run the static analyzer once
            // and reject on its verdict before any kernel is built —
            // with every error, not just the first.
            const il::AnalysisResult analysis =
                il::analyze(program, dataflow.channels());
            if (!analysis.ok()) {
                std::string reason = "static analysis rejected the "
                                     "condition:";
                for (const auto &d : analysis.diagnostics) {
                    if (d.severity != il::Severity::Error)
                        continue;
                    reason += " [" + d.code + "] " + d.message + ";";
                }
                throw ParseError(reason);
            }

            // Lower once; the same plan prices admission and gets
            // installed, so the gate's verdict and the runtime's
            // account can never diverge.
            const il::ExecutionPlan plan = il::lower(
                program, dataflow.channels(),
                il::LowerOptions{shareNodes});

            // Capability gate: the engine's existing load plus this
            // plan's *marginal* cost (nodes the engine already shares
            // are free) must fit the MCU's real-time and RAM budgets.
            const il::ProgramCost marginal = dataflow.marginalCost(plan);
            const double load = dataflow.estimatedCyclesPerSecond() +
                                marginal.cyclesPerSecond;
            if (!canRunInRealTime(mcuModel, load))
                throw CapabilityError(
                    "condition needs " + std::to_string(load) +
                    " cycle units/s; " + mcuModel.name + " sustains " +
                    std::to_string(mcuModel.cyclesPerSecond));
            const std::size_t ram =
                dataflow.estimatedRamBytes() + marginal.ramBytes;
            if (mcuModel.ramBytes > 0 && ram > mcuModel.ramBytes)
                throw CapabilityError(
                    "condition needs " + std::to_string(ram) +
                    " bytes of hub RAM; " + mcuModel.name + " has " +
                    std::to_string(mcuModel.ramBytes));

            dataflow.addCondition(message.conditionId, plan);
            sendToPhone(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            sendToPhone(transport::encodeConfigReject(
                            {message.conditionId, error.what()}),
                        now);
        }
        return;
      }
      case transport::MessageType::ConfigRemove: {
        const auto message = transport::decodeConfigRemove(frame);
        try {
            dataflow.removeCondition(message.conditionId);
            sendToPhone(
                transport::encodeConfigAck({message.conditionId}), now);
        } catch (const SidewinderError &error) {
            sendToPhone(transport::encodeConfigReject(
                            {message.conditionId, error.what()}),
                        now);
        }
        return;
      }
      default:
        warn("hub: ignoring unexpected frame type " +
             std::to_string(static_cast<int>(frame.type)));
    }
}

void
HubRuntime::enableBatchStreaming(std::size_t channel_index,
                                 std::size_t batch_samples)
{
    if (channel_index >= dataflow.channels().size())
        throw ConfigError("batch streaming: no channel " +
                          std::to_string(channel_index));
    if (batch_samples == 0)
        throw ConfigError("batch streaming needs a positive batch");
    BatchStream stream;
    stream.batchSamples = batch_samples;
    // Size the buffer once: the steady-state streaming path (per
    // sample or per block) never reallocates it.
    stream.pending.reserve(batch_samples);
    batchStreams[channel_index] = std::move(stream);
}

void
HubRuntime::disableBatchStreaming(std::size_t channel_index)
{
    batchStreams.erase(channel_index);
}

void
HubRuntime::flushBatch(std::size_t channel, BatchStream &stream,
                       double timestamp)
{
    transport::SensorBatchMessage message;
    message.channelIndex = static_cast<std::int32_t>(channel);
    message.firstTimestamp = stream.firstTimestamp;
    message.sampleRateHz = dataflow.channels()[channel].sampleRateHz;
    message.samples = std::move(stream.pending);
    link.hubToPhone().sendFrame(transport::encodeSensorBatch(message),
                                timestamp);
    // Recover the batch buffer so the steady-state streaming path
    // stops allocating once the first batch has sized it.
    stream.pending = std::move(message.samples);
    stream.pending.clear();
}

void
HubRuntime::forwardWakeEvents()
{
    // Each event carries its own wave timestamp, so coalescing
    // decisions are identical whether the events arrived one wave at
    // a time or in a block.
    for (const auto &event : dataflow.drainWakeEvents()) {
        if (wakeCoalesceInterval > 0.0) {
            const auto last = lastWakeSent.find(event.conditionId);
            if (last != lastWakeSent.end() &&
                event.timestamp - last->second < wakeCoalesceInterval) {
                ++coalescedWakes;
                continue;
            }
            lastWakeSent[event.conditionId] = event.timestamp;
        }
        transport::WakeUpMessage message;
        message.conditionId = event.conditionId;
        message.timestamp = event.timestamp;
        message.triggerValue = event.value;
        message.rawData = dataflow.rawSnapshot(event.conditionId);
        sendToPhone(transport::encodeWakeUp(message), event.timestamp);
    }
}

void
HubRuntime::pushSamples(const std::vector<double> &values,
                        double timestamp)
{
    dataflow.pushSamples(values, timestamp);

    for (auto &[channel, stream] : batchStreams) {
        if (stream.pending.empty())
            stream.firstTimestamp = timestamp;
        stream.pending.push_back(values[channel]);
        if (stream.pending.size() >= stream.batchSamples)
            flushBatch(channel, stream, timestamp);
    }

    forwardWakeEvents();
}

void
HubRuntime::pushBlock(const double *samples, std::size_t count,
                      const double *timestamps)
{
    if (count == 0)
        return;
    dataflow.pushBlock(samples, count, timestamps);

    for (auto &[channel, stream] : batchStreams) {
        // Span append: whole slices of the caller's channel lane go
        // into the batch buffer at once — no per-sample push_back.
        const double *lane = samples + channel * count;
        std::size_t done = 0;
        while (done < count) {
            if (stream.pending.empty())
                stream.firstTimestamp = timestamps[done];
            const std::size_t take =
                std::min(stream.batchSamples - stream.pending.size(),
                         count - done);
            stream.pending.insert(stream.pending.end(), lane + done,
                                  lane + done + take);
            done += take;
            if (stream.pending.size() >= stream.batchSamples)
                flushBatch(channel, stream, timestamps[done - 1]);
        }
    }

    forwardWakeEvents();
}

} // namespace sidewinder::hub
