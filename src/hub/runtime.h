/**
 * @file
 * The hub-side message loop: receives configuration frames from the
 * phone over the serial link, manages the dataflow engine, and sends
 * wake-up frames back.
 *
 * Together with core::SidewinderSensorManager on the phone side, this
 * realizes the full architecture of Figure 1 of the paper: the only
 * coupling between the two halves is the intermediate language
 * travelling over the framed UART.
 */

#ifndef SIDEWINDER_HUB_RUNTIME_H
#define SIDEWINDER_HUB_RUNTIME_H

#include <cstddef>
#include <map>
#include <vector>

#include "hub/engine.h"
#include "hub/mcu.h"
#include "transport/frame.h"
#include "transport/link.h"

namespace sidewinder::hub {

/** The sensor hub: engine + MCU model + link endpoints. */
class HubRuntime
{
  public:
    /**
     * @param link Full-duplex connection to the phone; the runtime
     *     reads the phone-to-hub direction and writes hub-to-phone.
     * @param channels Sensor channels wired to this hub.
     * @param mcu Microcontroller the hub is built around; pushes whose
     *     compute demand exceeds it are rejected.
     * @param share_nodes Enable cross-condition node sharing.
     */
    HubRuntime(transport::LinkPair &link,
               std::vector<il::ChannelInfo> channels, McuModel mcu,
               bool share_nodes = true);

    /**
     * Process bytes that have arrived from the phone by time @p now:
     * install / remove conditions and send acks or rejections.
     */
    void pollLink(double now);

    /**
     * Feed one synchronous sample per channel and forward any
     * resulting wake-ups to the phone as WakeUp frames.
     */
    void pushSamples(const std::vector<double> &values, double timestamp);

    /** The dataflow engine (exposed for tests and benchmarks). */
    Engine &engine() { return dataflow; }
    const Engine &engine() const { return dataflow; }

    /** The hub's microcontroller model. */
    const McuModel &mcu() const { return mcuModel; }

    /** Frames that failed to decode (noise on the link). */
    std::size_t linkDropBytes() const { return decoder.droppedBytes(); }

    /**
     * Start shipping channel @p channel_index to the phone in
     * SensorBatch frames of @p batch_samples samples — the hub side
     * of the Batching configuration (Section 4.2) and of raw-data
     * streaming after a wake-up (Section 3.8).
     */
    void enableBatchStreaming(std::size_t channel_index,
                              std::size_t batch_samples);

    /** Stop shipping @p channel_index. */
    void disableBatchStreaming(std::size_t channel_index);

  private:
    struct BatchStream
    {
        std::size_t batchSamples = 0;
        double firstTimestamp = 0.0;
        std::vector<double> pending;
    };

    void handleFrame(const transport::Frame &frame, double now);

    transport::LinkPair &link;
    Engine dataflow;
    McuModel mcuModel;
    transport::FrameDecoder decoder;
    std::map<std::size_t, BatchStream> batchStreams;
};

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_RUNTIME_H
