/**
 * @file
 * The hub-side message loop: receives configuration frames from the
 * phone over the serial link, manages the dataflow engine, and sends
 * wake-up frames back.
 *
 * Together with core::SidewinderSensorManager on the phone side, this
 * realizes the full architecture of Figure 1 of the paper: the only
 * coupling between the two halves is the intermediate language
 * travelling over the framed UART.
 *
 * Beyond the paper's fault-free prototype, the runtime carries the
 * hub half of the fault-tolerance layer (docs/fault-model.md): an
 * optional heartbeat beacon stamped with a boot epoch, an optional
 * reliable-transport endpoint for everything it sends, and a
 * brownout-reset path (reboot()) that deliberately drops all engine
 * state so supervisors can be tested against real state loss.
 */

#ifndef SIDEWINDER_HUB_RUNTIME_H
#define SIDEWINDER_HUB_RUNTIME_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hub/engine.h"
#include "hub/mcu.h"
#include "transport/frame.h"
#include "transport/link.h"
#include "transport/reliable.h"

namespace sidewinder::hub {

/** The sensor hub: engine + MCU model + link endpoints. */
class HubRuntime
{
  public:
    /**
     * @param link Full-duplex connection to the phone; the runtime
     *     reads the phone-to-hub direction and writes hub-to-phone.
     * @param channels Sensor channels wired to this hub.
     * @param mcu Microcontroller the hub is built around; pushes whose
     *     compute demand exceeds it are rejected.
     * @param share_nodes Enable cross-condition node sharing.
     */
    HubRuntime(transport::LinkPair &link,
               std::vector<il::ChannelInfo> channels, McuModel mcu,
               bool share_nodes = true);

    /**
     * Process bytes that have arrived from the phone by time @p now:
     * install / remove conditions and send acks or rejections. Also
     * drives heartbeat emission and reliable-transport timers when
     * those are enabled.
     */
    void pollLink(double now);

    /**
     * Feed one synchronous sample per channel and forward any
     * resulting wake-ups to the phone as WakeUp frames.
     */
    void pushSamples(const std::vector<double> &values, double timestamp);

    /**
     * Block ingestion: feed @p count waves at once (channel-major, as
     * Engine::pushBlock) and forward the resulting wake-ups. Batch
     * streams append whole spans per block instead of one push_back
     * per sample. Wake frames (and their raw snapshots) are emitted
     * after the block settles, stamped with each event's own wave
     * timestamp — so coalescing decisions match the per-sample path.
     */
    void pushBlock(const double *samples, std::size_t count,
                   const double *timestamps);

    /**
     * Start emitting Heartbeat beacons every @p interval_seconds.
     * Beacons bypass the reliable queue so their latency stays bounded
     * even when the line is backlogged with retransmissions.
     */
    void enableHeartbeats(double interval_seconds);

    /**
     * Ship acks, rejects and wake-ups through a reliable-transport
     * endpoint (and unwrap reliable frames from the phone) instead of
     * writing the link directly.
     */
    void enableReliableTransport(transport::ReliableConfig config = {});

    /**
     * Suppress wake-up frames for a condition within
     * @p min_interval_seconds of the last one sent for it. A condition
     * that keeps firing at sample rate emits a burst of large raw-data
     * frames; on a noisy link the retransmissions of those redundant
     * frames overflow the bounded reliable queue and crowd out the
     * wake-ups that matter. One frame per condition per interval keeps
     * the stop-and-wait channel ahead of the producer while the phone
     * still sees every distinct event. 0 disables (the default).
     */
    void setWakeCoalescing(double min_interval_seconds);

    /** Wake-ups suppressed by coalescing so far. */
    std::size_t wakesCoalesced() const { return coalescedWakes; }

    /**
     * Simulated brownout reset: every installed condition, all node
     * state, the decoder, the reliable endpoint and any batch streams
     * are lost, and the boot epoch increments so the next heartbeat
     * tells the phone the hub is an amnesiac. The caller models the
     * powered-off window itself (by not polling during it); reboot()
     * is the instant power returns.
     */
    void reboot(double now);

    /** Boot epoch: 0 at construction, +1 per reboot(). */
    std::uint32_t bootId() const { return bootEpoch; }

    // ----- live reconfiguration (the hub half) -----
    //
    // The phone opens a transaction with UpdateBegin at a fresh
    // config epoch, streams DeltaPush frames the hub stages in the
    // engine's shadow slot (the live plans keep executing — no
    // samples are dropped during transfer), and closes with
    // UpdateCommit, which the hub answers by atomically swapping the
    // staged plans live and bumping its committed epoch. Anything
    // that goes wrong — analyzer rejection, admission overflow, a
    // stale hash reference, frames that stop arriving mid-update —
    // rolls the shadow slot back, leaves the epoch un-bumped, and
    // tells the phone with an UpdateAck{RolledBack} so it can retry.

    /** Committed config epoch: 0 at boot, set by each UpdateCommit. */
    std::uint32_t configEpoch() const { return committedEpoch; }

    /** True while an update transaction is open (staging). */
    bool updateInProgress() const { return txn.has_value(); }

    /** Update transactions committed since construction. */
    std::size_t updatesCommitted() const { return updatesCommittedCount; }

    /** Update transactions rolled back (incl. those lost to reboot). */
    std::size_t updatesRolledBack() const
    {
        return updatesRolledBackCount;
    }

    /**
     * Update-protocol messages refused for carrying a superseded
     * epoch. Transport-level refusals (delayed reliable retransmits)
     * are counted separately in reliableStats()->staleEpochFrames.
     */
    std::size_t staleEpochMessages() const
    {
        return staleEpochMessagesCount;
    }

    /**
     * Gap between the last evaluation wave before the most recent
     * committed swap and the first wave after it, in seconds. Under a
     * zero-sample-loss swap this equals one sample period — the
     * measured "blind window" of the A/B commit. 0 until a swap has
     * been bracketed by waves.
     */
    double lastBlindWindowSeconds() const { return blindWindow; }

    /**
     * Roll back an open transaction when no update frame has arrived
     * for @p seconds (default 5): the phone died or the link lost the
     * tail of the update beyond what ARQ recovers. Pairs with the
     * phone's heartbeat-driven abort — either side can conclude the
     * update is dead and the hub must not hold staged state forever.
     */
    void setUpdateStallTimeout(double seconds);

    /** The dataflow engine (exposed for tests and benchmarks). */
    Engine &engine() { return dataflow; }
    const Engine &engine() const { return dataflow; }

    /** The hub's microcontroller model. */
    const McuModel &mcu() const { return mcuModel; }

    /** Bytes discarded by frame decoding (noise), across reboots. */
    std::size_t
    linkDropBytes() const
    {
        return decoderDropsBeforeReboot + decoder.droppedBytes();
    }

    /** Reliable-endpoint counters; nullptr until enabled. */
    const transport::ReliableStats *
    reliableStats() const
    {
        return reliable ? &reliable->stats() : nullptr;
    }

    /**
     * Start shipping channel @p channel_index to the phone in
     * SensorBatch frames of @p batch_samples samples — the hub side
     * of the Batching configuration (Section 4.2) and of raw-data
     * streaming after a wake-up (Section 3.8).
     */
    void enableBatchStreaming(std::size_t channel_index,
                              std::size_t batch_samples);

    /** Stop shipping @p channel_index. */
    void disableBatchStreaming(std::size_t channel_index);

  private:
    struct BatchStream
    {
        std::size_t batchSamples = 0;
        double firstTimestamp = 0.0;
        std::vector<double> pending;
    };

    void handleFrame(const transport::Frame &frame, double now);
    void sendToPhone(const transport::Frame &frame, double now);
    /** Gate @p program and stage it in the shadow slot. @throws
        SidewinderError with the rejection reason. */
    void gateAndStage(int condition_id, const il::Program &program);
    /** Abort the shadow slot and notify the phone. */
    void rollbackUpdate(double now, const std::string &reason);
    /** Track wave timestamps for the blind-window measurement. */
    void noteWave(double first_timestamp, double last_timestamp);
    /** Ship a full batch-stream buffer as a SensorBatch frame. */
    void flushBatch(std::size_t channel, BatchStream &stream,
                    double timestamp);
    /** Drain engine wake-ups into WakeUp frames (with coalescing). */
    void forwardWakeEvents();

    transport::LinkPair &link;
    Engine dataflow;
    McuModel mcuModel;
    bool shareNodes;
    transport::FrameDecoder decoder;
    std::map<std::size_t, BatchStream> batchStreams;

    std::optional<transport::ReliableEndpoint> reliable;
    transport::ReliableConfig reliableConfig;
    double wakeCoalesceInterval = 0.0;
    std::map<int, double> lastWakeSent;
    std::size_t coalescedWakes = 0;
    double heartbeatInterval = 0.0;
    double lastHeartbeat = 0.0;
    bool heartbeatSent = false;
    std::uint32_t bootEpoch = 0;
    double bootTime = 0.0;
    std::size_t decoderDropsBeforeReboot = 0;

    /** One open update transaction (at most one at a time). */
    struct UpdateTxn
    {
        std::uint32_t epoch = 0;
        /** Receipt time of the transaction's latest frame. */
        double lastFrameAt = 0.0;
        /** Latched by the first staging failure; commit rolls back. */
        bool failed = false;
        std::string failReason;
    };
    std::optional<UpdateTxn> txn;
    std::uint32_t committedEpoch = 0;
    double updateStallTimeout = 5.0;
    std::size_t updatesCommittedCount = 0;
    std::size_t updatesRolledBackCount = 0;
    std::size_t staleEpochMessagesCount = 0;
    /** Blind-window bookkeeping: last wave seen, pending swap mark. */
    double lastWaveTime = -1.0;
    bool swapPending = false;
    double swapLastWave = 0.0;
    double blindWindow = 0.0;
};

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_RUNTIME_H
