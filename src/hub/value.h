/**
 * @file
 * Values flowing between algorithm instances on the sensor hub.
 */

#ifndef SIDEWINDER_HUB_VALUE_H
#define SIDEWINDER_HUB_VALUE_H

#include <variant>
#include <vector>

#include "dsp/fft.h"
#include "il/algorithm_info.h"
#include "support/error.h"

namespace sidewinder::hub {

/**
 * A dataflow value: a scalar, a frame of real samples, or a frame of
 * complex FFT bins. Mirrors il::ValueKind.
 */
class Value
{
  public:
    Value() : storage(0.0) {}
    Value(double scalar) : storage(scalar) {}
    Value(std::vector<double> frame) : storage(std::move(frame)) {}
    Value(std::vector<dsp::Complex> bins) : storage(std::move(bins)) {}

    /** Kind tag of the held alternative. */
    il::ValueKind
    kind() const
    {
        if (std::holds_alternative<double>(storage))
            return il::ValueKind::Scalar;
        if (std::holds_alternative<std::vector<double>>(storage))
            return il::ValueKind::Frame;
        return il::ValueKind::ComplexFrame;
    }

    /** Scalar accessor; throws InternalError on kind mismatch. */
    double
    scalar() const
    {
        if (const double *v = std::get_if<double>(&storage))
            return *v;
        throw InternalError("Value is not a scalar");
    }

    /** Frame accessor; throws InternalError on kind mismatch. */
    const std::vector<double> &
    frame() const
    {
        if (const auto *v = std::get_if<std::vector<double>>(&storage))
            return *v;
        throw InternalError("Value is not a frame");
    }

    /** Complex-frame accessor; throws InternalError on mismatch. */
    const std::vector<dsp::Complex> &
    complexFrame() const
    {
        if (const auto *v =
                std::get_if<std::vector<dsp::Complex>>(&storage))
            return *v;
        throw InternalError("Value is not a complex frame");
    }

    /**
     * Mutable frame storage for output-parameter kernel invocation:
     * makes this value a Frame (preserving the existing vector, and
     * thus its capacity, when it already is one) and returns the
     * vector for in-place writing. Steady-state nodes keep emitting
     * the same kind, so the buffer is reused wave after wave.
     */
    std::vector<double> &
    frameStorage()
    {
        if (auto *v = std::get_if<std::vector<double>>(&storage))
            return *v;
        storage = std::vector<double>();
        return std::get<std::vector<double>>(storage);
    }

    /** Mutable complex-frame storage; see frameStorage(). */
    std::vector<dsp::Complex> &
    complexFrameStorage()
    {
        if (auto *v = std::get_if<std::vector<dsp::Complex>>(&storage))
            return *v;
        storage = std::vector<dsp::Complex>();
        return std::get<std::vector<dsp::Complex>>(storage);
    }

    /**
     * Number of cost units this value represents when consumed: 1 for
     * scalars, the element count for frames.
     */
    std::size_t
    units() const
    {
        switch (kind()) {
          case il::ValueKind::Scalar:
            return 1;
          case il::ValueKind::Frame:
            return frame().size();
          case il::ValueKind::ComplexFrame:
            return complexFrame().size();
        }
        return 1;
    }

  private:
    std::variant<double, std::vector<double>, std::vector<dsp::Complex>>
        storage;
};

} // namespace sidewinder::hub

#endif // SIDEWINDER_HUB_VALUE_H
