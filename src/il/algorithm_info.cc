#include "il/algorithm_info.h"

namespace sidewinder::il {

namespace {

std::vector<AlgorithmInfo>
buildTable()
{
    using VK = ValueKind;
    std::vector<AlgorithmInfo> table;

    auto add = [&](std::string name, std::size_t min_in, std::size_t max_in,
                   std::size_t min_p, std::size_t max_p, VK in, VK out,
                   double cycles, bool fft_family = false) {
        table.push_back(AlgorithmInfo{std::move(name), min_in, max_in,
                                      min_p, max_p, in, out, cycles,
                                      fft_family});
    };

    // Data filtering (noise reduction).
    add("movingAvg", 1, 1, 1, 1, VK::Scalar, VK::Scalar, 4.0);
    add("expMovingAvg", 1, 1, 1, 1, VK::Scalar, VK::Scalar, 3.0);

    // Windowing: params = {size[, hamming(0/1)[, hop]]}.
    add("window", 1, 1, 1, 3, VK::Scalar, VK::Frame, 2.0);

    // Transforms.
    add("fft", 1, 1, 0, 0, VK::Frame, VK::ComplexFrame, 16.0, true);
    add("ifft", 1, 1, 0, 0, VK::ComplexFrame, VK::Frame, 16.0, true);
    add("spectrum", 1, 1, 0, 0, VK::ComplexFrame, VK::Frame, 6.0);

    // FFT-based filtering: params = {cutoffHz}.
    add("lowPass", 1, 1, 1, 1, VK::Frame, VK::Frame, 40.0, true);
    add("highPass", 1, 1, 1, 1, VK::Frame, VK::Frame, 40.0, true);

    // Single-bin spectral probes (Goertzel): params = {targetHz}.
    add("goertzel", 1, 1, 1, 1, VK::Frame, VK::Scalar, 3.0);
    add("goertzelRel", 1, 1, 1, 1, VK::Frame, VK::Scalar, 3.5);

    // Feature extraction.
    add("vectorMagnitude", 1, 8, 0, 0, VK::Scalar, VK::Scalar, 6.0);
    add("zcr", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("mean", 1, 1, 0, 0, VK::Frame, VK::Scalar, 1.0);
    add("variance", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("stddev", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.5);
    add("min", 1, 1, 0, 0, VK::Frame, VK::Scalar, 1.0);
    add("max", 1, 1, 0, 0, VK::Frame, VK::Scalar, 1.0);
    add("rms", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("range", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("dominantFreqHz", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("dominantFreqMag", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);
    add("peakToMeanRatio", 1, 1, 0, 0, VK::Frame, VK::Scalar, 2.0);

    // Admission control.
    add("minThreshold", 1, 1, 1, 1, VK::Scalar, VK::Scalar, 1.0);
    add("maxThreshold", 1, 1, 1, 1, VK::Scalar, VK::Scalar, 1.0);
    add("bandThreshold", 1, 1, 2, 2, VK::Scalar, VK::Scalar, 1.0);
    add("outsideBandThreshold", 1, 1, 2, 2, VK::Scalar, VK::Scalar, 1.0);

    // Local extrema: params = {low, high[, refractory]}.
    add("localMaxima", 1, 1, 2, 3, VK::Scalar, VK::Scalar, 3.0);
    add("localMinima", 1, 1, 2, 3, VK::Scalar, VK::Scalar, 3.0);

    // Combinators over conditional branches.
    add("and", 2, 8, 0, 0, VK::Scalar, VK::Scalar, 1.0);
    add("or", 2, 8, 0, 0, VK::Scalar, VK::Scalar, 1.0);

    // Duration / debouncing: params = {count}.
    add("consecutive", 1, 1, 1, 1, VK::Scalar, VK::Scalar, 1.0);

    return table;
}

} // namespace

const std::vector<AlgorithmInfo> &
standardAlgorithms()
{
    static const std::vector<AlgorithmInfo> table = buildTable();
    return table;
}

std::optional<AlgorithmInfo>
findAlgorithm(const std::string &name)
{
    for (const auto &info : standardAlgorithms())
        if (info.name == name)
            return info;
    return std::nullopt;
}

bool
isKnownAlgorithm(const std::string &name)
{
    return findAlgorithm(name).has_value();
}

} // namespace sidewinder::il
