/**
 * @file
 * Metadata for the platform's standardized algorithm set.
 *
 * Section 3.8 of the paper argues the set of hub algorithms "should be
 * standardized by the platform". This table is that standard: it is
 * consulted by the phone-side validator (so bad pipelines are rejected
 * before being shipped) and by the hub-side registry (which provides a
 * kernel for every entry).
 */

#ifndef SIDEWINDER_IL_ALGORITHM_INFO_H
#define SIDEWINDER_IL_ALGORITHM_INFO_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace sidewinder::il {

/** Shape of values flowing on an edge of the dataflow graph. */
enum class ValueKind {
    /** A single number per firing. */
    Scalar,
    /** A frame of real samples. */
    Frame,
    /** A frame of complex bins (FFT output). */
    ComplexFrame,
};

/** Static description of one standardized algorithm. */
struct AlgorithmInfo
{
    /** IL name, e.g. "movingAvg". */
    std::string name;
    /** Minimum number of data inputs. */
    std::size_t minInputs;
    /** Maximum number of data inputs. */
    std::size_t maxInputs;
    /** Minimum number of numeric parameters. */
    std::size_t minParams;
    /** Maximum number of numeric parameters. */
    std::size_t maxParams;
    /** Required kind of every input edge. */
    ValueKind inputKind;
    /** Kind of the produced edge. */
    ValueKind outputKind;
    /**
     * Relative per-invocation cost in abstract MCU cycles for one unit
     * of input (one sample for scalar algorithms, one frame element for
     * frame algorithms). FFT-family entries carry an extra log2 factor
     * applied by the capability model.
     */
    double cyclesPerUnit;
    /** True for FFT-family algorithms (cost scales with N log2 N). */
    bool fftFamily;
};

/** The complete standardized algorithm table. */
const std::vector<AlgorithmInfo> &standardAlgorithms();

/** Look up one algorithm by IL name. */
std::optional<AlgorithmInfo> findAlgorithm(const std::string &name);

/** True when @p name is in the standardized set. */
bool isKnownAlgorithm(const std::string &name);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_ALGORITHM_INFO_H
