#include "il/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "il/lower.h"
#include "il/plan.h"

namespace sidewinder::il {

namespace {

bool
isPositiveInteger(double v)
{
    return v >= 1.0 && v == std::floor(v);
}

bool
isPowerOfTwoValue(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

const char *
kindName(ValueKind kind)
{
    switch (kind) {
      case ValueKind::Scalar:
        return "scalar";
      case ValueKind::Frame:
        return "frame";
      case ValueKind::ComplexFrame:
        return "complex-frame";
    }
    return "?";
}

/**
 * Algorithms with admission-control semantics: they bound the wake
 * rate at OUT from above (Section 3.2's conditionals). A path to OUT
 * without any of these wakes the main CPU on every upstream emission.
 */
bool
isConditionalAlgorithm(const std::string &name)
{
    static const std::set<std::string> conditionals = {
        "minThreshold",  "maxThreshold", "bandThreshold",
        "outsideBandThreshold", "localMaxima", "localMinima",
        "consecutive",
    };
    return conditionals.count(name) != 0;
}

/** Compact human rendering of a double (no trailing zeros). */
std::string
formatNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

/** Full-precision rendering for JSON output. */
std::string
formatJsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Everything the analyzer tracks about one defined node. */
struct NodeRecord
{
    const Statement *stmt = nullptr;
    SourceSpan span;
    NodeStream stream;
    /** False when an error left the stream a placeholder. */
    bool streamKnown = false;
    /** Node ids this node reads (channels omitted). */
    std::vector<NodeId> nodeInputs;
};

/** Appends diagnostics with shared bookkeeping. */
class Emitter
{
  public:
    explicit Emitter(std::vector<Diagnostic> &sink) : sink(sink) {}

    void
    emit(const char *code, Severity severity, SourceSpan span,
         NodeId node, std::string message, std::string hint = {})
    {
        Diagnostic d;
        d.code = code;
        d.severity = severity;
        d.line = span.line;
        d.column = span.column;
        d.node = node;
        d.message = std::move(message);
        d.hint = std::move(hint);
        sink.push_back(std::move(d));
    }

  private:
    std::vector<Diagnostic> &sink;
};

/**
 * Tolerant version of validate()'s deriveStream: emits diagnostics
 * instead of throwing, clamps bad parameters to keep the derived
 * stream usable, and guards every parameter access (arity violations
 * have already been reported, not enforced).
 */
NodeStream
deriveStreamChecked(const Statement &stmt, const AlgorithmInfo &info,
                    const std::vector<NodeStream> &inputs,
                    SourceSpan span, Emitter &diags)
{
    NodeStream out;
    out.kind = info.outputKind;

    double rate = inputs.front().fireRateHz;
    for (const auto &in : inputs)
        rate = std::min(rate, in.fireRateHz);
    out.fireRateHz = rate;
    out.frameSize = inputs.front().frameSize;
    out.baseRateHz = inputs.front().baseRateHz;
    out.fftSize = inputs.front().fftSize;

    const auto &p = stmt.params;
    const std::string &name = info.name;
    const NodeId id = stmt.id;

    auto param = [&](std::size_t i, double fallback) {
        return i < p.size() ? p[i] : fallback;
    };

    if (name == "movingAvg") {
        if (!p.empty() && !isPositiveInteger(p[0]))
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       "movingAvg window must be a positive integer, "
                       "got " + formatNumber(p[0]),
                       "use an integer window length >= 1");
        else if (!p.empty() && p[0] == 1.0)
            diags.emit(SW102_IDENTITY_STAGE, Severity::Warning, span,
                       id,
                       "movingAvg over a window of 1 is an identity "
                       "stage",
                       "remove the stage or enlarge the window");
    } else if (name == "expMovingAvg") {
        if (!p.empty() && (!(p[0] > 0.0) || p[0] > 1.0))
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       "expMovingAvg alpha must be in (0,1], got " +
                           formatNumber(p[0]),
                       "pick an alpha such as 0.1");
        else if (!p.empty() && p[0] == 1.0)
            diags.emit(SW102_IDENTITY_STAGE, Severity::Warning, span,
                       id,
                       "expMovingAvg with alpha=1 performs no "
                       "smoothing",
                       "remove the stage or lower alpha");
    } else if (name == "window") {
        double size_param = param(0, 1.0);
        if (!isPositiveInteger(size_param)) {
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       "window size must be a positive integer, got " +
                           formatNumber(size_param),
                       "use an integer window length >= 1");
            size_param = std::max(1.0, std::floor(size_param));
        }
        const double hamming = param(1, 0.0);
        if (hamming != 0.0 && hamming != 1.0)
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       "window hamming flag must be 0 or 1, got " +
                           formatNumber(hamming));
        const auto size = static_cast<std::size_t>(size_param);
        std::size_t hop = size;
        if (p.size() >= 3) {
            if (!isPositiveInteger(p[2]) || p[2] > size_param)
                diags.emit(SW009_BAD_PARAMETER, Severity::Error, span,
                           id,
                           "window hop must be in [1, size], got " +
                               formatNumber(p[2]));
            else
                hop = static_cast<std::size_t>(p[2]);
        }
        out.frameSize = size;
        out.baseRateHz = inputs.front().fireRateHz;
        out.fireRateHz = inputs.front().fireRateHz /
                         static_cast<double>(std::max<std::size_t>(hop, 1));
        out.fftSize = 0;
    } else if (name == "fft") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            diags.emit(SW010_FRAME_NOT_POW2, Severity::Error, span, id,
                       "fft input frame size must be a power of two, "
                       "got " + std::to_string(inputs.front().frameSize),
                       "use a power-of-two window size, e.g. 128 or "
                       "256");
        out.fftSize = inputs.front().frameSize;
    } else if (name == "ifft") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            diags.emit(SW010_FRAME_NOT_POW2, Severity::Error, span, id,
                       "ifft input frame size must be a power of two, "
                       "got " + std::to_string(inputs.front().frameSize),
                       "use a power-of-two window size upstream");
    } else if (name == "spectrum") {
        if (inputs.front().fftSize == 0)
            diags.emit(SW012_MISSING_FFT, Severity::Error, span, id,
                       "spectrum requires an fft stage upstream",
                       "insert an fft stage before spectrum");
        out.frameSize = inputs.front().fftSize / 2 + 1;
    } else if (name == "lowPass" || name == "highPass") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            diags.emit(SW010_FRAME_NOT_POW2, Severity::Error, span, id,
                       name + " frame size must be a power of two, "
                       "got " + std::to_string(inputs.front().frameSize),
                       "use a power-of-two window size upstream");
        const double nyquist = inputs.front().baseRateHz / 2.0;
        const double cutoff = param(0, 1.0);
        if (!(cutoff > 0.0) || cutoff >= nyquist)
            diags.emit(SW011_NYQUIST, Severity::Error, span, id,
                       name + " cutoff " + formatNumber(cutoff) +
                           " Hz must be in (0, Nyquist=" +
                           formatNumber(nyquist) + " Hz)",
                       "lower the cutoff or raise the sample rate");
        else if (cutoff >= 0.9 * nyquist)
            diags.emit(SW105_NEAR_NYQUIST, Severity::Warning, span, id,
                       name + " cutoff " + formatNumber(cutoff) +
                           " Hz sits within 10% of Nyquist (" +
                           formatNumber(nyquist) + " Hz)",
                       "the transition band will alias; lower the "
                       "cutoff");
    } else if (name == "goertzel" || name == "goertzelRel") {
        const double nyquist = inputs.front().baseRateHz / 2.0;
        const double target = param(0, 1.0);
        if (!(target > 0.0) || target >= nyquist)
            diags.emit(SW011_NYQUIST, Severity::Error, span, id,
                       name + " target " + formatNumber(target) +
                           " Hz must be in (0, Nyquist=" +
                           formatNumber(nyquist) + " Hz)",
                       "lower the target or raise the sample rate");
        else if (target >= 0.9 * nyquist)
            diags.emit(SW105_NEAR_NYQUIST, Severity::Warning, span, id,
                       name + " target " + formatNumber(target) +
                           " Hz sits within 10% of Nyquist (" +
                           formatNumber(nyquist) + " Hz)",
                       "move the probe away from the band edge");
    } else if (name == "dominantFreqHz" || name == "dominantFreqMag" ||
               name == "peakToMeanRatio") {
        if (inputs.front().fftSize == 0)
            diags.emit(SW012_MISSING_FFT, Severity::Error, span, id,
                       name + " requires an fft+spectrum stage "
                       "upstream",
                       "insert fft and spectrum stages before " + name);
        out.frameSize = 0;
    } else if (name == "bandThreshold" ||
               name == "outsideBandThreshold") {
        if (p.size() >= 2 && p[0] > p[1])
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       name + " band [" + formatNumber(p[0]) + ", " +
                           formatNumber(p[1]) + "] is inverted",
                       "swap the band limits");
        else if (p.size() >= 2 && p[0] == p[1])
            diags.emit(SW106_DEGENERATE_BAND, Severity::Warning, span,
                       id,
                       name + " band [" + formatNumber(p[0]) + ", " +
                           formatNumber(p[1]) +
                           "] is a single point",
                       "widen the band; exact equality rarely "
                       "matches");
    } else if (name == "localMaxima" || name == "localMinima") {
        if (p.size() >= 2 && p[0] > p[1])
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       name + " band [" + formatNumber(p[0]) + ", " +
                           formatNumber(p[1]) + "] is inverted",
                       "swap the band limits");
        else if (p.size() >= 2 && p[0] == p[1])
            diags.emit(SW106_DEGENERATE_BAND, Severity::Warning, span,
                       id,
                       name + " band [" + formatNumber(p[0]) + ", " +
                           formatNumber(p[1]) +
                           "] is a single point",
                       "widen the band; exact equality rarely "
                       "matches");
        if (p.size() >= 3 && (p[2] < 0.0 || p[2] != std::floor(p[2])))
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       name + " refractory must be a non-negative "
                       "integer, got " + formatNumber(p[2]));
    } else if (name == "consecutive") {
        if (!p.empty() && !isPositiveInteger(p[0]))
            diags.emit(SW009_BAD_PARAMETER, Severity::Error, span, id,
                       "consecutive count must be a positive integer, "
                       "got " + formatNumber(p[0]),
                       "use an integer count >= 1");
        else if (!p.empty() && p[0] == 1.0)
            diags.emit(SW102_IDENTITY_STAGE, Severity::Warning, span,
                       id,
                       "consecutive(1) fires on every upstream "
                       "emission; it is an identity stage",
                       "remove the stage or raise the count");
    }

    if (out.kind == ValueKind::Scalar)
        out.frameSize = 0;

    return out;
}

/**
 * Canonical sharing key via the plan-level builder: duplicates of a
 * node inherit its key, so structurally identical subtrees compare
 * equal exactly when il::lower() would merge them.
 */
std::string
subtreeKey(const Statement &stmt,
           const std::map<NodeId, std::string> &node_keys)
{
    std::vector<std::string> input_keys;
    input_keys.reserve(stmt.inputs.size());
    for (const auto &src : stmt.inputs) {
        if (src.kind == SourceRef::Kind::Channel) {
            input_keys.push_back(canonicalChannelKey(src.channel));
        } else {
            auto it = node_keys.find(src.node);
            input_keys.push_back(it != node_keys.end()
                                     ? it->second
                                     : "node:" +
                                           std::to_string(src.node));
        }
    }
    return canonicalNodeKey(stmt.algorithm, stmt.params, input_keys);
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

bool
AnalysisResult::ok() const
{
    return errorCount() == 0;
}

std::size_t
AnalysisResult::errorCount() const
{
    std::size_t n = 0;
    for (const auto &d : diagnostics)
        if (d.severity == Severity::Error)
            ++n;
    return n;
}

std::size_t
AnalysisResult::warningCount() const
{
    std::size_t n = 0;
    for (const auto &d : diagnostics)
        if (d.severity == Severity::Warning)
            ++n;
    return n;
}

double
invokeCost(const AlgorithmInfo &info, const NodeStream &input)
{
    double units = 1.0;
    if (info.inputKind != ValueKind::Scalar)
        units = static_cast<double>(
            std::max<std::size_t>(input.frameSize, 1));
    double cost = info.cyclesPerUnit * units;
    if (info.fftFamily && input.frameSize > 1)
        cost *= std::log2(static_cast<double>(input.frameSize));
    return cost;
}

std::size_t
nodeRamBytes(const AlgorithmInfo &info,
             const std::vector<double> &params, const NodeStream &input,
             const NodeStream &output)
{
    // The model charges what the hub firmware stores, not what this
    // host-side simulator stores: the paper's MCU kernels keep Q15
    // 16-bit fixed-point samples (2 bytes each, 4 bytes per complex
    // bin), while the simulator's doubles are an implementation detail
    // of running on a phone-class host.
    constexpr std::size_t kSampleBytes = 2;
    constexpr std::size_t kComplexBinBytes = 2 * kSampleBytes;

    // Fixed per-node bookkeeping: result slot metadata, wave state,
    // input wiring (the engine's Node struct, scaled to MCU terms).
    std::size_t bytes = 32;

    // Result storage the interpreter keeps between waves.
    const std::size_t out_frame =
        std::max<std::size_t>(output.frameSize, 1);
    switch (output.kind) {
      case ValueKind::Scalar:
        bytes += 4;
        break;
      case ValueKind::Frame:
        bytes += kSampleBytes * out_frame;
        break;
      case ValueKind::ComplexFrame:
        // Packed real-input transform keeps N/2+1 complex bins.
        bytes += kComplexBinBytes * (out_frame / 2 + 1);
        break;
    }

    const std::size_t in_frame =
        std::max<std::size_t>(input.frameSize, 1);
    const std::string &name = info.name;

    auto param = [&](std::size_t i, double fallback) {
        return i < params.size() ? params[i] : fallback;
    };

    if (name == "movingAvg") {
        const double w = std::max(1.0, std::floor(param(0, 1.0)));
        bytes += kSampleBytes * static_cast<std::size_t>(w) + 8;
    } else if (name == "window") {
        // Sample ring plus the Hamming coefficient table when enabled.
        bytes += kSampleBytes * out_frame;
        if (param(1, 0.0) == 1.0)
            bytes += kSampleBytes * out_frame;
    } else if (name == "fft" || name == "ifft") {
        // Plan tables: bit-reversal indices (2 bytes) + twiddle
        // factors (4 bytes per N/2 entry) = 4 bytes per point.
        bytes += 4 * in_frame;
    } else if (name == "lowPass" || name == "highPass") {
        // Embedded FFT plan plus the complex filtering scratch.
        bytes += 4 * in_frame + kComplexBinBytes * (in_frame / 2 + 1);
    } else if (name == "goertzel" || name == "goertzelRel") {
        bytes += 16;
    } else if (name == "localMaxima" || name == "localMinima") {
        bytes += 24;
    } else if (name == "consecutive") {
        bytes += 8;
    } else {
        // Stateless or O(1)-state algorithms (thresholds, reducers,
        // combinators, expMovingAvg, spectrum, features).
        bytes += 8;
    }

    return bytes;
}

AnalysisResult
analyze(const Program &program,
        const std::vector<ChannelInfo> &channels)
{
    AnalysisResult result;
    Emitter diags(result.diagnostics);

    if (program.statements.empty()) {
        diags.emit(SW001_EMPTY_PROGRAM, Severity::Error,
                   SourceSpan{1, 1}, 0, "program is empty",
                   "a program needs at least one statement and an OUT");
        return result;
    }

    std::map<std::string, const ChannelInfo *> channel_by_name;
    for (const auto &ch : channels)
        channel_by_name[ch.name] = &ch;

    std::map<NodeId, NodeRecord> nodes;
    std::set<NodeId> consumed;
    bool seen_out = false;
    NodeId out_feeder = 0;
    SourceSpan out_span{0, 0};
    /** Duplicate-subtree detection state. */
    std::map<std::string, NodeId> subtree_owner;
    std::map<NodeId, std::string> node_keys;

    for (std::size_t index = 0; index < program.statements.size();
         ++index) {
        const Statement &stmt = program.statements[index];
        const SourceSpan span = statementSpan(stmt, index);

        if (seen_out) {
            diags.emit(SW013_OUT_STATEMENT, Severity::Error, span,
                       stmt.id,
                       "statement after OUT; OUT must be the final "
                       "statement",
                       "move the OUT statement to the end");
            continue;
        }
        if (stmt.inputs.empty()) {
            diags.emit(SW015_NO_INPUTS, Severity::Error, span, stmt.id,
                       "statement has no inputs");
            continue;
        }

        // Resolve input streams, tolerating unknown references.
        std::vector<NodeStream> input_streams;
        std::vector<bool> input_known;
        std::vector<NodeId> node_inputs;
        for (const auto &src : stmt.inputs) {
            if (src.kind == SourceRef::Kind::Channel) {
                auto it = channel_by_name.find(src.channel);
                if (it == channel_by_name.end()) {
                    diags.emit(SW002_UNKNOWN_CHANNEL, Severity::Error,
                               span, stmt.id,
                               "unknown sensor channel '" +
                                   src.channel + "'",
                               "available channels are fixed by the "
                               "hub configuration");
                    input_streams.emplace_back();
                    input_known.push_back(false);
                    continue;
                }
                NodeStream s;
                s.kind = ValueKind::Scalar;
                s.fireRateHz = it->second->sampleRateHz;
                s.baseRateHz = it->second->sampleRateHz;
                input_streams.push_back(s);
                input_known.push_back(true);
            } else {
                auto it = nodes.find(src.node);
                if (it == nodes.end()) {
                    diags.emit(SW004_UNDEFINED_NODE, Severity::Error,
                               span, stmt.id,
                               "node " + std::to_string(src.node) +
                                   " referenced before definition",
                               "programs must be in topological "
                               "order");
                    input_streams.emplace_back();
                    input_known.push_back(false);
                } else {
                    input_streams.push_back(it->second.stream);
                    input_known.push_back(it->second.streamKnown);
                }
                consumed.insert(src.node);
                node_inputs.push_back(src.node);
            }
        }

        if (stmt.isOut) {
            seen_out = true;
            out_span = span;
            if (stmt.inputs.size() != 1 ||
                stmt.inputs[0].kind != SourceRef::Kind::Node) {
                diags.emit(SW013_OUT_STATEMENT, Severity::Error, span,
                           0, "OUT must be fed by exactly one node",
                           "aggregate branches (vectorMagnitude, "
                           "and/or) before OUT");
            } else {
                out_feeder = stmt.inputs[0].node;
                if (input_known[0] &&
                    input_streams[0].kind != ValueKind::Scalar)
                    diags.emit(SW013_OUT_STATEMENT, Severity::Error,
                               span, out_feeder,
                               "OUT must be fed a scalar stream, got "
                               "a " + std::string(kindName(
                                          input_streams[0].kind)),
                               "reduce the frame (mean, rms, ...) "
                               "before OUT");
            }
            continue;
        }

        bool register_node = true;
        if (stmt.id <= 0) {
            diags.emit(SW005_BAD_NODE_ID, Severity::Error, span,
                       stmt.id,
                       "node ids must be positive, got " +
                           std::to_string(stmt.id));
            register_node = false;
        } else if (nodes.count(stmt.id)) {
            diags.emit(SW005_BAD_NODE_ID, Severity::Error, span,
                       stmt.id,
                       "duplicate node id " + std::to_string(stmt.id),
                       "ids must be unique within a program");
            register_node = false;
        }

        const auto info = findAlgorithm(stmt.algorithm);
        if (!info) {
            diags.emit(SW003_UNKNOWN_ALGORITHM, Severity::Error, span,
                       stmt.id,
                       "unknown algorithm '" + stmt.algorithm + "'",
                       "see il::standardAlgorithms() for the "
                       "platform's standardized set");
            if (register_node) {
                // Register a placeholder so downstream statements can
                // still be checked without cascading SW004 noise.
                NodeRecord rec;
                rec.stmt = &stmt;
                rec.span = span;
                rec.stream.fireRateHz = input_streams.front().fireRateHz;
                rec.streamKnown = false;
                rec.nodeInputs = node_inputs;
                nodes[stmt.id] = std::move(rec);
            }
            continue;
        }

        if (stmt.inputs.size() < info->minInputs ||
            stmt.inputs.size() > info->maxInputs) {
            std::ostringstream msg;
            msg << stmt.algorithm << " takes " << info->minInputs;
            if (info->maxInputs != info->minInputs)
                msg << ".." << info->maxInputs;
            msg << " inputs, got " << stmt.inputs.size();
            diags.emit(SW006_INPUT_ARITY, Severity::Error, span,
                       stmt.id, msg.str());
        }
        if (stmt.params.size() < info->minParams ||
            stmt.params.size() > info->maxParams) {
            std::ostringstream msg;
            msg << stmt.algorithm << " takes " << info->minParams;
            if (info->maxParams != info->minParams)
                msg << ".." << info->maxParams;
            msg << " params, got " << stmt.params.size();
            diags.emit(SW007_PARAM_ARITY, Severity::Error, span,
                       stmt.id, msg.str());
        }

        for (std::size_t i = 0; i < input_streams.size(); ++i) {
            if (!input_known[i] ||
                input_streams[i].kind == info->inputKind)
                continue;
            if (input_streams[i].kind == ValueKind::Scalar &&
                info->inputKind == ValueKind::Frame)
                diags.emit(SW016_SCALAR_INTO_FRAME, Severity::Error,
                           span, stmt.id,
                           "scalar stream feeds frame-only algorithm " +
                               stmt.algorithm,
                           "insert a window(size) stage to assemble "
                           "frames");
            else
                diags.emit(SW008_INPUT_KIND, Severity::Error, span,
                           stmt.id,
                           stmt.algorithm + " expects " +
                               kindName(info->inputKind) +
                               " inputs, got " +
                               kindName(input_streams[i].kind));
            break; // one kind finding per statement is enough
        }

        const NodeStream stream = deriveStreamChecked(
            stmt, *info, input_streams, span, diags);

        // Static cost: per-invocation cycles at the nominal firing
        // rate, plus the node's RAM footprint.
        NodeCost cost;
        cost.cyclesPerInvoke = invokeCost(*info, input_streams.front());
        double rate = input_streams.front().fireRateHz;
        for (const auto &s : input_streams)
            rate = std::min(rate, s.fireRateHz);
        cost.invokeRateHz = rate;
        cost.cyclesPerSecond = cost.cyclesPerInvoke * cost.invokeRateHz;
        cost.ramBytes = nodeRamBytes(*info, stmt.params,
                                     input_streams.front(), stream);

        if (register_node) {
            NodeRecord rec;
            rec.stmt = &stmt;
            rec.span = span;
            rec.stream = stream;
            rec.streamKnown = true;
            rec.nodeInputs = node_inputs;
            nodes[stmt.id] = std::move(rec);
            result.streams[stmt.id] = stream;
            result.cost.nodes[stmt.id] = cost;
            result.cost.cyclesPerSecond += cost.cyclesPerSecond;
            result.cost.ramBytes += cost.ramBytes;

            // Duplicate-subtree detection (what il::optimize() and
            // il::lower() share): duplicates inherit the owner's key.
            const std::string key = subtreeKey(stmt, node_keys);
            node_keys[stmt.id] = key;
            auto owner = subtree_owner.find(key);
            if (owner != subtree_owner.end()) {
                diags.emit(SW101_DUPLICATE_SUBTREE, Severity::Warning,
                           span, stmt.id,
                           "node " + std::to_string(stmt.id) +
                               " duplicates node " +
                               std::to_string(owner->second) +
                               " (same algorithm, parameters, and "
                               "inputs)",
                           "il::optimize() merges these; reference "
                           "node " + std::to_string(owner->second) +
                               " directly to shrink the program");
            } else {
                subtree_owner[key] = stmt.id;
            }

            // Subsumed threshold chains: a threshold directly feeding
            // the same threshold algorithm folds to one stage.
            if (isConditionalAlgorithm(stmt.algorithm) &&
                stmt.algorithm != "consecutive" &&
                node_inputs.size() == 1) {
                auto parent = nodes.find(node_inputs[0]);
                if (parent != nodes.end() && parent->second.stmt &&
                    parent->second.stmt->algorithm == stmt.algorithm)
                    diags.emit(SW103_SUBSUMED_THRESHOLD,
                               Severity::Warning, span, stmt.id,
                               stmt.algorithm + " node " +
                                   std::to_string(stmt.id) +
                                   " directly follows another " +
                                   stmt.algorithm +
                                   "; the pair folds to a single "
                                   "stage",
                               "merge the two limits into one "
                               "stage");
            }
        }
    }

    if (!seen_out)
        diags.emit(SW013_OUT_STATEMENT, Severity::Error,
                   statementSpan(program.statements.back(),
                                 program.statements.size() - 1),
                   0, "program has no OUT statement",
                   "terminate the pipeline with 'n -> OUT;'");

    // Dead nodes: defined but never consumed.
    for (const auto &[id, rec] : nodes) {
        if (!consumed.count(id))
            diags.emit(SW014_DEAD_NODE, Severity::Error, rec.span, id,
                       "node " + std::to_string(id) +
                           " is never consumed; pipelines must "
                           "converge to OUT",
                       "feed it into the remaining chain or delete "
                       "it");
    }

    // Wake-rate bound and the unconditional-wake check: walk the
    // ancestry of the node feeding OUT.
    if (seen_out && out_feeder != 0) {
        auto feeder = nodes.find(out_feeder);
        if (feeder != nodes.end() && feeder->second.streamKnown) {
            result.cost.wakeRateBoundHz =
                feeder->second.stream.fireRateHz;

            bool guarded = false;
            std::set<NodeId> visited;
            std::vector<NodeId> frontier = {out_feeder};
            while (!frontier.empty() && !guarded) {
                const NodeId id = frontier.back();
                frontier.pop_back();
                if (!visited.insert(id).second)
                    continue;
                auto it = nodes.find(id);
                if (it == nodes.end() || it->second.stmt == nullptr)
                    continue;
                if (isConditionalAlgorithm(
                        it->second.stmt->algorithm)) {
                    guarded = true;
                    break;
                }
                for (NodeId input : it->second.nodeInputs)
                    frontier.push_back(input);
            }
            if (!guarded)
                diags.emit(SW104_UNCONDITIONAL_WAKE, Severity::Warning,
                           out_span, out_feeder,
                           "wake-up condition has no threshold or "
                           "conditional stage; OUT fires at up to " +
                               formatNumber(
                                   result.cost.wakeRateBoundHz) +
                               " Hz",
                           "add a threshold (minThreshold, "
                           "bandThreshold, ...) so the main CPU only "
                           "wakes on events");
        }
    }

    // Single source of truth for the totals: a legal program is
    // lowered and charged the plan's precomputed costs, so the
    // analyzer, admission control, and the engine can never disagree
    // (shared subtrees are counted once — the form the hub
    // instantiates). The per-node breakdown above keeps every
    // statement, duplicates included, for diagnostics.
    if (result.ok()) {
        const ExecutionPlan plan = lower(program, channels);
        const ProgramCost lowered = plan.cost();
        result.cost.cyclesPerSecond = lowered.cyclesPerSecond;
        result.cost.ramBytes = lowered.ramBytes;
        result.cost.wakeRateBoundHz = lowered.wakeRateBoundHz;
        result.cost.planNodeCount = lowered.planNodeCount;
        // lower() seals every plan, so the sealed fingerprint is the
        // structural hash fleet tooling keys cached verdicts by.
        result.planHash = plan.sealedHash;
    }

    return result;
}

std::string
renderText(const AnalysisResult &result, const std::string &source_name)
{
    std::ostringstream out;
    for (const auto &d : result.diagnostics) {
        out << source_name << ":" << d.line << ":" << d.column << ": "
            << severityName(d.severity) << ": [" << d.code << "] "
            << d.message;
        if (d.node != 0)
            out << " (node " << d.node << ")";
        out << "\n";
        if (!d.hint.empty())
            out << "    hint: " << d.hint << "\n";
    }
    out << source_name << ": " << result.errorCount() << " error(s), "
        << result.warningCount() << " warning(s); estimated load "
        << formatNumber(result.cost.cyclesPerSecond)
        << " cycle units/s, RAM " << result.cost.ramBytes
        << " bytes, wake-rate bound "
        << formatNumber(result.cost.wakeRateBoundHz) << " Hz\n";
    return out.str();
}

std::string
renderJson(const AnalysisResult &result, const std::string &source_name)
{
    std::ostringstream out;
    out << "{\"file\":\"" << escapeJson(source_name) << "\",";
    out << "\"analyzerVersion\":" << kAnalyzerVersion << ",";
    // Hex string: 64-bit hashes overflow JSON's double-backed numbers.
    out << "\"planHash\":\"" << std::hex << result.planHash
        << std::dec << "\",";
    out << "\"ok\":" << (result.ok() ? "true" : "false") << ",";
    out << "\"errors\":" << result.errorCount() << ",";
    out << "\"warnings\":" << result.warningCount() << ",";
    out << "\"diagnostics\":[";
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const auto &d = result.diagnostics[i];
        if (i)
            out << ",";
        out << "{\"code\":\"" << d.code << "\",\"severity\":\""
            << severityName(d.severity) << "\",\"line\":" << d.line
            << ",\"column\":" << d.column << ",\"node\":" << d.node
            << ",\"message\":\"" << escapeJson(d.message)
            << "\",\"hint\":\"" << escapeJson(d.hint) << "\"}";
    }
    out << "],\"cost\":{\"cyclesPerSecond\":"
        << formatJsonNumber(result.cost.cyclesPerSecond)
        << ",\"ramBytes\":" << result.cost.ramBytes
        << ",\"wakeRateBoundHz\":"
        << formatJsonNumber(result.cost.wakeRateBoundHz)
        << ",\"planNodeCount\":" << result.cost.planNodeCount
        << ",\"nodes\":[";
    bool first = true;
    for (const auto &[id, cost] : result.cost.nodes) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"id\":" << id << ",\"cyclesPerInvoke\":"
            << formatJsonNumber(cost.cyclesPerInvoke)
            << ",\"invokeRateHz\":"
            << formatJsonNumber(cost.invokeRateHz)
            << ",\"cyclesPerSecond\":"
            << formatJsonNumber(cost.cyclesPerSecond)
            << ",\"ramBytes\":" << cost.ramBytes << "}";
    }
    out << "]}}";
    return out.str();
}

} // namespace sidewinder::il
