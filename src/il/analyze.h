/**
 * @file
 * Static analysis of IL programs: admission-control cost modeling and
 * dataflow diagnostics.
 *
 * The paper's central safety claim (Section 2.2) is that shipping a
 * restricted dataflow IL lets the hub reject bad programs before they
 * execute, and Section 3.6's admission control assumes the platform
 * can decide *statically* whether a wake-up condition fits a given
 * microcontroller. il::validate() enforces legality and throws on the
 * first violation; analyze() goes further:
 *
 *  - it never throws on any program the parser accepts — every
 *    violation becomes a structured Diagnostic with a stable SWxxx
 *    code, severity, line:column span, message, and fix hint (the
 *    developer-friendliness gap declarative sensing frontends argue
 *    must be closed by tooling, not runtime failure);
 *  - it derives a per-node static cost model — abstract cycles/second
 *    from firing rates x per-algorithm cost, state-block + frame RAM
 *    bytes, and the worst-case wake-rate bound at OUT — which
 *    hub::selectMcu() and the hub runtime check against McuModel
 *    budgets for a provable admission-control verdict;
 *  - beyond legality it reports warnings the optimizer and the
 *    developer can act on: duplicate subtrees, identity stages,
 *    subsumed threshold chains, unconditional wake-ups, near-Nyquist
 *    cutoffs, and degenerate bands.
 *
 * The full diagnostic catalogue lives in docs/diagnostics.md; the
 * tools/swlint CLI renders analyses for humans and CI.
 */

#ifndef SIDEWINDER_IL_ANALYZE_H
#define SIDEWINDER_IL_ANALYZE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "il/algorithm_info.h"
#include "il/ast.h"
#include "il/validate.h"

namespace sidewinder::il {

/** How bad a diagnostic is. */
enum class Severity {
    /** Informational; never affects exit status. */
    Note,
    /** Legal but suspicious; an error under --Werror. */
    Warning,
    /** The program would be rejected by validate() or admission. */
    Error,
};

/** Lower-case name of @p severity ("note", "warning", "error"). */
const char *severityName(Severity severity);

/** One structured finding about a program. */
struct Diagnostic
{
    /** Stable code, e.g. "SW010" (catalogued in docs/diagnostics.md). */
    std::string code;
    Severity severity = Severity::Error;
    /** 1-based statement span (never 0:0; see statementSpan()). */
    int line = 0;
    int column = 0;
    /** Offending node id; 0 for program-level findings. */
    NodeId node = 0;
    /** What is wrong. */
    std::string message;
    /** How to fix it; empty when no concrete fix applies. */
    std::string hint;
};

// Diagnostic codes (errors SW0xx, warnings SW1xx, notes SW2xx). Kept
// as named constants so emitters, tests, and docs cannot drift apart.
inline constexpr const char *SW001_EMPTY_PROGRAM = "SW001";
inline constexpr const char *SW002_UNKNOWN_CHANNEL = "SW002";
inline constexpr const char *SW003_UNKNOWN_ALGORITHM = "SW003";
inline constexpr const char *SW004_UNDEFINED_NODE = "SW004";
inline constexpr const char *SW005_BAD_NODE_ID = "SW005";
inline constexpr const char *SW006_INPUT_ARITY = "SW006";
inline constexpr const char *SW007_PARAM_ARITY = "SW007";
inline constexpr const char *SW008_INPUT_KIND = "SW008";
inline constexpr const char *SW009_BAD_PARAMETER = "SW009";
inline constexpr const char *SW010_FRAME_NOT_POW2 = "SW010";
inline constexpr const char *SW011_NYQUIST = "SW011";
inline constexpr const char *SW012_MISSING_FFT = "SW012";
inline constexpr const char *SW013_OUT_STATEMENT = "SW013";
inline constexpr const char *SW014_DEAD_NODE = "SW014";
inline constexpr const char *SW015_NO_INPUTS = "SW015";
inline constexpr const char *SW016_SCALAR_INTO_FRAME = "SW016";
inline constexpr const char *SW017_ADMISSION = "SW017";
inline constexpr const char *SW101_DUPLICATE_SUBTREE = "SW101";
inline constexpr const char *SW102_IDENTITY_STAGE = "SW102";
inline constexpr const char *SW103_SUBSUMED_THRESHOLD = "SW103";
inline constexpr const char *SW104_UNCONDITIONAL_WAKE = "SW104";
inline constexpr const char *SW105_NEAR_NYQUIST = "SW105";
inline constexpr const char *SW106_DEGENERATE_BAND = "SW106";
inline constexpr const char *SW201_MCU_ASSIGNMENT = "SW201";
inline constexpr const char *SW202_REPUSH_COST = "SW202";
inline constexpr const char *SW203_PLACEMENT = "SW203";
// SW3xx: value-range facts from the interval interpreter
// (il/analyze_range.h). Severity varies with context: SW301 is an
// error when Q15 execution is requested, a warning otherwise.
inline constexpr const char *SW301_Q15_SATURATION = "SW301";
inline constexpr const char *SW302_Q15_PRESCALE = "SW302";
inline constexpr const char *SW310_DEAD_WAKE = "SW310";
inline constexpr const char *SW311_ALWAYS_WAKE = "SW311";
inline constexpr const char *SW312_PROVEN_WAKE_RATE = "SW312";

/**
 * Version of the analyzer's rule set, bumped whenever a diagnostic's
 * meaning or the cost/range model changes. Rendered into swlint's
 * JSON so fleet tooling and golden corpora can detect stale verdicts.
 */
inline constexpr int kAnalyzerVersion = 2;

/** Static cost of one algorithm instance. */
struct NodeCost
{
    /** Abstract MCU cycle units per invocation. */
    double cyclesPerInvoke = 0.0;
    /** Nominal invocations per second. */
    double invokeRateHz = 0.0;
    /** Sustained demand: cyclesPerInvoke x invokeRateHz. */
    double cyclesPerSecond = 0.0;
    /** State block + output storage + bookkeeping, bytes. */
    std::size_t ramBytes = 0;
};

/** Static cost of a whole program. */
struct ProgramCost
{
    /** Sum of per-node sustained compute demand. */
    double cyclesPerSecond = 0.0;
    /** Sum of per-node RAM footprints. */
    std::size_t ramBytes = 0;
    /**
     * Worst-case wake-ups per second at OUT (the nominal firing rate
     * of the node feeding OUT; conditionals bound it from above).
     */
    double wakeRateBoundHz = 0.0;
    /**
     * Nodes in the lowered ExecutionPlan — what the hub actually
     * instantiates after sharing. 0 when the program has errors and
     * could not be lowered.
     */
    std::size_t planNodeCount = 0;
    /** Per-node breakdown, keyed by node id. */
    std::map<NodeId, NodeCost> nodes;
};

/** Everything analyze() learned about a program. */
struct AnalysisResult
{
    /** Findings in statement order (program-level findings last). */
    std::vector<Diagnostic> diagnostics;
    /** Cost model (best effort when the program has errors). */
    ProgramCost cost;
    /** Stream properties of every node that could be derived. */
    StreamMap streams;
    /**
     * structuralHash() of the lowered ExecutionPlan the cost totals
     * came from; 0 when the program has errors and could not be
     * lowered. Keys cached verdicts in fleet tooling.
     */
    std::uint64_t planHash = 0;

    /** True when no Error-severity diagnostic was produced. */
    bool ok() const;
    std::size_t errorCount() const;
    std::size_t warningCount() const;
};

/**
 * Statically analyze @p program against @p channels.
 *
 * Unlike validate(), this never throws and always terminates on any
 * program the parser accepts: every rule violation is reported as an
 * Error diagnostic (a program with no Error diagnostics passes
 * validate(), and vice versa), and analysis continues past errors so
 * one run reports everything it can.
 */
AnalysisResult analyze(const Program &program,
                       const std::vector<ChannelInfo> &channels);

/**
 * Per-invocation cost of an algorithm in abstract MCU cycle units
 * given its (first) input stream: cyclesPerUnit x frame size, with an
 * extra log2(N) factor for FFT-family entries. Shared with the hub
 * engine so the admission verdict and the runtime agree.
 */
double invokeCost(const AlgorithmInfo &info, const NodeStream &input);

/**
 * Static RAM footprint of one algorithm instance in bytes: state
 * block (windows, FFT plan tables, filter scratch) + result storage +
 * fixed per-node bookkeeping. Charged at the hub firmware's Q15
 * 16-bit fixed-point sample width, not the simulator's doubles. A
 * calibrated estimate, not an exact sizeof — monotone in frame sizes
 * so budget checks are meaningful.
 */
std::size_t nodeRamBytes(const AlgorithmInfo &info,
                         const std::vector<double> &params,
                         const NodeStream &input,
                         const NodeStream &output);

/**
 * Render @p result as human-readable, gcc-style text:
 *
 *     prog.il:3:1: error: [SW010] fft input frame size 100 ... (node 3)
 *         hint: use a power-of-two window size
 *
 * followed by a one-line cost summary. @p source_name labels the
 * program (file name or "<pipeline>").
 */
std::string renderText(const AnalysisResult &result,
                       const std::string &source_name);

/** Render @p result as a single JSON object (diagnostics + cost). */
std::string renderJson(const AnalysisResult &result,
                       const std::string &source_name);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_ANALYZE_H
