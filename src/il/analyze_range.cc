#include "il/analyze_range.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <numbers>
#include <sstream>

#include "il/ast.h"
#include "il/lower.h"

namespace sidewinder::il {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Closed Q15-safe region for a quantize point. toQ15 counts a
 * saturation event only when the ideal value overshoots the grid by
 * more than one count (|x| >= 1 + 1.5 * 2^-16), so proving |x| <= 1
 * proves zero events with built-in slack for the half-count rounding.
 */
constexpr double kQ15QuantizeSafeAbs = 1.0;

/**
 * Headroom required of fixed-point FFT/inverse-transform internals.
 * The twiddle factors are quantized (|w| <= 1 + 2^-14) and every
 * butterfly injects up to half a count of rounding per stage, so the
 * exact mathematical bound can drift by O(1e-3) relative. A 1% proof
 * margin absorbs all of it with two orders of magnitude to spare.
 */
constexpr double kQ15InternalSafeAbs = 0.99;

} // namespace

// ---------------------------------------------------------------------
// Interval arithmetic.

double
Interval::maxAbs() const
{
    if (isEmpty())
        return 0.0;
    return std::max(std::fabs(lo), std::fabs(hi));
}

double
Interval::width() const
{
    if (isEmpty())
        return 0.0;
    return hi - lo;
}

Interval
Interval::hull(const Interval &other) const
{
    if (isEmpty())
        return other;
    if (other.isEmpty())
        return *this;
    return Interval{std::min(lo, other.lo), std::max(hi, other.hi)};
}

Interval
Interval::intersect(const Interval &other) const
{
    if (isEmpty() || other.isEmpty())
        return empty();
    const Interval out{std::max(lo, other.lo), std::min(hi, other.hi)};
    return out.lo > out.hi ? empty() : out;
}

Interval
Interval::scaled(double factor) const
{
    if (isEmpty())
        return empty();
    const double a = lo * factor;
    const double b = hi * factor;
    return Interval{std::min(a, b), std::max(a, b)};
}

// ---------------------------------------------------------------------
// Channel defaults.

std::vector<ChannelRange>
defaultChannelRanges(const std::vector<ChannelInfo> &channels)
{
    std::vector<ChannelRange> out;
    out.reserve(channels.size());
    for (const ChannelInfo &ch : channels) {
        ChannelRange r;
        r.channel = ch.name;
        if (ch.name.rfind("AUDIO", 0) == 0) {
            // Normalized microphone samples.
            r.lo = -1.0;
            r.hi = 1.0;
        } else if (ch.name.rfind("ACC", 0) == 0) {
            // +/-4 g MEMS accelerometer including gravity, m/s^2.
            r.lo = -40.0;
            r.hi = 40.0;
        } else if (ch.name.rfind("BARO", 0) == 0) {
            // Full span of a Bosch-class barometer, hPa.
            r.lo = 300.0;
            r.hi = 1100.0;
        } else {
            // Unknown sensor: deliberately huge so proofs stay sound;
            // declare a real range to get useful verdicts.
            r.lo = -1e6;
            r.hi = 1e6;
        }
        out.push_back(std::move(r));
    }
    return out;
}

namespace {

// ---------------------------------------------------------------------
// Transfer-function helpers.

/** Facts about one resolved input edge of a node. */
struct EdgeFacts
{
    Interval value;
    double magnitudeBound = 0.0;
    double q15Scale = 1.0;
    double rateHz = 0.0;
    bool reachable = true;
    bool alwaysEmits = true;
    std::size_t frameSize = 0;
    double baseRateHz = 0.0;
};

/** Interval times a coefficient range [cmin, cmax] with cmin >= 0. */
Interval
scaleByCoefRange(const Interval &in, double cmin, double cmax)
{
    if (in.isEmpty())
        return Interval::empty();
    const double candidates[4] = {in.lo * cmin, in.lo * cmax,
                                  in.hi * cmin, in.hi * cmax};
    return Interval{*std::min_element(candidates, candidates + 4),
                    *std::max_element(candidates, candidates + 4)};
}

/**
 * Kept-bin census of the FFT block filter: the exact keep rule of
 * hub's BlockFilterKernel / dsp::FftBlockFilter (bin i of an n-point
 * transform keeps when i * rate / n is on the pass side of the
 * cutoff, mirrors follow their primary). Returns the kept indices in
 * 0..n/2 plus the total kept count including mirrors.
 */
struct KeptBins
{
    /** Band of kept primary bins [first, last] in 0..n/2; empty when
        first > last. */
    long first = 1;
    long last = 0;
    /** Total kept bins including the mirrored half. */
    std::size_t total = 0;
};

KeptBins
keptBinsOf(bool low_pass, double cutoff_hz, std::size_t n,
           double base_rate_hz)
{
    KeptBins kept;
    if (n == 0 || base_rate_hz <= 0.0)
        return kept;
    const long half = static_cast<long>(n / 2);
    kept.first = half + 1;
    kept.last = -1;
    for (long i = 0; i <= half; ++i) {
        // Same expression as dsp::binFrequencyHz so the boundary bin
        // lands on the same side as the kernel.
        const double freq = static_cast<double>(i) * base_rate_hz /
                            static_cast<double>(n);
        const bool keep = low_pass ? freq <= cutoff_hz
                                   : freq >= cutoff_hz;
        if (!keep)
            continue;
        kept.first = std::min(kept.first, i);
        kept.last = std::max(kept.last, i);
        ++kept.total;
        // Mirror bin n - i carries the same fate; 0 and n/2 are their
        // own mirrors.
        if (i != 0 && i != half)
            ++kept.total;
    }
    if (kept.first > kept.last)
        kept.total = 0;
    return kept;
}

/**
 * Worst-case amplitude gain of the brickwall filter keeping @p kept:
 * the l1 norm of its impulse response. h[m] is the Dirichlet-style
 * sum over the kept bins, evaluated in closed form per tap (O(n)
 * total instead of O(n^2)):
 *
 *   h[m] = (1/n) [ keep0 + keepHalf (-1)^m
 *                  + 2 sum_{k=a}^{b} cos(2 pi k m / n) ]
 *
 * with sum_{k=a}^{b} cos(k t) = [sin((b+1/2)t) - sin((a-1/2)t)]
 *                               / (2 sin(t/2)).
 */
double
filterL1Gain(const KeptBins &kept, std::size_t n)
{
    if (kept.total == 0 || n == 0)
        return 0.0;
    if (kept.total == n)
        return 1.0; // All-pass: h = delta.
    const long half = static_cast<long>(n / 2);
    const bool keep0 = kept.first == 0;
    const bool keep_half = kept.last == half;
    // Interior kept band within 1..n/2-1.
    const long a = std::max(kept.first, 1L);
    const long b = std::min(kept.last, half - 1);
    double gain = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        double h = 0.0;
        if (keep0)
            h += 1.0;
        if (keep_half)
            h += (m % 2 == 0) ? 1.0 : -1.0;
        if (a <= b) {
            const double t = 2.0 * std::numbers::pi *
                             static_cast<double>(m) /
                             static_cast<double>(n);
            const double s = std::sin(t / 2.0);
            if (std::fabs(s) < 1e-12) {
                h += 2.0 * static_cast<double>(b - a + 1);
            } else {
                const double num =
                    std::sin((static_cast<double>(b) + 0.5) * t) -
                    std::sin((static_cast<double>(a) - 0.5) * t);
                h += num / s;
            }
        }
        gain += std::fabs(h) / static_cast<double>(n);
    }
    return gain;
}

/** Smallest k with bound * 2^-k <= limit; 0 when no finite k helps. */
int
shiftFor(double bound, double limit)
{
    if (!std::isfinite(bound) || bound <= 0.0 || limit <= 0.0)
        return 0;
    int k = static_cast<int>(std::ceil(std::log2(bound / limit)));
    return std::max(k, 1);
}

/** Format a double the way the golden corpus pins it. */
std::string
fmt(double v)
{
    if (v == kInf)
        return "inf";
    if (v == -kInf)
        return "-inf";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
fmtInterval(const Interval &iv)
{
    if (iv.isEmpty())
        return "(empty)";
    return "[" + fmt(iv.lo) + ", " + fmt(iv.hi) + "]";
}

/** True for the conditional threshold/peak family. */
bool
isThresholdFamily(const std::string &alg)
{
    return alg == "minThreshold" || alg == "maxThreshold" ||
           alg == "bandThreshold" || alg == "outsideBandThreshold" ||
           alg == "localMaxima" || alg == "localMinima";
}

/** The admit set of a threshold algorithm as an interval query. */
Interval
thresholdAdmit(const std::string &alg, const std::vector<double> &p,
               const Interval &in)
{
    if (in.isEmpty())
        return Interval::empty();
    if (alg == "minThreshold")
        return in.intersect(Interval::of(p[0], kInf));
    if (alg == "maxThreshold")
        return in.intersect(Interval::of(-kInf, p[0]));
    if (alg == "bandThreshold")
        return in.intersect(Interval::of(p[0], p[1]));
    // outsideBand: pass x < low or x > high — the hull of the two
    // admitted pieces (a disjunction the domain cannot represent).
    const Interval left = in.intersect(Interval::of(-kInf, p[0]));
    const Interval right = in.intersect(Interval::of(p[1], kInf));
    return left.hull(right);
}

/** Whether a Q15 threshold kernel quantizes (limits on the grid). */
bool
thresholdUsesQ15(const std::string &alg, const std::vector<double> &p)
{
    const auto fits = [](double v) { return v >= -1.0 && v < 1.0; };
    if (alg == "minThreshold" || alg == "maxThreshold")
        return fits(p[0]);
    return fits(p[0]) && fits(p[1]);
}

/** Per-node scratch for the Q15 proof obligations. */
struct Q15Check
{
    bool quantizes = false;
    bool safe = true;
    int shift = 0;
    std::string detail;

    /**
     * Require |bound| <= limit for a quantize point or internal
     * fixed-point stage; records the failure and the pre-scaling
     * shift that would discharge it.
     */
    void
    require(double bound, double limit, const std::string &what)
    {
        if (bound <= limit)
            return;
        safe = false;
        shift = std::max(shift, shiftFor(bound, limit));
        if (detail.empty())
            detail = what + " reaches |" + fmt(bound) + "| > " +
                     fmt(limit);
    }

    /** A plain quantize point: input values times the edge scale. */
    void
    quantize(const Interval &iv, double scale, const std::string &what)
    {
        quantizes = true;
        require(iv.maxAbs() * std::fabs(scale), kQ15QuantizeSafeAbs,
                what);
    }
};

} // namespace

// ---------------------------------------------------------------------
// The interpreter.

RangeAnalysis
analyzeRanges(const ExecutionPlan &plan, const RangeOptions &options)
{
    RangeAnalysis out;
    const std::size_t n = plan.nodeCount();
    out.nodes.resize(n);

    // Resolve declared channel ranges over the per-type defaults.
    out.channelRanges = defaultChannelRanges(plan.channels);
    for (const ChannelRange &declared : options.channelRanges)
        for (ChannelRange &resolved : out.channelRanges)
            if (resolved.channel == declared.channel) {
                resolved.lo = declared.lo;
                resolved.hi = declared.hi;
            }

    bool has_threshold = false;
    std::vector<std::string> q15_details(n);

    for (std::size_t i = 0; i < n; ++i) {
        const std::string &alg = plan.algorithms[i];
        const std::vector<double> &p = plan.params[i];
        const NodeStream &stream = plan.streams[i];
        NodeRange &r = out.nodes[i];
        if (isThresholdFamily(alg))
            has_threshold = true;

        // Gather facts of every input edge.
        std::vector<EdgeFacts> in;
        in.reserve(plan.inputCounts[i]);
        const std::int32_t *refs = plan.inputsOf(i);
        for (std::uint32_t k = 0; k < plan.inputCounts[i]; ++k) {
            EdgeFacts e;
            const std::int32_t ref = refs[k];
            if (ref < 0) {
                const auto ch = static_cast<std::size_t>(-(ref + 1));
                const ChannelRange &range = out.channelRanges[ch];
                e.value = Interval::of(range.lo, range.hi);
                e.rateHz = plan.channels[ch].sampleRateHz;
                e.baseRateHz = e.rateHz;
            } else {
                const auto src = static_cast<std::size_t>(ref);
                const NodeRange &sr = out.nodes[src];
                const NodeStream &ss = plan.streams[src];
                e.value = sr.value;
                e.magnitudeBound = sr.magnitudeBound;
                e.q15Scale = sr.q15Scale;
                e.rateHz = sr.provenRateHz;
                e.reachable = sr.reachable;
                e.alwaysEmits = sr.alwaysEmits;
                e.frameSize = ss.frameSize;
                e.baseRateHz = ss.baseRateHz;
            }
            in.push_back(e);
        }

        // Reachability, always-fires, and the base emission rate.
        // "or" fires when any input does; everything else needs all.
        if (alg == "or") {
            r.reachable = false;
            r.alwaysEmits = false;
            double sum = 0.0;
            for (const EdgeFacts &e : in) {
                r.reachable = r.reachable || e.reachable;
                r.alwaysEmits = r.alwaysEmits || e.alwaysEmits;
                sum += e.rateHz;
            }
            r.provenRateHz = sum;
        } else {
            double rate = in.empty() ? 0.0 : kInf;
            for (const EdgeFacts &e : in) {
                r.reachable = r.reachable && e.reachable;
                r.alwaysEmits = r.alwaysEmits && e.alwaysEmits;
                rate = std::min(rate, e.rateHz);
            }
            r.provenRateHz = rate;
        }

        const Interval iv0 = in.empty() ? Interval::empty()
                                        : in[0].value;
        const double m0 = iv0.maxAbs();
        const double s0 = in.empty() ? 1.0 : in[0].q15Scale;
        const auto frame_n = in.empty()
                                 ? std::size_t{0}
                                 : in[0].frameSize;
        Q15Check q15;
        // The Q15 edge scale passes through by default; the FFT
        // family and scale-invariant features override below.
        r.q15Scale = s0;

        // --- transfer functions -----------------------------------
        if (alg == "movingAvg" || alg == "expMovingAvg") {
            // Convex combinations of inputs: the feedback fixpoint is
            // the input hull (the widening rule).
            r.value = iv0;
            q15.quantize(iv0, s0, "input sample");
        } else if (alg == "window") {
            const bool hamming = p.size() >= 2 && p[1] != 0.0;
            const std::size_t size = static_cast<std::size_t>(p[0]);
            const std::size_t hop =
                p.size() >= 3 ? static_cast<std::size_t>(p[2]) : size;
            // Hamming coefficients over [0, size): min at the edges
            // (0.08), max 1.0 at the center (exactly 1.0 only for
            // odd sizes, but 1.0 is always a sound cap).
            const double cmin = hamming && size > 1 ? 0.08 : 1.0;
            const double cmax = 1.0;
            r.value = scaleByCoefRange(iv0, cmin, cmax);
            if (hop > 0)
                r.provenRateHz =
                    std::min(r.provenRateHz,
                             in.empty() ? 0.0
                                        : in[0].rateHz /
                                              static_cast<double>(hop));
            q15.quantize(iv0, s0, "input sample");
        } else if (alg == "fft") {
            // |X(k)| <= sum |x| <= N * max|x| (unscaled double FFT).
            const double b =
                static_cast<double>(frame_n) * m0;
            r.value = Interval::of(-b, b);
            r.magnitudeBound = b;
            r.q15Scale =
                frame_n > 0 ? s0 / static_cast<double>(frame_n) : s0;
            q15.quantize(iv0, s0, "input frame");
            // Butterfly headroom: per-stage halving keeps magnitudes
            // at the input bound, so full-scale inputs sit exactly on
            // the grid edge where twiddle rounding can tip over.
            q15.require(m0 * std::fabs(s0), kQ15InternalSafeAbs,
                        "fixed-point FFT butterfly");
        } else if (alg == "ifft") {
            // Unscaled-spectrum inverse: |x_m| <= (1/N) sum |X_k|
            //                                  <= max_k |X_k|.
            const double b = in.empty() ? 0.0 : in[0].magnitudeBound;
            r.value = Interval::of(-b, b);
            q15.quantize(iv0, s0, "input bin");
            // The fixed-point inverse applies no scaling: internal
            // sub-DFT partial sums reach the full l1 norm of the
            // quantized bins.
            const double per_bin =
                std::min(b * std::fabs(s0), std::sqrt(2.0));
            q15.require(static_cast<double>(frame_n) * per_bin,
                        kQ15InternalSafeAbs,
                        "unscaled fixed-point inverse FFT");
            r.q15Scale = s0 * static_cast<double>(frame_n);
        } else if (alg == "spectrum") {
            const double b = in.empty() ? 0.0 : in[0].magnitudeBound;
            r.value = Interval::of(0.0, b);
            // The Q15 spectrum kernel multiplies magnitudes by N to
            // undo the fixed-point forward scaling.
            r.q15Scale = s0 * static_cast<double>(frame_n);
        } else if (alg == "lowPass" || alg == "highPass") {
            const bool low = alg == "lowPass";
            const double base =
                in.empty() ? 0.0 : in[0].baseRateHz;
            const KeptBins kept =
                keptBinsOf(low, p.empty() ? 0.0 : p[0], frame_n, base);
            const double gain = filterL1Gain(kept, frame_n);
            const double b = gain * m0;
            r.value = Interval::of(-b, b);
            q15.quantize(iv0, s0, "input frame");
            // Forward scales to X/N; Parseval + Cauchy-Schwarz bound
            // the l1 norm over the kept bins — which also bounds
            // every partial sum inside the unscaled inverse.
            q15.require(std::sqrt(static_cast<double>(kept.total)) *
                            m0 * std::fabs(s0),
                        kQ15InternalSafeAbs,
                        "block-filter inverse transform");
        } else if (alg == "goertzel") {
            r.value =
                Interval::of(0.0, static_cast<double>(frame_n) * m0);
            q15.quantize(iv0, s0, "input frame");
        } else if (alg == "goertzelRel") {
            // Cauchy-Schwarz: |X(k)| <= sqrt(N * energy); the
            // normalizing tone peak is sqrt(N * energy / 2).
            r.value = Interval::of(0.0, std::sqrt(2.0));
            q15.quantize(iv0, s0, "input frame");
            r.q15Scale = 1.0; // Scale-invariant ratio.
        } else if (alg == "vectorMagnitude") {
            double sum_sq = 0.0;
            for (const EdgeFacts &e : in) {
                const double m = e.value.maxAbs();
                sum_sq += m * m;
                q15.quantize(e.value, e.q15Scale, "input sample");
            }
            r.value = Interval::of(0.0, std::sqrt(sum_sq));
        } else if (alg == "zcr") {
            r.value = Interval::of(0.0, 1.0);
            q15.quantize(iv0, s0, "input frame");
            r.q15Scale = 1.0; // Sign pattern only.
        } else if (alg == "mean" || alg == "min" || alg == "max") {
            r.value = iv0;
            q15.quantize(iv0, s0, "input frame");
        } else if (alg == "variance") {
            const double w = iv0.width();
            r.value = Interval::of(0.0, w * w / 4.0);
            q15.quantize(iv0, s0, "input frame");
            r.q15Scale = s0 * s0; // Second moment.
        } else if (alg == "stddev") {
            r.value = Interval::of(0.0, iv0.width() / 2.0);
            q15.quantize(iv0, s0, "input frame");
        } else if (alg == "rms") {
            r.value = Interval::of(0.0, m0);
            q15.quantize(iv0, s0, "input frame");
        } else if (alg == "range") {
            r.value = Interval::of(0.0, iv0.width());
            q15.quantize(iv0, s0, "input frame");
        } else if (alg == "dominantFreqHz") {
            r.value = Interval::of(0.0, stream.baseRateHz / 2.0);
            r.q15Scale = 1.0; // Hz, not sample units.
        } else if (alg == "dominantFreqMag") {
            r.value = Interval::of(0.0, std::max(iv0.hi, 0.0));
        } else if (alg == "peakToMeanRatio") {
            if (!iv0.isEmpty() && iv0.lo >= 0.0 && frame_n >= 2)
                r.value = Interval::of(
                    0.0, static_cast<double>(frame_n - 1));
            else
                r.value = Interval::of(0.0, kInf);
            r.q15Scale = 1.0; // Scale-invariant ratio.
        } else if (alg == "minThreshold" || alg == "maxThreshold" ||
                   alg == "bandThreshold" ||
                   alg == "outsideBandThreshold") {
            r.value = thresholdAdmit(alg, p, iv0);
            if (r.value.isEmpty())
                r.reachable = false;
            // Always-pass must be *proven*: the admit set has to
            // contain the whole input interval. For outsideBand that
            // means the forbidden band never intersects the input.
            if (alg == "outsideBandThreshold") {
                if (iv0.isEmpty() ||
                    !iv0.intersect(Interval::of(p[0], p[1]))
                         .isEmpty())
                    r.alwaysEmits = false;
            } else if (r.value.isEmpty() || iv0.isEmpty() ||
                       r.value.lo > iv0.lo || r.value.hi < iv0.hi) {
                r.alwaysEmits = false;
            }
            if (thresholdUsesQ15(alg, p))
                q15.quantize(iv0, s0, "input value");
        } else if (alg == "localMaxima" || alg == "localMinima") {
            r.value = iv0.intersect(Interval::of(p[0], p[1]));
            if (r.value.isEmpty())
                r.reachable = false;
            // A peak needs a rise and a fall: two samples minimum per
            // emission, more under an explicit refractory.
            const double divisor = std::max(
                2.0,
                p.size() >= 3 ? p[2] + 1.0 : 1.0);
            r.provenRateHz /= divisor;
            r.alwaysEmits = false;
        } else if (alg == "and") {
            r.value = iv0; // Forwards its first input.
        } else if (alg == "or") {
            Interval hull = Interval::empty();
            for (const EdgeFacts &e : in)
                if (e.reachable)
                    hull = hull.hull(e.value);
            r.value = hull;
        } else if (alg == "consecutive") {
            r.value = iv0; // Forwards the input value.
            const double required = p.empty() ? 1.0 : p[0];
            if (required > 1.0)
                r.provenRateHz /= required;
        } else {
            // Unknown algorithm (should not lower): unbounded.
            r.value = Interval::of(-kInf, kInf);
        }

        if (!r.reachable) {
            r.value = Interval::empty();
            r.provenRateHz = 0.0;
            r.alwaysEmits = false;
        }
        // The syntactic firing rate is always an upper bound.
        if (stream.fireRateHz > 0.0)
            r.provenRateHz = std::min(r.provenRateHz,
                                      stream.fireRateHz);

        r.quantizes = q15.quantizes;
        r.q15Safe = q15.safe;
        r.recommendedShift = q15.safe ? 0 : q15.shift;
        q15_details[i] = q15.detail;
        if (!q15.safe)
            out.q15Provable = false;
    }

    // --- program-level verdicts and diagnostics -------------------
    const auto source_of = [&](std::size_t node) {
        return node < plan.sourceIds.size() ? plan.sourceIds[node]
                                            : NodeId{0};
    };
    const auto emit = [&](const char *code, Severity severity,
                          NodeId node, std::string message,
                          std::string hint) {
        Diagnostic d;
        d.code = code;
        d.severity = severity;
        d.node = node;
        d.message = std::move(message);
        d.hint = std::move(hint);
        out.diagnostics.push_back(std::move(d));
    };

    for (std::size_t i = 0; i < n; ++i) {
        const NodeRange &r = out.nodes[i];
        if (r.q15Safe)
            continue;
        emit(SW301_Q15_SATURATION,
             options.q15 ? Severity::Error : Severity::Warning,
             source_of(i),
             plan.algorithms[i] + " cannot be proven Q15-safe: " +
                 q15_details[i],
             "declare tighter channel ranges or pre-scale the input");
        if (r.recommendedShift > 0)
            emit(SW302_Q15_PRESCALE, Severity::Note, source_of(i),
                 "pre-scaling this node's input by 2^-" +
                     std::to_string(r.recommendedShift) +
                     " makes it provably Q15-safe",
                 "insert a gain of " +
                     fmt(std::ldexp(1.0, -r.recommendedShift)) +
                     " upstream or declare the range that justifies "
                     "it");
    }

    if (plan.outNode >= 0 &&
        static_cast<std::size_t>(plan.outNode) < n) {
        const NodeRange &wake =
            out.nodes[static_cast<std::size_t>(plan.outNode)];
        out.wakeReachable = wake.reachable;
        out.provenWakeRateHz =
            std::min(wake.provenRateHz, plan.wakeRateBoundHz);
        const NodeId wake_node =
            source_of(static_cast<std::size_t>(plan.outNode));
        if (!wake.reachable) {
            out.provenWakeRateHz = 0.0;
            emit(SW310_DEAD_WAKE, Severity::Warning, wake_node,
                 "wake condition provably never fires: no value in "
                 "the declared input ranges reaches OUT",
                 "loosen the dead threshold or fix the declared "
                 "channel ranges");
        } else if (wake.alwaysEmits && has_threshold) {
            out.wakeAlwaysFires = true;
            emit(SW311_ALWAYS_WAKE, Severity::Warning, wake_node,
                 "wake condition provably always fires: every "
                 "threshold admits the full input range, so OUT "
                 "wakes at its nominal " +
                     fmt(out.provenWakeRateHz) + " Hz",
                 "tighten the thresholds so the condition is "
                 "selective");
        }
        if (out.wakeReachable &&
            out.provenWakeRateHz < plan.wakeRateBoundHz * 0.999) {
            emit(SW312_PROVEN_WAKE_RATE, Severity::Note, wake_node,
                 "proven wake-rate bound " +
                     fmt(out.provenWakeRateHz) +
                     " Hz is tighter than the syntactic " +
                     fmt(plan.wakeRateBoundHz) +
                     " Hz; admission charges the proven bound",
                 "");
        }
    } else {
        out.wakeReachable = false;
        out.provenWakeRateHz = 0.0;
    }

    return out;
}

RangeAnalysis
analyzeProgramRanges(const Program &program,
                     const std::vector<ChannelInfo> &channels,
                     const RangeOptions &options)
{
    const ExecutionPlan plan = lower(program, channels);
    RangeAnalysis analysis = analyzeRanges(plan, options);
    // Rewrite plan-level diagnostics to statement spans.
    std::map<NodeId, SourceSpan> spans;
    for (std::size_t i = 0; i < program.statements.size(); ++i)
        spans[program.statements[i].id] =
            statementSpan(program.statements[i], i);
    for (Diagnostic &d : analysis.diagnostics) {
        const auto it = spans.find(d.node);
        if (it != spans.end()) {
            d.line = it->second.line;
            d.column = it->second.column;
        } else {
            d.line = 1;
            d.column = 1;
        }
    }
    return analysis;
}

std::string
renderRanges(const ExecutionPlan &plan, const RangeAnalysis &analysis)
{
    std::ostringstream os;
    os << "ranges: " << plan.nodeCount() << " nodes, wake proven "
       << fmt(analysis.provenWakeRateHz) << " Hz (syntactic "
       << fmt(plan.wakeRateBoundHz) << " Hz)";
    if (!analysis.wakeReachable)
        os << ", wake dead";
    if (analysis.wakeAlwaysFires)
        os << ", wake always fires";
    os << ", q15 "
       << (analysis.q15Provable ? "provable" : "not provable")
       << "\n";
    os << "channels:";
    for (const ChannelRange &ch : analysis.channelRanges)
        os << " " << ch.channel << "=[" << fmt(ch.lo) << ", "
           << fmt(ch.hi) << "]";
    os << "\n";
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        const NodeRange &r = analysis.nodes[i];
        os << "  n" << i << ": " << plan.algorithms[i];
        os << " value=" << fmtInterval(r.value);
        if (r.magnitudeBound > 0.0)
            os << " |X|<=" << fmt(r.magnitudeBound);
        os << " rate<=" << fmt(r.provenRateHz) << "Hz";
        if (!r.reachable)
            os << " unreachable";
        if (r.quantizes) {
            os << " q15=" << (r.q15Safe ? "safe" : "unsafe");
            if (r.q15Scale != 1.0)
                os << " scale=" << fmt(r.q15Scale);
            if (r.recommendedShift > 0)
                os << " shift=" << r.recommendedShift;
        }
        os << "\n";
    }
    for (const Diagnostic &d : analysis.diagnostics) {
        os << severityName(d.severity) << ": [" << d.code << "] "
           << d.message;
        if (d.node != 0)
            os << " (node " << d.node << ")";
        os << "\n";
        if (!d.hint.empty())
            os << "    hint: " << d.hint << "\n";
    }
    return os.str();
}

} // namespace sidewinder::il
