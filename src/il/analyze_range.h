/**
 * @file
 * Value-range abstract interpretation over a lowered ExecutionPlan.
 *
 * analyze() proves a program *legal*; this pass proves it *behaves*:
 * given declared physical input ranges per sensor channel, it
 * propagates [lo, hi] intervals through every node of the plan and
 * derives three kinds of facts the rest of the platform consumes:
 *
 *  - Q15 saturation proofs. The hub firmware runs in 1.15 fixed
 *    point; a value quantized outside [-1, 1] clips. Every Q15 kernel
 *    has a known set of quantize points (where doubles meet the Q15
 *    grid) and internal headroom rules (the forward FFT scales each
 *    stage by 1/2, the block-filter inverse transform does not). A
 *    node is *provably Q15-safe* when its interval, times the Q15
 *    engine's pre-quantization scale on that edge, fits the grid and
 *    every internal bound holds. SW301 reports nodes that cannot be
 *    proven safe (an error when Q15 execution is requested), SW302
 *    recommends the pre-scaling shift that would make them provable.
 *
 *  - Reachability. A threshold whose admit set does not intersect
 *    its input interval never passes; a wake condition downstream of
 *    one never fires (SW310). Dually, a threshold chain whose admit
 *    sets *contain* the input intervals always passes, so the "wake
 *    condition" is a timer in disguise (SW311).
 *
 *  - Proven wake-rate bounds. The syntactic wakeRateBoundHz on the
 *    plan assumes every conditional passes every firing; interval
 *    facts prove tighter bounds (a consecutive(m) divides the rate by
 *    m, debounced peaks fire at most every other sample, a dead
 *    branch contributes zero). When the proven bound is tighter
 *    (SW312), admission control charges it instead, so a fleet admits
 *    more tenants on the same wake budget.
 *
 * Soundness contract (enforced by tests/il_range_test.cc): every
 * value the double-precision engine emits lies inside the proven
 * interval of its node, and a plan with no SW301 finding produces
 * zero Q15 saturation events when executed in KernelMode::FixedQ15 on
 * inputs within the declared ranges.
 *
 * Termination: the plan is a DAG in topological order, so one forward
 * pass suffices. The only feedback is *intra-node* kernel state
 * (moving/exponential averages); both compute convex combinations of
 * their inputs, whose least fixpoint is the input hull — the transfer
 * function returns that hull directly, which is the widening rule
 * (documented in docs/intermediate-language.md, "Range semantics").
 */

#ifndef SIDEWINDER_IL_ANALYZE_RANGE_H
#define SIDEWINDER_IL_ANALYZE_RANGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "il/analyze.h"
#include "il/plan.h"
#include "il/validate.h"

namespace sidewinder::il {

/** A closed interval [lo, hi] of doubles; lo > hi encodes empty. */
struct Interval
{
    double lo = 1.0;
    double hi = -1.0;

    /** The empty interval (no value can flow). */
    static Interval empty() { return Interval{1.0, -1.0}; }

    /** The interval containing exactly @p v. */
    static Interval point(double v) { return Interval{v, v}; }

    /** The interval [@p lo, @p hi] (empty when lo > hi). */
    static Interval of(double lo, double hi) { return Interval{lo, hi}; }

    bool isEmpty() const { return lo > hi; }

    /** Largest absolute value in the interval (0 for empty). */
    double maxAbs() const;

    /** hi - lo (0 for empty). */
    double width() const;

    /** Smallest interval containing both operands. */
    Interval hull(const Interval &other) const;

    /** Set intersection. */
    Interval intersect(const Interval &other) const;

    /** True when @p v is inside (never for empty). */
    bool contains(double v) const { return !isEmpty() && v >= lo && v <= hi; }

    /** Pointwise scale by @p factor (may be negative). */
    Interval scaled(double factor) const;
};

/** Declared physical range of one sensor channel. */
struct ChannelRange
{
    /** Channel name, e.g. "ACC_X". */
    std::string channel;
    double lo = -1.0;
    double hi = 1.0;
};

/**
 * Conservative default ranges for @p channels by sensor type:
 * AUDIO* is normalized [-1, 1]; ACC_* covers a +/-4 g MEMS part
 * including gravity, [-40, 40] m/s^2; BARO covers the full
 * 300..1100 hPa span of a Bosch-class barometer; anything else gets
 * [-1e6, 1e6] (documented, deliberately huge — declare real ranges
 * to get useful proofs).
 */
std::vector<ChannelRange>
defaultChannelRanges(const std::vector<ChannelInfo> &channels);

/** Knobs for analyzeRanges(). */
struct RangeOptions
{
    /**
     * Declared input ranges; channels not listed fall back to
     * defaultChannelRanges(). Empty means all defaults.
     */
    std::vector<ChannelRange> channelRanges;
    /**
     * True when the program is intended for KernelMode::FixedQ15:
     * SW301 becomes an error instead of a warning.
     */
    bool q15 = false;
};

/** Facts proven about one plan node. */
struct NodeRange
{
    /**
     * Bound on every element the node emits under double-precision
     * semantics: scalars, frame elements, and the real/imaginary
     * parts of complex bins all lie in [value.lo, value.hi].
     */
    Interval value;
    /**
     * For ComplexFrame streams additionally |X(k)| <= magnitudeBound
     * (tighter than sqrt(2) * maxAbs; equals value.maxAbs() here
     * because the FFT bound is derived on the magnitude). 0 for
     * non-complex streams.
     */
    double magnitudeBound = 0.0;
    /**
     * Scale the Q15 engine applies to this edge relative to double
     * semantics: a Q15 sample on this edge represents
     * (double value) * q15Scale. 1 everywhere except downstream of
     * a fixed-point FFT (1/N) until the compensating spectrum (x N).
     */
    double q15Scale = 1.0;
    /** False when the node provably never emits. */
    bool reachable = true;
    /**
     * True when the node provably emits on every nominal firing
     * opportunity (conditionals provably always admit).
     */
    bool alwaysEmits = true;
    /** True when the node quantizes data in KernelMode::FixedQ15. */
    bool quantizes = false;
    /**
     * True when every quantize point and internal fixed-point bound
     * of this node is provably saturation-free. Trivially true for
     * nodes with no quantize point.
     */
    bool q15Safe = true;
    /**
     * When !q15Safe: the smallest k such that pre-scaling this
     * node's input by 2^-k makes the proof go through; 0 when no
     * finite shift helps (unbounded interval).
     */
    int recommendedShift = 0;
    /** Proven upper bound on emissions per second. */
    double provenRateHz = 0.0;
};

/** Everything the range pass proved about a plan. */
struct RangeAnalysis
{
    /** Per-node facts, indexed like the plan's arrays. */
    std::vector<NodeRange> nodes;
    /**
     * The input ranges the proofs assumed, one per plan channel in
     * channel-index order (options merged over defaults).
     */
    std::vector<ChannelRange> channelRanges;
    /**
     * Proven upper bound on wake-ups per second at OUT; always
     * <= plan.wakeRateBoundHz. 0 when the wake is provably dead.
     */
    double provenWakeRateHz = 0.0;
    /** False when OUT is provably unreachable (SW310). */
    bool wakeReachable = true;
    /** True when the wake provably fires at its full rate (SW311). */
    bool wakeAlwaysFires = false;
    /** True when every node is provably Q15-saturation-free. */
    bool q15Provable = true;
    /**
     * Diagnostics in the SW3xx family. Diagnostic::node carries the
     * AST id (plan.sourceIds); line/column are 0:0 at plan level —
     * analyzeProgramRanges() fills real statement spans.
     */
    std::vector<Diagnostic> diagnostics;
};

/**
 * Run the interval interpreter over sealed @p plan. One forward pass
 * in schedule order; never throws on a lowerable plan.
 */
RangeAnalysis analyzeRanges(const ExecutionPlan &plan,
                            const RangeOptions &options = {});

/**
 * Convenience for tooling: lower @p program against @p channels,
 * analyze ranges, and rewrite the diagnostics' line/column to the
 * originating statement spans. @throws ParseError when the program
 * does not validate (run analyze() first for non-throwing triage).
 */
RangeAnalysis
analyzeProgramRanges(const Program &program,
                     const std::vector<ChannelInfo> &channels,
                     const RangeOptions &options = {});

/**
 * Deterministic human-readable dump of @p analysis against @p plan
 * (swlint --dump-ranges and the golden corpus under
 * tests/data/ranges/).
 */
std::string renderRanges(const ExecutionPlan &plan,
                         const RangeAnalysis &analysis);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_ANALYZE_RANGE_H
