#include "il/ast.h"

#include <algorithm>

namespace sidewinder::il {

NodeId
maxNodeId(const Program &program)
{
    NodeId max_id = 0;
    for (const auto &stmt : program.statements)
        if (!stmt.isOut)
            max_id = std::max(max_id, stmt.id);
    return max_id;
}

} // namespace sidewinder::il
