#include "il/ast.h"

#include <algorithm>

namespace sidewinder::il {

NodeId
maxNodeId(const Program &program)
{
    NodeId max_id = 0;
    for (const auto &stmt : program.statements)
        if (!stmt.isOut)
            max_id = std::max(max_id, stmt.id);
    return max_id;
}

SourceSpan
statementSpan(const Statement &stmt, std::size_t index)
{
    if (stmt.line > 0)
        return SourceSpan{stmt.line, stmt.column > 0 ? stmt.column : 1};
    return SourceSpan{static_cast<int>(index) + 1, 1};
}

} // namespace sidewinder::il
