/**
 * @file
 * Abstract syntax tree for the Sidewinder intermediate language.
 *
 * The IL is the textual dataflow program the sensor manager generates
 * from a developer's ProcessingPipeline and ships to the sensor hub
 * (Section 3.3 and Figure 2c of the paper), e.g.:
 *
 *     ACC_X -> movingAvg(id=1, params={10});
 *     ACC_Y -> movingAvg(id=2, params={10});
 *     ACC_Z -> movingAvg(id=3, params={10});
 *     1,2,3 -> vectorMagnitude(id=4);
 *     4 -> minThreshold(id=5, params={15});
 *     5 -> OUT;
 *
 * The IL is the only coupling between the phone-side API and the hub
 * runtime, which is what makes the hub hardware swappable.
 */

#ifndef SIDEWINDER_IL_AST_H
#define SIDEWINDER_IL_AST_H

#include <string>
#include <vector>

namespace sidewinder::il {

/** Identifier of an algorithm instance within a program. */
using NodeId = int;

/** One input of a statement: a sensor channel or an earlier node. */
struct SourceRef
{
    /** What the reference denotes. */
    enum class Kind { Channel, Node };

    Kind kind;
    /** Channel name (e.g. "ACC_X") when kind == Channel. */
    std::string channel;
    /** Producing node id when kind == Node. */
    NodeId node = 0;

    /** Construct a reference to a sensor channel. */
    static SourceRef
    makeChannel(std::string name)
    {
        return SourceRef{Kind::Channel, std::move(name), 0};
    }

    /** Construct a reference to an earlier algorithm instance. */
    static SourceRef
    makeNode(NodeId id)
    {
        return SourceRef{Kind::Node, {}, id};
    }

    bool
    operator==(const SourceRef &other) const
    {
        return kind == other.kind && channel == other.channel &&
               node == other.node;
    }
};

/**
 * One IL statement: inputs feeding either an algorithm instance or the
 * terminal OUT sink.
 */
struct Statement
{
    /** Data sources, in positional order. */
    std::vector<SourceRef> inputs;
    /** True for the terminal "n -> OUT;" statement. */
    bool isOut = false;
    /** Algorithm name; empty when isOut. */
    std::string algorithm;
    /** Instance id assigned by the sensor manager; 0 when isOut. */
    NodeId id = 0;
    /** Numeric parameters; empty when the algorithm takes none. */
    std::vector<double> params;
    /**
     * 1-based source position of the statement's first token when it
     * came from parse(); 0 when the statement was built
     * programmatically. Because write() emits one statement per line,
     * consumers fall back to "statement index + 1" for unset lines —
     * see statementSpan(). Excluded from operator== so write/parse
     * round trips compare equal.
     */
    int line = 0;
    /** 1-based source column; 0 when built programmatically. */
    int column = 0;

    bool
    operator==(const Statement &other) const
    {
        return inputs == other.inputs && isOut == other.isOut &&
               algorithm == other.algorithm && id == other.id &&
               params == other.params;
    }
};

/** A complete wake-up condition program. */
struct Program
{
    std::vector<Statement> statements;

    bool
    operator==(const Program &other) const
    {
        return statements == other.statements;
    }
};

/** Highest node id used in @p program (0 when it defines no nodes). */
NodeId maxNodeId(const Program &program);

/** A resolved 1-based line:column source position. */
struct SourceSpan
{
    int line = 0;
    int column = 0;
};

/**
 * Best-available span of statement @p index of a program: the parser's
 * recorded position when present, otherwise the position the statement
 * would occupy in write() output (one statement per line). Never 0:0.
 */
SourceSpan statementSpan(const Statement &stmt, std::size_t index);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_AST_H
