#include "il/delta.h"

namespace sidewinder::il {

std::uint64_t
shareKeyHash(const std::string &share_key)
{
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (unsigned char c : share_key) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

PlanDelta
computeDelta(const ExecutionPlan &plan,
             const std::unordered_set<std::string> &live_keys)
{
    const std::size_t count = plan.nodeCount();
    PlanDelta delta;
    delta.shipped.resize(count, false);

    for (std::size_t i = 0; i < count; ++i) {
        const bool reused = live_keys.count(plan.shareKeys[i]) != 0;
        delta.shipped[i] = !reused;
        if (reused)
            ++delta.reusedCount;
        else
            delta.shippedNodes.push_back(i);
    }

    // A reused node earns a wire reference only where the shipped part
    // of the graph (or OUT) actually touches it; interior reused nodes
    // ride along for free when the hub splices the referenced root.
    std::vector<bool> referenced(count, false);
    for (std::size_t i : delta.shippedNodes) {
        const std::int32_t *inputs = plan.inputsOf(i);
        for (std::uint32_t in = 0; in < plan.inputCounts[i]; ++in) {
            const std::int32_t ref = inputs[in];
            if (ref >= 0 && !delta.shipped[static_cast<std::size_t>(ref)])
                referenced[static_cast<std::size_t>(ref)] = true;
        }
    }
    if (plan.outNode >= 0 &&
        !delta.shipped[static_cast<std::size_t>(plan.outNode)])
        referenced[static_cast<std::size_t>(plan.outNode)] = true;

    for (std::size_t i = 0; i < count; ++i)
        if (referenced[i])
            delta.reusedRefs.push_back(i);

    return delta;
}

} // namespace sidewinder::il
