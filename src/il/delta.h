/**
 * @file
 * Delta computation for live reconfiguration (OTA-style plan updates).
 *
 * A config change rarely rewrites the whole graph — a tuned threshold
 * leaves the FFT/filter front-end byte-identical. Because canonical
 * shareKeys (il/plan.h) are the single structural identity shared by
 * CSE, engine hash-consing, and the fleet plan cache, the phone can
 * decide *statically* which nodes of a new plan are already live on
 * the hub: exactly those whose shareKey matches a live node. Only the
 * rest ship over the 115200-baud wire; the reused remainder travels as
 * 8-byte hash references the hub resolves against its node table,
 * state and all.
 *
 * This mirrors the split-image OTA pattern of LoRa/Sidewalk firmware
 * updaters — ship the delta, stage it next to the running copy, swap
 * atomically — applied to dataflow plans instead of flash images.
 */

#ifndef SIDEWINDER_IL_DELTA_H
#define SIDEWINDER_IL_DELTA_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "il/plan.h"

namespace sidewinder::il {

/**
 * FNV-1a 64-bit hash of a canonical shareKey — the wire form of a
 * node reference in a DeltaPush. Full keys grow with graph depth
 * (they embed their inputs' keys); eight bytes is what a hub-bound
 * reference can afford.
 */
std::uint64_t shareKeyHash(const std::string &share_key);

/**
 * Partition of one plan's nodes for a delta push against a set of
 * shareKeys known to be live on the hub.
 */
struct PlanDelta
{
    /** Per plan node: must this node ship in full? */
    std::vector<bool> shipped;
    /** Plan node indices shipped in full, in schedule order. */
    std::vector<std::size_t> shippedNodes;
    /**
     * Reused plan node indices that appear on the wire as hash
     * references: those consumed directly by a shipped node, plus the
     * OUT node itself when it is reused. Reused nodes consumed only
     * by other reused nodes cost zero wire bytes — the hub's splice
     * pulls the whole subgraph from one root reference.
     */
    std::vector<std::size_t> reusedRefs;
    /** All reused plan nodes (referenced or interior). */
    std::size_t reusedCount = 0;

    /** True when nothing ships — the whole plan is already live. */
    bool
    fullyReused() const
    {
        return shippedNodes.empty();
    }
};

/**
 * Compute which nodes of @p plan must ship to a hub whose live node
 * set is @p live_keys (canonical shareKeys). Deterministic and pure;
 * shared by the sensor manager's update path, `swlint --diff-plan`,
 * and the reconfiguration benchmark.
 */
PlanDelta computeDelta(const ExecutionPlan &plan,
                       const std::unordered_set<std::string> &live_keys);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_DELTA_H
