#include "il/dot.h"

#include <map>
#include <sstream>

#include "il/writer.h"

namespace sidewinder::il {

std::string
toDot(const Program &program, const std::string &name)
{
    std::ostringstream out;
    out << "digraph " << name << " {\n";
    out << "    rankdir=TB;\n";

    // Channel boxes (deduplicated by name).
    std::map<std::string, std::string> channel_ids;
    for (const auto &stmt : program.statements) {
        for (const auto &src : stmt.inputs) {
            if (src.kind != SourceRef::Kind::Channel)
                continue;
            if (channel_ids.count(src.channel))
                continue;
            const std::string id =
                "ch" + std::to_string(channel_ids.size());
            channel_ids[src.channel] = id;
            out << "    " << id << " [shape=box, label=\""
                << src.channel << "\"];\n";
        }
    }

    // Algorithm nodes and the OUT sink.
    for (const auto &stmt : program.statements) {
        if (stmt.isOut) {
            out << "    OUT [shape=doublecircle];\n";
            continue;
        }
        out << "    n" << stmt.id << " [label=\"" << stmt.algorithm;
        if (!stmt.params.empty()) {
            out << "(";
            for (std::size_t i = 0; i < stmt.params.size(); ++i) {
                if (i > 0)
                    out << ",";
                out << writeParam(stmt.params[i]);
            }
            out << ")";
        }
        out << "\"];\n";
    }

    // Edges.
    for (const auto &stmt : program.statements) {
        const std::string target =
            stmt.isOut ? "OUT" : "n" + std::to_string(stmt.id);
        for (const auto &src : stmt.inputs) {
            if (src.kind == SourceRef::Kind::Channel)
                out << "    " << channel_ids.at(src.channel);
            else
                out << "    n" << src.node;
            out << " -> " << target << ";\n";
        }
    }

    out << "}\n";
    return out.str();
}

} // namespace sidewinder::il
