#include "il/dot.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "il/writer.h"

namespace sidewinder::il {

std::string
toDot(const Program &program, const std::string &name)
{
    std::ostringstream out;
    out << "digraph " << name << " {\n";
    out << "    rankdir=TB;\n";

    // Channel boxes (deduplicated by name).
    std::map<std::string, std::string> channel_ids;
    for (const auto &stmt : program.statements) {
        for (const auto &src : stmt.inputs) {
            if (src.kind != SourceRef::Kind::Channel)
                continue;
            if (channel_ids.count(src.channel))
                continue;
            const std::string id =
                "ch" + std::to_string(channel_ids.size());
            channel_ids[src.channel] = id;
            out << "    " << id << " [shape=box, label=\""
                << src.channel << "\"];\n";
        }
    }

    // Algorithm nodes and the OUT sink.
    for (const auto &stmt : program.statements) {
        if (stmt.isOut) {
            out << "    OUT [shape=doublecircle];\n";
            continue;
        }
        out << "    n" << stmt.id << " [label=\"" << stmt.algorithm;
        if (!stmt.params.empty()) {
            out << "(";
            for (std::size_t i = 0; i < stmt.params.size(); ++i) {
                if (i > 0)
                    out << ",";
                out << writeParam(stmt.params[i]);
            }
            out << ")";
        }
        out << "\"];\n";
    }

    // Edges.
    for (const auto &stmt : program.statements) {
        const std::string target =
            stmt.isOut ? "OUT" : "n" + std::to_string(stmt.id);
        for (const auto &src : stmt.inputs) {
            if (src.kind == SourceRef::Kind::Channel)
                out << "    " << channel_ids.at(src.channel);
            else
                out << "    n" << src.node;
            out << " -> " << target << ";\n";
        }
    }

    out << "}\n";
    return out.str();
}

std::string
toDot(const ExecutionPlan &plan, const std::string &name)
{
    std::ostringstream out;
    out << "digraph " << name << " {\n";
    out << "    rankdir=TB;\n";

    // Only channels the plan actually reads get boxes.
    std::vector<bool> channel_used(plan.channels.size(), false);
    for (std::int32_t ref : plan.inputRefs)
        if (ref < 0)
            channel_used[static_cast<std::size_t>(-ref - 1)] = true;
    for (std::size_t i = 0; i < plan.channels.size(); ++i)
        if (channel_used[i])
            out << "    ch" << i << " [shape=box, label=\""
                << plan.channels[i].name << "\"];\n";

    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        out << "    n" << i << " [label=\"" << plan.algorithms[i];
        if (!plan.params[i].empty()) {
            out << "(";
            for (std::size_t p = 0; p < plan.params[i].size(); ++p) {
                if (p > 0)
                    out << ",";
                out << writeParam(plan.params[i][p]);
            }
            out << ")";
        }
        char rate[40];
        std::snprintf(rate, sizeof rate, "%g", plan.invokeRateHz[i]);
        out << "\\n@ " << rate << " Hz\"];\n";
    }
    out << "    OUT [shape=doublecircle];\n";

    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        const std::int32_t *refs = plan.inputsOf(i);
        for (std::uint32_t k = 0; k < plan.inputCounts[i]; ++k) {
            if (refs[k] >= 0)
                out << "    n" << refs[k];
            else
                out << "    ch" << (-refs[k] - 1);
            out << " -> n" << i << ";\n";
        }
    }
    out << "    n" << plan.outNode << " -> OUT;\n";

    out << "}\n";
    return out.str();
}

} // namespace sidewinder::il
