/**
 * @file
 * Graphviz export of IL programs — renders the conceptual pipeline
 * view of Figure 2b / Figure 3 of the paper for any wake-up
 * condition.
 */

#ifndef SIDEWINDER_IL_DOT_H
#define SIDEWINDER_IL_DOT_H

#include <string>

#include "il/ast.h"
#include "il/plan.h"

namespace sidewinder::il {

/**
 * Render @p program as a Graphviz digraph: sensor channels as boxes,
 * algorithm instances as ellipses labeled "name(params)", OUT as a
 * double circle. Output is deterministic (statement order).
 *
 * @param name Graph name; must be a valid dot identifier.
 */
std::string toDot(const Program &program,
                  const std::string &name = "pipeline");

/**
 * Render a lowered @p plan as a Graphviz digraph. Nodes the lowering
 * pass merged appear once with a fan-out of edges, so sharing is
 * visible; labels carry the per-node invoke rate from the plan.
 */
std::string toDot(const ExecutionPlan &plan,
                  const std::string &name = "plan");

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_DOT_H
