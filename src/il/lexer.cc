#include "il/lexer.h"

#include <cctype>
#include <sstream>

#include "support/error.h"

namespace sidewinder::il {

std::string
tokenTypeName(TokenType type)
{
    switch (type) {
      case TokenType::Identifier: return "identifier";
      case TokenType::Number: return "number";
      case TokenType::Arrow: return "'->'";
      case TokenType::Comma: return "','";
      case TokenType::Semicolon: return "';'";
      case TokenType::LParen: return "'('";
      case TokenType::RParen: return "')'";
      case TokenType::LBrace: return "'{'";
      case TokenType::RBrace: return "'}'";
      case TokenType::Equals: return "'='";
      case TokenType::End: return "end of input";
    }
    return "?";
}

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

[[noreturn]] void
fail(int line, int column, const std::string &message)
{
    std::ostringstream out;
    out << "IL lex error at " << line << ":" << column << ": " << message;
    throw ParseError(out.str());
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    int column = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto advance = [&](std::size_t count = 1) {
        for (std::size_t k = 0; k < count && i < n; ++k) {
            if (source[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
            ++i;
        }
    };

    while (i < n) {
        const char c = source[i];

        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
            continue;
        }
        if (c == '#') {
            while (i < n && source[i] != '\n')
                advance();
            continue;
        }

        const int tok_line = line;
        const int tok_column = column;

        if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            tokens.push_back({TokenType::Arrow, "->", tok_line,
                              tok_column});
            advance(2);
            continue;
        }

        if (isDigit(c) ||
            (c == '-' && i + 1 < n &&
             (isDigit(source[i + 1]) || source[i + 1] == '.')) ||
            (c == '.' && i + 1 < n && isDigit(source[i + 1]))) {
            std::string text;
            if (c == '-') {
                text.push_back('-');
                advance();
            }
            bool seen_dot = false;
            bool seen_exp = false;
            while (i < n) {
                const char d = source[i];
                if (isDigit(d)) {
                    text.push_back(d);
                    advance();
                } else if (d == '.' && !seen_dot && !seen_exp) {
                    seen_dot = true;
                    text.push_back(d);
                    advance();
                } else if ((d == 'e' || d == 'E') && !seen_exp &&
                           !text.empty() &&
                           isDigit(text.back())) {
                    seen_exp = true;
                    text.push_back(d);
                    advance();
                    if (i < n && (source[i] == '+' || source[i] == '-')) {
                        text.push_back(source[i]);
                        advance();
                    }
                } else {
                    break;
                }
            }
            if (text.empty() || text == "-")
                fail(tok_line, tok_column, "malformed number");
            tokens.push_back({TokenType::Number, text, tok_line,
                              tok_column});
            continue;
        }

        if (isIdentStart(c)) {
            std::string text;
            while (i < n && isIdentBody(source[i])) {
                text.push_back(source[i]);
                advance();
            }
            tokens.push_back({TokenType::Identifier, text, tok_line,
                              tok_column});
            continue;
        }

        TokenType type;
        switch (c) {
          case ',': type = TokenType::Comma; break;
          case ';': type = TokenType::Semicolon; break;
          case '(': type = TokenType::LParen; break;
          case ')': type = TokenType::RParen; break;
          case '{': type = TokenType::LBrace; break;
          case '}': type = TokenType::RBrace; break;
          case '=': type = TokenType::Equals; break;
          default:
            fail(tok_line, tok_column,
                 std::string("unexpected character '") + c + "'");
        }
        tokens.push_back({type, std::string(1, c), tok_line, tok_column});
        advance();
    }

    tokens.push_back({TokenType::End, "", line, column});
    return tokens;
}

} // namespace sidewinder::il
