/**
 * @file
 * Tokenizer for the textual intermediate language.
 */

#ifndef SIDEWINDER_IL_LEXER_H
#define SIDEWINDER_IL_LEXER_H

#include <string>
#include <vector>

namespace sidewinder::il {

/** Lexical token categories of the IL. */
enum class TokenType {
    Identifier, ///< e.g. movingAvg, ACC_X, OUT, id, params
    Number,     ///< integer or decimal literal, optionally signed
    Arrow,      ///< ->
    Comma,      ///< ,
    Semicolon,  ///< ;
    LParen,     ///< (
    RParen,     ///< )
    LBrace,     ///< {
    RBrace,     ///< }
    Equals,     ///< =
    End,        ///< end of input
};

/** One lexed token with its source location for error reporting. */
struct Token
{
    TokenType type;
    /** Verbatim text for identifiers and numbers. */
    std::string text;
    /** 1-based line of the first character. */
    int line;
    /** 1-based column of the first character. */
    int column;
};

/**
 * Tokenize @p source.
 *
 * Comments run from '#' to end of line. The returned vector always ends
 * with an End token.
 *
 * @throws ParseError on characters outside the IL alphabet.
 */
std::vector<Token> lex(const std::string &source);

/** Human-readable name of a token type, for diagnostics. */
std::string tokenTypeName(TokenType type);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_LEXER_H
