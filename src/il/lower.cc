#include "il/lower.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "il/algorithm_info.h"
#include "support/error.h"

namespace sidewinder::il {

ExecutionPlan
lower(const Program &program, const std::vector<ChannelInfo> &channels,
      const LowerOptions &options)
{
    // validate() throws on any illegal program and hands back the
    // per-node stream properties; lowering itself cannot fail.
    const StreamMap stream_map = validate(program, channels);

    ExecutionPlan plan;
    plan.channels = channels;
    plan.primaryChannel = -1;

    std::unordered_map<std::string, int> channel_index;
    for (std::size_t i = 0; i < channels.size(); ++i)
        channel_index[channels[i].name] = static_cast<int>(i);

    /** AST node id -> dense plan index (post-dedupe). */
    std::map<NodeId, int> dense_of;
    /** Canonical key -> dense plan index. */
    std::unordered_map<std::string, int> node_by_key;

    for (const auto &stmt : program.statements) {
        // Resolve inputs to the plan's index encoding and gather the
        // child keys the canonical sharing key is built from.
        std::vector<std::int32_t> refs;
        std::vector<std::string> input_keys;
        std::vector<NodeStream> input_streams;
        refs.reserve(stmt.inputs.size());
        input_keys.reserve(stmt.inputs.size());
        input_streams.reserve(stmt.inputs.size());
        for (const auto &src : stmt.inputs) {
            if (src.kind == SourceRef::Kind::Channel) {
                const int ch = channel_index.at(src.channel);
                refs.push_back(-(ch + 1));
                input_keys.push_back(canonicalChannelKey(src.channel));
                NodeStream s;
                s.kind = ValueKind::Scalar;
                s.fireRateHz = channels[static_cast<std::size_t>(ch)]
                                   .sampleRateHz;
                s.baseRateHz = s.fireRateHz;
                input_streams.push_back(s);
                if (plan.primaryChannel < 0)
                    plan.primaryChannel = ch;
            } else {
                const int dense = dense_of.at(src.node);
                refs.push_back(dense);
                input_keys.push_back(
                    plan.shareKeys[static_cast<std::size_t>(dense)]);
                input_streams.push_back(
                    plan.streams[static_cast<std::size_t>(dense)]);
            }
        }

        if (stmt.isOut) {
            plan.outNode = refs.front();
            continue;
        }

        std::string key =
            canonicalNodeKey(stmt.algorithm, stmt.params, input_keys);

        if (options.dedupe) {
            auto it = node_by_key.find(key);
            if (it != node_by_key.end()) {
                dense_of[stmt.id] = it->second;
                continue;
            }
        }

        const auto info = findAlgorithm(stmt.algorithm);
        if (!info)
            throw InternalError(
                "validated program with unknown algorithm");

        const int index = static_cast<int>(plan.nodeCount());
        plan.algorithms.push_back(stmt.algorithm);
        plan.params.push_back(stmt.params);
        plan.inputOffsets.push_back(
            static_cast<std::uint32_t>(plan.inputRefs.size()));
        plan.inputCounts.push_back(
            static_cast<std::uint32_t>(refs.size()));
        plan.inputRefs.insert(plan.inputRefs.end(), refs.begin(),
                              refs.end());
        plan.streams.push_back(stream_map.at(stmt.id));
        plan.cyclesPerInvoke.push_back(
            invokeCost(*info, input_streams.front()));
        double rate = input_streams.front().fireRateHz;
        for (const auto &s : input_streams)
            rate = std::min(rate, s.fireRateHz);
        plan.invokeRateHz.push_back(rate);
        // Invocations per emission: a decimating node (window with
        // hop h) fires its output once every `stride` invokes.
        const double out_rate = stream_map.at(stmt.id).fireRateHz;
        plan.blockStride.push_back(static_cast<std::uint32_t>(
            out_rate > 0.0 ? std::max(1.0, std::round(rate / out_rate))
                           : 1.0));
        plan.ramBytes.push_back(
            nodeRamBytes(*info, stmt.params, input_streams.front(),
                         stream_map.at(stmt.id)));
        plan.sourceIds.push_back(stmt.id);

        node_by_key.emplace(key, index);
        plan.shareKeys.push_back(std::move(key));
        dense_of[stmt.id] = index;
    }

    if (plan.outNode < 0)
        throw InternalError("validated program without OUT node");
    if (plan.primaryChannel < 0)
        plan.primaryChannel = 0;
    plan.wakeRateBoundHz =
        plan.streams[static_cast<std::size_t>(plan.outNode)].fireRateHz;

    // Freeze: from here on the plan is immutable (shared across
    // engines, threads, and — via hub::FleetPlanCache — tenants).
    plan.seal();
    return plan;
}

} // namespace sidewinder::il
