/**
 * @file
 * Lowering: compile a validated IL program to an ExecutionPlan.
 *
 * lower() is the single place names become indices and static costs
 * are computed. Everything downstream — the engine, admission
 * control, MCU selection, FPGA placement, tooling — consumes the
 * plan; nothing re-walks the AST.
 */

#ifndef SIDEWINDER_IL_LOWER_H
#define SIDEWINDER_IL_LOWER_H

#include <vector>

#include "il/ast.h"
#include "il/plan.h"
#include "il/validate.h"

namespace sidewinder::il {

/** Knobs for lower(). */
struct LowerOptions
{
    /**
     * Merge structurally identical nodes (same canonical key) into
     * one plan node — the form a sharing hub instantiates. false
     * preserves every statement as its own node, matching an engine
     * built with node sharing disabled (the sharing-ablation
     * baseline duplicates nodes even within one condition).
     */
    bool dedupe = true;
};

/**
 * Validate @p program against @p channels and lower it to a flat,
 * topologically scheduled ExecutionPlan with resolved indices,
 * canonical sharing keys, and precomputed per-node costs.
 *
 * @throws ParseError when the program is invalid (validate()'s
 *     verdict; lowering adds no rules of its own).
 */
ExecutionPlan lower(const Program &program,
                    const std::vector<ChannelInfo> &channels,
                    const LowerOptions &options = {});

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_LOWER_H
