#include "il/optimize.h"

#include <map>
#include <sstream>
#include <string>

namespace sidewinder::il {

namespace {

/** Canonical structural key of a statement's computation. */
std::string
keyOf(const Statement &stmt,
      const std::map<NodeId, std::string> &node_keys)
{
    std::ostringstream key;
    key << stmt.algorithm << "(";
    for (double p : stmt.params)
        key << p << ",";
    key << ")";
    for (const auto &src : stmt.inputs) {
        if (src.kind == SourceRef::Kind::Channel)
            key << "<ch:" << src.channel;
        else
            key << "<" << node_keys.at(src.node);
    }
    return key.str();
}

} // namespace

Program
optimize(const Program &program)
{
    Program out;
    std::map<NodeId, std::string> node_keys;
    std::map<std::string, NodeId> survivors;
    std::map<NodeId, NodeId> replacement;

    for (const auto &stmt : program.statements) {
        Statement rewritten = stmt;
        for (auto &src : rewritten.inputs) {
            if (src.kind == SourceRef::Kind::Node) {
                auto it = replacement.find(src.node);
                if (it != replacement.end())
                    src.node = it->second;
            }
        }

        if (rewritten.isOut) {
            out.statements.push_back(std::move(rewritten));
            continue;
        }

        const std::string key = keyOf(rewritten, node_keys);
        node_keys[stmt.id] = key;

        auto it = survivors.find(key);
        if (it != survivors.end()) {
            // Duplicate: route this id to the survivor, emit nothing.
            replacement[stmt.id] = it->second;
            continue;
        }
        survivors[key] = rewritten.id;
        out.statements.push_back(std::move(rewritten));
    }

    return out;
}

std::size_t
redundantStatementCount(const Program &program)
{
    return program.statements.size() -
           optimize(program).statements.size();
}

} // namespace sidewinder::il
