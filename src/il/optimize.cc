#include "il/optimize.h"

#include <map>
#include <string>
#include <vector>

#include "il/plan.h"

namespace sidewinder::il {

namespace {

/**
 * Canonical structural key of a statement's computation — the shared
 * plan-level builder, so optimize-time CSE, the analyzer's duplicate
 * detection, and engine-time hash-consing can never disagree on
 * parameter formatting (the old local key rendered doubles at the
 * default 6-digit precision and could merge distinct parameters the
 * engine keeps apart).
 */
std::string
keyOf(const Statement &stmt,
      const std::map<NodeId, std::string> &node_keys)
{
    std::vector<std::string> input_keys;
    input_keys.reserve(stmt.inputs.size());
    for (const auto &src : stmt.inputs) {
        if (src.kind == SourceRef::Kind::Channel)
            input_keys.push_back(canonicalChannelKey(src.channel));
        else
            input_keys.push_back(node_keys.at(src.node));
    }
    return canonicalNodeKey(stmt.algorithm, stmt.params, input_keys);
}

} // namespace

Program
optimize(const Program &program)
{
    Program out;
    std::map<NodeId, std::string> node_keys;
    std::map<std::string, NodeId> survivors;
    std::map<NodeId, NodeId> replacement;

    for (const auto &stmt : program.statements) {
        Statement rewritten = stmt;
        for (auto &src : rewritten.inputs) {
            if (src.kind == SourceRef::Kind::Node) {
                auto it = replacement.find(src.node);
                if (it != replacement.end())
                    src.node = it->second;
            }
        }

        if (rewritten.isOut) {
            out.statements.push_back(std::move(rewritten));
            continue;
        }

        const std::string key = keyOf(rewritten, node_keys);
        node_keys[stmt.id] = key;

        auto it = survivors.find(key);
        if (it != survivors.end()) {
            // Duplicate: route this id to the survivor, emit nothing.
            replacement[stmt.id] = it->second;
            continue;
        }
        survivors[key] = rewritten.id;
        out.statements.push_back(std::move(rewritten));
    }

    return out;
}

std::size_t
redundantStatementCount(const Program &program)
{
    return program.statements.size() -
           optimize(program).statements.size();
}

} // namespace sidewinder::il
