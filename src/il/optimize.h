/**
 * @file
 * IL-level common-subexpression elimination.
 *
 * The sensor manager performs the paper's pipeline-merging idea
 * (Section 7) before a condition ever leaves the phone: branches that
 * recompute the same chain (e.g. the siren detector's three
 * window/filter/FFT prefixes) collapse to one node, shrinking the IL
 * text on the wire and the hub's parse/instantiation work. The hub's
 * engine applies the same hash-consing at install time, so this is an
 * optimization, never a semantic change.
 */

#ifndef SIDEWINDER_IL_OPTIMIZE_H
#define SIDEWINDER_IL_OPTIMIZE_H

#include "il/ast.h"

namespace sidewinder::il {

/**
 * Deduplicate structurally identical statements (same algorithm, same
 * parameters, same canonical inputs), rewriting later references to
 * the surviving node. Statement order and node ids of surviving
 * statements are preserved; the result validates whenever the input
 * does and computes the identical dataflow.
 */
Program optimize(const Program &program);

/** Number of statements optimize() would remove. */
std::size_t redundantStatementCount(const Program &program);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_OPTIMIZE_H
