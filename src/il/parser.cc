#include "il/parser.h"

#include <cstdlib>
#include <sstream>

#include "il/lexer.h"
#include "support/error.h"

namespace sidewinder::il {

namespace {

/** Cursor over the token stream with common error plumbing. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens(std::move(tokens))
    {}

    Program
    parseProgram()
    {
        Program program;
        while (!check(TokenType::End))
            program.statements.push_back(parseStatement());
        return program;
    }

  private:
    std::vector<Token> tokens;
    std::size_t pos = 0;

    const Token &peek() const { return tokens[pos]; }

    const Token &
    consume(TokenType type, const std::string &context)
    {
        if (!check(type))
            fail("expected " + tokenTypeName(type) + " " + context +
                 ", found " + describe(peek()));
        return tokens[pos++];
    }

    bool check(TokenType type) const { return peek().type == type; }

    bool
    match(TokenType type)
    {
        if (!check(type))
            return false;
        ++pos;
        return true;
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        const Token &tok = peek();
        std::ostringstream out;
        out << "IL parse error at " << tok.line << ":" << tok.column
            << ": " << message;
        throw ParseError(out.str());
    }

    static std::string
    describe(const Token &tok)
    {
        if (tok.type == TokenType::Identifier ||
            tok.type == TokenType::Number)
            return tokenTypeName(tok.type) + " '" + tok.text + "'";
        return tokenTypeName(tok.type);
    }

    double
    parseNumber(const std::string &context)
    {
        const Token &tok = consume(TokenType::Number, context);
        return std::strtod(tok.text.c_str(), nullptr);
    }

    int
    parseInteger(const std::string &context)
    {
        const Token &tok = consume(TokenType::Number, context);
        char *end = nullptr;
        const long value = std::strtol(tok.text.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            fail("expected integer " + context + ", found '" + tok.text +
                 "'");
        return static_cast<int>(value);
    }

    SourceRef
    parseSource()
    {
        if (check(TokenType::Identifier)) {
            const Token &tok = tokens[pos++];
            return SourceRef::makeChannel(tok.text);
        }
        if (check(TokenType::Number))
            return SourceRef::makeNode(parseInteger("as node reference"));
        fail("expected channel name or node id, found " +
             describe(peek()));
    }

    Statement
    parseStatement()
    {
        Statement stmt;
        stmt.line = peek().line;
        stmt.column = peek().column;
        stmt.inputs.push_back(parseSource());
        while (match(TokenType::Comma))
            stmt.inputs.push_back(parseSource());

        consume(TokenType::Arrow, "after statement inputs");

        const Token &target =
            consume(TokenType::Identifier, "as statement target");
        if (target.text == "OUT") {
            stmt.isOut = true;
            consume(TokenType::Semicolon, "after OUT");
            return stmt;
        }

        stmt.algorithm = target.text;
        consume(TokenType::LParen, "after algorithm name");

        const Token &id_key =
            consume(TokenType::Identifier, "('id') in algorithm call");
        if (id_key.text != "id")
            fail("expected 'id', found '" + id_key.text + "'");
        consume(TokenType::Equals, "after 'id'");
        stmt.id = parseInteger("as algorithm id");

        if (match(TokenType::Comma)) {
            const Token &params_key = consume(TokenType::Identifier,
                                              "('params') after ','");
            if (params_key.text != "params")
                fail("expected 'params', found '" + params_key.text +
                     "'");
            consume(TokenType::Equals, "after 'params'");
            consume(TokenType::LBrace, "to open parameter list");
            if (!check(TokenType::RBrace)) {
                stmt.params.push_back(parseNumber("as parameter"));
                while (match(TokenType::Comma))
                    stmt.params.push_back(parseNumber("as parameter"));
            }
            consume(TokenType::RBrace, "to close parameter list");
        }

        consume(TokenType::RParen, "to close algorithm call");
        consume(TokenType::Semicolon, "after statement");
        return stmt;
    }
};

} // namespace

Program
parse(const std::string &source)
{
    Parser parser(lex(source));
    return parser.parseProgram();
}

} // namespace sidewinder::il
