/**
 * @file
 * Recursive-descent parser turning IL text into a Program AST.
 */

#ifndef SIDEWINDER_IL_PARSER_H
#define SIDEWINDER_IL_PARSER_H

#include <string>

#include "il/ast.h"

namespace sidewinder::il {

/**
 * Parse IL source text.
 *
 * Grammar (one statement per semicolon):
 *
 *     program   := statement* EOF
 *     statement := sources "->" target ";"
 *     sources   := source ("," source)*
 *     source    := IDENT | NUMBER(integer)
 *     target    := "OUT"
 *                | IDENT "(" "id" "=" NUMBER
 *                        ("," "params" "=" "{" numlist? "}")? ")"
 *     numlist   := NUMBER ("," NUMBER)*
 *
 * Parsing is purely syntactic; semantic checks (known algorithms,
 * reference ordering, single OUT) live in validate().
 *
 * @throws ParseError with line:column context on malformed input.
 */
Program parse(const std::string &source);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_PARSER_H
