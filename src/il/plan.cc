#include "il/plan.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "il/writer.h"
#include "support/error.h"

namespace sidewinder::il {

namespace {

/** Compact %g rendering for the plan dump (display, not identity). */
std::string
formatRate(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

std::string
describeStream(const NodeStream &stream)
{
    std::string out;
    switch (stream.kind) {
      case ValueKind::Scalar:
        out = "scalar";
        break;
      case ValueKind::Frame:
        out = "frame[" + std::to_string(stream.frameSize) + "]";
        break;
      case ValueKind::ComplexFrame:
        out = "complex[" + std::to_string(stream.frameSize) + "]";
        break;
    }
    out += " @ " + formatRate(stream.fireRateHz) + " Hz";
    return out;
}

} // namespace

std::string
canonicalNodeKey(const std::string &algorithm,
                 const std::vector<double> &params,
                 const std::vector<std::string> &input_keys)
{
    std::size_t inputs_size = 0;
    for (const auto &k : input_keys)
        inputs_size += k.size() + 1;
    std::string key;
    key.reserve(algorithm.size() + 18 * params.size() + inputs_size + 2);
    key += algorithm;
    key += '(';
    char buf[32];
    for (double p : params) {
        // %.17g: distinct doubles never collide on a truncated
        // rendering (the old optimize-time key used the default
        // 6-digit precision and could disagree with the engine).
        std::snprintf(buf, sizeof buf, "%.17g,", p);
        key += buf;
    }
    key += ')';
    for (const auto &in : input_keys) {
        key += '<';
        key += in;
    }
    return key;
}

std::string
canonicalChannelKey(const std::string &channel)
{
    return "ch:" + channel;
}

NodeStream
ExecutionPlan::inputStream(std::size_t node, std::size_t input) const
{
    const std::int32_t ref = inputRefs[inputOffsets[node] + input];
    if (ref >= 0)
        return streams[static_cast<std::size_t>(ref)];
    const auto &channel = channels[static_cast<std::size_t>(-ref - 1)];
    NodeStream s;
    s.kind = ValueKind::Scalar;
    s.fireRateHz = channel.sampleRateHz;
    s.baseRateHz = channel.sampleRateHz;
    return s;
}

ProgramCost
ExecutionPlan::cost() const
{
    ProgramCost total;
    for (std::size_t i = 0; i < nodeCount(); ++i) {
        NodeCost node;
        node.cyclesPerInvoke = cyclesPerInvoke[i];
        node.invokeRateHz = invokeRateHz[i];
        node.cyclesPerSecond = cyclesPerInvoke[i] * invokeRateHz[i];
        node.ramBytes = ramBytes[i];
        total.cyclesPerSecond += node.cyclesPerSecond;
        total.ramBytes += node.ramBytes;
        total.nodes[sourceIds[i]] = node;
    }
    total.wakeRateBoundHz = wakeRateBoundHz;
    total.planNodeCount = nodeCount();
    return total;
}

namespace {

/**
 * Order-sensitive FNV-style accumulator for the structural hash.
 *
 * Mixes eight bytes per multiply instead of the classic one: the
 * dominant input is the shareKeys strings (recursively expanded
 * canonical keys, kilobytes for FFT chains), and seal() runs inside
 * every il::lower(), so byte-at-a-time FNV showed up as ~30% of
 * BM_Lower. A tripwire only needs determinism and sensitivity to any
 * byte change, not FNV's exact stream semantics.
 */
struct Fnv
{
    std::uint64_t state = 1469598103934665603ULL;

    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        while (size >= 8) {
            std::uint64_t w;
            std::memcpy(&w, p, 8);
            state = (state ^ w) * 1099511628211ULL;
            p += 8;
            size -= 8;
        }
        if (size > 0) {
            std::uint64_t tail = 0;
            std::memcpy(&tail, p, size);
            // Fold the tail length in so "abc" and "abc\0" differ
            // even within a single call.
            state = (state ^ tail ^ (static_cast<std::uint64_t>(size)
                                     << 56)) *
                    1099511628211ULL;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof v);
    }

    void
    f64(double v)
    {
        // Bit pattern, not value: the invariant is "no byte changed",
        // which is stricter than numeric equality (and well-defined
        // for -0.0 / NaN payloads).
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

} // namespace

std::uint64_t
ExecutionPlan::structuralHash() const
{
    Fnv h;
    h.u64(channels.size());
    for (const auto &ch : channels) {
        h.str(ch.name);
        h.f64(ch.sampleRateHz);
    }
    h.u64(nodeCount());
    for (std::size_t i = 0; i < nodeCount(); ++i) {
        h.str(algorithms[i]);
        h.u64(params[i].size());
        for (double p : params[i])
            h.f64(p);
        h.u64(inputOffsets[i]);
        h.u64(inputCounts[i]);
        h.str(shareKeys[i]);
        h.u64(static_cast<std::uint64_t>(streams[i].kind));
        h.f64(streams[i].fireRateHz);
        h.f64(streams[i].baseRateHz);
        h.u64(streams[i].frameSize);
        h.u64(streams[i].fftSize);
        h.f64(cyclesPerInvoke[i]);
        h.f64(invokeRateHz[i]);
        h.u64(ramBytes[i]);
        h.u64(blockStride[i]);
        h.u64(static_cast<std::uint64_t>(sourceIds[i]));
    }
    h.u64(inputRefs.size());
    for (std::int32_t ref : inputRefs)
        h.u64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(ref)));
    h.u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(outNode)));
    h.u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(primaryChannel)));
    h.f64(wakeRateBoundHz);
    return h.state != 0 ? h.state : 1;
}

void
ExecutionPlan::debugAssertUnchanged() const
{
    assert(!sealed() || structuralHash() == sealedHash);
}

Program
ExecutionPlan::toProgram() const
{
    Program program;
    for (std::size_t i = 0; i < nodeCount(); ++i) {
        Statement stmt;
        stmt.algorithm = algorithms[i];
        stmt.id = static_cast<NodeId>(i + 1);
        stmt.params = params[i];
        const std::int32_t *refs = inputsOf(i);
        for (std::uint32_t k = 0; k < inputCounts[i]; ++k) {
            SourceRef src;
            if (refs[k] >= 0) {
                src.kind = SourceRef::Kind::Node;
                src.node = static_cast<NodeId>(refs[k] + 1);
            } else {
                src.kind = SourceRef::Kind::Channel;
                src.channel =
                    channels[static_cast<std::size_t>(-refs[k] - 1)]
                        .name;
            }
            stmt.inputs.push_back(std::move(src));
        }
        program.statements.push_back(std::move(stmt));
    }

    if (outNode < 0)
        throw InternalError("execution plan has no OUT routing");
    Statement out;
    out.isOut = true;
    SourceRef src;
    src.kind = SourceRef::Kind::Node;
    src.node = static_cast<NodeId>(outNode + 1);
    out.inputs.push_back(std::move(src));
    program.statements.push_back(std::move(out));
    return program;
}

std::string
renderPlan(const ExecutionPlan &plan)
{
    std::ostringstream out;
    out << "plan: " << plan.channels.size() << " channel(s), "
        << plan.nodeCount() << " node(s)\n";
    for (std::size_t i = 0; i < plan.channels.size(); ++i)
        out << "  ch" << i << ": " << plan.channels[i].name << " @ "
            << formatRate(plan.channels[i].sampleRateHz) << " Hz\n";

    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        out << "  n" << i << ": " << plan.algorithms[i];
        if (!plan.params[i].empty()) {
            out << "(";
            for (std::size_t p = 0; p < plan.params[i].size(); ++p) {
                if (p)
                    out << ",";
                out << writeParam(plan.params[i][p]);
            }
            out << ")";
        }
        out << " <-";
        const std::int32_t *refs = plan.inputsOf(i);
        for (std::uint32_t k = 0; k < plan.inputCounts[i]; ++k) {
            out << (k ? "," : "") << " ";
            if (refs[k] >= 0)
                out << "n" << refs[k];
            else
                out << "ch" << (-refs[k] - 1);
        }
        out << " | " << describeStream(plan.streams[i])
            << " | cycles/invoke " << formatRate(plan.cyclesPerInvoke[i])
            << " @ " << formatRate(plan.invokeRateHz[i]) << " Hz | ram "
            << plan.ramBytes[i] << " B | stride "
            << plan.blockStride[i] << "\n";
    }

    out << "  out: n" << plan.outNode << "\n";
    out << "  primary channel: ch" << plan.primaryChannel << "\n";
    out << "  wake-rate bound: " << formatRate(plan.wakeRateBoundHz)
        << " Hz\n";
    const ProgramCost cost = plan.cost();
    out << "  total: " << formatRate(cost.cyclesPerSecond)
        << " cycle units/s, " << cost.ramBytes << " bytes\n";
    return out.str();
}

} // namespace sidewinder::il
