/**
 * @file
 * ExecutionPlan: the lowered, index-addressed form of an IL program.
 *
 * parse/validate/optimize operate on the AST; everything downstream —
 * the hub engine's wave loop, admission control, MCU selection, FPGA
 * placement, and the swlint/dot tooling — consumes this flat
 * structure-of-arrays plan instead of re-walking statements. One
 * lowering pass (il::lower) resolves every name to an index, computes
 * every static cost once, and assigns each node the canonical sharing
 * key that optimize-time CSE, engine-time hash-consing, and the
 * analyzer's duplicate detection all agree on.
 *
 * This is the compile-don't-interpret move of Reflex-style
 * heterogeneous runtimes: the paper's interpreter (Section 3.5)
 * re-discovers the graph on every install; the plan discovers it once.
 */

#ifndef SIDEWINDER_IL_PLAN_H
#define SIDEWINDER_IL_PLAN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "il/analyze.h"
#include "il/ast.h"
#include "il/validate.h"

namespace sidewinder::il {

/**
 * A lowered wake-up condition: nodes in topological order, stored as
 * parallel arrays indexed by dense node index (0-based). Input
 * references use the engine's encoding: a value >= 0 is a node index,
 * a value < 0 is a channel as -(channel_index + 1).
 *
 * Immutability invariant: a plan returned by il::lower() is frozen —
 * no field may be mutated afterwards. Every consumer (engine install,
 * admission control, MCU selection, FPGA placement, tooling) takes
 * plans by const reference, and the fleet-wide plan cache
 * (hub::FleetPlanCache) shares ONE instance across threads and
 * tenants, so mutation would be a data race as well as a semantic
 * bug. lower() records a structural fingerprint via seal();
 * debugAssertUnchanged() re-derives it in debug builds and aborts on
 * any post-seal mutation (the engine and the fleet cache both check).
 */
struct ExecutionPlan
{
    /** Channels the plan was lowered against (index space of refs). */
    std::vector<ChannelInfo> channels;

    // ----- parallel per-node arrays (all size nodeCount()) -----

    /** Standardized algorithm name (the kernel opcode). */
    std::vector<std::string> algorithms;
    /** Numeric parameters. */
    std::vector<std::vector<double>> params;
    /** Offset of the node's first input in inputRefs. */
    std::vector<std::uint32_t> inputOffsets;
    /** Number of inputs. */
    std::vector<std::uint32_t> inputCounts;
    /** Canonical structural sharing key (see canonicalNodeKey()). */
    std::vector<std::string> shareKeys;
    /** Output stream properties. */
    std::vector<NodeStream> streams;
    /** Abstract cycle units per invocation (il::invokeCost). */
    std::vector<double> cyclesPerInvoke;
    /** Nominal invocations per second (slowest input's rate). */
    std::vector<double> invokeRateHz;
    /** Static RAM footprint in bytes (il::nodeRamBytes). */
    std::vector<std::size_t> ramBytes;
    /**
     * Block-execution stride: invocations per output emission,
     * round(invokeRateHz / stream.fireRateHz), at least 1. A window
     * of 256 has stride 256 (one frame per 256 waves); every-wave
     * emitters have stride 1. Block schedulers use this to size
     * batches so decimating nodes fire a whole number of times per
     * block.
     */
    std::vector<std::uint32_t> blockStride;
    /** AST node id of the (first) statement lowered to this node. */
    std::vector<NodeId> sourceIds;

    /** Flat input pool: node index >= 0, channel -(index + 1). */
    std::vector<std::int32_t> inputRefs;

    /** Dense index of the node feeding OUT. */
    int outNode = -1;
    /** Index of the first channel the program reads (raw snapshots). */
    int primaryChannel = 0;
    /** Worst-case wake-ups per second at OUT. */
    double wakeRateBoundHz = 0.0;
    /**
     * Structural fingerprint recorded by seal() (lower() seals every
     * plan it returns); 0 while the plan is still under construction.
     * Not part of the plan's identity — canonical identity is the OUT
     * node's shareKey — just the tripwire debugAssertUnchanged()
     * checks against.
     */
    std::uint64_t sealedHash = 0;

    /** Number of lowered nodes. */
    std::size_t nodeCount() const { return algorithms.size(); }

    /** Input refs of node @p node (pointer + count into the pool). */
    const std::int32_t *
    inputsOf(std::size_t node) const
    {
        return inputRefs.data() + inputOffsets[node];
    }

    /**
     * Stream properties of input @p input of node @p node: the
     * producing node's stream, or a scalar stream at the channel's
     * sample rate for channel refs.
     */
    NodeStream inputStream(std::size_t node, std::size_t input) const;

    /**
     * Aggregate static cost: totals plus the per-node breakdown keyed
     * by each node's source id. Shared nodes are counted once — this
     * is the number admission control charges.
     */
    ProgramCost cost() const;

    /**
     * The plan as canonical IL: dense ids (index + 1), statements in
     * schedule order, terminated by OUT. write(plan.toProgram()) is
     * the canonical wire form the sensor manager ships.
     */
    Program toProgram() const;

    /**
     * Order-sensitive FNV-1a fingerprint over every structural field
     * (channels, all per-node arrays, the input pool, OUT routing).
     * Two lowerings of the same program against the same channels
     * produce the same hash; any post-lowering mutation changes it.
     */
    std::uint64_t structuralHash() const;

    /** Freeze the plan: record structuralHash() (lower() calls this). */
    void seal() { sealedHash = structuralHash(); }

    /** True once seal() has run. */
    bool sealed() const { return sealedHash != 0; }

    /**
     * Debug-build tripwire for the immutability invariant: asserts a
     * sealed plan still hashes to its sealed fingerprint. Compiles to
     * nothing under NDEBUG — safe on hot paths.
     */
    void debugAssertUnchanged() const;
};

/**
 * Canonical structural key of a node: algorithm, %.17g-rendered
 * parameters, and the canonical keys of its inputs. The single source
 * of truth for optimize-time CSE, engine hash-consing, analyzer
 * duplicate detection, and FPGA block sharing — two nodes share
 * exactly when their keys compare equal.
 */
std::string canonicalNodeKey(const std::string &algorithm,
                             const std::vector<double> &params,
                             const std::vector<std::string> &input_keys);

/** Canonical key of a raw sensor channel input. */
std::string canonicalChannelKey(const std::string &channel);

/**
 * Deterministic human-readable dump of @p plan (swlint --dump-plan
 * and the golden corpus under tests/data/plans/).
 */
std::string renderPlan(const ExecutionPlan &plan);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_PLAN_H
