#include "il/validate.h"

#include <cmath>
#include <set>
#include <sstream>

#include "support/error.h"

namespace sidewinder::il {

namespace {

/**
 * All validation failures carry a line:column span: the parser's
 * recorded statement position, or the position the statement occupies
 * in write() output when the program was built programmatically.
 */
[[noreturn]] void
fail(SourceSpan span, const std::string &message)
{
    std::ostringstream out;
    out << "IL validation error at " << span.line << ":" << span.column
        << ": " << message;
    throw ParseError(out.str());
}

bool
isPositiveInteger(double v)
{
    return v >= 1.0 && v == std::floor(v);
}

bool
isPowerOfTwoValue(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Check the algorithm-specific parameter constraints of @p stmt given
 * the streams on its inputs, and compute the produced stream.
 */
NodeStream
deriveStream(const Statement &stmt, const AlgorithmInfo &info,
             const std::vector<NodeStream> &inputs, SourceSpan span)
{
    NodeStream out;
    out.kind = info.outputKind;

    // Nominal firing rate: slowest input dominates for multi-input
    // nodes; single-input nodes inherit their input's rate.
    double rate = inputs.front().fireRateHz;
    for (const auto &in : inputs)
        rate = std::min(rate, in.fireRateHz);
    out.fireRateHz = rate;
    out.frameSize = inputs.front().frameSize;
    out.baseRateHz = inputs.front().baseRateHz;
    out.fftSize = inputs.front().fftSize;

    const auto &p = stmt.params;
    const std::string &name = info.name;

    if (name == "movingAvg") {
        if (!isPositiveInteger(p[0]))
            fail(span, "movingAvg window must be a positive integer "
                       "(node " + std::to_string(stmt.id) + ")");
    } else if (name == "expMovingAvg") {
        if (!(p[0] > 0.0) || p[0] > 1.0)
            fail(span, "expMovingAvg alpha must be in (0,1] (node " +
                       std::to_string(stmt.id) + ")");
    } else if (name == "window") {
        if (!isPositiveInteger(p[0]))
            fail(span, "window size must be a positive integer (node " +
                       std::to_string(stmt.id) + ")");
        if (p.size() >= 2 && p[1] != 0.0 && p[1] != 1.0)
            fail(span, "window hamming flag must be 0 or 1 (node " +
                       std::to_string(stmt.id) + ")");
        const auto size = static_cast<std::size_t>(p[0]);
        std::size_t hop = size;
        if (p.size() >= 3) {
            if (!isPositiveInteger(p[2]) || p[2] > p[0])
                fail(span, "window hop must be in [1, size] (node " +
                           std::to_string(stmt.id) + ")");
            hop = static_cast<std::size_t>(p[2]);
        }
        out.frameSize = size;
        out.baseRateHz = inputs.front().fireRateHz;
        out.fireRateHz =
            inputs.front().fireRateHz / static_cast<double>(hop);
        out.fftSize = 0;
    } else if (name == "fft") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            fail(span,
                 "fft input frame size must be a power of two, got " +
                     std::to_string(inputs.front().frameSize) +
                     " (node " + std::to_string(stmt.id) + ")");
        out.fftSize = inputs.front().frameSize;
    } else if (name == "ifft") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            fail(span,
                 "ifft input frame size must be a power of two (node " +
                     std::to_string(stmt.id) + ")");
    } else if (name == "spectrum") {
        if (inputs.front().fftSize == 0)
            fail(span, "spectrum requires an fft stage upstream (node " +
                       std::to_string(stmt.id) + ")");
        out.frameSize = inputs.front().fftSize / 2 + 1;
    } else if (name == "lowPass" || name == "highPass") {
        if (!isPowerOfTwoValue(inputs.front().frameSize))
            fail(span, name + " frame size must be a power of two "
                       "(node " + std::to_string(stmt.id) + ")");
        const double nyquist = inputs.front().baseRateHz / 2.0;
        if (!(p[0] > 0.0) || p[0] >= nyquist)
            fail(span, name + " cutoff must be in (0, Nyquist=" +
                       std::to_string(nyquist) + ") (node " +
                       std::to_string(stmt.id) + ")");
    } else if (name == "goertzel" || name == "goertzelRel") {
        const double nyquist = inputs.front().baseRateHz / 2.0;
        if (!(p[0] > 0.0) || p[0] >= nyquist)
            fail(span, name + " target must be in (0, Nyquist=" +
                       std::to_string(nyquist) + ") (node " +
                       std::to_string(stmt.id) + ")");
    } else if (name == "dominantFreqHz" || name == "dominantFreqMag" ||
               name == "peakToMeanRatio") {
        if (inputs.front().fftSize == 0)
            fail(span, name + " requires an fft+spectrum stage upstream "
                       "(node " + std::to_string(stmt.id) + ")");
        out.frameSize = 0;
    } else if (name == "bandThreshold" ||
               name == "outsideBandThreshold") {
        if (p[0] > p[1])
            fail(span, name + " band is inverted (node " +
                       std::to_string(stmt.id) + ")");
    } else if (name == "localMaxima" || name == "localMinima") {
        if (p[0] > p[1])
            fail(span, name + " band is inverted (node " +
                       std::to_string(stmt.id) + ")");
        if (p.size() >= 3 && (p[2] < 0.0 || p[2] != std::floor(p[2])))
            fail(span, name + " refractory must be a non-negative "
                       "integer (node " + std::to_string(stmt.id) + ")");
    } else if (name == "consecutive") {
        if (!isPositiveInteger(p[0]))
            fail(span,
                 "consecutive count must be a positive integer (node " +
                     std::to_string(stmt.id) + ")");
    }

    // Scalar streams never carry a frame size.
    if (out.kind == ValueKind::Scalar)
        out.frameSize = 0;

    return out;
}

} // namespace

StreamMap
validate(const Program &program, const std::vector<ChannelInfo> &channels)
{
    if (program.statements.empty())
        fail(SourceSpan{1, 1}, "program is empty");

    std::map<std::string, const ChannelInfo *> channel_by_name;
    for (const auto &ch : channels)
        channel_by_name[ch.name] = &ch;

    StreamMap streams;
    std::set<NodeId> consumed;
    /** Defining statement span per node, for the convergence check. */
    std::map<NodeId, SourceSpan> spans;
    bool seen_out = false;

    for (std::size_t index = 0; index < program.statements.size();
         ++index) {
        const Statement &stmt = program.statements[index];
        const SourceSpan span = statementSpan(stmt, index);
        if (seen_out)
            fail(span, "statements after OUT");
        if (stmt.inputs.empty())
            fail(span, "statement with no inputs");

        // Resolve the streams on each input.
        std::vector<NodeStream> input_streams;
        for (const auto &src : stmt.inputs) {
            if (src.kind == SourceRef::Kind::Channel) {
                auto it = channel_by_name.find(src.channel);
                if (it == channel_by_name.end())
                    fail(span,
                         "unknown sensor channel '" + src.channel + "'");
                NodeStream s;
                s.kind = ValueKind::Scalar;
                s.fireRateHz = it->second->sampleRateHz;
                s.baseRateHz = it->second->sampleRateHz;
                input_streams.push_back(s);
            } else {
                auto it = streams.find(src.node);
                if (it == streams.end())
                    fail(span, "node " + std::to_string(src.node) +
                               " referenced before definition");
                input_streams.push_back(it->second);
                consumed.insert(src.node);
            }
        }

        if (stmt.isOut) {
            if (stmt.inputs.size() != 1 ||
                stmt.inputs[0].kind != SourceRef::Kind::Node)
                fail(span, "OUT must be fed by exactly one node");
            if (input_streams[0].kind != ValueKind::Scalar)
                fail(span, "OUT must be fed a scalar stream");
            seen_out = true;
            continue;
        }

        if (stmt.id <= 0)
            fail(span, "node ids must be positive, got " +
                       std::to_string(stmt.id));
        if (streams.count(stmt.id))
            fail(span, "duplicate node id " + std::to_string(stmt.id));

        auto info = findAlgorithm(stmt.algorithm);
        if (!info)
            fail(span, "unknown algorithm '" + stmt.algorithm + "'");

        if (stmt.inputs.size() < info->minInputs ||
            stmt.inputs.size() > info->maxInputs) {
            std::ostringstream msg;
            msg << stmt.algorithm << " takes " << info->minInputs;
            if (info->maxInputs != info->minInputs)
                msg << ".." << info->maxInputs;
            msg << " inputs, got " << stmt.inputs.size() << " (node "
                << stmt.id << ")";
            fail(span, msg.str());
        }
        if (stmt.params.size() < info->minParams ||
            stmt.params.size() > info->maxParams) {
            std::ostringstream msg;
            msg << stmt.algorithm << " takes " << info->minParams;
            if (info->maxParams != info->minParams)
                msg << ".." << info->maxParams;
            msg << " params, got " << stmt.params.size() << " (node "
                << stmt.id << ")";
            fail(span, msg.str());
        }

        for (const auto &in : input_streams) {
            if (in.kind != info->inputKind)
                fail(span,
                     stmt.algorithm + " expects " +
                         std::string(
                             info->inputKind == ValueKind::Scalar
                                 ? "scalar"
                                 : info->inputKind == ValueKind::Frame
                                       ? "frame"
                                       : "complex-frame") +
                         " inputs (node " + std::to_string(stmt.id) +
                         ")");
        }

        streams[stmt.id] =
            deriveStream(stmt, *info, input_streams, span);
        spans[stmt.id] = span;
    }

    if (!seen_out)
        fail(statementSpan(program.statements.back(),
                           program.statements.size() - 1),
             "program has no OUT statement");

    for (const auto &[id, stream] : streams) {
        (void)stream;
        if (!consumed.count(id))
            fail(spans.at(id),
                 "node " + std::to_string(id) +
                     " is never consumed; pipelines must converge to "
                     "OUT");
    }

    return streams;
}

} // namespace sidewinder::il
