/**
 * @file
 * Semantic validation and stream analysis of IL programs.
 *
 * Validation runs on the phone side before a wake-up condition is
 * shipped (so developer mistakes surface as ConfigError at push() time)
 * and again on the hub side before instantiating kernels (so a
 * corrupted or hostile program can never execute — the security
 * advantage Section 2.2 of the paper claims over fully programmable
 * offloading).
 */

#ifndef SIDEWINDER_IL_VALIDATE_H
#define SIDEWINDER_IL_VALIDATE_H

#include <map>
#include <string>
#include <vector>

#include "il/algorithm_info.h"
#include "il/ast.h"

namespace sidewinder::il {

/** Description of a sensor channel the hub can source data from. */
struct ChannelInfo
{
    /** IL-visible name, e.g. "ACC_X". */
    std::string name;
    /** Delivery rate of raw samples in Hz. */
    double sampleRateHz;
};

/** Derived properties of the stream produced by one node. */
struct NodeStream
{
    /** Shape of the produced values. */
    ValueKind kind = ValueKind::Scalar;
    /** Nominal firings per second (upper bound for conditionals). */
    double fireRateHz = 0.0;
    /** Elements per frame; 0 for scalar streams. */
    std::size_t frameSize = 0;
    /**
     * Sample rate of the underlying time-domain signal feeding the
     * most recent window stage; needed to map FFT bins to Hz.
     */
    double baseRateHz = 0.0;
    /** Size of the most recent FFT; 0 if none upstream. */
    std::size_t fftSize = 0;
};

/** Stream analysis result: per-node stream properties. */
using StreamMap = std::map<NodeId, NodeStream>;

/**
 * Validate @p program against the standardized algorithm table and
 * @p channels, and derive per-node stream properties.
 *
 * Enforced rules:
 *  - statements define nodes before use, with unique positive ids;
 *  - all referenced channels exist and all algorithms are standard;
 *  - input/parameter arity and value kinds match the algorithm table;
 *  - algorithm-specific parameter constraints hold (window sizes
 *    positive, FFT frames power-of-two, cutoffs below Nyquist, ...);
 *  - exactly one statement targets OUT, fed by exactly one node;
 *  - every node is consumed ("at the end of the pipeline, there must
 *    be only one branch remaining", Section 3.2).
 *
 * @return per-node stream properties for downstream consumers.
 * @throws ParseError when any rule is violated.
 */
StreamMap validate(const Program &program,
                   const std::vector<ChannelInfo> &channels);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_VALIDATE_H
