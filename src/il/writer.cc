#include "il/writer.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace sidewinder::il {

std::string
writeParam(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
        std::ostringstream out;
        out << static_cast<long long>(value);
        return out.str();
    }
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

std::string
writeStatement(const Statement &stmt)
{
    if (stmt.inputs.empty())
        throw ConfigError("IL statement has no inputs");

    std::ostringstream out;
    for (std::size_t i = 0; i < stmt.inputs.size(); ++i) {
        if (i > 0)
            out << ",";
        const auto &src = stmt.inputs[i];
        if (src.kind == SourceRef::Kind::Channel)
            out << src.channel;
        else
            out << src.node;
    }

    out << " -> ";
    if (stmt.isOut) {
        out << "OUT;";
        return out.str();
    }

    out << stmt.algorithm << "(id=" << stmt.id;
    if (!stmt.params.empty()) {
        out << ", params={";
        for (std::size_t i = 0; i < stmt.params.size(); ++i) {
            if (i > 0)
                out << ",";
            out << writeParam(stmt.params[i]);
        }
        out << "}";
    }
    out << ");";
    return out.str();
}

std::string
write(const Program &program)
{
    std::ostringstream out;
    for (const auto &stmt : program.statements)
        out << writeStatement(stmt) << "\n";
    return out.str();
}

} // namespace sidewinder::il
