/**
 * @file
 * Serialization of IL programs to the textual wire format of
 * Figure 2c of the paper.
 */

#ifndef SIDEWINDER_IL_WRITER_H
#define SIDEWINDER_IL_WRITER_H

#include <string>

#include "il/ast.h"

namespace sidewinder::il {

/** Render one statement, e.g. "1,2,3 -> vectorMagnitude(id=4);". */
std::string writeStatement(const Statement &stmt);

/** Render a whole program, one statement per line. */
std::string write(const Program &program);

/**
 * Render a numeric parameter the way the sensor manager ships it:
 * integers print without a decimal point ("10"), other values with
 * enough digits to round-trip ("0.25").
 */
std::string writeParam(double value);

} // namespace sidewinder::il

#endif // SIDEWINDER_IL_WRITER_H
