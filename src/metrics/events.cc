#include "metrics/events.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::metrics {

double
MatchResult::recall() const
{
    const std::size_t total = truePositives + falseNegatives;
    if (total == 0)
        return 1.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(total);
}

double
MatchResult::precision() const
{
    const std::size_t total = truePositives + falsePositives;
    if (total == 0)
        return 1.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(total);
}

bool
FaultMetrics::any() const
{
    return retransmits != 0 || framesLost != 0 || framesDropped != 0 ||
           bytesCorrupted != 0 || decoderDroppedBytes != 0 ||
           hubResets != 0 || repushedConditions != 0 ||
           wakesCoalesced != 0 ||
           hubDownSeconds != 0.0 || fallbackAwakeSeconds != 0.0 ||
           fallbackEnergyMj != 0.0 || linkDownDeclared ||
           staleEpochFrames != 0 || updatesCommitted != 0 ||
           updatesRolledBack != 0 || reconfigDeltaBytes != 0 ||
           reconfigFullBytes != 0 || blindWindowSeconds != 0.0;
}

FaultMetrics &
FaultMetrics::operator+=(const FaultMetrics &other)
{
    retransmits += other.retransmits;
    framesLost += other.framesLost;
    framesDropped += other.framesDropped;
    bytesCorrupted += other.bytesCorrupted;
    decoderDroppedBytes += other.decoderDroppedBytes;
    hubResets += other.hubResets;
    repushedConditions += other.repushedConditions;
    wakesCoalesced += other.wakesCoalesced;
    hubDownSeconds += other.hubDownSeconds;
    fallbackAwakeSeconds += other.fallbackAwakeSeconds;
    fallbackEnergyMj += other.fallbackEnergyMj;
    linkDownDeclared = linkDownDeclared || other.linkDownDeclared;
    staleEpochFrames += other.staleEpochFrames;
    updatesCommitted += other.updatesCommitted;
    updatesRolledBack += other.updatesRolledBack;
    reconfigDeltaBytes += other.reconfigDeltaBytes;
    reconfigFullBytes += other.reconfigFullBytes;
    blindWindowSeconds =
        std::max(blindWindowSeconds, other.blindWindowSeconds);
    return *this;
}

namespace {

MatchResult
matchImpl(const std::vector<trace::GroundTruthEvent> &truth,
          const std::vector<double> &detection_times, double tolerance,
          bool coalesce)
{
    if (tolerance < 0.0)
        throw ConfigError("match tolerance must be non-negative");

    std::vector<double> detections = detection_times;
    std::sort(detections.begin(), detections.end());

    std::vector<bool> matched(truth.size(), false);
    MatchResult result;

    for (double t : detections) {
        // Find any event whose padded interval contains t, preferring
        // an unmatched one.
        std::size_t found = truth.size();
        std::size_t found_unmatched = truth.size();
        for (std::size_t i = 0; i < truth.size(); ++i) {
            if (t >= truth[i].startTime - tolerance &&
                t <= truth[i].endTime + tolerance) {
                found = i;
                if (!matched[i]) {
                    found_unmatched = i;
                    break;
                }
            }
        }

        if (found_unmatched < truth.size()) {
            matched[found_unmatched] = true;
            ++result.truePositives;
        } else if (found < truth.size()) {
            // Inside an already-matched event.
            if (!coalesce)
                ++result.falsePositives;
        } else {
            ++result.falsePositives;
        }
    }

    for (bool m : matched)
        if (!m)
            ++result.falseNegatives;
    return result;
}

} // namespace

MatchResult
matchEvents(const std::vector<trace::GroundTruthEvent> &truth,
            const std::vector<double> &detection_times, double tolerance)
{
    return matchImpl(truth, detection_times, tolerance, false);
}

MatchResult
matchEventsCoalesced(const std::vector<trace::GroundTruthEvent> &truth,
                     const std::vector<double> &detection_times,
                     double tolerance)
{
    return matchImpl(truth, detection_times, tolerance, true);
}

double
savingsFraction(double always_awake_mw, double approach_mw,
                double oracle_mw)
{
    const double available = always_awake_mw - oracle_mw;
    if (available <= 0.0)
        return 0.0;
    return (always_awake_mw - approach_mw) / available;
}

} // namespace sidewinder::metrics
