/**
 * @file
 * Detection-quality metrics: matching detections to ground truth and
 * computing the recall / precision the paper reports (Section 4.3).
 */

#ifndef SIDEWINDER_METRICS_EVENTS_H
#define SIDEWINDER_METRICS_EVENTS_H

#include <cstddef>
#include <vector>

#include "trace/types.h"

namespace sidewinder::metrics {

/** Outcome of matching detections against ground truth. */
struct MatchResult
{
    /** Ground-truth events matched by at least one detection. */
    std::size_t truePositives = 0;
    /** Detections matching no ground-truth event. */
    std::size_t falsePositives = 0;
    /** Ground-truth events no detection matched. */
    std::size_t falseNegatives = 0;

    /** TP / (TP + FN); 1 when there is no ground truth. */
    double recall() const;

    /** TP / (TP + FP); 1 when there are no detections. */
    double precision() const;
};

/**
 * Per-run fault-tolerance metrics (docs/fault-model.md): what the
 * injected faults cost and what the recovery machinery did about
 * them. Aggregated per simulation run by sim::simulate() and summable
 * across runs with operator+= for sweep-level robustness curves.
 */
struct FaultMetrics
{
    /** Reliable-transport retransmissions, both directions. */
    std::size_t retransmits = 0;
    /** Frames the reliable layer gave up on, both directions. */
    std::size_t framesLost = 0;
    /** Whole frames the injected fault hooks swallowed. */
    std::size_t framesDropped = 0;
    /** Bytes the injected corruption hooks actually changed. */
    std::size_t bytesCorrupted = 0;
    /** Bytes frame decoders discarded while resynchronizing. */
    std::size_t decoderDroppedBytes = 0;
    /** Hub brownout resets executed. */
    std::size_t hubResets = 0;
    /** Conditions the phone re-pushed across all recoveries. */
    std::size_t repushedConditions = 0;
    /** Redundant wake-ups the hub coalesced away at the source. */
    std::size_t wakesCoalesced = 0;
    /** Seconds the phone presumed the hub dead. */
    double hubDownSeconds = 0.0;
    /** Awake seconds spent in the Duty-Cycling fallback. */
    double fallbackAwakeSeconds = 0.0;
    /** Extra energy of the fallback awake time, millijoules. */
    double fallbackEnergyMj = 0.0;
    /** True when either side latched a link-down verdict. */
    bool linkDownDeclared = false;
    /** Reliable frames refused for carrying a superseded config
        epoch (delayed retransmits of dead update transactions). */
    std::size_t staleEpochFrames = 0;
    /** Live-reconfiguration transactions committed (A/B swaps). */
    std::size_t updatesCommitted = 0;
    /** Live-reconfiguration transactions rolled back. */
    std::size_t updatesRolledBack = 0;
    /** Framed bytes the delta pushes cost. */
    std::size_t reconfigDeltaBytes = 0;
    /** Framed bytes full pushes of the same plans would have cost. */
    std::size_t reconfigFullBytes = 0;
    /** Measured blind window of the last committed swap, seconds. */
    double blindWindowSeconds = 0.0;

    /** True when any counter is nonzero. */
    bool any() const;

    /** Element-wise accumulation (sweep aggregation). */
    FaultMetrics &operator+=(const FaultMetrics &other);
};

/**
 * Greedy one-to-one matching of detection timestamps to ground-truth
 * events: a detection at time t matches an unmatched event whose
 * padded interval [start - tolerance, end + tolerance] contains t.
 * Extra detections inside an already-matched event count as false
 * positives (over-reporting hurts precision).
 *
 * @param truth Ground-truth events, sorted by start time.
 * @param detection_times Detection timestamps, seconds, sorted.
 * @param tolerance Padding applied to each event interval, seconds.
 */
MatchResult matchEvents(const std::vector<trace::GroundTruthEvent> &truth,
                        const std::vector<double> &detection_times,
                        double tolerance);

/**
 * Variant that treats multiple detections inside one event interval
 * as a single detection (appropriate for events with duration, e.g. a
 * siren yielding several window-level triggers).
 */
MatchResult
matchEventsCoalesced(const std::vector<trace::GroundTruthEvent> &truth,
                     const std::vector<double> &detection_times,
                     double tolerance);

/**
 * Fraction of the available power savings an approach achieves
 * relative to the Oracle (Section 5.2 of the paper):
 * (AlwaysAwake - approach) / (AlwaysAwake - Oracle).
 */
double savingsFraction(double always_awake_mw, double approach_mw,
                       double oracle_mw);

} // namespace sidewinder::metrics

#endif // SIDEWINDER_METRICS_EVENTS_H
