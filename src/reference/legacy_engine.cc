#include "reference/legacy_engine.h"

#include <algorithm>
#include <cstdio>

#include "il/algorithm_info.h"
#include "il/analyze.h"
#include "support/error.h"

namespace sidewinder::reference {

using hub::FiringPolicy;
using hub::Value;
using hub::WakeEvent;
using hub::WaveState;

namespace {

/**
 * The engine's original canonical node identity: algorithm, %.17g
 * parameters, and *global node indices* of the inputs. The plan path
 * replaced the indices with structural input keys; for one engine's
 * install order the two dedupe identically.
 */
std::string
makeNodeKey(const il::Statement &stmt, const std::vector<int> &inputs)
{
    std::string key;
    key.reserve(stmt.algorithm.size() + 16 * stmt.params.size() +
                8 * inputs.size() + 2);
    key += stmt.algorithm;
    key += '(';
    char buf[32];
    for (double p : stmt.params) {
        std::snprintf(buf, sizeof buf, "%.17g,", p);
        key += buf;
    }
    key += ')';
    for (int in : inputs) {
        std::snprintf(buf, sizeof buf, "<%d", in);
        key += buf;
    }
    return key;
}

} // namespace

LegacyEngine::LegacyEngine(std::vector<il::ChannelInfo> channels,
                           bool share_nodes, std::size_t raw_buffer_size)
    : channelInfos(std::move(channels)), shareNodes(share_nodes),
      rawBufferSize(raw_buffer_size)
{
    if (channelInfos.empty())
        throw ConfigError("engine needs at least one channel");
    for (std::size_t i = 0; i < channelInfos.size(); ++i) {
        rawBuffers.emplace_back(rawBufferSize);
        channelIndexByName.emplace(channelInfos[i].name,
                                   static_cast<int>(i));
    }
}

int
LegacyEngine::channelIndexOf(const std::string &name) const
{
    auto it = channelIndexByName.find(name);
    if (it == channelIndexByName.end())
        throw ConfigError("engine has no channel '" + name + "'");
    return it->second;
}

void
LegacyEngine::addCondition(int condition_id, const il::Program &program)
{
    if (conditions.count(condition_id))
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " already installed");

    const il::StreamMap streams = il::validate(program, channelInfos);

    Condition cond;
    cond.id = condition_id;
    cond.primaryChannel = -1;

    std::map<il::NodeId, int> local_to_global;

    for (const auto &stmt : program.statements) {
        std::vector<int> inputs;
        std::vector<il::NodeStream> input_streams;
        for (const auto &src : stmt.inputs) {
            if (src.kind == il::SourceRef::Kind::Channel) {
                const int ch = channelIndexOf(src.channel);
                inputs.push_back(-(ch + 1));
                il::NodeStream s;
                s.kind = il::ValueKind::Scalar;
                s.fireRateHz = channelInfos[ch].sampleRateHz;
                s.baseRateHz = channelInfos[ch].sampleRateHz;
                input_streams.push_back(s);
                if (cond.primaryChannel < 0)
                    cond.primaryChannel = ch;
            } else {
                const int global = local_to_global.at(src.node);
                inputs.push_back(global);
                input_streams.push_back(nodes[global]->stream);
            }
        }

        if (stmt.isOut) {
            cond.outNode = inputs.front();
            continue;
        }

        std::string key = makeNodeKey(stmt, inputs);

        int index = -1;
        if (shareNodes) {
            auto it = nodeByKey.find(key);
            if (it != nodeByKey.end())
                index = it->second;
        }

        if (index < 0) {
            auto node = std::make_unique<Node>();
            node->key = std::move(key);
            node->algorithm = stmt.algorithm;
            node->kernel = hub::makeKernel(stmt, input_streams);
            node->inputs = inputs;
            node->stream = streams.at(stmt.id);

            const auto info = il::findAlgorithm(stmt.algorithm);
            if (!info)
                throw InternalError("validated program with unknown "
                                    "algorithm");
            node->cyclesPerInvoke =
                il::invokeCost(*info, input_streams.front());
            double rate = input_streams.front().fireRateHz;
            for (const auto &s : input_streams)
                rate = std::min(rate, s.fireRateHz);
            node->invokeRateHz = rate;
            node->ramBytes = il::nodeRamBytes(
                *info, stmt.params, input_streams.front(),
                node->stream);

            index = static_cast<int>(nodes.size());
            nodes.push_back(std::move(node));
            if (shareNodes)
                nodeByKey[nodes[index]->key] = index;
        }

        nodes[index]->refCount += 1;
        cond.ownedNodes.push_back(index);
        local_to_global[stmt.id] = index;
    }

    if (cond.outNode < 0)
        throw InternalError("validated program without OUT node");
    if (cond.primaryChannel < 0)
        cond.primaryChannel = 0;

    conditions[condition_id] = std::move(cond);
}

void
LegacyEngine::removeCondition(int condition_id)
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");

    for (int index : it->second.ownedNodes) {
        Node *node = nodes[static_cast<std::size_t>(index)].get();
        if (node == nullptr)
            throw InternalError("condition references freed node");
        node->refCount -= 1;
        if (node->refCount == 0) {
            nodeByKey.erase(node->key);
            nodes[static_cast<std::size_t>(index)].reset();
        }
    }
    conditions.erase(it);
}

bool
LegacyEngine::hasCondition(int condition_id) const
{
    return conditions.count(condition_id) != 0;
}

void
LegacyEngine::pushSamples(const std::vector<double> &values,
                          double timestamp)
{
    if (values.size() != channelInfos.size())
        throw ConfigError("pushSamples expects " +
                          std::to_string(channelInfos.size()) +
                          " values, got " +
                          std::to_string(values.size()));

    for (std::size_t ch = 0; ch < values.size(); ++ch)
        rawBuffers[ch].push(values[ch]);

    channelValues.resize(values.size());
    for (std::size_t ch = 0; ch < values.size(); ++ch)
        channelValues[ch] = Value(values[ch]);
    const std::vector<Value> &channel_values = channelValues;

    for (auto &slot : nodes) {
        Node *node = slot.get();
        if (node == nullptr)
            continue;

        bool all_emitted = true;
        bool any_emitted = false;
        bool any_blocked = false;
        std::vector<const Value *> &input_ptrs = node->scratch;
        input_ptrs.clear();

        for (int in : node->inputs) {
            const Value *value = nullptr;
            WaveState in_state;
            if (in < 0) {
                in_state = WaveState::Emitted;
                value = &channel_values[static_cast<std::size_t>(
                    -in - 1)];
            } else {
                const Node *producer =
                    nodes[static_cast<std::size_t>(in)].get();
                in_state = producer->state;
                if (in_state == WaveState::Emitted)
                    value = &producer->result;
            }
            all_emitted =
                all_emitted && in_state == WaveState::Emitted;
            any_emitted =
                any_emitted || in_state == WaveState::Emitted;
            any_blocked =
                any_blocked || in_state == WaveState::Blocked;
            input_ptrs.push_back(value);
        }

        bool run = false;
        switch (node->kernel->firingPolicy()) {
          case FiringPolicy::AllInputs:
            run = all_emitted;
            break;
          case FiringPolicy::AnyInput:
            run = any_emitted;
            break;
          case FiringPolicy::ObserveBlocks:
            run = any_emitted || any_blocked;
            break;
        }

        if (!run) {
            node->state = any_blocked ? WaveState::Blocked
                                      : WaveState::Idle;
            continue;
        }

        if (node->kernel->invokeInto(input_ptrs, node->result)) {
            node->state = WaveState::Emitted;
        } else {
            node->state = node->kernel->conditional()
                              ? WaveState::Blocked
                              : WaveState::Idle;
        }
    }

    for (const auto &[id, cond] : conditions) {
        const Node *out_node =
            nodes[static_cast<std::size_t>(cond.outNode)].get();
        if (out_node != nullptr &&
            out_node->state == WaveState::Emitted) {
            pendingWakeEvents.push_back(
                WakeEvent{id, timestamp, out_node->result.scalar()});
        }
    }
}

void
LegacyEngine::resetState()
{
    for (auto &slot : nodes) {
        if (slot == nullptr)
            continue;
        slot->kernel->reset();
        slot->state = WaveState::Idle;
    }
    for (auto &buffer : rawBuffers)
        buffer.clear();
    pendingWakeEvents.clear();
}

std::vector<WakeEvent>
LegacyEngine::drainWakeEvents()
{
    std::vector<WakeEvent> out;
    out.swap(pendingWakeEvents);
    return out;
}

std::vector<double>
LegacyEngine::rawSnapshot(int condition_id) const
{
    auto it = conditions.find(condition_id);
    if (it == conditions.end())
        throw ConfigError("condition id " + std::to_string(condition_id) +
                          " is not installed");
    return rawBuffers[static_cast<std::size_t>(
                          it->second.primaryChannel)]
        .snapshot();
}

std::size_t
LegacyEngine::nodeCount() const
{
    std::size_t count = 0;
    for (const auto &slot : nodes)
        if (slot != nullptr)
            ++count;
    return count;
}

double
LegacyEngine::estimatedCyclesPerSecond() const
{
    double total = 0.0;
    for (const auto &slot : nodes)
        if (slot != nullptr)
            total += slot->cyclesPerInvoke * slot->invokeRateHz;
    return total;
}

std::size_t
LegacyEngine::estimatedRamBytes() const
{
    std::size_t total = 0;
    for (const auto &slot : nodes)
        if (slot != nullptr)
            total += slot->ramBytes;
    return total;
}

} // namespace sidewinder::reference
