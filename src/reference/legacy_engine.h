/**
 * @file
 * Frozen copy of the hub engine's original AST-walking interpreter,
 * kept verbatim (modulo naming) as a behavioral reference.
 *
 * The live hub::Engine executes lowered il::ExecutionPlans; this class
 * preserves the statement-at-a-time install path and the per-wave
 * virtual firingPolicy dispatch it replaced. The plan property test
 * drives both against identical sample streams and requires
 * bit-identical wake events, which is what licenses every future
 * change to the plan path.
 *
 * Do not extend this class: it is a fixture, not a second engine.
 */

#ifndef SIDEWINDER_REFERENCE_LEGACY_ENGINE_H
#define SIDEWINDER_REFERENCE_LEGACY_ENGINE_H

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hub/engine.h"
#include "hub/kernel.h"
#include "il/ast.h"
#include "il/validate.h"
#include "support/ring_buffer.h"

namespace sidewinder::reference {

/** The pre-ExecutionPlan interpreter, preserved for differential tests. */
class LegacyEngine
{
  public:
    explicit LegacyEngine(std::vector<il::ChannelInfo> channels,
                          bool share_nodes = true,
                          std::size_t raw_buffer_size = 200);

    /** Validate and install a wake-up condition from the AST. */
    void addCondition(int condition_id, const il::Program &program);

    /** Remove a condition, freeing nodes no other condition uses. */
    void removeCondition(int condition_id);

    bool hasCondition(int condition_id) const;

    /**
     * Feed one synchronous sample per channel and run one evaluation
     * wave over the slot array (freed slots skipped in place).
     */
    void pushSamples(const std::vector<double> &values, double timestamp);

    /** Retrieve and clear the wake-ups raised since the last drain. */
    std::vector<hub::WakeEvent> drainWakeEvents();

    /** Recent raw samples of the condition's primary channel. */
    std::vector<double> rawSnapshot(int condition_id) const;

    /** Live (shared) algorithm instances across all conditions. */
    std::size_t nodeCount() const;

    /** Static compute-demand estimate, AST-derived per node. */
    double estimatedCyclesPerSecond() const;

    /** Static RAM estimate, AST-derived per node. */
    std::size_t estimatedRamBytes() const;

    /** Power-cycle semantics: keep conditions, drop signal state. */
    void resetState();

  private:
    struct Node
    {
        std::string key;
        std::string algorithm;
        std::unique_ptr<hub::Kernel> kernel;
        /** Inputs: node index (>= 0) or channel as -(index + 1). */
        std::vector<int> inputs;
        il::NodeStream stream;
        double cyclesPerInvoke = 0.0;
        double invokeRateHz = 0.0;
        std::size_t ramBytes = 0;
        int refCount = 0;

        // Per-wave state.
        hub::WaveState state = hub::WaveState::Idle;
        hub::Value result;
        std::vector<const hub::Value *> scratch;
    };

    struct Condition
    {
        int id = 0;
        int outNode = -1;
        std::vector<int> ownedNodes;
        int primaryChannel = 0;
    };

    int channelIndexOf(const std::string &name) const;

    std::vector<il::ChannelInfo> channelInfos;
    std::unordered_map<std::string, int> channelIndexByName;
    bool shareNodes;
    std::size_t rawBufferSize;

    std::vector<std::unique_ptr<Node>> nodes;
    std::unordered_map<std::string, int> nodeByKey;
    std::map<int, Condition> conditions;
    std::vector<RingBuffer<double>> rawBuffers;
    std::vector<hub::WakeEvent> pendingWakeEvents;
    std::vector<hub::Value> channelValues;
};

} // namespace sidewinder::reference

#endif // SIDEWINDER_REFERENCE_LEGACY_ENGINE_H
