#include "sim/calibrate.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::sim {

CalibrationResult
calibratePredefinedThreshold(const std::vector<trace::Trace> &traces,
                             const apps::Application &app,
                             std::vector<double> candidates,
                             SimConfig base)
{
    if (traces.empty())
        throw ConfigError("calibration needs at least one trace");
    if (candidates.empty())
        throw ConfigError("calibration needs candidate thresholds");

    std::sort(candidates.begin(), candidates.end(),
              std::greater<double>());

    base.strategy = Strategy::PredefinedActivity;

    for (double threshold : candidates) {
        base.predefinedThreshold = threshold;
        double power_sum = 0.0;
        bool full_recall = true;
        for (const auto &trace : traces) {
            const SimResult result = simulate(trace, app, base);
            power_sum += result.averagePowerMw;
            if (result.recall < 1.0) {
                full_recall = false;
                break;
            }
        }
        if (full_recall) {
            CalibrationResult out;
            out.threshold = threshold;
            out.averagePowerMw =
                power_sum / static_cast<double>(traces.size());
            out.achievedFullRecall = true;
            return out;
        }
    }

    // Even the most sensitive candidate misses events; report it.
    CalibrationResult out;
    out.threshold = candidates.back();
    base.predefinedThreshold = out.threshold;
    double power_sum = 0.0;
    for (const auto &trace : traces)
        power_sum += simulate(trace, app, base).averagePowerMw;
    out.averagePowerMw =
        power_sum / static_cast<double>(traces.size());
    out.achievedFullRecall = false;
    return out;
}

} // namespace sidewinder::sim
