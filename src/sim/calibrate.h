/**
 * @file
 * Threshold calibration for the Predefined Activity comparison.
 *
 * Section 5.3 of the paper: "To make the comparison to Predefined
 * Activity as fair as possible, we explored the parameter space to
 * determine the best thresholds for significant acceleration and
 * sound intensity. We chose values that minimize power consumption,
 * while maintaining 100% detection recall." This module reproduces
 * that sweep.
 */

#ifndef SIDEWINDER_SIM_CALIBRATE_H
#define SIDEWINDER_SIM_CALIBRATE_H

#include <vector>

#include "apps/app.h"
#include "sim/simulator.h"
#include "trace/types.h"

namespace sidewinder::sim {

/** Outcome of a Predefined Activity threshold sweep. */
struct CalibrationResult
{
    /** Chosen threshold. */
    double threshold = 0.0;
    /** Mean power across the calibration traces at that threshold. */
    double averagePowerMw = 0.0;
    /**
     * True when the chosen threshold maintains 100% recall on every
     * calibration trace; false when even the most sensitive candidate
     * loses events (the lowest candidate is returned in that case).
     */
    bool achievedFullRecall = false;
};

/**
 * Pick the least-sensitive (highest) candidate threshold that keeps
 * 100% recall for @p app on every trace in @p traces — the paper's
 * over-fit-in-favor-of-Predefined-Activity policy.
 *
 * @param candidates Candidate thresholds, any order.
 * @param base Simulation parameters; the strategy field is ignored.
 */
CalibrationResult
calibratePredefinedThreshold(const std::vector<trace::Trace> &traces,
                             const apps::Application &app,
                             std::vector<double> candidates,
                             SimConfig base = {});

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_CALIBRATE_H
