#include "sim/concurrent.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "hub/engine.h"
#include "hub/mcu.h"
#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::sim {

ConcurrentResult
simulateConcurrent(
    const trace::Trace &trace,
    const std::vector<std::unique_ptr<apps::Application>> &apps,
    const SimConfig &config)
{
    if (apps.empty())
        throw ConfigError("concurrent simulation needs applications");
    trace.checkInvariants();

    // All applications must share the channel set (one hub).
    const auto channels = apps.front()->channels();
    for (const auto &app : apps) {
        const auto other = app->channels();
        if (other.size() != channels.size())
            throw ConfigError("concurrent apps must share channels");
        for (std::size_t i = 0; i < channels.size(); ++i)
            if (other[i].name != channels[i].name)
                throw ConfigError(
                    "concurrent apps must share channels");
    }

    // Lower every condition once, then install the plans on one
    // engine (the install path the hub runtime uses at admission).
    hub::Engine engine(channels, config.shareHubNodes);
    double wake_bound_hz = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const il::ExecutionPlan plan =
            il::lower(apps[a]->wakeCondition().compile(), channels,
                      il::LowerOptions{config.shareHubNodes});
        wake_bound_hz += plan.wakeRateBoundHz;
        engine.addCondition(static_cast<int>(a + 1), plan);
    }

    ConcurrentResult result;
    result.hubNodeCount = engine.nodeCount();
    result.hubCyclesPerSecond = engine.estimatedCyclesPerSecond();
    // Size the hub against the full budget set — compute, RAM, and
    // the summed wake bound — not just cycles: a node mix that fits
    // the MSP430's cycle budget can still blow its 16 KB of SRAM.
    il::ProgramCost hub_load;
    hub_load.cyclesPerSecond = result.hubCyclesPerSecond;
    hub_load.ramBytes = engine.estimatedRamBytes();
    hub_load.wakeRateBoundHz = wake_bound_hz;
    const hub::McuModel mcu = hub::selectMcuForCost(hub_load);
    result.mcuName = mcu.name;

    // Replay the trace; collect triggers per condition.
    std::vector<std::size_t> mapping;
    for (const auto &ch : channels)
        mapping.push_back(trace.channelIndex(ch.name));

    std::map<int, std::vector<double>> triggers;
    std::vector<double> values(mapping.size());
    const std::size_t n = trace.sampleCount();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < mapping.size(); ++c)
            values[c] = trace.channels[mapping[c]][i];
        engine.pushSamples(values, trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers[event.conditionId].push_back(event.timestamp);
    }

    // One shared timeline: the CPU wakes when any condition fires.
    // The dwell and lookback honour the most demanding application.
    double event_dwell = config.eventDwellSeconds;
    double lookback = config.lookbackSeconds;
    for (const auto &app : apps) {
        if (config.eventDwellSeconds <= 0.0)
            event_dwell = std::max(
                event_dwell, app->recommendedEventDwellSeconds());
        if (config.lookbackSeconds <= 0.0)
            lookback = std::max(lookback,
                                app->recommendedLookbackSeconds());
    }

    PowerModel model = nexus4WithHub(mcu.activePowerMw);
    DeviceTimeline timeline(trace.durationSeconds());
    const double trans = model.transitionSeconds;
    for (const auto &[id, times] : triggers) {
        (void)id;
        for (double t : times)
            timeline.addAwakeInterval(t + trans,
                                      t + trans + event_dwell);
    }
    const auto merged = timeline.mergedIntervals(2.0 * trans - 1e-9);
    result.timeline = timeline.summarize(model);
    result.averagePowerMw = result.timeline.averagePowerMw;
    result.hubMw = mcu.activePowerMw;

    // Per-application classification over the shared awake windows.
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &app = *apps[a];
        std::vector<double> detections;
        double covered_until = 0.0;
        for (const auto &interval : merged) {
            const double begin_t =
                std::max(interval.start - lookback, covered_until);
            covered_until = interval.end;
            const auto begin = static_cast<std::size_t>(
                std::max(begin_t, 0.0) * trace.sampleRateHz);
            const auto end = std::min(
                static_cast<std::size_t>(interval.end *
                                         trace.sampleRateHz),
                n);
            if (end <= begin)
                continue;
            for (double t : app.classify(trace, begin, end))
                detections.push_back(t);
        }
        std::sort(detections.begin(), detections.end());

        const auto truth = trace.eventsOfType(app.eventType());
        ConcurrentAppResult app_result;
        app_result.appName = app.name();
        app_result.hubTriggerCount =
            triggers.count(static_cast<int>(a + 1))
                ? triggers.at(static_cast<int>(a + 1)).size()
                : 0;
        app_result.detection =
            app.coalesceDetections()
                ? metrics::matchEventsCoalesced(truth, detections,
                                                app.matchTolerance())
                : metrics::matchEvents(truth, detections,
                                       app.matchTolerance());
        app_result.recall = app_result.detection.recall();
        app_result.precision = app_result.detection.precision();
        result.apps.push_back(std::move(app_result));
    }

    return result;
}

DeviceResult
simulateDevice(const std::vector<DeviceDomain> &domains,
               const SimConfig &config)
{
    if (domains.empty())
        throw ConfigError("device simulation needs domains");
    for (const auto &domain : domains) {
        if (domain.trace == nullptr || domain.apps == nullptr ||
            domain.apps->empty())
            throw ConfigError("device domain needs a trace and apps");
        domain.trace->checkInvariants();
    }
    const double total = domains.front().trace->durationSeconds();
    for (const auto &domain : domains)
        if (std::abs(domain.trace->durationSeconds() - total) > 1.0)
            throw ConfigError(
                "device domain traces must share a duration");

    DeviceResult result;
    PowerModel model = nexus4();
    DeviceTimeline timeline(total);
    const double trans = model.transitionSeconds;

    struct PendingDomain
    {
        const DeviceDomain *domain;
        std::map<int, std::vector<double>> triggers;
        double lookback = 0.0;
    };
    std::vector<PendingDomain> pending;

    // Run each domain's hub; accumulate triggers onto one timeline.
    for (const auto &domain : domains) {
        const auto &apps = *domain.apps;
        const auto &trace = *domain.trace;
        const auto channels = apps.front()->channels();

        hub::Engine engine(channels, config.shareHubNodes);
        double wake_bound_hz = 0.0;
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const il::ExecutionPlan plan = il::lower(
                apps[a]->wakeCondition().compile(), channels,
                il::LowerOptions{config.shareHubNodes});
            wake_bound_hz += plan.wakeRateBoundHz;
            engine.addCondition(static_cast<int>(a + 1), plan);
        }

        DeviceDomainResult domain_result;
        domain_result.hubNodeCount = engine.nodeCount();
        // Full budget set per domain hub: cycles, RAM, wake bound.
        il::ProgramCost hub_load;
        hub_load.cyclesPerSecond = engine.estimatedCyclesPerSecond();
        hub_load.ramBytes = engine.estimatedRamBytes();
        hub_load.wakeRateBoundHz = wake_bound_hz;
        const hub::McuModel mcu = hub::selectMcuForCost(hub_load);
        domain_result.mcuName = mcu.name;
        domain_result.hubMw = mcu.activePowerMw;
        result.totalHubMw += mcu.activePowerMw;
        model.hubMw += mcu.activePowerMw;

        std::vector<std::size_t> mapping;
        for (const auto &ch : channels)
            mapping.push_back(trace.channelIndex(ch.name));

        PendingDomain p;
        p.domain = &domain;
        double event_dwell = config.eventDwellSeconds;
        for (const auto &app : apps) {
            if (config.eventDwellSeconds <= 0.0)
                event_dwell = std::max(
                    event_dwell, app->recommendedEventDwellSeconds());
            p.lookback = std::max(
                p.lookback, config.lookbackSeconds > 0.0
                                ? config.lookbackSeconds
                                : app->recommendedLookbackSeconds());
        }

        std::vector<double> values(mapping.size());
        for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
            for (std::size_t c = 0; c < mapping.size(); ++c)
                values[c] = trace.channels[mapping[c]][i];
            engine.pushSamples(values, trace.timeOf(i));
            for (const auto &event : engine.drainWakeEvents()) {
                p.triggers[event.conditionId].push_back(
                    event.timestamp);
                timeline.addAwakeInterval(
                    event.timestamp + trans,
                    event.timestamp + trans + event_dwell);
            }
        }

        result.domains.push_back(std::move(domain_result));
        pending.push_back(std::move(p));
    }

    const auto merged = timeline.mergedIntervals(2.0 * trans - 1e-9);
    result.timeline = timeline.summarize(model);
    result.averagePowerMw = result.timeline.averagePowerMw;

    // Classify per app over the shared awake windows.
    for (std::size_t d = 0; d < pending.size(); ++d) {
        const auto &p = pending[d];
        const auto &apps = *p.domain->apps;
        const auto &trace = *p.domain->trace;

        for (std::size_t a = 0; a < apps.size(); ++a) {
            const auto &app = *apps[a];
            std::vector<double> detections;
            double covered_until = 0.0;
            for (const auto &interval : merged) {
                const double begin_t = std::max(
                    interval.start - p.lookback, covered_until);
                covered_until = interval.end;
                const auto begin = static_cast<std::size_t>(
                    std::max(begin_t, 0.0) * trace.sampleRateHz);
                const auto end = std::min(
                    static_cast<std::size_t>(interval.end *
                                             trace.sampleRateHz),
                    trace.sampleCount());
                if (end <= begin)
                    continue;
                for (double t : app.classify(trace, begin, end))
                    detections.push_back(t);
            }
            std::sort(detections.begin(), detections.end());

            const auto truth = trace.eventsOfType(app.eventType());
            ConcurrentAppResult app_result;
            app_result.appName = app.name();
            app_result.hubTriggerCount =
                p.triggers.count(static_cast<int>(a + 1))
                    ? p.triggers.at(static_cast<int>(a + 1)).size()
                    : 0;
            app_result.detection =
                app.coalesceDetections()
                    ? metrics::matchEventsCoalesced(
                          truth, detections, app.matchTolerance())
                    : metrics::matchEvents(truth, detections,
                                           app.matchTolerance());
            app_result.recall = app_result.detection.recall();
            app_result.precision = app_result.detection.precision();
            result.domains[d].apps.push_back(std::move(app_result));
        }
    }

    return result;
}

} // namespace sidewinder::sim
