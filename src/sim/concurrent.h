/**
 * @file
 * Concurrent multi-application simulation.
 *
 * Section 7 of the paper: "We would also like to explore supporting
 * multiple concurrent applications while still maintaining
 * predictable performance. When receiving multiple wake-up
 * conditions, the sensor manager can attempt to improve performance
 * by combining the pipelines that use common algorithms."
 *
 * This simulator installs every application's wake-up condition on
 * ONE hub engine (with or without node sharing), wakes the main CPU
 * whenever any condition fires, runs each application's second-stage
 * classifier on the shared awake windows, and reports per-application
 * detection quality plus the single combined power figure — the
 * number a real phone would draw with all the apps active at once.
 */

#ifndef SIDEWINDER_SIM_CONCURRENT_H
#define SIDEWINDER_SIM_CONCURRENT_H

#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "metrics/events.h"
#include "sim/simulator.h"
#include "trace/types.h"

namespace sidewinder::sim {

/** Per-application outcome of a concurrent run. */
struct ConcurrentAppResult
{
    std::string appName;
    metrics::MatchResult detection;
    double recall = 1.0;
    double precision = 1.0;
    /** Hub triggers raised by this application's condition. */
    std::size_t hubTriggerCount = 0;
};

/** Outcome of a concurrent multi-application simulation. */
struct ConcurrentResult
{
    /** Combined device power with all conditions installed, mW. */
    double averagePowerMw = 0.0;
    TimelineSummary timeline;
    /** Hub microcontroller the combined load required. */
    std::string mcuName;
    double hubMw = 0.0;
    /** Algorithm instances on the hub (after sharing, if enabled). */
    std::size_t hubNodeCount = 0;
    /** Sustained hub compute demand, abstract cycle units/s. */
    double hubCyclesPerSecond = 0.0;
    /** Per-application detection quality. */
    std::vector<ConcurrentAppResult> apps;
};

/**
 * Run all @p apps concurrently over @p trace under the Sidewinder
 * strategy. All applications must use the same sensor channels (they
 * share one hub).
 *
 * @throws CapabilityError when the combined load fits no MCU.
 */
ConcurrentResult
simulateConcurrent(const trace::Trace &trace,
                   const std::vector<std::unique_ptr<apps::Application>> &apps,
                   const SimConfig &config = {});

/**
 * One sensor domain of a multi-hub device: a synchronous channel
 * group (its own hub) with the applications that consume it and the
 * recording that drives it.
 */
struct DeviceDomain
{
    /** Recording for this domain's channels. */
    const trace::Trace *trace = nullptr;
    /** Applications on this domain (same channel set each). */
    const std::vector<std::unique_ptr<apps::Application>> *apps =
        nullptr;
};

/** Per-domain summary of a multi-hub device simulation. */
struct DeviceDomainResult
{
    /** Hub part serving this domain. */
    std::string mcuName;
    double hubMw = 0.0;
    std::size_t hubNodeCount = 0;
    /** Per-application detection quality. */
    std::vector<ConcurrentAppResult> apps;
};

/** Outcome of a whole-device simulation. */
struct DeviceResult
{
    /** Phone + all hubs, averaged over the run, mW. */
    double averagePowerMw = 0.0;
    TimelineSummary timeline;
    /** Sum of the per-domain hub powers, mW. */
    double totalHubMw = 0.0;
    std::vector<DeviceDomainResult> domains;
};

/**
 * Simulate a heterogeneous device in the Section 2.1.1 style: one
 * main CPU and one hub per sensor domain ("a DSP for the microphone
 * and an FPGA for each of the other sensors"). Each domain runs its
 * applications' wake-up conditions on its own hub; any hub's trigger
 * wakes the shared main CPU. Domain traces must have equal durations.
 *
 * @throws ConfigError on empty/mismatched domains; CapabilityError
 *     when a domain's load fits no MCU.
 */
DeviceResult simulateDevice(const std::vector<DeviceDomain> &domains,
                            const SimConfig &config = {});

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_CONCURRENT_H
