#include "sim/faults.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "core/sensor_manager.h"
#include "hub/mcu.h"
#include "hub/placer.h"
#include "hub/runtime.h"
#include "il/lower.h"
#include "sim/replay.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::sim {

namespace {

/** Line rate of the prototype's debug UART (Section 3.4). */
constexpr double uartBaudRate = 115200.0;

/** Beacon cadence the supervised runs use. */
constexpr double heartbeatIntervalSeconds = 1.0;

/** Silent beacons before the phone declares the hub dead. */
constexpr double missedBeatsThreshold = 3.0;

/**
 * Minimum spacing of wake-up frames per condition. A triggering
 * condition fires at sample rate; retransmitting every redundant
 * raw-data frame would overflow the reliable queue and crowd out
 * fresh wake-ups on a corrupted line (docs/fault-model.md).
 */
constexpr double wakeCoalesceSeconds = 1.0;

/** Records wake-up delivery times on the phone. */
class CollectingListener : public core::SensorEventListener
{
  public:
    explicit CollectingListener(std::vector<double> &out) : out(out) {}

    void
    onSensorEvent(const core::SensorData &data) override
    {
        out.push_back(data.timestamp);
    }

  private:
    std::vector<double> &out;
};

/** One stuck-sensor window resolved against the trace. */
struct StuckWindow
{
    std::size_t engineChannel = 0;
    double start = 0.0;
    double end = 0.0;
    double heldValue = 0.0;
};

std::vector<StuckWindow>
resolveStuckWindows(const FaultPlan &plan, const trace::Trace &trace,
                    const std::vector<std::size_t> &mapping)
{
    std::vector<StuckWindow> windows;
    const std::size_t n = trace.sampleCount();
    for (const auto &interval : plan.stuckSensors) {
        if (interval.channelIndex >= mapping.size())
            throw ConfigError(
                "stuck-sensor fault names channel " +
                std::to_string(interval.channelIndex) + "; app has " +
                std::to_string(mapping.size()));
        if (!(interval.endSeconds > interval.startSeconds))
            throw ConfigError("stuck-sensor window must be non-empty");
        StuckWindow w;
        w.engineChannel = interval.channelIndex;
        w.start = interval.startSeconds;
        w.end = interval.endSeconds;
        // The sensor freezes at whatever it last reported.
        const std::size_t at = std::min(
            detail::sampleAt(trace, interval.startSeconds), n - 1);
        w.heldValue = trace.channels[mapping[w.engineChannel]][at];
        windows.push_back(w);
    }
    return windows;
}

/**
 * Rebuild @p pipeline with every threshold-like parameter multiplied
 * by @p scale — the canonical "retune one knob" update. Covers the
 * *Threshold family plus the localMaxima/localMinima band bounds
 * (their refractory count is a structural knob, not a threshold, and
 * stays put). All other stages are copied verbatim, so their canonical
 * shareKeys (and hence the hub-side nodes and their state) are
 * preserved by the delta.
 */
core::ProcessingPipeline
scaleThresholds(const core::ProcessingPipeline &pipeline, double scale)
{
    auto rebuild = [scale](const core::Algorithm &algorithm) {
        std::vector<double> params = algorithm.params();
        if (algorithm.name().find("hreshold") != std::string::npos) {
            for (double &p : params)
                p *= scale;
        } else if (algorithm.name() == "localMaxima" ||
                   algorithm.name() == "localMinima") {
            for (std::size_t i = 0; i < params.size() && i < 2; ++i)
                params[i] *= scale;
        } else {
            return algorithm;
        }
        return core::Algorithm(algorithm.name(), std::move(params));
    };
    core::ProcessingPipeline scaled;
    for (const auto &branch : pipeline.branches()) {
        core::ProcessingBranch b(branch.channel());
        for (const auto &algorithm : branch.algorithms())
            b.add(rebuild(algorithm));
        scaled.add(std::move(b));
    }
    for (const auto &stage : pipeline.pipelineStages())
        scaled.add(rebuild(stage));
    return scaled;
}

} // namespace

bool
FaultPlan::any() const
{
    return byteCorruptionRate > 0.0 || frameDropRate > 0.0 ||
           !hubResetTimes.empty() || !stuckSensors.empty() ||
           !reconfigUpdates.empty();
}

void
armLink(transport::LinkPair &link, const FaultPlan &plan,
        std::shared_ptr<const bool> update_active)
{
    // One independent stream per hook, forked in a fixed order, so
    // the fault pattern is a pure function of the seed regardless of
    // traffic interleaving between the two directions.
    Rng root(plan.seed);
    auto p2h_corrupt = std::make_shared<Rng>(root.fork());
    auto p2h_drop = std::make_shared<Rng>(root.fork());
    auto h2p_corrupt = std::make_shared<Rng>(root.fork());
    auto h2p_drop = std::make_shared<Rng>(root.fork());

    const double corruption = plan.byteCorruptionRate;
    const double update_extra =
        update_active ? plan.updateCorruptionRate : 0.0;
    const double drop = plan.frameDropRate;

    if (corruption > 0.0 || update_extra > 0.0) {
        // The effective rate rises by updateCorruptionRate while an
        // update transaction is in flight (the flag the simulator
        // toggles), modelling lines that degrade exactly when the
        // reconfiguration traffic is on them.
        auto rate = [corruption, update_extra, update_active]() {
            return corruption + (update_active && *update_active
                                     ? update_extra
                                     : 0.0);
        };
        link.phoneToHub().setCorruptor(
            [p2h_corrupt, rate](std::uint8_t byte) {
                if (!p2h_corrupt->chance(rate()))
                    return byte;
                return static_cast<std::uint8_t>(
                    byte ^ (1u << p2h_corrupt->uniformInt(0, 7)));
            });
        link.hubToPhone().setCorruptor(
            [h2p_corrupt, rate](std::uint8_t byte) {
                if (!h2p_corrupt->chance(rate()))
                    return byte;
                return static_cast<std::uint8_t>(
                    byte ^ (1u << h2p_corrupt->uniformInt(0, 7)));
            });
    }
    if (drop > 0.0) {
        link.phoneToHub().setFrameDropper(
            [p2h_drop, drop]() { return p2h_drop->chance(drop); });
        link.hubToPhone().setFrameDropper(
            [h2p_drop, drop]() { return h2p_drop->chance(drop); });
    }
}

SimResult
simulateSupervised(const trace::Trace &trace,
                   const apps::Application &app, const SimConfig &config)
{
    trace.checkInvariants();
    if (config.strategy != Strategy::Sidewinder)
        throw ConfigError(
            "fault injection requires the Sidewinder strategy");
    if (config.hubBackend == HubBackend::Fpga)
        throw ConfigError("fault injection supports only the "
                          "microcontroller hub backend");

    const FaultPlan &plan = config.faults;
    const double total = trace.durationSeconds();
    const auto truth = trace.eventsOfType(app.eventType());

    PowerModel model = nexus4();
    DeviceTimeline timeline(total);
    SimResult result;
    result.configName =
        strategyName(config.strategy, config.sleepIntervalSeconds);

    const double trans = model.transitionSeconds;
    const double event_dwell =
        config.eventDwellSeconds > 0.0
            ? config.eventDwellSeconds
            : app.recommendedEventDwellSeconds();
    const double lookback = config.lookbackSeconds > 0.0
                                ? config.lookbackSeconds
                                : app.recommendedLookbackSeconds();

    core::ProcessingPipeline pipeline = app.wakeCondition();
    const il::Program program = pipeline.compile();
    const auto channels = app.channels();
    // Same executor space simulate() uses for this backend, so a
    // supervised run with no active faults stays bit-identical.
    std::vector<hub::ExecutorModel> space;
    if (config.hubBackend == HubBackend::Heterogeneous) {
        space = hub::platformExecutors();
    } else {
        for (const auto &mcu : hub::availableMcus())
            space.push_back(hub::mcuExecutor(mcu));
    }
    const il::ExecutionPlan il_plan = il::lower(program, channels);
    const hub::PlacementDecision home =
        hub::placeCondition(il_plan, space);
    if (!home.placed()) {
        hub::selectMcuForCost(il_plan.cost());
        throw CapabilityError(
            "no hub executor can home the condition");
    }
    model.hubMw = home.marginalPowerMw;
    result.mcuName = home.executorName;
    result.placement = home;
    // The supervised transport stack models a microcontroller hub
    // runtime; a Heterogeneous run whose condition homed on the
    // fabric or the AP has no such runtime to supervise.
    const hub::McuModel *mcu_home = nullptr;
    for (const auto &m : hub::availableMcus())
        if (home.kind == hub::ExecutorKind::Mcu &&
            m.name == home.executorName)
            mcu_home = &m;
    if (mcu_home == nullptr)
        throw ConfigError("fault injection requires a microcontroller "
                          "home (placer chose " +
                          home.executorName + ")");
    const hub::McuModel mcu = *mcu_home;

    // The full transport + supervision stack the fault-free fast path
    // skips: framed UART with injected faults, reliable channel on
    // both sides, heartbeats, and the re-pushing supervisor.
    transport::LinkPair link(uartBaudRate);
    // Shared with the corruption hooks: true while an update
    // transaction is in flight, raising the line's error rate by
    // plan.updateCorruptionRate for the duration.
    auto update_active = std::make_shared<bool>(false);
    armLink(link, plan,
            plan.updateCorruptionRate > 0.0 ? update_active : nullptr);

    // A ~1.2 KB raw-data wake frame survives a 1e-3/byte line only
    // ~30% of the time. The defaults tuned for congestion (0.8 s
    // backoff cap, 8 attempts) are wrong for this dedicated line: one
    // doomed frame head-of-line-blocks the stop-and-wait channel for
    // ~9 s while fresh wake-ups pile up behind it, and the backlog is
    // flushed wholesale at the next brownout. Retry fast (the line is
    // idle while waiting anyway), keep the initial timeout above the
    // ack round trip to avoid spurious retransmits, and try hard
    // before surfacing a link-down verdict.
    transport::ReliableConfig reliableConfig;
    reliableConfig.ackTimeoutSeconds = 0.1;
    reliableConfig.maxBackoffSeconds = 0.15;
    reliableConfig.maxAttempts = 20;

    hub::HubRuntime hubRuntime(link, channels, mcu,
                               config.shareHubNodes);
    hubRuntime.enableReliableTransport(reliableConfig);
    hubRuntime.enableHeartbeats(heartbeatIntervalSeconds);
    hubRuntime.setWakeCoalescing(wakeCoalesceSeconds);

    core::SidewinderSensorManager manager(link, channels);
    manager.enableReliableTransport(reliableConfig);
    manager.enableSupervision(
        {heartbeatIntervalSeconds, missedBeatsThreshold}, 0.0);

    std::vector<double> triggerTimes;
    CollectingListener listener(triggerTimes);
    const int condition_id = manager.push(pipeline, &listener, 0.0);

    const auto mapping = detail::channelMapping(trace, channels);
    const std::size_t n = trace.sampleCount();
    if (n == 0)
        throw ConfigError("cannot simulate an empty trace");
    const auto stuck = resolveStuckWindows(plan, trace, mapping);

    std::vector<double> resets = plan.hubResetTimes;
    std::sort(resets.begin(), resets.end());
    std::size_t next_reset = 0;
    bool hub_off = false;
    double hub_on_at = 0.0;

    // Live-reconfiguration driver: each scheduled update is attempted
    // when its time comes and re-attempted (under a fresh epoch) every
    // time the hub rolls it back, until it commits.
    std::vector<ReconfigUpdate> updates = plan.reconfigUpdates;
    std::sort(updates.begin(), updates.end(),
              [](const ReconfigUpdate &a, const ReconfigUpdate &b) {
                  return a.timeSeconds < b.timeSeconds;
              });
    std::size_t next_update = 0;
    std::optional<ReconfigUpdate> active_update;
    std::uint32_t attempt_epoch = 0;

    std::vector<double> values(channels.size());
    for (std::size_t i = 0; i < n; ++i) {
        const double t = trace.timeOf(i);

        if (!hub_off && next_reset < resets.size() &&
            t >= resets[next_reset]) {
            hub_off = true;
            hub_on_at =
                resets[next_reset] + plan.hubResetDowntimeSeconds;
            ++next_reset;
            ++result.faults.hubResets;
        }
        if (hub_off && t >= hub_on_at) {
            hubRuntime.reboot(t);
            hub_off = false;
        }

        for (std::size_t c = 0; c < mapping.size(); ++c)
            values[c] = trace.channels[mapping[c]][i];
        for (const auto &w : stuck)
            if (t >= w.start && t < w.end)
                values[w.engineChannel] = w.heldValue;

        if (!hub_off) {
            hubRuntime.pollLink(t);
            hubRuntime.pushSamples(values, t);
        } else {
            // A dark hub cannot receive; bytes arriving now vanish.
            (void)link.phoneToHub().receive(t);
        }
        manager.poll(t);

        if (!active_update && next_update < updates.size() &&
            t >= updates[next_update].timeSeconds)
            active_update = updates[next_update++];
        if (active_update) {
            if (attempt_epoch == 0) {
                // (Re)try once the hub is reachable and no earlier
                // transaction is still winding down.
                if (!manager.hubDown() && !hub_off &&
                    !manager.updateInProgress()) {
                    attempt_epoch = manager.beginUpdate(t);
                    manager.updateCondition(
                        condition_id,
                        scaleThresholds(pipeline,
                                        active_update->thresholdScale),
                        t);
                    manager.commitUpdate(t);
                }
            } else if (!manager.updateInProgress()) {
                if (manager.configEpoch() >= attempt_epoch)
                    active_update.reset();
                else
                    // Rolled back (corruption, stall, brownout):
                    // retry under a fresh epoch.
                    attempt_epoch = 0;
            }
        }
        *update_active = manager.updateInProgress();
    }

    // Downtime accounting closes at trace end, before the drain below
    // can move 'now' past it.
    result.faults.hubDownSeconds = manager.hubDownSeconds(total);

    // Duty-Cycling fallback (Strategy::DutyCycling semantics) inside
    // every window the phone presumed the hub dead: blind periodic
    // sampling keeps degraded recall instead of going blind entirely.
    std::vector<std::pair<double, double>> down_windows =
        manager.downWindows();
    if (const auto open = manager.openDownWindowStart())
        down_windows.emplace_back(*open, total);
    const double gap = std::max(config.sleepIntervalSeconds, 2.0 * trans);
    for (const auto &[start, end] : down_windows) {
        const double window_end = std::min(end, total);
        double awake_start = start + trans;
        while (awake_start < window_end) {
            const double awake_end = std::min(
                awake_start + config.awakeDwellSeconds, window_end);
            timeline.addAwakeInterval(awake_start, awake_end);
            result.faults.fallbackAwakeSeconds +=
                awake_end - awake_start;
            awake_start = awake_end + gap;
        }
    }
    result.faults.fallbackEnergyMj =
        result.faults.fallbackAwakeSeconds *
        (model.awakeMw - model.asleepMw);

    // Let in-flight frames (final wake-ups, re-push acks) drain; the
    // timeline clamps to [0, total] so this cannot distort energy.
    for (double t = total; t <= total + 1.0; t += 0.01) {
        if (hub_off && t >= hub_on_at) {
            hubRuntime.reboot(t);
            hub_off = false;
        }
        if (!hub_off)
            hubRuntime.pollLink(t);
        manager.poll(t);
    }

    result.hubTriggerCount = triggerTimes.size();
    for (double t_e : triggerTimes)
        timeline.addAwakeInterval(t_e + trans,
                                  t_e + trans + event_dwell);

    const auto *phone_stats = manager.reliableStats();
    const auto *hub_stats = hubRuntime.reliableStats();
    result.faults.retransmits =
        phone_stats->retransmits + hub_stats->retransmits;
    result.faults.framesLost =
        phone_stats->framesLost + hub_stats->framesLost;
    result.faults.linkDownDeclared =
        phone_stats->framesLost > 0 || hub_stats->framesLost > 0;
    result.faults.framesDropped = link.phoneToHub().droppedFrames() +
                                  link.hubToPhone().droppedFrames();
    result.faults.bytesCorrupted = link.phoneToHub().corruptedBytes() +
                                   link.hubToPhone().corruptedBytes();
    result.faults.decoderDroppedBytes =
        hubRuntime.linkDropBytes() + manager.linkDropBytes();
    result.faults.repushedConditions =
        manager.supervisionStats().repushedConditions;
    result.faults.wakesCoalesced = hubRuntime.wakesCoalesced();
    // Reconfiguration accounting: transport-level stale refusals from
    // both endpoints plus the hub's message-level ones; transaction
    // outcomes from the phone (the side that owns the retry loop).
    result.faults.staleEpochFrames = phone_stats->staleEpochFrames +
                                     hub_stats->staleEpochFrames +
                                     hubRuntime.staleEpochMessages();
    const auto &recon = manager.reconfigStats();
    result.faults.updatesCommitted = recon.updatesCommitted;
    result.faults.updatesRolledBack = recon.updatesRolledBack;
    result.faults.reconfigDeltaBytes = recon.deltaWireBytes;
    result.faults.reconfigFullBytes = recon.fullPushWireBytes;
    result.faults.blindWindowSeconds =
        hubRuntime.lastBlindWindowSeconds();

    const auto merged = timeline.mergedIntervals(2.0 * trans - 1e-9);
    const auto detections =
        detail::classifyIntervals(trace, app, merged, lookback);
    result.meanDetectionLatencySeconds =
        detail::meanLatency(trace, app.eventType(), merged, lookback);

    result.timeline = timeline.summarize(model);
    result.averagePowerMw = result.timeline.averagePowerMw;
    result.hubMw = model.hubMw;

    result.detection =
        app.coalesceDetections()
            ? metrics::matchEventsCoalesced(truth, detections,
                                            app.matchTolerance())
            : metrics::matchEvents(truth, detections,
                                   app.matchTolerance());
    result.recall = result.detection.recall();
    result.precision = result.detection.precision();
    return result;
}

} // namespace sidewinder::sim
