/**
 * @file
 * Deterministic fault injection for the trace-driven simulator.
 *
 * The paper evaluates Sidewinder in a fault-free lab setting
 * (Sections 4–5); real hub deployments see flipped bytes on the UART,
 * lost frames, hub brownouts and stuck sensors as the common case.
 * A FaultPlan describes a seeded, exactly-reproducible fault schedule;
 * armLink() turns it into the UartLink corruption/drop hooks, and
 * simulateSupervised() replays a trace through the full transport +
 * supervision stack (reliable channel, heartbeats, re-push,
 * Duty-Cycling fallback) under that schedule. See docs/fault-model.md
 * for the taxonomy and the recovery state machine.
 *
 * Determinism: every random decision draws from forks of one
 * Rng(plan.seed), so a (trace, app, config) triple maps to exactly one
 * result — the property the parallel sweep engine relies on.
 */

#ifndef SIDEWINDER_SIM_FAULTS_H
#define SIDEWINDER_SIM_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "transport/link.h"

namespace sidewinder::trace {
struct Trace;
}
namespace sidewinder::apps {
class Application;
}

namespace sidewinder::sim {

struct SimConfig;
struct SimResult;

/** One sensor reporting a frozen value for a while. */
struct StuckSensorInterval
{
    /** Engine-order channel index (apps::Application::channels()). */
    std::size_t channelIndex = 0;
    /** Start of the stuck window, seconds. */
    double startSeconds = 0.0;
    /** End of the stuck window, seconds. */
    double endSeconds = 0.0;
};

/** One scheduled live-reconfiguration update during a run. */
struct ReconfigUpdate
{
    /** When the phone opens the update transaction, seconds. */
    double timeSeconds = 0.0;
    /**
     * Multiplier applied to every threshold parameter of the app's
     * wake condition. Everything upstream of the thresholds keeps its
     * canonical shareKeys, so the update travels as a small delta and
     * the unchanged subgraph carries its state across the swap.
     */
    double thresholdScale = 1.0;
};

/**
 * A seeded schedule of everything that goes wrong during one run.
 * The default-constructed plan injects nothing — and the simulator
 * guarantees a no-fault plan leaves every output bit-identical to a
 * run without the fault machinery.
 */
struct FaultPlan
{
    /** Probability each transmitted byte gets one bit flipped. */
    double byteCorruptionRate = 0.0;
    /** Probability a whole frame vanishes before serialization. */
    double frameDropRate = 0.0;
    /** Scheduled hub brownout times, seconds, ascending. */
    std::vector<double> hubResetTimes;
    /**
     * How long each brownout keeps the hub dark before it reboots
     * with empty state, seconds. Must exceed the supervisor's
     * miss-detection latency (heartbeat interval x missed-beat
     * threshold) for downtime/fallback metrics to register.
     */
    double hubResetDowntimeSeconds = 5.0;
    /** Sensors frozen at their last pre-fault value for a while. */
    std::vector<StuckSensorInterval> stuckSensors;
    /** Scheduled live-reconfiguration updates, times ascending. The
        phone retries a rolled-back update until it commits. */
    std::vector<ReconfigUpdate> reconfigUpdates;
    /**
     * Extra per-byte corruption applied only while an update
     * transaction is in flight — the "corruption during update" axis.
     * Stacks on top of byteCorruptionRate; no effect without
     * scheduled reconfigUpdates.
     */
    double updateCorruptionRate = 0.0;
    /** Seed of all fault randomness. */
    std::uint64_t seed = 0x5EED5EED;

    /** True when this plan injects any fault at all. */
    bool any() const;
};

/**
 * Install the plan's seeded corruption and frame-drop hooks on both
 * directions of @p link (the production caller of
 * UartLink::setCorruptor). Corruption flips one uniformly chosen bit
 * per affected byte. Each direction gets an independent stream forked
 * from plan.seed, so arming is order-independent and reproducible.
 *
 * @param update_active When non-null, plan.updateCorruptionRate is
 *     added to the per-byte corruption whenever *update_active is
 *     true — the simulator toggles it around update transactions.
 */
void armLink(transport::LinkPair &link, const FaultPlan &plan,
             std::shared_ptr<const bool> update_active = nullptr);

/**
 * Replay @p trace for @p app under config.faults through the full
 * fault-tolerance stack: HubRuntime with heartbeats + brownouts,
 * SidewinderSensorManager with supervision + reliable transport, and
 * a Duty-Cycling fallback while the hub is presumed dead. Called by
 * simulate() whenever the plan injects faults; only the Sidewinder
 * strategy on the microcontroller backend is supported.
 */
SimResult simulateSupervised(const trace::Trace &trace,
                             const apps::Application &app,
                             const SimConfig &config);

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_FAULTS_H
