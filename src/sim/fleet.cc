#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "il/analyze_range.h"
#include "il/lower.h"
#include "support/error.h"

namespace sidewinder::sim {

namespace {

/** splitmix64 finalizer: the fleet's stateless per-device RNG. */
std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform draw in [0, 1) from a hash value. */
double
unitDraw(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Domain-separation salts for the per-device draws. */
constexpr std::uint64_t kAppSalt = 0x61707073ULL;     // "apps"
constexpr std::uint64_t kCursorSalt = 0x63757273ULL;  // "curs"
constexpr std::uint64_t kFaultSalt = 0x666c74ULL;     // "flt"

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnvU64(std::uint64_t state, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        state ^= (v >> (i * 8)) & 0xffULL;
        state *= kFnvPrime;
    }
    return state;
}

std::uint64_t
fnvF64(std::uint64_t state, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return fnvU64(state, bits);
}

constexpr std::size_t kNoBrownout = static_cast<std::size_t>(-1);

} // namespace

FleetRuntime::FleetRuntime(FleetConfig config_,
                           std::vector<FleetAppMix> mix_,
                           const trace::Trace &fleet_trace)
    : config(std::move(config_)), mix(std::move(mix_)),
      fleetTrace(&fleet_trace)
{
    if (config.deviceCount == 0)
        throw ConfigError("fleet needs at least one device");
    if (config.devicesPerShard == 0 || config.blockSamples == 0)
        throw ConfigError(
            "devicesPerShard and blockSamples must be positive");

    // Resolve the placement space: an explicit heterogeneous set, or
    // the classic single-MCU budget (which makes the placer reproduce
    // accept/reject admission exactly).
    executors = config.executors.empty()
                    ? std::vector<hub::ExecutorModel>{hub::mcuExecutor(
                          config.mcu)}
                    : config.executors;
    executorSignature = hub::executorSetSignature(executors);
    for (const auto &e : executors)
        if (e.wakeBudgetHz > 0.0)
            wakeBudgetModeled = true;
    if (mix.empty())
        throw ConfigError("fleet needs a non-empty app mix");
    if (fleetTrace->sampleCount() == 0)
        throw ConfigError("fleet trace is empty");

    double total_weight = 0.0;
    for (const auto &entry : mix) {
        if (entry.app == nullptr)
            throw ConfigError("fleet app mix entry has no app");
        if (!(entry.weight > 0.0))
            throw ConfigError("fleet app mix weights must be > 0");
        total_weight += entry.weight;
    }
    (void)total_weight;

    // One fleet models one synchronous sensor domain: every app in
    // the mix must read the same channel set so every tenant engine
    // is interchangeable and the plan cache key space is shared.
    channels = mix.front().app->channels();
    for (std::size_t i = 1; i < mix.size(); ++i) {
        const auto other = mix[i].app->channels();
        bool same = other.size() == channels.size();
        for (std::size_t c = 0; same && c < channels.size(); ++c)
            same = other[c].name == channels[c].name &&
                   other[c].sampleRateHz == channels[c].sampleRateHz;
        if (!same)
            throw ConfigError(
                "fleet app mix spans different channel sets (app '" +
                mix[i].app->name() + "' vs '" +
                mix.front().app->name() + "')");
    }

    traceChannelOf.reserve(channels.size());
    for (const auto &ch : channels) {
        if (ch.sampleRateHz != fleetTrace->sampleRateHz)
            throw ConfigError("channel '" + ch.name +
                              "' rate differs from the fleet trace");
        traceChannelOf.push_back(fleetTrace->channelIndex(ch.name));
    }

    // Compile each mix entry's wake-up condition once; tenants only
    // ever intern these fixed programs.
    mixPrograms.reserve(mix.size());
    for (const auto &entry : mix)
        mixPrograms.push_back(entry.app->wakeCondition().compile());
}

std::size_t
FleetRuntime::shardCount() const
{
    return (devices.size() + config.devicesPerShard - 1) /
           config.devicesPerShard;
}

std::size_t
FleetRuntime::shardOf(std::size_t device) const
{
    return device / config.devicesPerShard;
}

int
FleetRuntime::deviceAppIndex(std::size_t device) const
{
    return devices.at(device).stats.appIndex;
}

hub::Engine &
FleetRuntime::deviceEngine(std::size_t device)
{
    auto &engine = devices.at(device).engine;
    if (!engine)
        throw ConfigError("fleet device not built yet");
    return *engine;
}

const hub::Engine &
FleetRuntime::deviceEngine(std::size_t device) const
{
    const auto &engine = devices.at(device).engine;
    if (!engine)
        throw ConfigError("fleet device not built yet");
    return *engine;
}

bool
FleetRuntime::admitInstall(Device &device, int condition_id,
                           const il::Program &program,
                           hub::FleetPlanCache::Shard &shard_cache)
{
    hub::FleetPlanCache::PlanPtr plan;
    if (config.shareAcrossTenants) {
        plan = shard_cache.intern(program, channels);
    } else {
        // Ablation baseline: every tenant lowers privately, so plan
        // memory and install cost scale with the population.
        plan = std::make_shared<const il::ExecutionPlan>(
            il::lower(program, channels));
    }

    // Placer-mediated homing: charge the *marginal* cost of this plan
    // on this engine (nodes the tenant already runs are free under
    // sharing) and ask the device's negotiated-congestion placer for
    // an assignment of every condition — old and new — that respects
    // every executor's cycle/RAM/wake/cell capacity. Later installs
    // may re-home earlier conditions to make room; rejection means no
    // assignment exists.
    const il::ProgramCost marginal = device.engine->marginalCost(*plan);
    // Wake-budget admission uses the range analyzer's proven bound
    // when it is tighter than the syntactic one (SW312): a condition
    // whose data provably cannot fire often fits a wake budget its
    // syntactic rate would blow. Memoized per canonical plan in the
    // fleet cache; the ablation path computes the same pure analysis
    // directly, so admission verdicts are identical either way.
    il::ProgramCost charged = marginal;
    if (wakeBudgetModeled) {
        const double proven =
            config.shareAcrossTenants
                ? cache.provenWakeRateHz(*plan)
                : il::analyzeRanges(*plan).provenWakeRateHz;
        charged.wakeRateBoundHz =
            std::min(charged.wakeRateBoundHz, proven);
    }
    const double wake_hz = charged.wakeRateBoundHz;
    device.placer->addCondition(*plan, charged);

    bool placed = false;
    if (device.placedOrder.empty() && config.shareAcrossTenants) {
        // First install on an empty ledger: the verdict is a pure
        // function of (plan, executor set), so the whole fleet
        // computes it once in the shared cache.
        const hub::PlacementDecision decision =
            cache.firstInstallPlacement(
                *plan, executorSignature, [&device] {
                    return std::move(
                        device.placer->place().decisions.front());
                });
        placed = decision.placed();
        if (placed) {
            device.placements[condition_id] = decision;
            device.hubPowerMw = decision.marginalPowerMw;
        }
    } else {
        const hub::PlacementResult result = device.placer->place();
        placed = result.unplaced == 0;
        if (placed) {
            for (std::size_t i = 0; i < device.placedOrder.size();
                 ++i)
                device.placements[device.placedOrder[i]] =
                    result.decisions[i];
            device.placements[condition_id] =
                result.decisions.back();
            device.hubPowerMw = result.totalPowerMw;
        }
    }
    if (!placed) {
        device.placer->removeLast();
        device.stats.conditionsRejected += 1;
        return false;
    }

    device.engine->addCondition(condition_id, *plan);
    device.installed.emplace(condition_id, std::move(plan));
    device.wakeHzByCondition.emplace(condition_id, wake_hz);
    device.wakeLoadHz += wake_hz;
    device.placedOrder.push_back(condition_id);
    device.stats.conditionsAdmitted += 1;
    device.stats.ramBytes = device.engine->estimatedRamBytes();
    device.stats.hubPowerMw = device.hubPowerMw;
    device.stats.homeExecutor =
        device.placements.at(device.placedOrder.front())
            .executorIndex;
    return true;
}

void
FleetRuntime::buildShard(std::size_t shard)
{
    const std::size_t begin = shard * config.devicesPerShard;
    const std::size_t end =
        std::min(begin + config.devicesPerShard, devices.size());
    const std::size_t trace_samples = fleetTrace->sampleCount();
    const double rate = fleetTrace->sampleRateHz;
    const std::size_t samples_per_run = static_cast<std::size_t>(
        std::llround(config.secondsPerDevice * rate));

    for (std::size_t d = begin; d < end; ++d) {
        Device &device = devices[d];
        device.engine = std::make_unique<hub::Engine>(
            channels, config.sharePerEngine, config.rawBufferSize,
            config.kernelMode);
        device.placer = std::make_unique<hub::Placer>(
            executors, config.placer);

        device.cursor = static_cast<std::size_t>(
            mixHash(config.seed ^ (d * 2654435761ULL) ^ kCursorSalt) %
            trace_samples);

        if (config.brownoutFraction > 0.0 &&
            unitDraw(mixHash(config.seed ^ (d * 2654435761ULL) ^
                             kFaultSalt)) < config.brownoutFraction)
            device.brownoutAtSample = samples_per_run / 2;

        for (std::size_t c = 0; c < config.conditionsPerDevice; ++c) {
            const std::uint64_t draw = mixHash(
                config.seed ^
                ((d * config.conditionsPerDevice + c) * 0x9e3779b9ULL) ^
                kAppSalt);
            double u = unitDraw(draw);
            // Weighted pick over the mix (weights need not sum to 1).
            double total = 0.0;
            for (const auto &entry : mix)
                total += entry.weight;
            std::size_t pick = mix.size() - 1;
            double acc = 0.0;
            for (std::size_t m = 0; m < mix.size(); ++m) {
                acc += mix[m].weight / total;
                if (u < acc) {
                    pick = m;
                    break;
                }
            }
            if (device.stats.appIndex < 0)
                device.stats.appIndex = static_cast<int>(pick);
            admitInstall(device, static_cast<int>(c) + 1,
                         mixPrograms[pick], shardCaches[shard]);
        }
    }
}

void
FleetRuntime::build(support::ThreadPool &pool)
{
    if (built)
        throw ConfigError("fleet already built");
    devices.resize(config.deviceCount);
    const std::size_t shards = shardCount();
    shardCaches.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shardCaches.emplace_back(cache);
    pool.parallelFor(0, shards,
                     [this](std::size_t s) { buildShard(s); });
    built = true;
}

void
FleetRuntime::build()
{
    build(support::ThreadPool::shared());
}

void
FleetRuntime::runShard(std::size_t shard)
{
    const std::size_t begin = shard * config.devicesPerShard;
    const std::size_t end =
        std::min(begin + config.devicesPerShard, devices.size());
    const std::size_t trace_samples = fleetTrace->sampleCount();
    const double rate = fleetTrace->sampleRateHz;
    const double dt = 1.0 / rate;
    const std::size_t samples_per_run = static_cast<std::size_t>(
        std::llround(config.secondsPerDevice * rate));
    if (samples_per_run == 0)
        return;

    // One channel-major scratch block per shard, refilled per device
    // per block — the only allocation in the fleet hot loop.
    std::vector<double> block(channels.size() * config.blockSamples);

    for (std::size_t d = begin; d < end; ++d) {
        Device &device = devices[d];
        if (device.stats.conditionsAdmitted == 0)
            continue; // Rejected tenants never power the hub.

        std::size_t remaining = samples_per_run;
        while (remaining > 0) {
            const std::size_t k =
                std::min(config.blockSamples, remaining);

            // Scheduled brownout: state loss at the nearest block
            // boundary (conditions survive, signal state does not).
            if (!device.stats.brownedOut &&
                device.brownoutAtSample != kNoBrownout &&
                device.sampleClock >= device.brownoutAtSample) {
                device.engine->resetState();
                device.stats.brownedOut = true;
            }

            for (std::size_t ch = 0; ch < channels.size(); ++ch) {
                const auto &src =
                    fleetTrace->channels[traceChannelOf[ch]];
                double *lane = block.data() + ch * k;
                std::size_t pos = device.cursor;
                for (std::size_t w = 0; w < k; ++w) {
                    lane[w] = src[pos];
                    if (++pos == trace_samples)
                        pos = 0;
                }
            }

            const double t0 =
                static_cast<double>(device.sampleClock) * dt;
            device.engine->pushBlock(block.data(), k, t0, dt);

            device.cursor = (device.cursor + k) % trace_samples;
            device.sampleClock += k;
            device.stats.samplesIngested += k;
            remaining -= k;

            for (const auto &ev : device.engine->drainWakeEvents()) {
                device.stats.wakeEvents += 1;
                device.stats.lastWakeTimestamp = ev.timestamp;
                std::uint64_t h = device.stats.wakeDigest;
                h = fnvU64(
                    h, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(ev.conditionId)));
                h = fnvF64(h, ev.timestamp);
                h = fnvF64(h, ev.value);
                device.stats.wakeDigest = h;
            }
        }

        // Energy model: the placed hub silicon is powered for the
        // whole ingest (mW x s = mJ) — the admission MCU's active
        // power for single-MCU fleets, active + dynamic over the
        // occupied executors for heterogeneous ones. Duty-cycling
        // below full-on is the simulator's business; the fleet
        // models steady streaming.
        device.stats.hubEnergyMj +=
            device.hubPowerMw *
            (static_cast<double>(samples_per_run) * dt);
        device.stats.ramBytes = device.engine->estimatedRamBytes();
    }
}

void
FleetRuntime::run(support::ThreadPool &pool)
{
    if (!built)
        throw ConfigError("fleet not built yet");
    pool.parallelFor(0, shardCount(),
                     [this](std::size_t s) { runShard(s); });
}

void
FleetRuntime::run()
{
    run(support::ThreadPool::shared());
}

FleetResult
FleetRuntime::collect() const
{
    FleetResult out;
    out.deviceCount = devices.size();
    out.shardCount = shardCount();
    out.cache = cache.stats();
    out.executorConditions.assign(executors.size(), 0);
    out.devices.reserve(devices.size());

    std::uint64_t digest = kFnvOffset;
    for (const auto &device : devices) {
        const FleetDeviceStats &s = device.stats;
        out.devices.push_back(s);
        out.samplesIngested += s.samplesIngested;
        out.wakeEvents += s.wakeEvents;
        if (s.conditionsRejected > 0)
            out.rejectedDevices += 1;
        else if (s.conditionsAdmitted > 0)
            out.admittedDevices += 1;
        if (s.brownedOut)
            out.brownouts += 1;
        out.modeledRamBytes += s.ramBytes;
        out.hubEnergyMj += s.hubEnergyMj;
        out.fleetPowerMw += s.hubPowerMw;
        for (const auto &[cid, decision] : device.placements) {
            (void)cid;
            if (decision.placed())
                out.executorConditions[static_cast<std::size_t>(
                    decision.executorIndex)] += 1;
        }

        digest = fnvU64(digest, static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(
                                        s.appIndex)));
        digest = fnvU64(digest, s.conditionsAdmitted);
        digest = fnvU64(digest, s.conditionsRejected);
        digest = fnvU64(digest, s.brownedOut ? 1 : 0);
        digest = fnvU64(digest, s.samplesIngested);
        digest = fnvU64(digest, s.wakeEvents);
        digest = fnvU64(digest, s.wakeDigest);
        digest = fnvF64(digest, s.lastWakeTimestamp);
        digest = fnvF64(digest, s.hubEnergyMj);
        digest = fnvU64(digest, s.ramBytes);
        digest = fnvU64(digest, static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(
                                        s.homeExecutor)));
        digest = fnvF64(digest, s.hubPowerMw);
    }
    out.digest = digest;
    return out;
}

bool
FleetRuntime::installCondition(std::size_t device_index,
                               int condition_id,
                               const apps::Application &app)
{
    if (!built)
        throw ConfigError("fleet not built yet");
    Device &device = devices.at(device_index);

    const auto app_channels = app.channels();
    bool same = app_channels.size() == channels.size();
    for (std::size_t c = 0; same && c < channels.size(); ++c)
        same = app_channels[c].name == channels[c].name &&
               app_channels[c].sampleRateHz ==
                   channels[c].sampleRateHz;
    if (!same)
        throw ConfigError("app '" + app.name() +
                          "' does not match the fleet's channel set");

    return admitInstall(device, condition_id,
                        app.wakeCondition().compile(),
                        shardCaches[shardOf(device_index)]);
}

const hub::PlacementDecision &
FleetRuntime::placementOf(std::size_t device_index,
                          int condition_id) const
{
    const Device &device = devices.at(device_index);
    auto it = device.placements.find(condition_id);
    if (it == device.placements.end())
        throw ConfigError("condition not installed on this device");
    return it->second;
}

void
FleetRuntime::removeCondition(std::size_t device_index,
                              int condition_id)
{
    Device &device = devices.at(device_index);
    if (!device.engine || !device.engine->hasCondition(condition_id))
        throw ConfigError("condition not installed on this device");
    device.engine->removeCondition(condition_id);
    device.installed.erase(condition_id);
    auto wake = device.wakeHzByCondition.find(condition_id);
    if (wake != device.wakeHzByCondition.end()) {
        device.wakeLoadHz -= wake->second;
        device.wakeHzByCondition.erase(wake);
    }
    device.stats.conditionsAdmitted -= 1;
    device.stats.ramBytes = device.engine->estimatedRamBytes();

    // Release the condition's placer slot and re-place the rest —
    // freeing capacity can only keep (or improve) their homes.
    auto slot = std::find(device.placedOrder.begin(),
                          device.placedOrder.end(), condition_id);
    if (slot != device.placedOrder.end()) {
        device.placer->removeAt(static_cast<std::size_t>(
            slot - device.placedOrder.begin()));
        device.placedOrder.erase(slot);
    }
    device.placements.erase(condition_id);
    if (device.placedOrder.empty()) {
        device.hubPowerMw = 0.0;
        device.stats.homeExecutor = -1;
    } else {
        const hub::PlacementResult result = device.placer->place();
        for (std::size_t i = 0; i < device.placedOrder.size(); ++i)
            device.placements[device.placedOrder[i]] =
                result.decisions[i];
        device.hubPowerMw = result.totalPowerMw;
        device.stats.homeExecutor =
            device.placements.at(device.placedOrder.front())
                .executorIndex;
    }
    device.stats.hubPowerMw = device.hubPowerMw;
}

} // namespace sidewinder::sim
