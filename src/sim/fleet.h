/**
 * @file
 * Fleet-scale hub farm: one process multiplexing thousands of
 * simulated Sidewinder devices.
 *
 * The paper evaluates one device at a time; production-scale backends
 * ("From Sensors to Insight"-style edge-to-core aggregation, Global
 * Sensor Network middleware — PAPERS.md) multiplex huge sensor
 * populations behind one process. FleetRuntime composes the pieces
 * earlier PRs made safe for exactly this:
 *
 *  - every device is an hub::Engine plus a trace cursor and
 *    power/fault state, admitted per-device through the plan-based
 *    Engine::marginalCost against an MCU budget;
 *  - devices are grouped into fixed shards fanned across a
 *    support::ThreadPool (the PR 2 pool) — sharding is configuration,
 *    not scheduling, so results are bit-identical at any thread
 *    count;
 *  - trace ingestion is per-shard batches through Engine::pushBlock
 *    (the PR 6 node-major block path is the fleet hot loop);
 *  - wake-up conditions are interned in a fleet-wide
 *    hub::FleetPlanCache — hash-consing promoted from per-engine to
 *    cross-tenant, so a skewed app mix lowers a handful of plans for
 *    the whole population. Engines share the immutable plan's
 *    constant SoA arrays and instantiate their own kernels and state
 *    lanes locally, keeping install-time cached-input pointers
 *    address-stable per tenant;
 *  - admission is placer-mediated homing (hub/placer.h): each device
 *    owns a negotiated-congestion placer over the fleet's executor
 *    set (MCUs, FPGAs, AP-fallback) with exact capacity ledgers, so
 *    "admit" means "found a home under every budget" and installs
 *    may re-home earlier conditions to make room. The common
 *    first-install verdict is memoized per canonical plan in the
 *    fleet cache. An empty executor set degenerates to the classic
 *    single-MCU accept/reject, bit-for-bit.
 */

#ifndef SIDEWINDER_SIM_FLEET_H
#define SIDEWINDER_SIM_FLEET_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "apps/app.h"
#include "hub/engine.h"
#include "hub/mcu.h"
#include "hub/placer.h"
#include "hub/plan_cache.h"
#include "support/thread_pool.h"
#include "trace/types.h"

namespace sidewinder::sim {

/** One entry of the fleet's application mix. */
struct FleetAppMix
{
    /** The application whose wake-up condition tenants install. */
    const apps::Application *app = nullptr;
    /** Relative share of the population (need not sum to 1). */
    double weight = 1.0;
};

/** Parameters of a fleet. */
struct FleetConfig
{
    /** Simulated devices (tenants). */
    std::size_t deviceCount = 0;
    /**
     * Devices per shard. Sharding is part of the configuration — the
     * device->shard mapping, and therefore every result bit, is
     * independent of the worker count that happens to execute it.
     */
    std::size_t devicesPerShard = 64;
    /** Waves per Engine::pushBlock call (the ingestion batch size). */
    std::size_t blockSamples = 64;
    /** Trace seconds each device ingests per run() call. */
    double secondsPerDevice = 4.0;
    /** Master seed for app assignment, cursors, and fault draws. */
    std::uint64_t seed = 1;
    /** Conditions each device installs (drawn i.i.d. from the mix). */
    std::size_t conditionsPerDevice = 1;
    /**
     * Intern conditions in the fleet-wide plan cache. false lowers
     * per tenant (the ablation baseline the cache is measured
     * against); per-device results are identical either way.
     */
    bool shareAcrossTenants = true;
    /** Cross-condition node sharing inside each engine. */
    bool sharePerEngine = true;
    /** Per-channel raw history per device (hub::Engine). */
    std::size_t rawBufferSize = 64;
    /** Numeric mode of every tenant engine. */
    hub::KernelMode kernelMode = hub::KernelMode::Float64;
    /** Per-device admission budget (compute + RAM) when `executors`
     *  is empty — the single-MCU fleet every earlier PR ran. */
    hub::McuModel mcu;
    /**
     * Heterogeneous placement space each device homes conditions
     * onto via the negotiated-congestion placer (hub/placer.h).
     * Empty (the default) places onto `mcu` alone, which preserves
     * the classic accept/reject admission bit-for-bit; pass
     * hub::platformExecutors() for MCU+FPGA+AP homing.
     */
    std::vector<hub::ExecutorModel> executors;
    /** Negotiation knobs for the per-device placer. */
    hub::PlacerConfig placer;
    /**
     * Fraction of devices that suffer one brownout (hub state loss,
     * Engine::resetState) halfway through their run — the fleet-level
     * echo of the PR 4 fault model. 0 disables.
     */
    double brownoutFraction = 0.0;

    FleetConfig() : mcu(hub::msp430()) {}
};

/** Per-device outcome, in device order. */
struct FleetDeviceStats
{
    /** Index into the app mix this device drew. */
    int appIndex = -1;
    /** Conditions that passed admission. */
    std::uint32_t conditionsAdmitted = 0;
    /** Conditions rejected by the MCU budget. */
    std::uint32_t conditionsRejected = 0;
    /** True when the device's brownout draw fired this run. */
    bool brownedOut = false;
    /** Waves ingested so far. */
    std::size_t samplesIngested = 0;
    /** Wake-ups raised so far. */
    std::size_t wakeEvents = 0;
    /** Order-sensitive FNV over every wake event (id, t, value). */
    std::uint64_t wakeDigest = 1469598103934665603ULL;
    /** Timestamp of the most recent wake-up; -1 when none. */
    double lastWakeTimestamp = -1.0;
    /** Modeled hub energy: placed hub power x ingested seconds, mJ. */
    double hubEnergyMj = 0.0;
    /** Modeled engine RAM (state + results), bytes. */
    std::size_t ramBytes = 0;
    /** Executor-set index homing the device's first condition; -1
     *  before any install. */
    int homeExecutor = -1;
    /** Placed hub power (active + dynamic over occupied executors),
     *  mW. Equals the admission MCU's active power for single-MCU
     *  fleets. */
    double hubPowerMw = 0.0;
};

/** Aggregated fleet outcome. */
struct FleetResult
{
    std::size_t deviceCount = 0;
    std::size_t shardCount = 0;
    /** Sum of per-device samplesIngested. */
    std::size_t samplesIngested = 0;
    /** Sum of per-device wakeEvents. */
    std::size_t wakeEvents = 0;
    /** Devices with every condition admitted. */
    std::size_t admittedDevices = 0;
    /** Devices with at least one rejected condition. */
    std::size_t rejectedDevices = 0;
    /** Devices that browned out. */
    std::size_t brownouts = 0;
    /** Sum of per-device modeled RAM, bytes. */
    std::size_t modeledRamBytes = 0;
    /** Sum of per-device hub energy, mJ. */
    double hubEnergyMj = 0.0;
    /** Sum of per-device placed hub power, mW. */
    double fleetPowerMw = 0.0;
    /** Conditions homed per executor-set index, fleet-wide. */
    std::vector<std::size_t> executorConditions;
    /** Plan-cache accounting (zeros when sharing is disabled). */
    hub::PlanCacheStats cache;
    /**
     * Order-sensitive digest over every per-device field — two runs
     * are field-for-field identical iff their digests match (tests
     * still compare fields for diagnosability).
     */
    std::uint64_t digest = 0;
    std::vector<FleetDeviceStats> devices;
};

/**
 * A population of simulated devices sharing one process, one thread
 * pool, and one plan cache.
 *
 * Lifecycle: construct, build() once, then run() one or more times
 * (each run ingests another FleetConfig::secondsPerDevice per
 * device); collect() at any point between calls. build() and run()
 * fan shards across the given pool; everything else is
 * single-threaded.
 *
 * Determinism: app assignment, cursors, and fault draws are pure
 * functions of (seed, device index); shards are processed
 * independently and each shard's devices serially; results live in
 * per-device slots. collect() is therefore bit-identical for any
 * worker count, and the plan-cache counters are exact (see
 * hub/plan_cache.h).
 */
class FleetRuntime
{
  public:
    /**
     * @param config Fleet parameters (deviceCount must be > 0).
     * @param mix Application mix; every app must use the same channel
     *     set (one fleet models one synchronous sensor domain).
     * @param fleet_trace Recording every device replays (each device
     *     starts at its own seeded cursor offset and wraps). Must
     *     contain every channel the mix's apps read and outlive the
     *     runtime.
     * @throws ConfigError on an empty mix/population or mismatched
     *     app channel sets.
     */
    FleetRuntime(FleetConfig config, std::vector<FleetAppMix> mix,
                 const trace::Trace &fleet_trace);

    /**
     * Instantiate every device and admit/install its conditions
     * (parallel across shards on @p pool).
     */
    void build(support::ThreadPool &pool);

    /** build() on the process-wide shared pool. */
    void build();

    /**
     * Ingest FleetConfig::secondsPerDevice of trace per device in
     * blockSamples batches (parallel across shards on @p pool).
     */
    void run(support::ThreadPool &pool);

    /** run() on the process-wide shared pool. */
    void run();

    /** Deterministic aggregation of every device's stats. */
    FleetResult collect() const;

    std::size_t deviceCount() const { return devices.size(); }
    std::size_t shardCount() const;

    /** Shard owning @p device (device / devicesPerShard). */
    std::size_t shardOf(std::size_t device) const;

    /** Mix index @p device drew (fixed at construction). */
    int deviceAppIndex(std::size_t device) const;

    /** The tenant's engine (tests, tooling; single-threaded use). */
    hub::Engine &deviceEngine(std::size_t device);
    const hub::Engine &deviceEngine(std::size_t device) const;

    /**
     * Install @p app's wake-up condition as @p condition_id on one
     * tenant, through the fleet cache and admission control, after
     * build(). Single-threaded (management plane, not the hot loop).
     *
     * @return true when admitted and installed; false when the MCU
     *     budget rejected it (nothing changes).
     */
    bool installCondition(std::size_t device, int condition_id,
                          const apps::Application &app);

    /** Remove a condition installed on @p device, releasing its plan
     *  reference and RAM accounting. */
    void removeCondition(std::size_t device, int condition_id);

    /** The fleet-wide plan cache (accounting, tests). */
    const hub::FleetPlanCache &planCache() const { return cache; }

    /** The resolved placement space (config.executors, or the
     *  single-MCU default). */
    const std::vector<hub::ExecutorModel> &executorSet() const
    {
        return executors;
    }

    /**
     * Where @p condition_id of @p device is homed. Throws ConfigError
     * when the condition is not installed. Decisions can change on
     * later installs — the placer may re-home existing conditions to
     * make room (never breaking capacity).
     */
    const hub::PlacementDecision &placementOf(std::size_t device,
                                              int condition_id) const;

  private:
    struct Device
    {
        std::unique_ptr<hub::Engine> engine;
        /** The device's placement engine: executor demand rows for
         *  every admitted condition, in placedOrder. */
        std::unique_ptr<hub::Placer> placer;
        /** Plan references keeping cached plans alive per tenant. */
        std::map<int, hub::FleetPlanCache::PlanPtr> installed;
        /** Admitted wake-rate bound per condition (proven when the
         *  range analyzer tightened it, else syntactic). */
        std::map<int, double> wakeHzByCondition;
        /** Condition ids in placer-slot order. */
        std::vector<int> placedOrder;
        /** Current home of every admitted condition. */
        std::map<int, hub::PlacementDecision> placements;
        /** Placed hub power, mW (mirrored into stats). */
        double hubPowerMw = 0.0;
        /** Sum of wakeHzByCondition: the device's admitted wake
         *  load against McuModel::wakeBudgetHz. */
        double wakeLoadHz = 0.0;
        /** Read position in the fleet trace (wraps). */
        std::size_t cursor = 0;
        /** Device-local wave counter (timestamps, block phases). */
        std::size_t sampleClock = 0;
        /** Wave index of the scheduled brownout; SIZE_MAX = none. */
        std::size_t brownoutAtSample = static_cast<std::size_t>(-1);
        FleetDeviceStats stats;
    };

    void buildShard(std::size_t shard);
    void runShard(std::size_t shard);
    /** Admit-and-install through the cache; updates stats/RAM. */
    bool admitInstall(Device &device, int condition_id,
                      const il::Program &program,
                      hub::FleetPlanCache::Shard &shard_cache);

    FleetConfig config;
    /** Resolved placement space (config.executors or {config.mcu}). */
    std::vector<hub::ExecutorModel> executors;
    /** Signature of `executors` (placement memo key). */
    std::string executorSignature;
    /** True when any executor models a wake budget (enables the
     *  range-analysis proven-bound substitution). */
    bool wakeBudgetModeled = false;
    std::vector<FleetAppMix> mix;
    const trace::Trace *fleetTrace;
    /** Channel set shared by every app in the mix. */
    std::vector<il::ChannelInfo> channels;
    /** Trace channel index per engine channel. */
    std::vector<std::size_t> traceChannelOf;
    /** Compiled wake-up condition per mix entry (compiled once). */
    std::vector<il::Program> mixPrograms;

    hub::FleetPlanCache cache;
    /** One read-mostly cache view per shard (see plan_cache.h). */
    std::vector<hub::FleetPlanCache::Shard> shardCaches;
    std::vector<Device> devices;
    bool built = false;
};

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_FLEET_H
