#include "sim/power_model.h"

namespace sidewinder::sim {

PowerModel
nexus4()
{
    return PowerModel{};
}

PowerModel
nexus4WithHub(double hub_mw)
{
    PowerModel model;
    model.hubMw = hub_mw;
    return model;
}

double
nexus4BatteryMj()
{
    // 2100 mAh * 3.8 V = 7.98 Wh = 28728 J.
    return 2100.0 * 3.6 * 3.8 * 1000.0;
}

double
batteryLifeHours(double average_power_mw)
{
    if (average_power_mw <= 0.0)
        return 0.0;
    return nexus4BatteryMj() / average_power_mw / 3600.0;
}

} // namespace sidewinder::sim
