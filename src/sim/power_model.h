/**
 * @file
 * Power model of the Google Nexus 4 prototype, parameterized with the
 * measured values of Table 1 of the paper:
 *
 *     Awake, running sensor-driven application   323 mW
 *     Asleep                                     9.7 mW
 *     Asleep-to-Awake transition                 384 mW, ~1 s
 *     Awake-to-Asleep transition                 341 mW, ~1 s
 *
 * plus the (optional) always-on sensor-hub microcontroller power
 * (Section 4.3: "the power model accounts for ... the cost of a
 * low-power TI MSP430 microcontroller").
 */

#ifndef SIDEWINDER_SIM_POWER_MODEL_H
#define SIDEWINDER_SIM_POWER_MODEL_H

namespace sidewinder::sim {

/** Power characteristics of the simulated device. */
struct PowerModel
{
    /** Main CPU awake and running the application, mW. */
    double awakeMw = 323.0;
    /** Main CPU in its sleep state, mW. */
    double asleepMw = 9.7;
    /** Asleep-to-awake transition power, mW. */
    double wakeTransitionMw = 384.0;
    /** Awake-to-asleep transition power, mW. */
    double sleepTransitionMw = 341.0;
    /** Duration of each transition, seconds. */
    double transitionSeconds = 1.0;
    /** Always-on sensor-hub power, mW (0 when no hub is used). */
    double hubMw = 0.0;
};

/** The measured Nexus 4 profile with no sensor hub attached. */
PowerModel nexus4();

/** Nexus 4 plus an always-on hub consuming @p hub_mw. */
PowerModel nexus4WithHub(double hub_mw);

/** Nexus 4 battery capacity (2100 mAh at 3.8 V), millijoules. */
double nexus4BatteryMj();

/**
 * Hours a Nexus 4 battery lasts at a sustained @p average_power_mw —
 * the user-facing number behind every milliwatt in the evaluation
 * (the paper's motivation: continuous sensing "results in poor
 * battery life").
 */
double batteryLifeHours(double average_power_mw);

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_POWER_MODEL_H
