/**
 * @file
 * Internal helpers shared by the trace-replay paths of the simulator
 * (sim/simulator.cc) and the fault-injection harness (sim/faults.cc).
 * Both replay the same traces and score detections identically; these
 * live here so the supervised path cannot drift from the fault-free
 * one.
 */

#ifndef SIDEWINDER_SIM_REPLAY_H
#define SIDEWINDER_SIM_REPLAY_H

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "apps/app.h"
#include "il/validate.h"
#include "sim/timeline.h"
#include "trace/types.h"

namespace sidewinder::sim::detail {

/** Samples index corresponding to time @p t (clamped). */
inline std::size_t
sampleAt(const trace::Trace &trace, double t)
{
    if (t <= 0.0)
        return 0;
    const auto idx = static_cast<std::size_t>(t * trace.sampleRateHz);
    return std::min(idx, trace.sampleCount());
}

/** Map engine channel order to trace channel indexes. */
inline std::vector<std::size_t>
channelMapping(const trace::Trace &trace,
               const std::vector<il::ChannelInfo> &channels)
{
    std::vector<std::size_t> mapping;
    mapping.reserve(channels.size());
    for (const auto &ch : channels)
        mapping.push_back(trace.channelIndex(ch.name));
    return mapping;
}

/** Run the application classifier over merged awake intervals. */
inline std::vector<double>
classifyIntervals(const trace::Trace &trace,
                  const apps::Application &app,
                  const std::vector<Interval> &intervals,
                  double lookback)
{
    std::vector<double> detections;
    double covered_until = 0.0;
    for (const auto &interval : intervals) {
        // Avoid re-classifying overlapping lookback regions.
        const double begin_t =
            std::max(interval.start - lookback, covered_until);
        covered_until = interval.end;
        const auto begin = sampleAt(trace, begin_t);
        const auto end = sampleAt(trace, interval.end);
        if (end <= begin)
            continue;
        for (double t : app.classify(trace, begin, end))
            detections.push_back(t);
    }
    std::sort(detections.begin(), detections.end());
    return detections;
}

/**
 * Mean delay from event start until the device is awake with the
 * event's data available (0 when the device was already awake).
 */
inline double
meanLatency(const trace::Trace &trace, const std::string &event_type,
            const std::vector<Interval> &intervals, double lookback)
{
    const auto events = trace.eventsOfType(event_type);
    if (events.empty())
        return 0.0;

    double total = 0.0;
    std::size_t counted = 0;
    for (const auto &ev : events) {
        for (const auto &interval : intervals) {
            // The event is processable in this interval if the awake
            // window (plus lookback) covers the event start.
            if (interval.end < ev.startTime)
                continue;
            if (interval.start - lookback > ev.endTime)
                break;
            total += std::max(0.0, interval.start - ev.startTime);
            ++counted;
            break;
        }
    }
    return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

} // namespace sidewinder::sim::detail

#endif // SIDEWINDER_SIM_REPLAY_H
